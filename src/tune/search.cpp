#include "tune/search.hpp"

#include <algorithm>
#include <cmath>

#include "util/errors.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"

namespace hammer::tune {

namespace {

const char* const kKnownSearchKeys[] = {"strategy", "width",    "eta",       "max_rungs",
                                        "seed",     "base_txs", "slo_p99_ms"};

// Total order over outcomes: score desc, assignment_key asc. The string
// tie-break makes rung promotion (and thus the whole search trajectory)
// deterministic even when two plans measure identically.
bool better(const TrialOutcome& a, const TrialOutcome& b) {
  if (a.score() != b.score()) return a.score() > b.score();
  return assignment_key(a.assignment) < assignment_key(b.assignment);
}

}  // namespace

Strategy strategy_from_string(const std::string& s) {
  if (s == "random") return Strategy::kRandom;
  if (s == "halving") return Strategy::kHalving;
  throw ParseError("unknown tune strategy '" + s + "' (want \"random\" or \"halving\")");
}

std::string strategy_name(Strategy s) {
  return s == Strategy::kRandom ? "random" : "halving";
}

SearchOptions SearchOptions::from_json(const json::Value& v, double* slo_out) {
  SearchOptions options;
  if (v.is_null()) return options;
  for (const auto& [key, value] : v.as_object()) {
    (void)value;
    if (key == "knobs") continue;  // ParamSpace::from_json owns this one
    bool known = std::any_of(std::begin(kKnownSearchKeys), std::end(kKnownSearchKeys),
                             [&](const char* k) { return key == k; });
    if (!known) throw ParseError("unknown tune option '" + key + "'");
  }
  options.strategy = strategy_from_string(v.get_string("strategy", "halving"));
  options.width = static_cast<std::size_t>(v.get_int("width", 8));
  options.eta = v.get_double("eta", 2.0);
  options.max_rungs = static_cast<std::size_t>(v.get_int("max_rungs", 3));
  options.seed = static_cast<std::uint64_t>(v.get_int("seed", 1));
  options.base_txs = static_cast<std::size_t>(v.get_int("base_txs", 400));
  if (options.width < 1) throw ParseError("tune width must be >= 1");
  if (options.eta <= 1.0) throw ParseError("tune eta must be > 1");
  if (options.max_rungs < 1) throw ParseError("tune max_rungs must be >= 1");
  if (options.base_txs < 1) throw ParseError("tune base_txs must be >= 1");
  if (slo_out != nullptr) *slo_out = v.get_double("slo_p99_ms", 1e9);
  return options;
}

std::size_t rung_budget(std::size_t base_txs, double eta, std::size_t rung) {
  double scaled = static_cast<double>(base_txs) * std::pow(eta, static_cast<double>(rung));
  auto txs = static_cast<std::size_t>(std::llround(scaled));
  return std::max(base_txs, txs);
}

std::size_t rung_survivors(std::size_t n, double eta) {
  auto kept = static_cast<std::size_t>(static_cast<double>(n) / eta);
  return std::max<std::size_t>(1, kept);
}

Search::Search(SearchOptions options) : options_(options) {}

TuneResult Search::run(TrialRunner& runner, const ParamSpace& space) const {
  TuneResult result = options_.strategy == Strategy::kRandom ? run_random(runner, space)
                                                             : run_halving(runner, space);
  for (const TrialOutcome& trial : result.trials) {
    if (trial.feasible) ++result.feasible;
  }
  return result;
}

TuneResult Search::run_random(TrialRunner& runner, const ParamSpace& space) const {
  std::vector<Assignment> candidates = space.sample(options_.width, options_.seed);
  std::vector<TrialPoint> points;
  points.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    TrialPoint point;
    point.index = i;
    point.seed = util::derive_seed(options_.seed, i);
    point.txs = options_.base_txs;
    point.assignment = candidates[i];
    points.push_back(std::move(point));
  }
  HLOG_INFO("tune") << "random search: " << points.size() << " trials of "
                    << options_.base_txs << " txs";
  TuneResult result;
  result.rungs = 1;
  result.trials = runner.run_batch(points);
  for (TrialOutcome& trial : result.trials) trial.stage = "random";
  std::size_t best = 0;
  for (std::size_t i = 1; i < result.trials.size(); ++i) {
    if (better(result.trials[i], result.trials[best])) best = i;
  }
  result.trials[best].promoted = true;
  result.best = result.trials[best];
  return result;
}

TuneResult Search::run_halving(TrialRunner& runner, const ParamSpace& space) const {
  TuneResult result;
  std::vector<Assignment> survivors = space.sample(options_.width, options_.seed);
  std::size_t next_index = 0;
  // Indices into result.trials of the previous rung's winners, so the final
  // promotion flags land on the stored outcomes.
  std::vector<std::size_t> last_rung;
  for (std::size_t rung = 0; rung < options_.max_rungs; ++rung) {
    std::size_t txs = rung_budget(options_.base_txs, options_.eta, rung);
    std::vector<TrialPoint> points;
    points.reserve(survivors.size());
    for (const Assignment& assignment : survivors) {
      TrialPoint point;
      point.index = next_index;
      point.seed = util::derive_seed(options_.seed, next_index);
      point.txs = txs;
      point.assignment = assignment;
      points.push_back(std::move(point));
      ++next_index;
    }
    HLOG_INFO("tune") << "halving rung " << rung << ": " << points.size() << " configs x "
                      << txs << " txs";
    std::vector<TrialOutcome> outcomes = runner.run_batch(points);
    std::vector<std::size_t> rung_indices;
    for (TrialOutcome& outcome : outcomes) {
      outcome.stage = "rung" + std::to_string(rung);
      rung_indices.push_back(result.trials.size());
      result.trials.push_back(std::move(outcome));
    }
    ++result.rungs;
    // Rank this rung and promote the top 1/eta into the next one.
    std::sort(rung_indices.begin(), rung_indices.end(), [&](std::size_t a, std::size_t b) {
      return better(result.trials[a], result.trials[b]);
    });
    std::size_t keep = rung_survivors(rung_indices.size(), options_.eta);
    bool final_rung = rung + 1 == options_.max_rungs || keep == rung_indices.size();
    if (final_rung) {
      last_rung = {rung_indices.front()};
      break;
    }
    rung_indices.resize(keep);
    survivors.clear();
    for (std::size_t idx : rung_indices) {
      result.trials[idx].promoted = true;
      survivors.push_back(result.trials[idx].assignment);
    }
    // A single survivor still gets its next-rung run: the winner's reported
    // numbers then come from the largest budget it earned.
    last_rung = rung_indices;
  }
  std::size_t winner = last_rung.front();
  result.trials[winner].promoted = true;
  result.best = result.trials[winner];
  return result;
}

}  // namespace hammer::tune
