// Parameter space for hammer-tune (DESIGN.md §15): the declared knob grid a
// Search explores. Parsed from the "knobs" object of a tune spec:
//
//   "knobs": {
//     "driver.worker_threads":    {"values": [1, 2, 4]},
//     "driver.submit_batch_size": {"range": [1, 64], "steps": 4, "scale": "log"},
//     "driver.routing":           {"values": ["round_robin", "shard"]},
//     "chain.endpoints":          {"values": [1, 2]}
//   }
//
// Every knob is namespaced: "chain.<key>" overrides the deployment's chain
// spec and must name a key core::Deployment itself accepts
// (core::is_known_chain_spec_key); "driver.<key>" overrides DriverOptions
// and must name a key core::driver_options_from_json accepts. A knob the
// deployment would reject fails ParamSpace::from_json by name — the tuner
// cannot search a space the deployment cannot execute.
//
// An axis is either an explicit discrete set ("values", kept in declared
// order) or an integer range ("range": [lo, hi] inclusive, "steps" points,
// "scale" "linear" or "log"), materialized to a discrete set at parse time
// so the whole space is a finite grid with a well-defined flat indexing.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace hammer::tune {

// One candidate deployment plan: knob name -> chosen value.
using Assignment = std::map<std::string, json::Value>;

// Canonical one-line rendering ("a=1 b=shard"), used for deterministic
// tie-breaks, dedup and the trials CSV.
std::string assignment_key(const Assignment& assignment);

struct ParamAxis {
  std::string name;                 // "chain.<key>" or "driver.<key>"
  std::vector<json::Value> values;  // candidate values, declared order
};

class ParamSpace {
 public:
  // Parses the "knobs" object; throws ParseError for unknown knob names,
  // empty axes, or malformed range specs.
  static ParamSpace from_json(const json::Value& knobs);

  const std::vector<ParamAxis>& axes() const { return axes_; }

  // Grid cardinality: the product of axis widths.
  std::size_t size() const;

  // Mixed-radix decode of a flat grid index (row-major over axes()).
  Assignment at(std::size_t flat_index) const;

  // The first min(n, size()) assignments of a seeded Fisher-Yates shuffle
  // of the whole grid — distinct by construction, reproducible per seed.
  std::vector<Assignment> sample(std::size_t n, std::uint64_t seed) const;

 private:
  std::vector<ParamAxis> axes_;
};

// Splits a "chain."/"driver." knob name; throws ParseError when the prefix
// or the suffix key is not one the respective layer accepts.
enum class KnobLayer { kChain, kDriver };
KnobLayer knob_layer(const std::string& name, std::string* key_out = nullptr);

}  // namespace hammer::tune
