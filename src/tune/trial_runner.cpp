#include "tune/trial_runner.hpp"

#include <algorithm>
#include <mutex>
#include <thread>

#include "chain/factory.hpp"
#include "core/coordinator.hpp"
#include "core/deployment.hpp"
#include "core/driver.hpp"
#include "util/errors.hpp"
#include "util/logging.hpp"
#include "workload/workload_file.hpp"

namespace hammer::tune {

std::vector<TrialOutcome> TrialRunner::run_batch(const std::vector<TrialPoint>& points) {
  std::vector<TrialOutcome> out;
  out.reserve(points.size());
  for (const TrialPoint& point : points) out.push_back(run_trial(point));
  return out;
}

json::Value TrialOutcome::to_json() const {
  json::Object o;
  o["trial"] = static_cast<std::int64_t>(index);
  o["seed"] = static_cast<std::int64_t>(seed);
  o["txs"] = static_cast<std::int64_t>(txs);
  o["stage"] = stage;
  o["plan"] = assignment_key(assignment);
  o["committed"] = static_cast<std::int64_t>(committed);
  o["failed"] = static_cast<std::int64_t>(failed);
  o["tps"] = tps;
  o["p50_ms"] = p50_ms;
  o["p99_ms"] = p99_ms;
  o["feasible"] = feasible;
  o["promoted"] = promoted;
  return json::Value(std::move(o));
}

json::Value plan_json(const json::Value& base_chain, const Assignment& assignment) {
  json::Value spec = base_chain;
  json::Object& obj = spec.as_object();
  if (!obj.count("name")) obj["name"] = "tune-sut";
  json::Object driver;
  for (const auto& [name, value] : assignment) {
    std::string key;
    if (knob_layer(name, &key) == KnobLayer::kChain) {
      obj[key] = value;
    } else {
      driver[key] = value;
    }
  }
  json::Object plan;
  plan["chains"] = json::Value(json::Array{std::move(spec)});
  plan["driver"] = json::Value(std::move(driver));
  return json::Value(std::move(plan));
}

TrialOutcome outcome_from_run(const TrialPoint& point, double slo_p99_ms,
                              std::uint64_t committed, std::uint64_t failed, double tps,
                              std::int64_t p50_us, std::int64_t p99_us) {
  TrialOutcome outcome;
  outcome.index = point.index;
  outcome.seed = point.seed;
  outcome.txs = point.txs;
  outcome.assignment = point.assignment;
  outcome.committed = committed;
  outcome.failed = failed;
  outcome.tps = tps;
  outcome.p50_ms = static_cast<double>(p50_us) / 1000.0;
  outcome.p99_ms = static_cast<double>(p99_us) / 1000.0;
  outcome.feasible = committed > 0 && outcome.p99_ms <= slo_p99_ms;
  return outcome;
}

// ------------------------------------------------------------------ local

LocalTrialRunner::LocalTrialRunner(TrialConfig config) : config_(std::move(config)) {
  HAMMER_CHECK_MSG(!config_.base_chain.is_null(), "TrialConfig needs a base chain spec");
}

TrialOutcome LocalTrialRunner::run_trial(const TrialPoint& point) {
  // The candidate plan: base spec + chain overrides, driver overrides
  // through the same parser (and unknown-key rejection) the control plane
  // uses for control.deploy.
  json::Value plan = plan_json(config_.base_chain, point.assignment);
  const json::Value& spec = plan.at("chains").as_array()[0];
  std::size_t channels_per_target = 2;
  core::DriverOptions options =
      core::driver_options_from_json(plan.at("driver"), &channels_per_target);
  options.server_id = "tune-" + std::to_string(point.index);
  options.load_seed = point.seed;

  core::Deployment deployment =
      core::Deployment::deploy(plan, util::SteadyClock::shared());
  core::DeployedChain& sut = deployment.at(spec.at("name").as_string());
  HAMMER_CHECK_MSG(!sut.smallbank_accounts.empty(),
                   "tune base chain needs smallbank_accounts_per_shard > 0");

  workload::WorkloadProfile profile = config_.profile;
  profile.seed = point.seed;
  profile.client_id = "tune-" + std::to_string(point.index);
  if (profile.contract == "kv") {
    chain::genesis_kv_keys(*sut.chain, sut.smallbank_accounts);
  }
  workload::WorkloadFile wf =
      workload::generate_workload(profile, sut.smallbank_accounts, point.txs);

  const std::size_t endpoints = sut.endpoint_count();
  core::RunResult result;
  if (endpoints > 1) {
    std::size_t per_target = std::max<std::size_t>(1, options.worker_threads / endpoints);
    core::HammerDriver driver(sut.make_cluster(per_target, channels_per_target),
                              util::SteadyClock::shared(), options);
    result = driver.run(wf, nullptr);
  } else {
    core::HammerDriver driver(sut.make_adapters(options.worker_threads),
                              sut.make_adapters(1)[0], util::SteadyClock::shared(), options);
    result = driver.run(wf, nullptr);
  }
  return outcome_from_run(point, config_.slo_p99_ms, result.committed, result.failed,
                          result.tps, result.latency.percentile(50),
                          result.latency.percentile(99));
}

// ------------------------------------------------------------------ fleet

FleetTrialRunner::FleetTrialRunner(TrialConfig config, const std::string& worker_binary,
                                   std::size_t workers)
    : config_(std::move(config)) {
  HAMMER_CHECK_MSG(workers >= 1, "FleetTrialRunner needs >= 1 worker");
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.push_back(core::WorkerProcess::spawn(worker_binary, {"--worker"}));
  }
}

FleetTrialRunner::~FleetTrialRunner() {
  // One stop per worker; Coordinator::stop tolerates losing the shutdown
  // race, and wait() reaps the processes.
  for (core::WorkerProcess& process : workers_) {
    try {
      core::Coordinator coordinator({{"127.0.0.1", process.port()}});
      coordinator.stop();
    } catch (const std::exception&) {
      process.terminate();
    }
    process.wait();
  }
}

TrialOutcome FleetTrialRunner::run_on_worker(const TrialPoint& point, std::size_t worker) {
  // The trial's own SUT, deployed locally over TCP so the worker process
  // can dial it. chain.* knobs apply here; driver.* knobs ride the
  // control.deploy plan (same unknown-key rejection, worker side).
  json::Value plan = plan_json(config_.base_chain, point.assignment);
  json::Value& spec = plan["chains"].as_array()[0];
  spec.as_object()["transport"] = "tcp";
  core::Deployment deployment =
      core::Deployment::deploy(plan, util::SteadyClock::shared());
  core::DeployedChain& sut = deployment.at(spec.at("name").as_string());
  HAMMER_CHECK_MSG(!sut.smallbank_accounts.empty(),
                   "tune base chain needs smallbank_accounts_per_shard > 0");

  workload::WorkloadProfile profile = config_.profile;
  profile.seed = point.seed;
  profile.client_id = "tune-" + std::to_string(point.index);
  // A 1-worker fleet shard is the identity: same accounts, same seed, same
  // transaction stream a LocalTrialRunner would generate for this point.
  core::FleetPlan fleet_plan;
  for (std::uint16_t port : sut.tcp_ports()) {
    fleet_plan.sut_endpoints.emplace_back("127.0.0.1", port);
  }
  fleet_plan.accounts = sut.smallbank_accounts;
  fleet_plan.workload = profile.to_json();
  fleet_plan.total_txs = point.txs;
  json::Value driver = plan.at("driver");
  driver.as_object()["load_seed"] = static_cast<std::int64_t>(point.seed);
  fleet_plan.driver = driver;

  core::Coordinator coordinator({{"127.0.0.1", workers_[worker].port()}});
  core::FleetResult fleet_result = coordinator.run(fleet_plan);
  const core::RunResult& result = fleet_result.merged;
  return outcome_from_run(point, config_.slo_p99_ms, result.committed, result.failed,
                          result.tps, result.latency.percentile(50),
                          result.latency.percentile(99));
}

TrialOutcome FleetTrialRunner::run_trial(const TrialPoint& point) {
  return run_on_worker(point, 0);
}

std::vector<TrialOutcome> FleetTrialRunner::run_batch(const std::vector<TrialPoint>& points) {
  std::vector<TrialOutcome> out(points.size());
  std::vector<std::string> errors;
  std::mutex mu;
  // Waves of <= fleet-size trials; within a wave, trial j runs on worker j.
  for (std::size_t base = 0; base < points.size(); base += workers_.size()) {
    std::size_t wave = std::min(workers_.size(), points.size() - base);
    std::vector<std::thread> threads;
    threads.reserve(wave);
    for (std::size_t j = 0; j < wave; ++j) {
      threads.emplace_back([&, j] {
        try {
          out[base + j] = run_on_worker(points[base + j], j);
        } catch (const std::exception& e) {
          std::lock_guard<std::mutex> lock(mu);
          errors.push_back(e.what());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    if (!errors.empty()) {
      throw TransportError("fleet trial failed: " + errors.front());
    }
  }
  return out;
}

}  // namespace hammer::tune
