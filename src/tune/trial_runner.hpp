// Trial evaluation for hammer-tune (DESIGN.md §15). One trial = one short
// seeded in-process run of the bench/driver harness against a freshly
// deployed SUT, under one candidate Assignment:
//
//   - "chain.<key>" knobs override the base chain spec before deploy,
//   - "driver.<key>" knobs override DriverOptions (via the same
//     driver_options_from_json parser the control plane uses),
//   - trial k drives workload seed util::derive_seed(master, k), so the
//     whole search replays exactly at a fixed master seed.
//
// Objective: achieved TPS subject to the latency SLO. An infeasible trial
// (p99 above the SLO, or nothing committed) scores strictly below every
// feasible one — see TrialOutcome::score().
//
// Two runners share the interface:
//   LocalTrialRunner — deploys and drives in-process, trials sequential.
//   FleetTrialRunner — fans a batch of trials across core::Coordinator
//     worker processes, one trial per worker: each trial gets its own
//     locally deployed TCP SUT and a single-worker fleet (control.deploy /
//     start / report over the existing control plane), so N workers
//     evaluate N plans concurrently.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/worker_process.hpp"
#include "json/json.hpp"
#include "tune/param_space.hpp"
#include "workload/profile.hpp"

namespace hammer::tune {

// One scheduled trial: the Search fixes index/seed/txs so every runner —
// local or fleet — evaluates an identical, reproducible plan.
struct TrialPoint {
  std::size_t index = 0;      // global trial ordinal within the search
  std::uint64_t seed = 0;     // util::derive_seed(master_seed, index)
  std::size_t txs = 0;        // workload size (the trial's budget)
  Assignment assignment;
};

struct TrialOutcome {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  std::size_t txs = 0;
  std::string stage;          // search phase label ("rung0", "random", ...)
  Assignment assignment;
  std::uint64_t committed = 0;
  std::uint64_t failed = 0;
  double tps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool feasible = false;      // committed > 0 and p99_ms <= SLO
  bool promoted = false;      // search decision: survived its rung / won

  // Ranking objective: feasible trials by TPS (higher better); infeasible
  // trials by how badly they miss (lower p99 less bad), always below every
  // feasible trial.
  double score() const { return feasible ? tps : -p99_ms - 1.0; }

  json::Value to_json() const;
};

// The fixed (untuned) half of every trial.
struct TrialConfig {
  // Chain spec WITHOUT the tuned keys; "kind" required, "name" defaulted to
  // "tune-sut". Needs smallbank_accounts_per_shard > 0 — trials generate
  // their workloads over the deployed account population.
  json::Value base_chain;
  // Workload shape (contract, distribution, mix); profile.seed is replaced
  // by the per-trial derived seed.
  workload::WorkloadProfile profile;
  double slo_p99_ms = 1e9;
};

class TrialRunner {
 public:
  virtual ~TrialRunner() = default;

  virtual TrialOutcome run_trial(const TrialPoint& point) = 0;

  // Default: sequential run_trial calls, outcome order == points order.
  // Fleet runners override to overlap trials; the order contract holds.
  virtual std::vector<TrialOutcome> run_batch(const std::vector<TrialPoint>& points);
};

class LocalTrialRunner final : public TrialRunner {
 public:
  explicit LocalTrialRunner(TrialConfig config);

  const TrialConfig& config() const { return config_; }

  TrialOutcome run_trial(const TrialPoint& point) override;

 private:
  TrialConfig config_;
};

// Fans trials across worker processes. The runner OWNS the workers (spawned
// from `worker_binary --worker`, the hammer_worker handshake) and reuses
// them across batches — a done worker is re-deployable, so a whole search
// runs on one fleet.
class FleetTrialRunner final : public TrialRunner {
 public:
  FleetTrialRunner(TrialConfig config, const std::string& worker_binary,
                   std::size_t workers);
  ~FleetTrialRunner() override;

  TrialOutcome run_trial(const TrialPoint& point) override;
  std::vector<TrialOutcome> run_batch(const std::vector<TrialPoint>& points) override;

 private:
  TrialOutcome run_on_worker(const TrialPoint& point, std::size_t worker);

  TrialConfig config_;
  std::vector<core::WorkerProcess> workers_;
};

// Shared by both runners and TuneResult: the deployment-plan JSON a winning
// assignment denotes — base chain spec with "chain." overrides applied
// (name defaulted), plus a "driver" object of the "driver." overrides.
json::Value plan_json(const json::Value& base_chain, const Assignment& assignment);

// Builds outcome metrics (tps/p50/p99/feasible) from a finished run.
TrialOutcome outcome_from_run(const TrialPoint& point, double slo_p99_ms,
                              std::uint64_t committed, std::uint64_t failed, double tps,
                              std::int64_t p50_us, std::int64_t p99_us);

}  // namespace hammer::tune
