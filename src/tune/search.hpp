// Search strategies for hammer-tune (DESIGN.md §15): given a ParamSpace and
// a TrialRunner, find the deployment plan maximizing TPS under the latency
// SLO. Two strategies:
//
//   kRandom  — `width` seeded samples from the grid, each run once at
//              base_txs. The simple baseline; optimal in expectation for a
//              fixed trial budget when nothing is known about the surface.
//   kHalving — successive halving: rung r runs its surviving configs at
//              budget base_txs * eta^r, keeps the top 1/eta (at least one),
//              and stops when one survivor remains or max_rungs rungs ran.
//              Spends most measurement time on the most promising plans, so
//              a wide grid fits a small wall-clock budget.
//
// Determinism: trial k — in either strategy — runs at workload seed
// util::derive_seed(options.seed, k), and the candidate order is fixed by
// the seeded grid sample plus a total tie-break (score desc, then
// assignment_key asc). Two searches at one master seed schedule identical
// trials, so the canonical trials projection replays byte-identically.
#pragma once

#include <string>
#include <vector>

#include "tune/trial_runner.hpp"

namespace hammer::tune {

enum class Strategy { kRandom, kHalving };

// "random" | "halving"; throws ParseError otherwise.
Strategy strategy_from_string(const std::string& s);
std::string strategy_name(Strategy s);

struct SearchOptions {
  Strategy strategy = Strategy::kHalving;
  std::size_t width = 8;       // configs sampled from the grid
  double eta = 2.0;            // halving rate (keep 1/eta per rung)
  std::size_t max_rungs = 3;   // halving rung cap
  std::uint64_t seed = 1;      // master seed; trial k runs derive_seed(seed, k)
  std::size_t base_txs = 400;  // rung-0 / random-trial workload size

  // Parses the "tune" sub-object (minus "knobs", which ParamSpace owns):
  // strategy, width, eta, max_rungs, seed, base_txs, slo_p99_ms. Unknown
  // keys are rejected by name, like chain specs and driver options.
  // slo_p99_ms is returned through `slo_out` because it configures the
  // TrialRunner, not the search.
  static SearchOptions from_json(const json::Value& v, double* slo_out = nullptr);
};

struct TuneResult {
  std::vector<TrialOutcome> trials;  // execution order == trial index order
  TrialOutcome best;                 // highest score, promoted=true
  std::size_t feasible = 0;          // trials meeting the SLO
  std::size_t rungs = 0;             // halving rungs run (1 for random)
};

class Search {
 public:
  explicit Search(SearchOptions options);

  const SearchOptions& options() const { return options_; }

  // Runs the configured strategy over `space` through `runner`. Whole rungs
  // go through TrialRunner::run_batch, so a FleetTrialRunner overlaps the
  // rung's trials across its workers.
  TuneResult run(TrialRunner& runner, const ParamSpace& space) const;

 private:
  TuneResult run_random(TrialRunner& runner, const ParamSpace& space) const;
  TuneResult run_halving(TrialRunner& runner, const ParamSpace& space) const;

  SearchOptions options_;
};

// Per-rung budget: base_txs * eta^rung (llround, never below base_txs).
std::size_t rung_budget(std::size_t base_txs, double eta, std::size_t rung);

// Survivor count after halving a rung of n configs: max(1, floor(n / eta)).
std::size_t rung_survivors(std::size_t n, double eta);

}  // namespace hammer::tune
