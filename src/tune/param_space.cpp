#include "tune/param_space.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/deployment.hpp"
#include "core/driver.hpp"
#include "util/errors.hpp"
#include "util/random.hpp"

namespace hammer::tune {

namespace {

std::string value_key(const json::Value& v) {
  // Scalars only; dump() is canonical for ints/strings/bools.
  return v.dump();
}

std::vector<json::Value> materialize_range(const std::string& name, const json::Value& spec) {
  const json::Value& range = spec.at("range");
  if (range.as_array().size() != 2) {
    throw ParseError("knob '" + name + "': \"range\" must be [lo, hi]");
  }
  std::int64_t lo = range.as_array()[0].as_int();
  std::int64_t hi = range.as_array()[1].as_int();
  if (lo > hi) throw ParseError("knob '" + name + "': range lo > hi");
  auto steps = static_cast<std::size_t>(spec.get_int("steps", 2));
  if (steps < 2) throw ParseError("knob '" + name + "': range needs steps >= 2");
  std::string scale = spec.get_string("scale", "linear");
  if (scale != "linear" && scale != "log") {
    throw ParseError("knob '" + name + "': scale must be \"linear\" or \"log\"");
  }
  if (scale == "log" && lo <= 0) {
    throw ParseError("knob '" + name + "': log scale needs lo > 0");
  }
  std::vector<json::Value> out;
  for (std::size_t i = 0; i < steps; ++i) {
    double t = static_cast<double>(i) / static_cast<double>(steps - 1);
    double x = scale == "log"
                   ? std::exp(std::log(static_cast<double>(lo)) +
                              t * (std::log(static_cast<double>(hi)) -
                                   std::log(static_cast<double>(lo))))
                   : static_cast<double>(lo) + t * static_cast<double>(hi - lo);
    auto v = static_cast<std::int64_t>(std::llround(x));
    v = std::clamp(v, lo, hi);
    // Endpoint rounding can collide neighbouring steps; keep the grid a set.
    if (out.empty() || out.back().as_int() != v) out.push_back(json::Value(v));
  }
  return out;
}

}  // namespace

std::string assignment_key(const Assignment& assignment) {
  std::string out;
  for (const auto& [name, value] : assignment) {
    if (!out.empty()) out += ' ';
    out += name + '=' + value.dump();
  }
  return out;
}

KnobLayer knob_layer(const std::string& name, std::string* key_out) {
  const std::string chain_prefix = "chain.";
  const std::string driver_prefix = "driver.";
  if (name.rfind(chain_prefix, 0) == 0) {
    std::string key = name.substr(chain_prefix.size());
    if (!core::is_known_chain_spec_key(key)) {
      throw ParseError("tune knob '" + name + "' names a chain spec key the deployment rejects");
    }
    if (key == "kind" || key == "name" || key == "faults") {
      throw ParseError("tune knob '" + name + "' is structural, not tunable");
    }
    if (key_out != nullptr) *key_out = std::move(key);
    return KnobLayer::kChain;
  }
  if (name.rfind(driver_prefix, 0) == 0) {
    std::string key = name.substr(driver_prefix.size());
    if (!core::is_known_driver_option_key(key)) {
      throw ParseError("tune knob '" + name + "' names a driver option the driver rejects");
    }
    if (key_out != nullptr) *key_out = std::move(key);
    return KnobLayer::kDriver;
  }
  throw ParseError("tune knob '" + name + "' must be namespaced chain.<key> or driver.<key>");
}

ParamSpace ParamSpace::from_json(const json::Value& knobs) {
  ParamSpace space;
  for (const auto& [name, spec] : knobs.as_object()) {
    knob_layer(name);  // validation only; throws by name
    ParamAxis axis;
    axis.name = name;
    if (spec.contains("values")) {
      for (const json::Value& v : spec.at("values").as_array()) axis.values.push_back(v);
    } else if (spec.contains("range")) {
      axis.values = materialize_range(name, spec);
    } else {
      throw ParseError("tune knob '" + name + "' needs \"values\" or \"range\"");
    }
    if (axis.values.empty()) throw ParseError("tune knob '" + name + "' has no values");
    // Duplicate candidates would double-weight a point under random search.
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      for (std::size_t j = i + 1; j < axis.values.size(); ++j) {
        if (value_key(axis.values[i]) == value_key(axis.values[j])) {
          throw ParseError("tune knob '" + name + "' lists duplicate value " +
                           axis.values[i].dump());
        }
      }
    }
    space.axes_.push_back(std::move(axis));
  }
  if (space.axes_.empty()) throw ParseError("tune spec declares no knobs");
  return space;
}

std::size_t ParamSpace::size() const {
  std::size_t n = 1;
  for (const ParamAxis& axis : axes_) n *= axis.values.size();
  return n;
}

Assignment ParamSpace::at(std::size_t flat_index) const {
  HAMMER_CHECK_MSG(flat_index < size(), "ParamSpace index out of range");
  Assignment out;
  // Row-major: the LAST axis varies fastest.
  std::size_t rest = flat_index;
  for (auto it = axes_.rbegin(); it != axes_.rend(); ++it) {
    out[it->name] = it->values[rest % it->values.size()];
    rest /= it->values.size();
  }
  return out;
}

std::vector<Assignment> ParamSpace::sample(std::size_t n, std::uint64_t seed) const {
  const std::size_t total = size();
  n = std::min(n, total);
  util::Pcg32 rng(seed);
  std::vector<Assignment> out;
  out.reserve(n);
  if (total <= 4096) {
    // Small grid: partial Fisher-Yates over all flat indices.
    std::vector<std::size_t> indices(total);
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t j = i + static_cast<std::size_t>(rng.uniform(0, total - 1 - i));
      std::swap(indices[i], indices[j]);
      out.push_back(at(indices[i]));
    }
    return out;
  }
  // Large grid: rejection-sample distinct flat indices (collision odds are
  // negligible at n << total; the attempt cap keeps this total-proof).
  std::vector<std::size_t> seen;
  std::size_t attempts = 0;
  while (out.size() < n && attempts < 64 * n) {
    ++attempts;
    auto flat = static_cast<std::size_t>(rng.uniform(0, total - 1));
    if (std::find(seen.begin(), seen.end(), flat) != seen.end()) continue;
    seen.push_back(flat);
    out.push_back(at(flat));
  }
  return out;
}

}  // namespace hammer::tune
