// Deterministic fault injection (DESIGN.md §8).
//
// A FaultPlan names the failure modes the run should exhibit — connection
// resets and latency spikes on the client channel, dropped/stalled
// responses on the server dispatcher, transient rejections / endorsement
// failures / block-production stalls inside the SUT — each with a
// probability and (where applicable) a magnitude, plus one seed.
//
// A FaultInjector turns the plan into decisions. Every FaultKind draws
// from its own seeded PCG stream behind its own lock, so the i-th decision
// of a kind is a pure function of (seed, kind, i) regardless of thread
// interleaving: a run whose per-site draw ORDER is deterministic (e.g. one
// worker channel, SUT submit path) replays the exact same fault trace from
// the same seed. Sites whose draw count depends on wall-clock timing
// (server request stream, block producer ticks) are still seeded but their
// traces are only reproducible when the request/tick sequence is.
//
// The injector is passive: installees (TcpChannel, TcpServer, Blockchain)
// ask `should(kind)` at their injection points and apply the effect
// themselves. Kinds with probability 0 never draw, so disabled sites cost
// one branch and consume no randomness.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "json/json.hpp"
#include "util/random.hpp"

namespace hammer::telemetry {
class Counter;
}

namespace hammer::fault {

enum class FaultKind : std::size_t {
  kConnReset = 0,   // client: shut the socket down before a send
  kClientLatency,   // client: sleep before a send (network latency spike)
  kDropResponse,    // server: execute the request, never answer it
  kSlowLoris,       // server: stall the response write
  kSubmitReject,    // SUT: transient chain.submit rejection
  kEndorseFail,     // SUT: Fabric endorsement failure on submit
  kBlockStall,      // SUT: block producer sleeps one extra stall interval
  kSchedDelay,      // SUT: scheduler-delay injection on the submit path
  kCount
};

inline constexpr std::size_t kFaultKindCount = static_cast<std::size_t>(FaultKind::kCount);

// Stable snake_case names, used for telemetry labels and counts_json keys.
const char* to_string(FaultKind kind);

struct FaultPlan {
  std::uint64_t seed = 1;

  double conn_reset_p = 0.0;
  double client_latency_p = 0.0;
  std::int64_t client_latency_us = 20000;
  double drop_response_p = 0.0;
  double slow_loris_p = 0.0;
  std::int64_t slow_loris_us = 20000;
  double submit_reject_p = 0.0;
  double endorse_fail_p = 0.0;
  double block_stall_p = 0.0;
  std::int64_t block_stall_ms = 200;
  double sched_delay_p = 0.0;
  std::int64_t sched_delay_us = 2000;

  // Resource faults (ROADMAP item 3): continuous background contention
  // rather than per-draw decisions, driven by the same seed. Run by
  // fault::ResourceFaults (CPU burn, memory ballast) and
  // fault::IngressThrottle (per-target admission throttling on TcpServer);
  // correlate the effect with the ResourceMonitor stream in RunReport.
  std::uint32_t cpu_burn_threads = 0;   // 0 = off
  double cpu_burn_duty = 1.0;           // fraction of each period spent spinning
  std::uint64_t mem_ballast_mb = 0;     // touched resident allocation, 0 = off
  double ingress_rps = 0.0;             // per-endpoint admission rate, 0 = off
  double ingress_burst = 64.0;

  bool enabled() const;  // any probability > 0
  // Any continuous contention configured (CPU burn, ballast, throttle).
  bool has_resource_faults() const;
  double probability(FaultKind kind) const;

  static FaultPlan from_json(const json::Value& v);
  json::Value to_json() const;

  // The per-worker flavour of this plan for a distributed fleet: identical
  // probabilities/magnitudes, seed replaced by
  // util::derive_seed(seed, worker_index) — so N workers sharing one master
  // plan draw from N decorrelated streams, yet every worker's trace is a
  // pure function of (master seed, worker index).
  FaultPlan derived_for_worker(std::uint64_t worker_index) const;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }

  // Draws the next decision for `kind`; true means inject. Counts both the
  // draw and (when it fires) the injection, and bumps the process-global
  // hammer_fault_injected_total{kind=...} counter.
  bool should(FaultKind kind);

  std::uint64_t drawn(FaultKind kind) const;
  std::uint64_t injected(FaultKind kind) const;
  std::uint64_t total_injected() const;

  // {"conn_reset": n, ..., "total": m} — every kind, zeros included, so two
  // traces can be compared with one dump() equality check.
  json::Value counts_json() const;

 private:
  struct Site {
    std::mutex mu;              // serializes rng draws for this kind
    util::Pcg32 rng;            // stream derived from (plan.seed, kind)
    double p = 0.0;
    std::atomic<std::uint64_t> drawn{0};
    std::atomic<std::uint64_t> injected{0};
    telemetry::Counter* counter = nullptr;
  };

  FaultPlan plan_;
  std::array<Site, kFaultKindCount> sites_;
};

}  // namespace hammer::fault
