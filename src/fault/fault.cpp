#include "fault/fault.hpp"

#include "telemetry/registry.hpp"
#include "util/errors.hpp"

namespace hammer::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kConnReset: return "conn_reset";
    case FaultKind::kClientLatency: return "client_latency";
    case FaultKind::kDropResponse: return "drop_response";
    case FaultKind::kSlowLoris: return "slow_loris";
    case FaultKind::kSubmitReject: return "submit_reject";
    case FaultKind::kEndorseFail: return "endorse_fail";
    case FaultKind::kBlockStall: return "block_stall";
    case FaultKind::kSchedDelay: return "sched_delay";
    case FaultKind::kCount: break;
  }
  return "unknown";
}

bool FaultPlan::enabled() const {
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    if (probability(static_cast<FaultKind>(k)) > 0.0) return true;
  }
  return false;
}

double FaultPlan::probability(FaultKind kind) const {
  switch (kind) {
    case FaultKind::kConnReset: return conn_reset_p;
    case FaultKind::kClientLatency: return client_latency_p;
    case FaultKind::kDropResponse: return drop_response_p;
    case FaultKind::kSlowLoris: return slow_loris_p;
    case FaultKind::kSubmitReject: return submit_reject_p;
    case FaultKind::kEndorseFail: return endorse_fail_p;
    case FaultKind::kBlockStall: return block_stall_p;
    case FaultKind::kSchedDelay: return sched_delay_p;
    case FaultKind::kCount: break;
  }
  return 0.0;
}

bool FaultPlan::has_resource_faults() const {
  return cpu_burn_threads > 0 || mem_ballast_mb > 0 || ingress_rps > 0.0;
}

FaultPlan FaultPlan::from_json(const json::Value& v) {
  FaultPlan p;
  p.seed = static_cast<std::uint64_t>(v.get_int("seed", static_cast<std::int64_t>(p.seed)));
  p.conn_reset_p = v.get_double("conn_reset_p", p.conn_reset_p);
  p.client_latency_p = v.get_double("client_latency_p", p.client_latency_p);
  p.client_latency_us = v.get_int("client_latency_us", p.client_latency_us);
  p.drop_response_p = v.get_double("drop_response_p", p.drop_response_p);
  p.slow_loris_p = v.get_double("slow_loris_p", p.slow_loris_p);
  p.slow_loris_us = v.get_int("slow_loris_us", p.slow_loris_us);
  p.submit_reject_p = v.get_double("submit_reject_p", p.submit_reject_p);
  p.endorse_fail_p = v.get_double("endorse_fail_p", p.endorse_fail_p);
  p.block_stall_p = v.get_double("block_stall_p", p.block_stall_p);
  p.block_stall_ms = v.get_int("block_stall_ms", p.block_stall_ms);
  p.sched_delay_p = v.get_double("sched_delay_p", p.sched_delay_p);
  p.sched_delay_us = v.get_int("sched_delay_us", p.sched_delay_us);
  p.cpu_burn_threads =
      static_cast<std::uint32_t>(v.get_int("cpu_burn_threads", p.cpu_burn_threads));
  p.cpu_burn_duty = v.get_double("cpu_burn_duty", p.cpu_burn_duty);
  p.mem_ballast_mb = static_cast<std::uint64_t>(
      v.get_int("mem_ballast_mb", static_cast<std::int64_t>(p.mem_ballast_mb)));
  p.ingress_rps = v.get_double("ingress_rps", p.ingress_rps);
  p.ingress_burst = v.get_double("ingress_burst", p.ingress_burst);
  if (p.cpu_burn_duty < 0.0 || p.cpu_burn_duty > 1.0) {
    throw ParseError("cpu_burn_duty out of [0,1]");
  }
  if (p.ingress_rps < 0.0) throw ParseError("ingress_rps must be >= 0");
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    double prob = p.probability(static_cast<FaultKind>(k));
    if (prob < 0.0 || prob > 1.0) {
      throw ParseError(std::string("fault probability out of [0,1] for ") +
                       to_string(static_cast<FaultKind>(k)));
    }
  }
  return p;
}

json::Value FaultPlan::to_json() const {
  json::Object obj;
  obj["seed"] = seed;
  obj["conn_reset_p"] = conn_reset_p;
  obj["client_latency_p"] = client_latency_p;
  obj["client_latency_us"] = client_latency_us;
  obj["drop_response_p"] = drop_response_p;
  obj["slow_loris_p"] = slow_loris_p;
  obj["slow_loris_us"] = slow_loris_us;
  obj["submit_reject_p"] = submit_reject_p;
  obj["endorse_fail_p"] = endorse_fail_p;
  obj["block_stall_p"] = block_stall_p;
  obj["block_stall_ms"] = block_stall_ms;
  obj["sched_delay_p"] = sched_delay_p;
  obj["sched_delay_us"] = sched_delay_us;
  obj["cpu_burn_threads"] = static_cast<std::int64_t>(cpu_burn_threads);
  obj["cpu_burn_duty"] = cpu_burn_duty;
  obj["mem_ballast_mb"] = static_cast<std::int64_t>(mem_ballast_mb);
  obj["ingress_rps"] = ingress_rps;
  obj["ingress_burst"] = ingress_burst;
  return json::Value(std::move(obj));
}

FaultPlan FaultPlan::derived_for_worker(std::uint64_t worker_index) const {
  FaultPlan derived = *this;
  derived.seed = util::derive_seed(seed, worker_index);
  return derived;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan) {
  telemetry::MetricRegistry& reg = telemetry::MetricRegistry::global();
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    auto kind = static_cast<FaultKind>(k);
    // Distinct stream per kind so one site's draw count never perturbs
    // another's sequence.
    sites_[k].rng = util::Pcg32(plan_.seed, 0x9e3779b97f4a7c15ULL + k);
    sites_[k].p = plan_.probability(kind);
    sites_[k].counter = &reg.counter("hammer_fault_injected_total", "Faults injected by kind",
                                     "kind=\"" + std::string(to_string(kind)) + "\"");
  }
}

bool FaultInjector::should(FaultKind kind) {
  Site& site = sites_[static_cast<std::size_t>(kind)];
  if (site.p <= 0.0) return false;  // disabled kinds consume no randomness
  bool fire;
  {
    std::scoped_lock lock(site.mu);
    fire = site.rng.chance(site.p);
  }
  site.drawn.fetch_add(1, std::memory_order_relaxed);
  if (fire) {
    site.injected.fetch_add(1, std::memory_order_relaxed);
    site.counter->add(1);
  }
  return fire;
}

std::uint64_t FaultInjector::drawn(FaultKind kind) const {
  return sites_[static_cast<std::size_t>(kind)].drawn.load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected(FaultKind kind) const {
  return sites_[static_cast<std::size_t>(kind)].injected.load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    total += sites_[k].injected.load(std::memory_order_relaxed);
  }
  return total;
}

json::Value FaultInjector::counts_json() const {
  json::Object obj;
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    auto kind = static_cast<FaultKind>(k);
    obj[to_string(kind)] = injected(kind);
  }
  obj["total"] = total_injected();
  return json::Value(std::move(obj));
}

}  // namespace hammer::fault
