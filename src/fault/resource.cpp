#include "fault/resource.hpp"

#include <algorithm>
#include <chrono>

#include "telemetry/registry.hpp"

namespace hammer::fault {

namespace {
// Duty-cycle period: long enough that the scheduler actually grants the
// spin its slice, short enough that contention looks continuous to the
// ResourceMonitor's sampling interval.
constexpr auto kBurnPeriod = std::chrono::milliseconds(10);
constexpr auto kThrottleSleepSlice = std::chrono::milliseconds(10);
constexpr std::size_t kPageSize = 4096;
}  // namespace

ResourceFaults::ResourceFaults(const FaultPlan& plan) {
  if (plan.mem_ballast_mb > 0) {
    ballast_.resize(plan.mem_ballast_mb * 1024 * 1024);
    // Touch every page so the allocation is resident, not just reserved —
    // otherwise the ballast never shows up as memory pressure.
    for (std::size_t i = 0; i < ballast_.size(); i += kPageSize) {
      ballast_[i] = static_cast<char>(i);
    }
  }
  const double duty = std::clamp(plan.cpu_burn_duty, 0.0, 1.0);
  if (plan.cpu_burn_threads > 0 && duty > 0.0) {
    burners_.reserve(plan.cpu_burn_threads);
    for (std::uint32_t i = 0; i < plan.cpu_burn_threads; ++i) {
      burners_.emplace_back([this, duty] { burn_loop(duty); });
    }
  }
}

ResourceFaults::~ResourceFaults() { stop(); }

void ResourceFaults::stop() {
  stop_.store(true, std::memory_order_relaxed);
  for (auto& t : burners_) {
    if (t.joinable()) t.join();
  }
  burners_.clear();
  ballast_.clear();
  ballast_.shrink_to_fit();
}

void ResourceFaults::burn_loop(double duty) {
  // Spin for duty × period, then sleep the remainder. volatile sink keeps
  // the loop from being optimized away.
  volatile std::uint64_t sink = 0;
  const auto period = std::chrono::duration_cast<std::chrono::steady_clock::duration>(kBurnPeriod);
  const auto spin_span = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(std::chrono::duration<double>(kBurnPeriod).count() * duty));
  while (!stop_.load(std::memory_order_relaxed)) {
    const auto start = std::chrono::steady_clock::now();
    const auto spin_until = start + spin_span;
    while (std::chrono::steady_clock::now() < spin_until) {
      for (int i = 0; i < 1024; ++i) sink = sink + 1;
      if (stop_.load(std::memory_order_relaxed)) return;
    }
    if (duty < 1.0) std::this_thread::sleep_until(start + period);
  }
}

IngressThrottle::IngressThrottle(double rps, double burst, std::shared_ptr<util::Clock> clock)
    : rps_(rps > 0.0 ? rps : 0.0),
      burst_(std::max(1.0, burst)),
      clock_(std::move(clock)),
      counter_(&telemetry::MetricRegistry::global().counter(
          "hammer_fault_ingress_throttled_total",
          "Requests that waited on the ingress throttle")),
      tokens_(burst_),
      last_refill_(clock_->now()) {}

std::int64_t IngressThrottle::admit() {
  if (rps_ <= 0.0) return 0;
  const std::int64_t wait_start_us = clock_->now_us();
  bool waited = false;
  for (;;) {
    {
      std::scoped_lock lock(mu_);
      const util::TimePoint now = clock_->now();
      const double elapsed = std::chrono::duration<double>(now - last_refill_).count();
      if (elapsed > 0.0) {
        tokens_ = std::min(burst_, tokens_ + elapsed * rps_);
        last_refill_ = now;
      }
      if (tokens_ >= 1.0) {
        tokens_ -= 1.0;
        return waited ? clock_->now_us() - wait_start_us : 0;
      }
    }
    if (!waited) {
      waited = true;
      throttled_.fetch_add(1, std::memory_order_relaxed);
      counter_->add(1);
    }
    // Bounded slice so server teardown isn't held hostage by a deep queue.
    const auto deficit = std::chrono::duration<double>(1.0 / rps_);
    clock_->sleep_for(std::min<util::Duration>(
        std::chrono::duration_cast<util::Duration>(deficit),
        std::chrono::duration_cast<util::Duration>(kThrottleSleepSlice)));
  }
}

}  // namespace hammer::fault
