// Resource faults (DESIGN.md §14): continuous background contention driven
// by the same FaultPlan/seed as the per-draw injection kinds.
//
// Two mechanisms:
//   - ResourceFaults: an RAII runner owning cpu_burn spin threads (duty-
//     cycled busy loops that steal cores from the SUT/driver sharing the
//     box) and a touched mem_ballast allocation (resident pressure the
//     ResourceMonitor stream picks up). Started by a deployment when the
//     spec's FaultPlan has resource magnitudes; stopped/freed on teardown.
//   - IngressThrottle: a token bucket a TcpServer consults before admitting
//     each request, modeling per-target ingress bandwidth collapse. Unlike
//     slow_loris (which stalls the response write), throttling delays
//     admission, so a saturation search sees the target's capacity drop.
//
// Both are deterministic in configuration (magnitudes from the plan); their
// timing effect is inherently wall-clock, like the other latency faults.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "util/clock.hpp"

namespace hammer::telemetry {
class Counter;
}

namespace hammer::fault {

class ResourceFaults {
 public:
  // Starts the configured contention immediately. A plan with
  // cpu_burn_threads == 0 and mem_ballast_mb == 0 constructs an inert
  // runner (no threads, no allocation).
  explicit ResourceFaults(const FaultPlan& plan);
  ~ResourceFaults();

  ResourceFaults(const ResourceFaults&) = delete;
  ResourceFaults& operator=(const ResourceFaults&) = delete;

  void stop();  // idempotent; joins burn threads and frees the ballast

  std::uint32_t burn_threads() const { return static_cast<std::uint32_t>(burners_.size()); }
  std::uint64_t ballast_bytes() const { return ballast_.size(); }

 private:
  void burn_loop(double duty);

  std::atomic<bool> stop_{false};
  std::vector<std::thread> burners_;
  std::vector<char> ballast_;
};

// Token-bucket admission gate for a server's ingress path. Thread-safe;
// admit() blocks the calling worker until a token is available (bounded
// 10ms sleep slices so stop/teardown is never held up long).
class IngressThrottle {
 public:
  IngressThrottle(double rps, double burst, std::shared_ptr<util::Clock> clock);

  // Blocks until one request token is available. Returns the microseconds
  // spent waiting (0 = admitted immediately).
  std::int64_t admit();

  double rps() const { return rps_; }
  std::uint64_t throttled() const { return throttled_.load(std::memory_order_relaxed); }

 private:
  const double rps_;
  const double burst_;
  std::shared_ptr<util::Clock> clock_;
  telemetry::Counter* counter_ = nullptr;  // hammer_fault_ingress_throttled_total

  std::mutex mu_;
  double tokens_;
  util::TimePoint last_refill_;
  std::atomic<std::uint64_t> throttled_{0};
};

}  // namespace hammer::fault
