// Client-side view of a System Under Test.
//
// ChainAdapter is the only interface Hammer's drivers use, so supporting a
// new blockchain means implementing the generic RPC surface
// (chain.info/submit/height/block/query/stats/state_digest/receipts) —
// regardless of the SUT's architecture (sharded or not) or implementation
// language. This is the paper's "set of generic remote procedure call
// interfaces".
//
// Submission comes in two shapes: submit() for one transaction per round
// trip, and submit_batch() which coalesces N transactions into a single
// JSON-RPC batch frame (one round trip) with per-transaction outcomes —
// the transport-level lever behind DriverOptions::submit_batch_size.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/types.hpp"
#include "rpc/jsonrpc.hpp"

namespace hammer::adapters {

struct ChainInfo {
  std::string name;
  std::string kind;
  std::uint32_t shards = 1;
};

class ChainAdapter {
 public:
  explicit ChainAdapter(std::shared_ptr<rpc::Channel> channel);

  // Fetched once and cached; sharded SUTs report their shard count here so
  // the driver can poll every shard's chain.
  const ChainInfo& info() const { return info_; }

  // Submits a signed transaction; returns its id. Overload and signature
  // failures surface as RejectedError (mapped from JSON-RPC server errors
  // by rpc::throw_client_error); transport problems as TransportError.
  std::string submit(const chain::Transaction& tx);

  // Outcome of one entry of a batched submission. ok() mirrors what the
  // single-call path expresses by (not) throwing RejectedError.
  struct SubmitResult {
    std::string tx_id;  // set when the SUT accepted the transaction
    std::string error;  // rejection/protocol reason otherwise
    bool ok() const { return error.empty(); }
  };

  // Submits N transactions in one batch round trip; results align with
  // `txs` by index. Throws TransportError when the connection fails (the
  // whole batch is then in doubt, exactly like a failed single call).
  std::vector<SubmitResult> submit_batch(const std::vector<chain::Transaction>& txs);

  std::uint64_t height(std::uint32_t shard = 0);
  chain::Block block(std::uint32_t shard, std::uint64_t height);
  json::Value query(std::uint32_t shard, const std::string& contract, const std::string& op,
                    json::Value args);
  json::Value stats();
  std::string state_digest(std::uint32_t shard = 0);

  // Transaction status polling (interactive-testing style). nullopt while
  // the transaction has not yet appeared in a block.
  struct ReceiptInfo {
    std::uint64_t height = 0;
    chain::TxStatus status = chain::TxStatus::kCommitted;
  };

  // Polls many transactions with one chain.receipts RPC; the result aligns
  // with `tx_ids` by index. This is what keeps interactive mode at one RPC
  // per poll tick instead of one per pending transaction.
  std::vector<std::optional<ReceiptInfo>> receipts(const std::vector<std::string>& tx_ids);

  // Single-transaction convenience wrapper over receipts().
  std::optional<ReceiptInfo> tx_receipt(const std::string& tx_id);

 private:
  json::Value call(const std::string& method, json::Value params);

  std::shared_ptr<rpc::Channel> channel_;
  ChainInfo info_;
};

}  // namespace hammer::adapters
