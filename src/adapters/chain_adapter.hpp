// Client-side view of a System Under Test.
//
// ChainAdapter is the only interface Hammer's drivers use, so supporting a
// new blockchain means implementing the seven-method RPC surface
// (chain.info/submit/height/block/query/stats/state_digest) — regardless
// of the SUT's architecture (sharded or not) or implementation language.
// This is the paper's "set of generic remote procedure call interfaces".
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "chain/types.hpp"
#include "rpc/jsonrpc.hpp"

namespace hammer::adapters {

struct ChainInfo {
  std::string name;
  std::string kind;
  std::uint32_t shards = 1;
};

class ChainAdapter {
 public:
  explicit ChainAdapter(std::shared_ptr<rpc::Channel> channel);

  // Fetched once and cached; sharded SUTs report their shard count here so
  // the driver can poll every shard's chain.
  const ChainInfo& info() const { return info_; }

  // Submits a signed transaction; returns its id. Overload and signature
  // failures surface as RejectedError (mapped from JSON-RPC server errors);
  // transport problems as TransportError.
  std::string submit(const chain::Transaction& tx);

  std::uint64_t height(std::uint32_t shard = 0);
  chain::Block block(std::uint32_t shard, std::uint64_t height);
  json::Value query(std::uint32_t shard, const std::string& contract, const std::string& op,
                    json::Value args);
  json::Value stats();
  std::string state_digest(std::uint32_t shard = 0);

  // Per-transaction status poll (interactive-testing style). nullopt while
  // the transaction has not yet appeared in a block.
  struct ReceiptInfo {
    std::uint64_t height = 0;
    chain::TxStatus status = chain::TxStatus::kCommitted;
  };
  std::optional<ReceiptInfo> tx_receipt(const std::string& tx_id);

 private:
  json::Value call(const std::string& method, json::Value params);

  std::shared_ptr<rpc::Channel> channel_;
  ChainInfo info_;
};

}  // namespace hammer::adapters
