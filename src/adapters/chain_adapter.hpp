// Client-side view of a System Under Test.
//
// ChainAdapter is the only interface Hammer's drivers use, so supporting a
// new blockchain means implementing the generic RPC surface
// (chain.info/submit/height/block/query/stats/state_digest/receipts) —
// regardless of the SUT's architecture (sharded or not) or implementation
// language. This is the paper's "set of generic remote procedure call
// interfaces".
//
// Submission comes in two shapes: submit() for one transaction per round
// trip (a thin throwing wrapper over a batch of one — server-error mapping
// lives in the batch path only), and submit_batch() which coalesces N
// transactions into a single JSON-RPC batch frame (one round trip) with
// per-transaction outcomes — the transport-level lever behind
// DriverOptions::submit_batch_size.
//
// Every RPC the adapter issues runs under one rpc::ClientConfig: a per-call
// deadline (rpc::CallOptions) and a rpc::RetryPolicy with seeded,
// exponentially backed-off retries. The default config is one attempt, so
// an un-configured adapter behaves exactly like the pre-retry API.
// Resubmission is idempotency-aware: after an in-doubt failure (transport
// break, timeout) submit_batch reconciles through chain.receipts and only
// resends entries not already on chain — see DESIGN.md §8.
//
// Shard parameter convention: every shard-scoped read (height, block,
// query, state_digest) takes the shard as its FIRST parameter, always
// explicitly — no defaulted shards — so call sites against sharded SUTs
// always name the shard they are reading.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/types.hpp"
#include "rpc/client_config.hpp"
#include "rpc/jsonrpc.hpp"
#include "rpc/retry.hpp"

namespace hammer::adapters {

struct ChainInfo {
  std::string name;
  std::string kind;
  std::uint32_t shards = 1;
};

class ChainAdapter {
 public:
  // One config for the whole call surface (deadline, retry policy, target
  // index; the codec/timeout members were already consumed by whoever built
  // `channel`).
  explicit ChainAdapter(std::shared_ptr<rpc::Channel> channel,
                        const rpc::ClientConfig& config = {});

  // Fetched once and cached; sharded SUTs report their shard count here so
  // the driver can poll every shard's chain.
  const ChainInfo& info() const { return info_; }
  const rpc::ClientConfig& config() const { return config_; }
  std::size_t target_index() const { return config_.target_index; }

  // The channel this adapter issues calls over (e.g. for wire-codec
  // diagnostics: TcpChannel::codec() after negotiation).
  const std::shared_ptr<rpc::Channel>& channel() const { return channel_; }

  // RPC attempts beyond the first, over this adapter's lifetime. The driver
  // differences this across a run into RunResult::retries.
  std::uint64_t retries() const { return retryer_.retry_count(); }

  // Submits a signed transaction; returns its id. Overload and signature
  // failures surface as RejectedError (mapped from JSON-RPC server errors
  // by rpc::throw_client_error); transport problems as TransportError.
  std::string submit(const chain::Transaction& tx);

  // Outcome of one entry of a batched submission. ok() mirrors what the
  // single-call path expresses by (not) throwing RejectedError.
  struct SubmitResult {
    std::string tx_id;   // set when the SUT accepted the transaction
    std::string error;   // rejection/protocol reason otherwise
    int error_code = 0;  // JSON-RPC error code behind `error` (0 when ok)
    bool ok() const { return error.empty(); }
  };

  // Submits N transactions in one batch round trip; results align with
  // `txs` by index. With retries enabled, in-doubt failures reconcile
  // through chain.receipts before resending (entries already on chain are
  // reported accepted, not submitted twice) and — when
  // RetryPolicy::on_rejected — rejected entries are resubmitted. Throws
  // TransportError only once the policy is exhausted.
  std::vector<SubmitResult> submit_batch(const std::vector<chain::Transaction>& txs);

  // Same, carrying a distributed-tracing context: the whole batch frame is
  // tagged with `trace` (one trace per frame — see telemetry/span.hpp). The
  // untraced overload forwards here with a default (unsampled) context.
  std::vector<SubmitResult> submit_batch(const std::vector<chain::Transaction>& txs,
                                         const telemetry::TraceContext& trace);

  // The peer-clock offset the transport measured at connect (identity for
  // in-process channels); the trace merger uses it to shift SUT span
  // timestamps into the driver's clock domain.
  telemetry::ClockOffset clock_offset() const { return channel_->clock_offset(); }

  // Drains the SUT's recorded spans (telemetry.spans); empty against peers
  // predating the method.
  std::vector<telemetry::Span> fetch_spans();

  // Shard-ownership query (chain.shard_for): the shard holding `sender`'s
  // hot state — the SUT's own routing function, exposed so a shard-affine
  // client can agree with the chain instead of guessing its hash.
  std::uint32_t shard_for(const std::string& sender);

  // Endpoint identity (endpoint.info): {endpoint, endpoints, shards} — which
  // RPC surface this adapter speaks to and the shard set that surface owns.
  json::Value endpoint_info();

  std::uint64_t height(std::uint32_t shard);
  chain::Block block(std::uint32_t shard, std::uint64_t height);
  json::Value query(std::uint32_t shard, const std::string& contract, const std::string& op,
                    json::Value args);
  json::Value stats();
  std::string state_digest(std::uint32_t shard);

  // Transaction status polling (interactive-testing style). nullopt while
  // the transaction has not yet appeared in a block.
  struct ReceiptInfo {
    std::uint64_t height = 0;
    chain::TxStatus status = chain::TxStatus::kCommitted;
  };

  // Polls many transactions with one chain.receipts RPC; the result aligns
  // with `tx_ids` by index. This is what keeps interactive mode at one RPC
  // per poll tick instead of one per pending transaction.
  std::vector<std::optional<ReceiptInfo>> receipts(const std::vector<std::string>& tx_ids);

  // Single-transaction convenience wrapper over receipts().
  std::optional<ReceiptInfo> tx_receipt(const std::string& tx_id);

 private:
  json::Value call(const std::string& method, json::Value params);

  // Drops entries already on chain from `open` (marking them accepted in
  // `out`) after an in-doubt submit failure; returns the indices still to
  // resend. Unreachable receipts mean "resend everything" — duplicates are
  // absorbed downstream (pool dedup / TaskProcessor duplicate counting).
  std::vector<std::size_t> reconcile_in_doubt(const std::vector<std::string>& ids,
                                              const std::vector<std::size_t>& open,
                                              std::vector<SubmitResult>& out);

  std::shared_ptr<rpc::Channel> channel_;
  rpc::ClientConfig config_;
  rpc::Retryer retryer_;
  ChainInfo info_;
};

// Factory used by examples/benches/tests so call sites stop hand-wiring
// TcpChannel construction against deployed endpoints. The host/port form
// threads the config into the TcpChannel it opens (codec preference,
// timeout) as well as into the adapter (deadline, retry policy).
std::shared_ptr<ChainAdapter> make_adapter(std::shared_ptr<rpc::Channel> channel,
                                           const rpc::ClientConfig& config = {});
std::shared_ptr<ChainAdapter> make_adapter(const std::string& host, std::uint16_t port,
                                           const rpc::ClientConfig& config = {});

}  // namespace hammer::adapters
