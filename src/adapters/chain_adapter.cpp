#include "adapters/chain_adapter.hpp"

#include "util/errors.hpp"

namespace hammer::adapters {

ChainAdapter::ChainAdapter(std::shared_ptr<rpc::Channel> channel)
    : channel_(std::move(channel)) {
  HAMMER_CHECK(channel_ != nullptr);
  json::Value v = call("chain.info", json::Value());
  info_.name = v.at("name").as_string();
  info_.kind = v.at("kind").as_string();
  info_.shards = static_cast<std::uint32_t>(v.get_int("shards", 1));
}

json::Value ChainAdapter::call(const std::string& method, json::Value params) {
  try {
    return channel_->call(method, std::move(params));
  } catch (const rpc::RpcError& e) {
    // Application-level rejections keep their own type so drivers can count
    // overload separately from transport failures.
    if (e.code() == rpc::kServerError) throw RejectedError(e.what());
    throw;
  }
}

std::string ChainAdapter::submit(const chain::Transaction& tx) {
  json::Object params;
  params["tx"] = tx.to_json();
  return call("chain.submit", json::Value(std::move(params))).at("tx_id").as_string();
}

std::uint64_t ChainAdapter::height(std::uint32_t shard) {
  return static_cast<std::uint64_t>(
      call("chain.height", json::object({{"shard", static_cast<std::int64_t>(shard)}}))
          .at("height")
          .as_int());
}

chain::Block ChainAdapter::block(std::uint32_t shard, std::uint64_t height) {
  return chain::Block::from_json(
      call("chain.block", json::object({{"shard", static_cast<std::int64_t>(shard)},
                                        {"height", height}})));
}

json::Value ChainAdapter::query(std::uint32_t shard, const std::string& contract,
                                const std::string& op, json::Value args) {
  json::Object params;
  params["shard"] = static_cast<std::int64_t>(shard);
  params["contract"] = contract;
  params["op"] = op;
  params["args"] = std::move(args);
  return call("chain.query", json::Value(std::move(params)));
}

json::Value ChainAdapter::stats() { return call("chain.stats", json::Value()); }

std::optional<ChainAdapter::ReceiptInfo> ChainAdapter::tx_receipt(const std::string& tx_id) {
  json::Value v = call("chain.tx_receipt", json::object({{"tx_id", tx_id}}));
  if (!v.get_bool("found", false)) return std::nullopt;
  ReceiptInfo info;
  info.height = static_cast<std::uint64_t>(v.at("height").as_int());
  info.status = static_cast<chain::TxStatus>(v.at("status").as_int());
  return info;
}

std::string ChainAdapter::state_digest(std::uint32_t shard) {
  return call("chain.state_digest", json::object({{"shard", static_cast<std::int64_t>(shard)}}))
      .at("digest")
      .as_string();
}

}  // namespace hammer::adapters
