#include "adapters/chain_adapter.hpp"

#include <numeric>

#include "rpc/tcp.hpp"
#include "telemetry/endpoint.hpp"
#include "util/errors.hpp"

namespace hammer::adapters {

ChainAdapter::ChainAdapter(std::shared_ptr<rpc::Channel> channel,
                           const rpc::ClientConfig& config)
    : channel_(std::move(channel)),
      config_(config),
      retryer_(config_.retry, config_.retry_seed) {
  HAMMER_CHECK(channel_ != nullptr);
  HAMMER_CHECK(config_.retry.max_attempts >= 1);
  json::Value v = call("chain.info", json::Value());
  info_.name = v.at("name").as_string();
  info_.kind = v.at("kind").as_string();
  info_.shards = static_cast<std::uint32_t>(v.get_int("shards", 1));
}

json::Value ChainAdapter::call(const std::string& method, json::Value params) {
  return retryer_.run([&]() -> json::Value {
    json::Value attempt_params = params;  // each attempt gets its own copy
    try {
      return channel_->call(method, std::move(attempt_params), config_.call);
    } catch (const rpc::RpcError& e) {
      rpc::throw_client_error(e);  // kServerError -> RejectedError, rest rethrows
    }
  });
}

std::string ChainAdapter::submit(const chain::Transaction& tx) {
  SubmitResult result = submit_batch({tx}).front();
  if (!result.ok()) {
    rpc::throw_client_error(result.error_code == 0 ? rpc::kServerError : result.error_code,
                            result.error);
  }
  return result.tx_id;
}

std::vector<ChainAdapter::SubmitResult> ChainAdapter::submit_batch(
    const std::vector<chain::Transaction>& txs) {
  return submit_batch(txs, telemetry::TraceContext{});
}

std::vector<ChainAdapter::SubmitResult> ChainAdapter::submit_batch(
    const std::vector<chain::Transaction>& txs, const telemetry::TraceContext& trace) {
  std::vector<SubmitResult> out(txs.size());
  if (txs.empty()) return out;
  std::vector<std::string> ids(txs.size());
  for (std::size_t i = 0; i < txs.size(); ++i) ids[i] = txs[i].compute_id();

  const rpc::RetryPolicy& policy = config_.retry;
  rpc::CallOptions call_opts = config_.call;
  call_opts.trace = trace;  // unsampled by default: one branch in the transport
  std::vector<std::size_t> open(txs.size());
  std::iota(open.begin(), open.end(), std::size_t{0});
  for (std::uint32_t attempt = 1;; ++attempt) {
    std::vector<rpc::BatchCall> calls;
    calls.reserve(open.size());
    for (std::size_t idx : open) {
      json::Object params;
      params["tx"] = txs[idx].to_json();
      calls.push_back(rpc::BatchCall{"chain.submit", json::Value(std::move(params))});
    }
    std::vector<rpc::BatchReply> replies;
    try {
      replies = channel_->call_batch(calls, call_opts);
    } catch (const TransportError&) {
      // Timeout or connection break: the frame is IN DOUBT — any subset may
      // have reached the SUT.
      rpc::ErrorClass cls = rpc::classify_current_exception();
      if (attempt >= policy.max_attempts || !policy.retries(cls)) throw;
      retryer_.before_retry(attempt);
      // Idempotent-resubmission rule: entries already on chain were
      // accepted by the failed attempt; report them ok instead of
      // submitting them twice.
      open = reconcile_in_doubt(ids, open, out);
      if (open.empty()) return out;
      continue;
    }
    HAMMER_CHECK(replies.size() == open.size());
    std::vector<std::size_t> rejected;
    for (std::size_t j = 0; j < replies.size(); ++j) {
      std::size_t idx = open[j];
      if (replies[j].ok()) {
        out[idx].tx_id = replies[j].result.at("tx_id").as_string();
        out[idx].error.clear();
        out[idx].error_code = 0;
      } else {
        out[idx].tx_id.clear();
        out[idx].error_code = replies[j].error_code;
        out[idx].error = replies[j].error_message.empty()
                             ? "rpc error " + std::to_string(replies[j].error_code)
                             : replies[j].error_message;
        // Only application-level rejections are retry candidates; protocol
        // errors would fail identically on every attempt.
        if (replies[j].error_code == rpc::kServerError) rejected.push_back(idx);
      }
    }
    if (policy.on_rejected && !rejected.empty() && attempt < policy.max_attempts) {
      // A rejected entry was NOT accepted, so resubmitting it is safe.
      retryer_.before_retry(attempt);
      open = std::move(rejected);
      continue;
    }
    return out;
  }
}

std::vector<std::size_t> ChainAdapter::reconcile_in_doubt(const std::vector<std::string>& ids,
                                                          const std::vector<std::size_t>& open,
                                                          std::vector<SubmitResult>& out) {
  std::vector<std::string> poll;
  poll.reserve(open.size());
  for (std::size_t idx : open) poll.push_back(ids[idx]);
  std::vector<std::optional<ReceiptInfo>> found;
  try {
    found = receipts(poll);  // runs under the same retry policy
  } catch (const Error&) {
    // Receipts unreachable too: resend everything. A duplicate of an
    // accepted-but-unsealed entry lands twice in blocks and is counted once
    // by the TaskProcessor (duplicate absorption), so correctness holds.
    return open;
  }
  std::vector<std::size_t> still_open;
  for (std::size_t j = 0; j < open.size(); ++j) {
    if (found[j]) {
      out[open[j]].tx_id = ids[open[j]];
      out[open[j]].error.clear();
      out[open[j]].error_code = 0;
    } else {
      still_open.push_back(open[j]);
    }
  }
  return still_open;
}

std::vector<telemetry::Span> ChainAdapter::fetch_spans() {
  return telemetry::fetch_spans(*channel_);
}

std::uint32_t ChainAdapter::shard_for(const std::string& sender) {
  return static_cast<std::uint32_t>(
      call("chain.shard_for", json::object({{"sender", sender}})).at("shard").as_int());
}

json::Value ChainAdapter::endpoint_info() { return call("endpoint.info", json::Value()); }

std::uint64_t ChainAdapter::height(std::uint32_t shard) {
  return static_cast<std::uint64_t>(
      call("chain.height", json::object({{"shard", static_cast<std::int64_t>(shard)}}))
          .at("height")
          .as_int());
}

chain::Block ChainAdapter::block(std::uint32_t shard, std::uint64_t height) {
  return chain::Block::from_json(
      call("chain.block", json::object({{"shard", static_cast<std::int64_t>(shard)},
                                        {"height", height}})));
}

json::Value ChainAdapter::query(std::uint32_t shard, const std::string& contract,
                                const std::string& op, json::Value args) {
  json::Object params;
  params["shard"] = static_cast<std::int64_t>(shard);
  params["contract"] = contract;
  params["op"] = op;
  params["args"] = std::move(args);
  return call("chain.query", json::Value(std::move(params)));
}

json::Value ChainAdapter::stats() { return call("chain.stats", json::Value()); }

std::vector<std::optional<ChainAdapter::ReceiptInfo>> ChainAdapter::receipts(
    const std::vector<std::string>& tx_ids) {
  std::vector<std::optional<ReceiptInfo>> out(tx_ids.size());
  if (tx_ids.empty()) return out;
  json::Array ids;
  ids.reserve(tx_ids.size());
  for (const std::string& id : tx_ids) ids.push_back(json::Value(id));
  json::Value v =
      call("chain.receipts", json::object({{"tx_ids", json::Value(std::move(ids))}}));
  const json::Array& entries = v.at("receipts").as_array();
  HAMMER_CHECK(entries.size() == tx_ids.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (!entries[i].get_bool("found", false)) continue;
    ReceiptInfo info;
    info.height = static_cast<std::uint64_t>(entries[i].at("height").as_int());
    info.status = static_cast<chain::TxStatus>(entries[i].at("status").as_int());
    out[i] = info;
  }
  return out;
}

std::optional<ChainAdapter::ReceiptInfo> ChainAdapter::tx_receipt(const std::string& tx_id) {
  return receipts({tx_id}).front();
}

std::string ChainAdapter::state_digest(std::uint32_t shard) {
  return call("chain.state_digest", json::object({{"shard", static_cast<std::int64_t>(shard)}}))
      .at("digest")
      .as_string();
}

std::shared_ptr<ChainAdapter> make_adapter(std::shared_ptr<rpc::Channel> channel,
                                           const rpc::ClientConfig& config) {
  return std::make_shared<ChainAdapter>(std::move(channel), config);
}

std::shared_ptr<ChainAdapter> make_adapter(const std::string& host, std::uint16_t port,
                                           const rpc::ClientConfig& config) {
  // The config reaches the transport too: the channel negotiates the wire
  // codec and uses the blocking-call timeout it carries.
  return make_adapter(std::make_shared<rpc::TcpChannel>(host, port, config), config);
}

}  // namespace hammer::adapters
