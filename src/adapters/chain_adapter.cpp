#include "adapters/chain_adapter.hpp"

#include "util/errors.hpp"

namespace hammer::adapters {

ChainAdapter::ChainAdapter(std::shared_ptr<rpc::Channel> channel)
    : channel_(std::move(channel)) {
  HAMMER_CHECK(channel_ != nullptr);
  json::Value v = call("chain.info", json::Value());
  info_.name = v.at("name").as_string();
  info_.kind = v.at("kind").as_string();
  info_.shards = static_cast<std::uint32_t>(v.get_int("shards", 1));
}

json::Value ChainAdapter::call(const std::string& method, json::Value params) {
  try {
    return channel_->call(method, std::move(params));
  } catch (const rpc::RpcError& e) {
    rpc::throw_client_error(e);  // kServerError -> RejectedError, rest rethrows
  }
}

std::string ChainAdapter::submit(const chain::Transaction& tx) {
  json::Object params;
  params["tx"] = tx.to_json();
  return call("chain.submit", json::Value(std::move(params))).at("tx_id").as_string();
}

std::vector<ChainAdapter::SubmitResult> ChainAdapter::submit_batch(
    const std::vector<chain::Transaction>& txs) {
  std::vector<SubmitResult> out(txs.size());
  if (txs.empty()) return out;
  std::vector<rpc::BatchCall> calls;
  calls.reserve(txs.size());
  for (const chain::Transaction& tx : txs) {
    json::Object params;
    params["tx"] = tx.to_json();
    calls.push_back(rpc::BatchCall{"chain.submit", json::Value(std::move(params))});
  }
  std::vector<rpc::BatchReply> replies = channel_->call_batch(calls);
  HAMMER_CHECK(replies.size() == txs.size());
  for (std::size_t i = 0; i < replies.size(); ++i) {
    if (replies[i].ok()) {
      out[i].tx_id = replies[i].result.at("tx_id").as_string();
    } else {
      out[i].error = replies[i].error_message.empty()
                         ? "rpc error " + std::to_string(replies[i].error_code)
                         : replies[i].error_message;
    }
  }
  return out;
}

std::uint64_t ChainAdapter::height(std::uint32_t shard) {
  return static_cast<std::uint64_t>(
      call("chain.height", json::object({{"shard", static_cast<std::int64_t>(shard)}}))
          .at("height")
          .as_int());
}

chain::Block ChainAdapter::block(std::uint32_t shard, std::uint64_t height) {
  return chain::Block::from_json(
      call("chain.block", json::object({{"shard", static_cast<std::int64_t>(shard)},
                                        {"height", height}})));
}

json::Value ChainAdapter::query(std::uint32_t shard, const std::string& contract,
                                const std::string& op, json::Value args) {
  json::Object params;
  params["shard"] = static_cast<std::int64_t>(shard);
  params["contract"] = contract;
  params["op"] = op;
  params["args"] = std::move(args);
  return call("chain.query", json::Value(std::move(params)));
}

json::Value ChainAdapter::stats() { return call("chain.stats", json::Value()); }

std::vector<std::optional<ChainAdapter::ReceiptInfo>> ChainAdapter::receipts(
    const std::vector<std::string>& tx_ids) {
  std::vector<std::optional<ReceiptInfo>> out(tx_ids.size());
  if (tx_ids.empty()) return out;
  json::Array ids;
  ids.reserve(tx_ids.size());
  for (const std::string& id : tx_ids) ids.push_back(json::Value(id));
  json::Value v =
      call("chain.receipts", json::object({{"tx_ids", json::Value(std::move(ids))}}));
  const json::Array& entries = v.at("receipts").as_array();
  HAMMER_CHECK(entries.size() == tx_ids.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (!entries[i].get_bool("found", false)) continue;
    ReceiptInfo info;
    info.height = static_cast<std::uint64_t>(entries[i].at("height").as_int());
    info.status = static_cast<chain::TxStatus>(entries[i].at("status").as_int());
    out[i] = info;
  }
  return out;
}

std::optional<ChainAdapter::ReceiptInfo> ChainAdapter::tx_receipt(const std::string& tx_id) {
  return receipts({tx_id}).front();
}

std::string ChainAdapter::state_digest(std::uint32_t shard) {
  return call("chain.state_digest", json::object({{"shard", static_cast<std::int64_t>(shard)}}))
      .at("digest")
      .as_string();
}

}  // namespace hammer::adapters
