#include "core/load_controller.hpp"

#include <algorithm>

#include "util/errors.hpp"

namespace hammer::core {

namespace {
// Waiters sleep at most this long per slice so a live set_rate() (or a rate
// raised from near-zero) is picked up promptly.
constexpr util::Duration kMaxSleepSlice = std::chrono::milliseconds(10);
}  // namespace

LoadController::LoadController(LoadOptions options, std::shared_ptr<util::Clock> clock)
    : clock_(std::move(clock)),
      rate_(options.rate > 0.0 ? options.rate : 0.0),
      burst_(std::max(1.0, options.burst)),
      jitter_(std::clamp(options.jitter, 0.0, 1.0)),
      rng_(options.seed, 0x6c0ad5c4c3a2d1e0ULL),
      tokens_(std::max(1.0, options.burst)) {
  HAMMER_CHECK(clock_ != nullptr);
  last_refill_ = clock_->now();
}

bool LoadController::open_loop() const {
  std::scoped_lock lock(mu_);
  return rate_ <= 0.0;
}

double LoadController::target_rate() const {
  std::scoped_lock lock(mu_);
  return rate_;
}

void LoadController::set_rate(double rate) {
  std::scoped_lock lock(mu_);
  // Refill at the OLD rate first so tokens accrued up to this instant are
  // honest, then switch.
  refill_locked(clock_->now());
  rate_ = rate > 0.0 ? rate : 0.0;
}

void LoadController::refill_locked(util::TimePoint now) {
  if (rate_ <= 0.0) {
    last_refill_ = now;
    return;
  }
  const double elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(now - last_refill_).count();
  if (elapsed_s > 0.0) {
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
    last_refill_ = now;
  }
}

void LoadController::acquire(std::size_t n) {
  if (n == 0) return;
  const auto want = static_cast<double>(n);
  for (;;) {
    util::Duration wait{};
    {
      std::scoped_lock lock(mu_);
      if (rate_ <= 0.0) {
        // Open loop: account the release, never wait.
        std::int64_t now_us = clock_->now_us();
        if (released_ == 0) first_release_us_ = now_us;
        last_release_us_ = now_us;
        released_ += n;
        return;
      }
      util::TimePoint now = clock_->now();
      refill_locked(now);
      // A batch bigger than the bucket can never see `want` tokens at once;
      // let it leave at burst-full and drive the balance negative (debt) —
      // later acquirers absorb the debt, keeping the average rate exact.
      const double need = std::min(want, burst_);
      if (tokens_ >= need) {
        tokens_ -= want;
        std::int64_t now_us = clock_->now_us();
        if (released_ == 0) first_release_us_ = now_us;
        last_release_us_ = now_us;
        released_ += n;
        return;
      }
      double wait_s = (need - tokens_) / rate_;
      if (jitter_ > 0.0) {
        // Deterministic roughening: scale the wait by 1 ± jitter using the
        // seeded stream (pure function of seed and draw index).
        wait_s *= 1.0 + jitter_ * (2.0 * rng_.uniform01() - 1.0);
      }
      wait = std::chrono::duration_cast<util::Duration>(
          std::chrono::duration<double>(std::max(0.0, wait_s)));
    }
    clock_->sleep_for(std::min(wait, kMaxSleepSlice));
  }
}

void LoadController::reset() {
  std::scoped_lock lock(mu_);
  tokens_ = burst_;
  last_refill_ = clock_->now();
  released_ = 0;
  first_release_us_ = 0;
  last_release_us_ = 0;
}

std::uint64_t LoadController::released() const {
  std::scoped_lock lock(mu_);
  return released_;
}

double LoadController::offered_rate() const {
  std::scoped_lock lock(mu_);
  if (released_ < 2 || last_release_us_ <= first_release_us_) return 0.0;
  return static_cast<double>(released_) /
         (static_cast<double>(last_release_us_ - first_release_us_) / 1e6);
}

}  // namespace hammer::core
