// Write-behind committer: the background half of the cache → table-store
// pipeline (paper Fig. 2, Redis → MySQL). Producers write records into the
// sharded kvstore and mark them dirty; this committer drains the per-shard
// dirty sets on a background thread and lands them in minisql as batched
// multi-row inserts.
//
// Flush policy:
//   - flush-on-interval: the thread wakes every `flush_interval` and drains
//     whatever is dirty
//   - flush-on-size: producers call notify() once the dirty backlog reaches
//     `batch_size`, waking the thread early
//   - every drained row is committed in the same round (chunked into
//     `batch_size`-row inserts) — nothing sits in a committer-private buffer,
//     so the only data at risk is what the bounded dirty sets hold, and
//     flush_and_stop() drains exactly that
//
// Backpressure: the dirty sets are bounded per shard. When a producer's mark
// is refused the row is dropped and counted (hammer_store_rows_dropped_total)
// rather than blocking the driving path — the run report stays honest about
// the loss instead of the driver stalling on its own measurement plumbing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/kvstore.hpp"
#include "minisql/database.hpp"
#include "util/clock.hpp"

namespace hammer::core {

class StoreCommitter {
 public:
  struct Options {
    // Rows per multi-row insert; also the backlog level at which producers
    // should notify() for an early flush.
    std::size_t batch_size = 256;
    // Background flush cadence when the backlog stays under batch_size.
    util::Duration flush_interval = std::chrono::milliseconds(50);
    std::string table = "Performance";
  };

  // Builds one table row from a drained cache record. Returning nullopt
  // skips (and counts as dropped) a record that cannot be represented.
  using RowBuilder = std::function<std::optional<std::vector<minisql::Cell>>(
      const std::string& key, const kvstore::Hash& fields)>;

  StoreCommitter(std::shared_ptr<kvstore::KvStore> cache,
                 std::shared_ptr<minisql::Database> db, RowBuilder builder,
                 Options options);
  ~StoreCommitter();  // flush_and_stop()

  StoreCommitter(const StoreCommitter&) = delete;
  StoreCommitter& operator=(const StoreCommitter&) = delete;

  // Spawns the background thread. Without start() the committer still works
  // synchronously through flush() — tests drive it deterministically that way.
  void start();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Producer hint that the dirty backlog reached batch_size: wakes the
  // background thread without waiting out the interval.
  void notify();

  // Synchronous drain on the caller's thread: empties every dirty set into
  // batched inserts and sweeps expired cache entries. Returns rows committed.
  std::size_t flush();

  // Graceful end-of-run drain: stops the background thread (if any), then
  // flushes every remaining dirty row. Idempotent; returns the rows
  // committed by the final flush.
  std::size_t flush_and_stop();

  std::uint64_t rows_committed() const {
    return rows_committed_.load(std::memory_order_relaxed);
  }
  std::uint64_t rows_dropped() const {
    return rows_dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t flushes() const { return flushes_.load(std::memory_order_relaxed); }

 private:
  void run_loop();
  std::size_t drain_round();

  std::shared_ptr<kvstore::KvStore> cache_;
  std::shared_ptr<minisql::Database> db_;
  RowBuilder builder_;
  Options options_;

  std::mutex mu_;  // guards the wake flags only — producers never wait on a drain
  std::condition_variable cv_;
  bool wakeup_ = false;  // guarded by mu_
  bool stop_ = false;    // guarded by mu_
  std::mutex drain_mu_;  // serializes drain rounds (background thread vs flush())
  std::thread thread_;
  std::atomic<bool> running_{false};

  std::atomic<std::uint64_t> rows_committed_{0};
  std::atomic<std::uint64_t> rows_dropped_{0};
  std::atomic<std::uint64_t> flushes_{0};
};

}  // namespace hammer::core
