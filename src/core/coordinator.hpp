// Coordinator: the fleet-control half of the distributed driver
// (DESIGN.md §13). Speaks the control-plane API to N WorkerSession
// processes: hello (API-version handshake), deploy (push each worker its
// plan + workload shard), start (the run barrier — every deploy must have
// acknowledged first), then polls control.stats into a progress timeline
// and control.report until every worker is done, normalizes each worker's
// clock envelope through the control channel's measured ClockOffset, and
// merges the per-worker RunResults into the single-process-equivalent
// result (core::merge_run_results).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "rpc/tcp.hpp"

namespace hammer::core {

// One dialable worker process.
struct FleetWorker {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct FleetOptions {
  // Control-channel config (codec, timeout) for coordinator -> worker RPCs.
  // The timeout bounds every control call EXCEPT the run itself, which is
  // polled, never awaited.
  rpc::ClientConfig control;

  // control.stats sampling period while the fleet runs.
  std::chrono::milliseconds stats_interval{200};

  // Give up collecting if the fleet has not finished after this long.
  std::chrono::milliseconds collect_timeout{120000};
};

// What the coordinator pushes to each worker. One FleetPlan describes the
// WHOLE workload; to_worker_json(i, n) is worker i's slice of it (the
// worker derives its seeds and accounts from the index itself).
struct FleetPlan {
  std::vector<std::pair<std::string, std::uint16_t>> sut_endpoints;  // host, port
  std::vector<std::string> accounts;    // full population; workers stride it
  json::Value workload;                 // WorkloadProfile JSON (master seed inside)
  std::size_t total_txs = 0;            // summed across the fleet
  json::Value driver;                   // driver sub-object, null = defaults
  json::Value client;                   // client sub-object, null = defaults
  json::Value faults;                   // master client-side FaultPlan, null = none

  json::Value to_worker_json(std::size_t index, std::size_t count) const;
};

struct FleetResult {
  RunResult merged;                     // single-process-equivalent result
  std::vector<RunResult> workers;       // per-worker, clock-normalized
  json::Value stats_timeline;           // array of {t_ms, submitted, completed}
  double wall_s = 0.0;                  // start barrier -> last report
};

class Coordinator {
 public:
  explicit Coordinator(std::vector<FleetWorker> workers, FleetOptions options = {});

  std::size_t size() const { return workers_.size(); }

  // Dials every worker and checks control.hello: role must be "worker" and
  // the API version must match rpc::kApiVersion exactly. Throws ParseError
  // on a version/role mismatch (a fleet must be homogeneous).
  void hello();

  // Pushes plan shard i to worker i, in parallel; returns once every worker
  // acknowledged (deploy barrier).
  void deploy(const FleetPlan& plan);

  // Fires control.start on every worker, in parallel (start barrier).
  void start();

  // Retargets the fleet's AGGREGATE offered rate, split evenly across the
  // workers (the same convention deploy uses for workload shards): each
  // worker's LoadController gets aggregate_rate / N. 0 switches the fleet
  // to open loop. Valid any time after deploy — including mid-run, which is
  // the point: a saturation controller ramps a live fleet without
  // redeploying. Returns the per-worker rate actually sent.
  double set_rate(double aggregate_rate);

  // Polls stats + reports until every worker is done (or collect_timeout),
  // then merges. Worker clock envelopes are shifted into the coordinator's
  // domain via each control channel's negotiated ClockOffset before merging.
  FleetResult collect();

  // hello + deploy + start + collect.
  FleetResult run(const FleetPlan& plan);

  // control.stop on every worker (lets their serve() loops return). Safe to
  // call on a fleet that never deployed.
  void stop();

 private:
  rpc::TcpChannel& channel(std::size_t i);

  std::vector<FleetWorker> workers_;
  FleetOptions options_;
  std::vector<std::shared_ptr<rpc::TcpChannel>> channels_;
};

}  // namespace hammer::core
