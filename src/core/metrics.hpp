// Metrics pipeline (paper Fig. 2 right half): the driver's vector-list
// state is pushed into the Redis-like cache as hashes ("the server pushes
// the initialized vector list to the Redis cluster ... the driver will
// regularly update the vector list"), and a committer periodically drains
// the cache into the MySQL-like Performance table that the visualization
// layer queries with the Table II SQL.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/task_processor.hpp"
#include "kvstore/kvstore.hpp"
#include "minisql/database.hpp"
#include "util/histogram.hpp"

namespace hammer::core {

// Table II statements, verbatim modulo dialect (see minisql/parser.hpp).
extern const char* const kTpsSql;
extern const char* const kLatencySql;

class MetricsPipeline {
 public:
  MetricsPipeline(std::shared_ptr<kvstore::KvStore> cache,
                  std::shared_ptr<minisql::Database> db);

  // Driver -> cache: writes/updates one hash per record ("perf:<tx_id>").
  // Only completed records carry an end_time.
  void push_records(std::span<const TxRecord> records);

  // Cache -> SQL: drains completed records into the Performance table and
  // removes them from the cache. Returns the number of rows committed.
  std::size_t commit_to_sql();

  // Table II queries against the committed table.
  std::int64_t query_tps() const;
  minisql::ResultSet query_latencies() const;

  const std::shared_ptr<minisql::Database>& database() const { return db_; }

 private:
  std::shared_ptr<kvstore::KvStore> cache_;
  std::shared_ptr<minisql::Database> db_;
};

// Run-level summary computed from the vector list.
struct RunResult {
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t failed = 0;       // invalid/conflict receipts
  std::uint64_t rejected = 0;     // refused at submission (overload)
  std::uint64_t unmatched = 0;    // never appeared in a block before drain
  std::uint64_t retries = 0;        // RPC attempts beyond the first (this run)
  std::uint64_t send_failures = 0;  // txs written off after retry exhaustion
  double duration_s = 0.0;        // first send -> last commit
  double tps = 0.0;               // committed / duration
  util::Histogram latency;        // committed transactions only

  // Per-stage latency breakdown (sign/queue/submit/include/detect) from the
  // lifecycle tracer; null unless the run was traced (trace_every_n > 0).
  json::Value stages;

  // Injected-fault counts by kind, snapshotted from the run's FaultInjector;
  // null when the run had no DriverOptions::fault_injector.
  json::Value faults;

  // Per-cluster-target deltas for this run (array of {target, submitted,
  // completed, shards}); a legacy single-endpoint driver gets a one-entry
  // array.
  json::Value targets;

  // ShardedTaskProcessor stats (per-shard registered/pending/probe_steps +
  // merged totals); null for non-Hammer tracking modes.
  json::Value processor;

  json::Value to_json() const;
  std::string summary() const;
};

RunResult summarize(std::span<const TxRecord> records);

}  // namespace hammer::core
