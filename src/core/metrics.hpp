// Metrics pipeline (paper Fig. 2 right half): the driver's vector-list
// state is pushed into the Redis-like cache as hashes ("the server pushes
// the initialized vector list to the Redis cluster ... the driver will
// regularly update the vector list"), and a committer drains the cache into
// the MySQL-like Performance table that the visualization layer queries
// with the Table II SQL.
//
// Two commit modes:
//   - legacy synchronous (write_behind = false): push_records() caches
//     everything, commit_to_sql() scans the whole cache once at run end —
//     the original row-at-a-time path, kept as the equivalence oracle.
//   - write-behind (write_behind = true): completed records are marked
//     dirty as they are pushed and a StoreCommitter drains them into
//     batched inserts on a background thread, so latency samples land in
//     SQL at cluster rate instead of piling up for a run-end scan. Pending
//     (incomplete) records carry a TTL and age out of the cache.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/store_committer.hpp"
#include "core/task_processor.hpp"
#include "kvstore/kvstore.hpp"
#include "minisql/database.hpp"
#include "util/histogram.hpp"

namespace hammer::core {

// Table II statements, verbatim modulo dialect (see minisql/parser.hpp).
extern const char* const kTpsSql;
extern const char* const kLatencySql;

struct MetricsOptions {
  // Enables the write-behind committer path.
  bool write_behind = false;
  // Committer flush policy (see StoreCommitter::Options).
  std::size_t commit_batch_size = 256;
  util::Duration flush_interval = std::chrono::milliseconds(50);
  // TTL armed on records cached before completion; a record that never
  // completes ages out of the cache instead of leaking. zero() = no expiry
  // (legacy behaviour).
  util::Duration pending_ttl = util::Duration::zero();
};

class MetricsPipeline {
 public:
  MetricsPipeline(std::shared_ptr<kvstore::KvStore> cache,
                  std::shared_ptr<minisql::Database> db, MetricsOptions options = {});

  bool write_behind() const { return options_.write_behind; }

  // Driver -> cache: writes/updates one hash per record ("perf:<tx_id>").
  // Only completed records carry an end_time. In write-behind mode completed
  // records are marked dirty for the committer (dirty-set overflow drops the
  // row and counts it) and incomplete ones get the pending TTL.
  void push_records(std::span<const TxRecord> records);

  // Cache -> SQL, legacy synchronous path: scans the cache, inserts
  // completed records row-at-a-time and removes them. Returns rows
  // committed.
  std::size_t commit_to_sql();

  // Write-behind controls (no-ops when write_behind is off).
  void start_committer();
  std::size_t flush();           // synchronous drain of everything dirty
  std::size_t flush_and_stop();  // graceful end-of-run drain

  // Completed rows dropped because a shard's dirty set was full.
  std::uint64_t rows_dropped() const;
  std::uint64_t rows_committed() const;

  // Table II queries against the committed table.
  std::int64_t query_tps() const;
  minisql::ResultSet query_latencies() const;

  const std::shared_ptr<minisql::Database>& database() const { return db_; }

 private:
  std::shared_ptr<kvstore::KvStore> cache_;
  std::shared_ptr<minisql::Database> db_;
  MetricsOptions options_;
  std::unique_ptr<StoreCommitter> committer_;  // write-behind mode only
  std::atomic<std::uint64_t> rows_dropped_{0};
};

// Run-level summary computed from the vector list.
struct RunResult {
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;
  std::uint64_t failed = 0;       // invalid/conflict receipts
  std::uint64_t rejected = 0;     // refused at submission (overload)
  std::uint64_t unmatched = 0;    // never appeared in a block before drain
  std::uint64_t retries = 0;        // RPC attempts beyond the first (this run)
  std::uint64_t send_failures = 0;  // txs written off after retry exhaustion
  double duration_s = 0.0;        // first send -> last commit
  double tps = 0.0;               // committed / duration
  util::Histogram latency;        // committed transactions only

  // Closed-loop rate accounting (DESIGN.md §14). target_rate is the
  // controller's setting at run end (0 = open loop); offered_rate is what
  // the pacing gate actually released per second of the send window;
  // achieved_rate mirrors tps (committed per second of the run envelope).
  // The offered/achieved gap is the saturation signal SaturationSearch
  // ramps against.
  double target_rate = 0.0;
  double offered_rate = 0.0;
  double achieved_rate = 0.0;

  // Run wall-clock envelope in the producing process's microsecond clock:
  // earliest send and latest commit observed. Zero when the run had no
  // records. merge_run_results() spans the merged duration from these, so a
  // coordinator must shift them into its own clock domain (ClockOffset)
  // before merging results from remote workers.
  std::int64_t first_start_us = 0;
  std::int64_t last_end_us = 0;

  // Per-stage latency breakdown (sign/queue/submit/include/detect) from the
  // lifecycle tracer; null unless the run was traced (trace_every_n > 0).
  json::Value stages;

  // Injected-fault counts by kind, snapshotted from the run's FaultInjector;
  // null when the run had no DriverOptions::fault_injector.
  json::Value faults;

  // Per-cluster-target deltas for this run (array of {target, submitted,
  // completed, shards}); a legacy single-endpoint driver gets a one-entry
  // array.
  json::Value targets;

  // ShardedTaskProcessor stats (per-shard registered/pending/probe_steps +
  // merged totals); null for non-Hammer tracking modes.
  json::Value processor;

  json::Value to_json() const;
  std::string summary() const;

  // Lossless wire round-trip for the control plane (control.report): unlike
  // the display-oriented to_json(), this carries the full latency histogram
  // (sparse non-zero buckets) and the clock envelope, so a coordinator can
  // rebuild the exact RunResult and merge it bin-wise.
  json::Value to_wire_json() const;
  static RunResult from_wire_json(const json::Value& v);
};

RunResult summarize(std::span<const TxRecord> records);

// Merges per-shard RunResults into the result the single process driving
// the whole workload would have produced: counts sum exactly, latency
// histograms merge bin-wise, the duration spans min(first_start_us) to
// max(last_end_us) and tps is recomputed from it. Fault counts (by kind)
// sum; `targets` concatenates with a "worker" tag per entry; stages and
// processor stay null (per-worker detail lives in the per-worker reports).
// Parts must share one clock domain — normalize remote timestamps first.
RunResult merge_run_results(std::span<const RunResult> parts);

}  // namespace hammer::core
