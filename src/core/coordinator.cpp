#include "core/coordinator.hpp"

#include <future>

#include "rpc/api.hpp"
#include "util/clock.hpp"
#include "util/errors.hpp"
#include "util/logging.hpp"

namespace hammer::core {

json::Value FleetPlan::to_worker_json(std::size_t index, std::size_t count) const {
  HAMMER_CHECK_MSG(count >= 1 && index < count, "fleet worker index out of range");
  json::Array endpoints;
  endpoints.reserve(sut_endpoints.size());
  for (const auto& [host, port] : sut_endpoints) {
    endpoints.push_back(
        json::object({{"host", host}, {"port", static_cast<std::int64_t>(port)}}));
  }
  json::Array account_list;
  account_list.reserve(accounts.size());
  for (const std::string& account : accounts) account_list.push_back(json::Value(account));
  json::Value plan = json::object({{"worker_index", static_cast<std::int64_t>(index)},
                                   {"worker_count", static_cast<std::int64_t>(count)},
                                   {"endpoints", json::Value(std::move(endpoints))},
                                   {"accounts", json::Value(std::move(account_list))},
                                   {"workload", workload},
                                   {"total_txs", static_cast<std::int64_t>(total_txs)}});
  if (!driver.is_null()) plan.as_object()["driver"] = driver;
  if (!client.is_null()) plan.as_object()["client"] = client;
  if (!faults.is_null()) plan.as_object()["faults"] = faults;
  return plan;
}

Coordinator::Coordinator(std::vector<FleetWorker> workers, FleetOptions options)
    : workers_(std::move(workers)), options_(options) {
  HAMMER_CHECK_MSG(!workers_.empty(), "a fleet needs >= 1 worker");
}

rpc::TcpChannel& Coordinator::channel(std::size_t i) {
  if (channels_.empty()) hello();
  return *channels_[i];
}

void Coordinator::hello() {
  if (!channels_.empty()) return;
  channels_.reserve(workers_.size());
  for (const FleetWorker& worker : workers_) {
    channels_.push_back(
        std::make_shared<rpc::TcpChannel>(worker.host, worker.port, options_.control));
  }
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    json::Value reply = channels_[i]->call("control.hello", json::Value());
    std::string role = reply.get_string("role", "?");
    auto api = static_cast<int>(reply.get_int("api", -1));
    if (role != "worker" || api != rpc::kApiVersion) {
      channels_.clear();
      throw ParseError("fleet worker " + std::to_string(i) + " speaks role '" + role +
                       "' api " + std::to_string(api) + ", need role 'worker' api " +
                       std::to_string(rpc::kApiVersion));
    }
  }
}

void Coordinator::deploy(const FleetPlan& plan) {
  hello();
  std::vector<std::future<json::Value>> acks;
  acks.reserve(channels_.size());
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    acks.push_back(
        channels_[i]->call_async("control.deploy", plan.to_worker_json(i, channels_.size())));
  }
  for (std::size_t i = 0; i < acks.size(); ++i) {
    json::Value ack = acks[i].get();
    HLOG_INFO("fleet") << "worker " << i << " deployed: " << ack.get_int("txs", 0)
                       << " txs, " << ack.get_int("accounts", 0) << " accounts";
  }
}

void Coordinator::start() {
  HAMMER_CHECK_MSG(!channels_.empty(), "start() before deploy()");
  std::vector<std::future<json::Value>> acks;
  acks.reserve(channels_.size());
  for (auto& ch : channels_) {
    acks.push_back(ch->call_async("control.start", json::Value()));
  }
  for (auto& ack : acks) ack.get();
}

double Coordinator::set_rate(double aggregate_rate) {
  HAMMER_CHECK_MSG(!channels_.empty(), "set_rate() before deploy()");
  HAMMER_CHECK_MSG(aggregate_rate >= 0.0, "aggregate rate must be >= 0");
  const double per_worker = aggregate_rate / static_cast<double>(channels_.size());
  std::vector<std::future<json::Value>> acks;
  acks.reserve(channels_.size());
  for (auto& ch : channels_) {
    acks.push_back(ch->call_async("control.set_rate", json::object({{"rate", per_worker}})));
  }
  for (auto& ack : acks) ack.get();
  HLOG_INFO("fleet") << "set_rate " << aggregate_rate << " tx/s aggregate (" << per_worker
                     << " per worker)";
  return per_worker;
}

FleetResult Coordinator::collect() {
  HAMMER_CHECK_MSG(!channels_.empty(), "collect() before deploy()");
  const util::Clock& clock = *util::SteadyClock::shared();
  const std::int64_t t0_us = clock.now_us();
  const std::int64_t deadline_us =
      t0_us + std::chrono::duration_cast<std::chrono::microseconds>(options_.collect_timeout)
                  .count();

  FleetResult fleet;
  fleet.workers.resize(channels_.size());
  std::vector<bool> done(channels_.size(), false);
  json::Array timeline;
  std::size_t remaining = channels_.size();
  while (remaining > 0) {
    if (clock.now_us() > deadline_us) {
      throw TimeoutError("fleet collect timed out with " + std::to_string(remaining) +
                         " worker(s) still running");
    }
    // One stats sweep per tick feeds the progress timeline...
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    for (std::size_t i = 0; i < channels_.size(); ++i) {
      json::Value stats = channels_[i]->call("control.stats", json::Value());
      submitted += static_cast<std::uint64_t>(stats.get_int("submitted", 0));
      completed += static_cast<std::uint64_t>(stats.get_int("completed", 0));
    }
    timeline.push_back(json::object({{"t_ms", (clock.now_us() - t0_us) / 1000},
                                     {"submitted", submitted},
                                     {"completed", completed}}));
    // ...then a report sweep harvests finished workers (control.report never
    // blocks worker-side; the coordinator owns the waiting).
    for (std::size_t i = 0; i < channels_.size(); ++i) {
      if (done[i]) continue;
      json::Value report = channels_[i]->call("control.report", json::Value());
      if (!report.get_bool("done", false)) continue;
      RunResult result = RunResult::from_wire_json(report.at("result"));
      // The worker stamped its envelope with ITS steady clock; shift it into
      // the coordinator's domain so the merged duration spans real fleet time.
      telemetry::ClockOffset offset = channels_[i]->clock_offset();
      if (result.first_start_us != 0 || result.last_end_us != 0) {
        result.first_start_us = offset.to_local(result.first_start_us);
        result.last_end_us = offset.to_local(result.last_end_us);
      }
      fleet.workers[i] = std::move(result);
      done[i] = true;
      --remaining;
    }
    if (remaining > 0) {
      util::SteadyClock::shared()->sleep_for(
          std::chrono::duration_cast<util::Duration>(options_.stats_interval));
    }
  }
  fleet.merged = merge_run_results(fleet.workers);
  fleet.stats_timeline = json::Value(std::move(timeline));
  fleet.wall_s = static_cast<double>(clock.now_us() - t0_us) / 1e6;
  return fleet;
}

FleetResult Coordinator::run(const FleetPlan& plan) {
  hello();
  deploy(plan);
  start();
  return collect();
}

void Coordinator::stop() {
  if (channels_.empty()) hello();
  for (auto& ch : channels_) {
    // A worker may tear its server down the instant stop_requested_ is
    // set, racing the ack write against the close. A dropped connection
    // here IS a successful stop.
    try {
      ch->call("control.stop", json::Value());
    } catch (const TransportError&) {
    }
  }
}

}  // namespace hammer::core
