#include "core/saturation.hpp"

#include "util/errors.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"

namespace hammer::core {

namespace {

double p99_ms(const RunResult& result) {
  return static_cast<double>(result.latency.percentile(99)) / 1000.0;
}

}  // namespace

json::Value SaturationProbe::to_json() const {
  return json::object({{"target", target},
                       {"offered", offered},
                       {"achieved", achieved},
                       {"p99_ms", p99_ms},
                       {"saturated", saturated}});
}

json::Value SaturationResult::to_json() const {
  json::Array probe_array;
  probe_array.reserve(probes.size());
  for (const SaturationProbe& probe : probes) probe_array.push_back(probe.to_json());
  return json::object({{"max_sustainable_tps", max_sustainable_tps},
                       {"achieved_at_knee", achieved_at_knee},
                       {"base_p99_ms", base_p99_ms},
                       {"found_knee", found_knee},
                       {"probes", json::Value(std::move(probe_array))}});
}

SaturationSearch::SaturationSearch(SaturationOptions options) : options_(options) {
  HAMMER_CHECK_MSG(options_.start_rate > 0.0, "saturation start_rate must be > 0");
  HAMMER_CHECK_MSG(options_.growth > 1.0, "saturation growth must be > 1");
  HAMMER_CHECK_MSG(options_.max_rate >= options_.start_rate,
                   "saturation max_rate must be >= start_rate");
  HAMMER_CHECK_MSG(options_.knee_factor > 1.0, "saturation knee_factor must be > 1");
  HAMMER_CHECK_MSG(options_.sustain_fraction > 0.0 && options_.sustain_fraction < 1.0,
                   "saturation sustain_fraction must be in (0,1)");
  HAMMER_CHECK_MSG(options_.deliver_fraction >= 0.0 && options_.deliver_fraction < 1.0,
                   "saturation deliver_fraction must be in [0,1)");
}

SaturationResult SaturationSearch::run(const ProbeFn& probe) const {
  HAMMER_CHECK(probe != nullptr);
  SaturationResult result;
  std::uint64_t probe_index = 0;

  auto measure = [&](double target) {
    RunResult run = probe(target, util::derive_seed(options_.seed, probe_index));
    ++probe_index;
    SaturationProbe point;
    point.target = target;
    point.offered = run.offered_rate;
    point.achieved = run.achieved_rate;
    point.p99_ms = p99_ms(run);
    return point;
  };

  auto saturated = [&](const SaturationProbe& point) {
    if (result.base_p99_ms > 0.0 && point.p99_ms > options_.knee_factor * result.base_p99_ms) {
      return true;  // latency knee
    }
    if (point.achieved < options_.sustain_fraction * point.offered) {
      return true;  // throughput ceiling: the SUT drops what it is offered
    }
    if (point.offered < options_.sustain_fraction * point.target) {
      return true;  // driver-side collapse: pacing could not even offer it
    }
    if (options_.deliver_fraction > 0.0 &&
        point.achieved < options_.deliver_fraction * point.target) {
      return true;  // absolute shortfall vs the target, wherever it was lost
    }
    return false;
  };

  // Base probe establishes the p99 baseline; a base that saturates on the
  // throughput criteria means the floor rate is already past the knee.
  SaturationProbe base = measure(options_.start_rate);
  result.base_p99_ms = base.p99_ms;
  base.saturated = saturated(base);
  result.probes.push_back(base);
  HLOG_INFO("saturation") << "base " << base.target << " tx/s: achieved " << base.achieved
                          << ", p99 " << base.p99_ms << "ms"
                          << (base.saturated ? " (saturated)" : "");
  if (base.saturated) {
    result.found_knee = true;
    result.achieved_at_knee = base.achieved;
    return result;  // max_sustainable_tps stays 0: nothing sustained
  }

  // Geometric ramp until a probe saturates or the grid runs out.
  double good = options_.start_rate;  // highest rate known to sustain
  double bad = 0.0;                   // first rate known to saturate
  double target = options_.start_rate * options_.growth;
  while (target <= options_.max_rate) {
    SaturationProbe point = measure(target);
    point.saturated = saturated(point);
    result.probes.push_back(point);
    HLOG_INFO("saturation") << "probe " << point.target << " tx/s: achieved "
                            << point.achieved << ", p99 " << point.p99_ms << "ms"
                            << (point.saturated ? " (saturated)" : "");
    if (point.saturated) {
      result.found_knee = true;
      result.achieved_at_knee = point.achieved;
      bad = target;
      break;
    }
    good = target;
    target *= options_.growth;
  }

  // Optional bisection sharpens the bracket; the midpoint sequence is a
  // pure function of the probe outcomes, so reruns stay reproducible.
  if (result.found_knee) {
    for (std::size_t step = 0; step < options_.bisect_steps; ++step) {
      double mid = (good + bad) / 2.0;
      SaturationProbe point = measure(mid);
      point.saturated = saturated(point);
      result.probes.push_back(point);
      if (point.saturated) {
        result.achieved_at_knee = point.achieved;
        bad = mid;
      } else {
        good = mid;
      }
    }
  }

  result.max_sustainable_tps = good;
  return result;
}

}  // namespace hammer::core
