#include "core/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "telemetry/registry.hpp"
#include "util/errors.hpp"

namespace hammer::core {

// Table II. STATUS is '1' for committed transactions; timestamps are
// microseconds, so TIMESTAMPDIFF(SECOND, ...) <= 1 keeps sub-second (and
// exactly-one-second) commits, as in the paper's definition.
const char* const kTpsSql =
    "SELECT COUNT(*) AS TPS FROM Performance WHERE STATUS = '1' AND "
    "TIMESTAMPDIFF(SECOND, start_time, end_time) <= 1";

const char* const kLatencySql =
    "SELECT tx_id, start_time, end_time, "
    "TIMESTAMPDIFF(MILLISECOND, start_time, end_time) AS Latency FROM Performance";

namespace {

// Producer-side hammer_store_* series; the commit-side ones live in
// store_committer.cpp (registry lookups by name are idempotent).
struct PushMetrics {
  telemetry::Counter& rows_buffered;
  telemetry::Counter& rows_dropped;

  static PushMetrics& get() {
    static PushMetrics metrics;
    return metrics;
  }

 private:
  PushMetrics()
      : rows_buffered(telemetry::MetricRegistry::global().counter(
            "hammer_store_rows_buffered_total",
            "Completed records marked dirty for the write-behind committer")),
        rows_dropped(telemetry::MetricRegistry::global().counter(
            "hammer_store_rows_dropped_total",
            "Rows lost to dirty-set overflow or unbuildable records")) {}
};

// Cache hash -> Performance row. Records without an end_time are still
// pending and have no business in the table (nullopt).
std::optional<std::vector<minisql::Cell>> build_performance_row(const std::string& key,
                                                                const kvstore::Hash& fields) {
  if (key.rfind("perf:", 0) != 0 || fields.count("end_time") == 0) return std::nullopt;
  auto field = [&fields](const char* name) -> std::string {
    auto it = fields.find(name);
    return it == fields.end() ? std::string() : it->second;
  };
  return std::vector<minisql::Cell>{
      key.substr(5),           field("status"),       std::stoll(field("start_time")),
      std::stoll(field("end_time")), field("client_id"), field("server_id"),
      field("chainname"),      field("contractname")};
}

}  // namespace

MetricsPipeline::MetricsPipeline(std::shared_ptr<kvstore::KvStore> cache,
                                 std::shared_ptr<minisql::Database> db,
                                 MetricsOptions options)
    : cache_(std::move(cache)), db_(std::move(db)), options_(options) {
  HAMMER_CHECK(cache_ != nullptr);
  HAMMER_CHECK(db_ != nullptr);
  if (!db_->has_table("Performance")) {
    db_->create_table("Performance", {{"tx_id", minisql::ColumnType::kText},
                                      {"status", minisql::ColumnType::kText},
                                      {"start_time", minisql::ColumnType::kInt},
                                      {"end_time", minisql::ColumnType::kInt},
                                      {"client_id", minisql::ColumnType::kText},
                                      {"server_id", minisql::ColumnType::kText},
                                      {"chainname", minisql::ColumnType::kText},
                                      {"contractname", minisql::ColumnType::kText}});
    // Table II's TPS query filters on STATUS = '1'; give the executor an
    // index bucket to push that equality into. tx_id serves point lookups.
    db_->create_index("Performance", "status");
    db_->create_index("Performance", "tx_id");
  }
  if (options_.write_behind) {
    StoreCommitter::Options committer_options;
    committer_options.batch_size = options_.commit_batch_size;
    committer_options.flush_interval = options_.flush_interval;
    committer_options.table = "Performance";
    committer_ = std::make_unique<StoreCommitter>(cache_, db_, build_performance_row,
                                                  committer_options);
  }
}

void MetricsPipeline::push_records(std::span<const TxRecord> records) {
  std::vector<std::pair<std::string, std::string>> fields;
  for (const TxRecord& record : records) {
    std::string key = "perf:" + record.tx_id;
    fields.clear();
    fields.emplace_back(
        "status", record.completed && record.status == chain::TxStatus::kCommitted ? "1" : "0");
    fields.emplace_back("start_time", std::to_string(record.start_us));
    if (record.completed) fields.emplace_back("end_time", std::to_string(record.end_us));
    fields.emplace_back("client_id", record.client_id);
    fields.emplace_back("server_id", record.server_id);
    fields.emplace_back("chainname", record.chainname);
    fields.emplace_back("contractname", record.contractname);

    if (!options_.write_behind) {
      cache_->hset_many(key, fields);
      continue;
    }
    // Completed records enter the dirty set for the committer; pending ones
    // age out on the TTL if they never complete.
    kvstore::KvStore::HsetManyResult result = cache_->hset_many(
        key, fields, /*mark_dirty=*/record.completed,
        record.completed ? util::Duration::zero() : options_.pending_ttl);
    if (result.dirty_marked) PushMetrics::get().rows_buffered.add(1);
    if (result.dirty_dropped) {
      rows_dropped_.fetch_add(1, std::memory_order_relaxed);
      PushMetrics::get().rows_dropped.add(1);
    }
  }
  if (options_.write_behind && committer_ && committer_->running() &&
      cache_->dirty_count() >= options_.commit_batch_size) {
    committer_->notify();
  }
}

std::size_t MetricsPipeline::commit_to_sql() {
  // Collect completed records first (the scan holds shard locks), then
  // insert + delete.
  std::vector<std::pair<std::string, kvstore::Hash>> done;
  cache_->scan_hashes([&](const std::string& key, const kvstore::Hash& value) {
    if (key.rfind("perf:", 0) == 0 && value.count("end_time") > 0) {
      done.emplace_back(key, value);
    }
  });
  for (const auto& [key, hash_fields] : done) {
    std::optional<std::vector<minisql::Cell>> row = build_performance_row(key, hash_fields);
    if (row) db_->insert("Performance", std::move(*row));
    cache_->del(key);
  }
  return done.size();
}

void MetricsPipeline::start_committer() {
  if (committer_) committer_->start();
}

std::size_t MetricsPipeline::flush() { return committer_ ? committer_->flush() : 0; }

std::size_t MetricsPipeline::flush_and_stop() {
  return committer_ ? committer_->flush_and_stop() : 0;
}

std::uint64_t MetricsPipeline::rows_dropped() const {
  std::uint64_t dropped = rows_dropped_.load(std::memory_order_relaxed);
  return committer_ ? dropped + committer_->rows_dropped() : dropped;
}

std::uint64_t MetricsPipeline::rows_committed() const {
  return committer_ ? committer_->rows_committed() : 0;
}

std::int64_t MetricsPipeline::query_tps() const {
  minisql::ResultSet rs = db_->query(kTpsSql);
  HAMMER_CHECK(rs.rows.size() == 1);
  return std::get<std::int64_t>(rs.rows[0][0]);
}

minisql::ResultSet MetricsPipeline::query_latencies() const { return db_->query(kLatencySql); }

json::Value RunResult::to_json() const {
  json::Value v =
      json::object({{"submitted", submitted},
                    {"committed", committed},
                    {"failed", failed},
                    {"rejected", rejected},
                    {"unmatched", unmatched},
                    {"retries", retries},
                    {"send_failures", send_failures},
                    {"duration_s", duration_s},
                    {"tps", tps},
                    {"latency_mean_ms", latency.mean() / 1000.0},
                    {"latency_p50_ms", static_cast<double>(latency.percentile(50)) / 1000.0},
                    {"latency_p99_ms", static_cast<double>(latency.percentile(99)) / 1000.0}});
  if (!stages.is_null()) v.as_object()["stages"] = stages;
  if (!faults.is_null()) v.as_object()["faults"] = faults;
  if (!targets.is_null()) v.as_object()["targets"] = targets;
  if (!processor.is_null()) v.as_object()["processor"] = processor;
  return v;
}

std::string RunResult::summary() const {
  std::ostringstream os;
  os << "submitted=" << submitted << " committed=" << committed << " failed=" << failed
     << " rejected=" << rejected << " unmatched=" << unmatched << " tps=" << tps
     << " latency{" << latency.summary() << "}";
  if (retries > 0 || send_failures > 0) {
    os << " retries=" << retries << " send_failures=" << send_failures;
  }
  return os.str();
}

RunResult summarize(std::span<const TxRecord> records) {
  RunResult result;
  std::int64_t first_start = INT64_MAX;
  std::int64_t last_end = INT64_MIN;
  for (const TxRecord& record : records) {
    ++result.submitted;
    first_start = std::min(first_start, record.start_us);
    if (!record.completed) {
      ++result.unmatched;
      continue;
    }
    last_end = std::max(last_end, record.end_us);
    if (record.status == chain::TxStatus::kCommitted) {
      ++result.committed;
      result.latency.record(record.end_us - record.start_us);
    } else {
      ++result.failed;
    }
  }
  if (result.committed > 0 && last_end > first_start) {
    result.duration_s = static_cast<double>(last_end - first_start) / 1e6;
    result.tps = static_cast<double>(result.committed) / result.duration_s;
  }
  return result;
}

}  // namespace hammer::core
