#include "core/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "telemetry/registry.hpp"
#include "util/errors.hpp"

namespace hammer::core {

// Table II. STATUS is '1' for committed transactions; timestamps are
// microseconds, so TIMESTAMPDIFF(SECOND, ...) <= 1 keeps sub-second (and
// exactly-one-second) commits, as in the paper's definition.
const char* const kTpsSql =
    "SELECT COUNT(*) AS TPS FROM Performance WHERE STATUS = '1' AND "
    "TIMESTAMPDIFF(SECOND, start_time, end_time) <= 1";

const char* const kLatencySql =
    "SELECT tx_id, start_time, end_time, "
    "TIMESTAMPDIFF(MILLISECOND, start_time, end_time) AS Latency FROM Performance";

namespace {

// Producer-side hammer_store_* series; the commit-side ones live in
// store_committer.cpp (registry lookups by name are idempotent).
struct PushMetrics {
  telemetry::Counter& rows_buffered;
  telemetry::Counter& rows_dropped;

  static PushMetrics& get() {
    static PushMetrics metrics;
    return metrics;
  }

 private:
  PushMetrics()
      : rows_buffered(telemetry::MetricRegistry::global().counter(
            "hammer_store_rows_buffered_total",
            "Completed records marked dirty for the write-behind committer")),
        rows_dropped(telemetry::MetricRegistry::global().counter(
            "hammer_store_rows_dropped_total",
            "Rows lost to dirty-set overflow or unbuildable records")) {}
};

// Cache hash -> Performance row. Records without an end_time are still
// pending and have no business in the table (nullopt).
std::optional<std::vector<minisql::Cell>> build_performance_row(const std::string& key,
                                                                const kvstore::Hash& fields) {
  if (key.rfind("perf:", 0) != 0 || fields.count("end_time") == 0) return std::nullopt;
  auto field = [&fields](const char* name) -> std::string {
    auto it = fields.find(name);
    return it == fields.end() ? std::string() : it->second;
  };
  return std::vector<minisql::Cell>{
      key.substr(5),           field("status"),       std::stoll(field("start_time")),
      std::stoll(field("end_time")), field("client_id"), field("server_id"),
      field("chainname"),      field("contractname")};
}

}  // namespace

MetricsPipeline::MetricsPipeline(std::shared_ptr<kvstore::KvStore> cache,
                                 std::shared_ptr<minisql::Database> db,
                                 MetricsOptions options)
    : cache_(std::move(cache)), db_(std::move(db)), options_(options) {
  HAMMER_CHECK(cache_ != nullptr);
  HAMMER_CHECK(db_ != nullptr);
  if (!db_->has_table("Performance")) {
    db_->create_table("Performance", {{"tx_id", minisql::ColumnType::kText},
                                      {"status", minisql::ColumnType::kText},
                                      {"start_time", minisql::ColumnType::kInt},
                                      {"end_time", minisql::ColumnType::kInt},
                                      {"client_id", minisql::ColumnType::kText},
                                      {"server_id", minisql::ColumnType::kText},
                                      {"chainname", minisql::ColumnType::kText},
                                      {"contractname", minisql::ColumnType::kText}});
    // Table II's TPS query filters on STATUS = '1'; give the executor an
    // index bucket to push that equality into. tx_id serves point lookups.
    db_->create_index("Performance", "status");
    db_->create_index("Performance", "tx_id");
  }
  if (options_.write_behind) {
    StoreCommitter::Options committer_options;
    committer_options.batch_size = options_.commit_batch_size;
    committer_options.flush_interval = options_.flush_interval;
    committer_options.table = "Performance";
    committer_ = std::make_unique<StoreCommitter>(cache_, db_, build_performance_row,
                                                  committer_options);
  }
}

void MetricsPipeline::push_records(std::span<const TxRecord> records) {
  std::vector<std::pair<std::string, std::string>> fields;
  for (const TxRecord& record : records) {
    std::string key = "perf:" + record.tx_id;
    fields.clear();
    fields.emplace_back(
        "status", record.completed && record.status == chain::TxStatus::kCommitted ? "1" : "0");
    fields.emplace_back("start_time", std::to_string(record.start_us));
    if (record.completed) fields.emplace_back("end_time", std::to_string(record.end_us));
    fields.emplace_back("client_id", record.client_id);
    fields.emplace_back("server_id", record.server_id);
    fields.emplace_back("chainname", record.chainname);
    fields.emplace_back("contractname", record.contractname);

    if (!options_.write_behind) {
      cache_->hset_many(key, fields);
      continue;
    }
    // Completed records enter the dirty set for the committer; pending ones
    // age out on the TTL if they never complete.
    kvstore::KvStore::HsetManyResult result = cache_->hset_many(
        key, fields, /*mark_dirty=*/record.completed,
        record.completed ? util::Duration::zero() : options_.pending_ttl);
    if (result.dirty_marked) PushMetrics::get().rows_buffered.add(1);
    if (result.dirty_dropped) {
      rows_dropped_.fetch_add(1, std::memory_order_relaxed);
      PushMetrics::get().rows_dropped.add(1);
    }
  }
  if (options_.write_behind && committer_ && committer_->running() &&
      cache_->dirty_count() >= options_.commit_batch_size) {
    committer_->notify();
  }
}

std::size_t MetricsPipeline::commit_to_sql() {
  // Collect completed records first (the scan holds shard locks), then
  // insert + delete.
  std::vector<std::pair<std::string, kvstore::Hash>> done;
  cache_->scan_hashes([&](const std::string& key, const kvstore::Hash& value) {
    if (key.rfind("perf:", 0) == 0 && value.count("end_time") > 0) {
      done.emplace_back(key, value);
    }
  });
  for (const auto& [key, hash_fields] : done) {
    std::optional<std::vector<minisql::Cell>> row = build_performance_row(key, hash_fields);
    if (row) db_->insert("Performance", std::move(*row));
    cache_->del(key);
  }
  return done.size();
}

void MetricsPipeline::start_committer() {
  if (committer_) committer_->start();
}

std::size_t MetricsPipeline::flush() { return committer_ ? committer_->flush() : 0; }

std::size_t MetricsPipeline::flush_and_stop() {
  return committer_ ? committer_->flush_and_stop() : 0;
}

std::uint64_t MetricsPipeline::rows_dropped() const {
  std::uint64_t dropped = rows_dropped_.load(std::memory_order_relaxed);
  return committer_ ? dropped + committer_->rows_dropped() : dropped;
}

std::uint64_t MetricsPipeline::rows_committed() const {
  return committer_ ? committer_->rows_committed() : 0;
}

std::int64_t MetricsPipeline::query_tps() const {
  minisql::ResultSet rs = db_->query(kTpsSql);
  HAMMER_CHECK(rs.rows.size() == 1);
  return std::get<std::int64_t>(rs.rows[0][0]);
}

minisql::ResultSet MetricsPipeline::query_latencies() const { return db_->query(kLatencySql); }

json::Value RunResult::to_json() const {
  json::Value v =
      json::object({{"submitted", submitted},
                    {"committed", committed},
                    {"failed", failed},
                    {"rejected", rejected},
                    {"unmatched", unmatched},
                    {"retries", retries},
                    {"send_failures", send_failures},
                    {"duration_s", duration_s},
                    {"tps", tps},
                    {"target_rate", target_rate},
                    {"offered_rate", offered_rate},
                    {"achieved_rate", achieved_rate},
                    {"latency_mean_ms", latency.mean() / 1000.0},
                    {"latency_p50_ms", static_cast<double>(latency.percentile(50)) / 1000.0},
                    {"latency_p99_ms", static_cast<double>(latency.percentile(99)) / 1000.0}});
  if (!stages.is_null()) v.as_object()["stages"] = stages;
  if (!faults.is_null()) v.as_object()["faults"] = faults;
  if (!targets.is_null()) v.as_object()["targets"] = targets;
  if (!processor.is_null()) v.as_object()["processor"] = processor;
  return v;
}

std::string RunResult::summary() const {
  std::ostringstream os;
  os << "submitted=" << submitted << " committed=" << committed << " failed=" << failed
     << " rejected=" << rejected << " unmatched=" << unmatched << " tps=" << tps
     << " latency{" << latency.summary() << "}";
  if (retries > 0 || send_failures > 0) {
    os << " retries=" << retries << " send_failures=" << send_failures;
  }
  if (target_rate > 0.0) {
    os << " target_rate=" << target_rate << " offered_rate=" << offered_rate;
  }
  return os.str();
}

RunResult summarize(std::span<const TxRecord> records) {
  RunResult result;
  std::int64_t first_start = INT64_MAX;
  std::int64_t last_end = INT64_MIN;
  for (const TxRecord& record : records) {
    ++result.submitted;
    first_start = std::min(first_start, record.start_us);
    if (!record.completed) {
      ++result.unmatched;
      continue;
    }
    last_end = std::max(last_end, record.end_us);
    if (record.status == chain::TxStatus::kCommitted) {
      ++result.committed;
      result.latency.record(record.end_us - record.start_us);
    } else {
      ++result.failed;
    }
  }
  if (first_start != INT64_MAX) result.first_start_us = first_start;
  if (last_end != INT64_MIN) result.last_end_us = last_end;
  if (result.committed > 0 && last_end > first_start) {
    result.duration_s = static_cast<double>(last_end - first_start) / 1e6;
    result.tps = static_cast<double>(result.committed) / result.duration_s;
  }
  return result;
}

namespace {

// Sparse histogram encoding: only non-zero buckets cross the wire, as
// [index, count] pairs — a run's latencies cluster in a few dozen of the
// ~2000 buckets, so this stays small at any workload size.
json::Value histogram_to_json(const util::Histogram& h) {
  json::Array buckets;
  const std::vector<std::uint64_t>& counts = h.bucket_counts();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    json::Array pair;
    pair.push_back(json::Value(static_cast<std::int64_t>(i)));
    pair.push_back(json::Value(static_cast<std::int64_t>(counts[i])));
    buckets.push_back(json::Value(std::move(pair)));
  }
  return json::object({{"buckets", json::Value(std::move(buckets))},
                       {"sum", h.sum()},
                       {"min", h.min()},
                       {"max", h.max()}});
}

util::Histogram histogram_from_json(const json::Value& v, std::size_t num_buckets) {
  std::vector<std::uint64_t> counts(num_buckets, 0);
  for (const json::Value& pair : v.at("buckets").as_array()) {
    const json::Array& entry = pair.as_array();
    HAMMER_CHECK_MSG(entry.size() == 2, "histogram bucket pair must be [index, count]");
    auto index = static_cast<std::size_t>(entry[0].as_int());
    HAMMER_CHECK_MSG(index < counts.size(), "histogram bucket index out of layout");
    counts[index] = static_cast<std::uint64_t>(entry[1].as_int());
  }
  return util::Histogram::from_parts(counts, v.at("sum").as_int(), v.at("min").as_int(),
                                     v.at("max").as_int());
}

}  // namespace

json::Value RunResult::to_wire_json() const {
  json::Value v = json::object({{"submitted", submitted},
                                {"committed", committed},
                                {"failed", failed},
                                {"rejected", rejected},
                                {"unmatched", unmatched},
                                {"retries", retries},
                                {"send_failures", send_failures},
                                {"duration_s", duration_s},
                                {"tps", tps},
                                {"target_rate", target_rate},
                                {"offered_rate", offered_rate},
                                {"achieved_rate", achieved_rate},
                                {"first_start_us", first_start_us},
                                {"last_end_us", last_end_us},
                                {"latency", histogram_to_json(latency)}});
  if (!stages.is_null()) v.as_object()["stages"] = stages;
  if (!faults.is_null()) v.as_object()["faults"] = faults;
  if (!targets.is_null()) v.as_object()["targets"] = targets;
  if (!processor.is_null()) v.as_object()["processor"] = processor;
  return v;
}

RunResult RunResult::from_wire_json(const json::Value& v) {
  RunResult r;
  r.submitted = static_cast<std::uint64_t>(v.at("submitted").as_int());
  r.committed = static_cast<std::uint64_t>(v.at("committed").as_int());
  r.failed = static_cast<std::uint64_t>(v.at("failed").as_int());
  r.rejected = static_cast<std::uint64_t>(v.at("rejected").as_int());
  r.unmatched = static_cast<std::uint64_t>(v.at("unmatched").as_int());
  r.retries = static_cast<std::uint64_t>(v.at("retries").as_int());
  r.send_failures = static_cast<std::uint64_t>(v.at("send_failures").as_int());
  r.duration_s = v.at("duration_s").as_double();
  r.tps = v.at("tps").as_double();
  // Rate fields default to 0 so pre-rate-control reports still parse.
  r.target_rate = v.get_double("target_rate", 0.0);
  r.offered_rate = v.get_double("offered_rate", 0.0);
  r.achieved_rate = v.get_double("achieved_rate", 0.0);
  r.first_start_us = v.at("first_start_us").as_int();
  r.last_end_us = v.at("last_end_us").as_int();
  r.latency = histogram_from_json(v.at("latency"), r.latency.bucket_counts().size());
  if (v.contains("stages")) r.stages = v.at("stages");
  if (v.contains("faults")) r.faults = v.at("faults");
  if (v.contains("targets")) r.targets = v.at("targets");
  if (v.contains("processor")) r.processor = v.at("processor");
  return r;
}

RunResult merge_run_results(std::span<const RunResult> parts) {
  RunResult merged;
  if (parts.empty()) return merged;
  std::int64_t first_start = INT64_MAX;
  std::int64_t last_end = INT64_MIN;
  json::Object fault_sums;
  json::Array all_targets;
  bool any_faults = false;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const RunResult& part = parts[i];
    merged.submitted += part.submitted;
    merged.committed += part.committed;
    merged.failed += part.failed;
    merged.rejected += part.rejected;
    merged.unmatched += part.unmatched;
    merged.retries += part.retries;
    merged.send_failures += part.send_failures;
    // Workers offer concurrently, so fleet-aggregate rates are sums (the
    // same split control.set_rate applies in reverse).
    merged.target_rate += part.target_rate;
    merged.offered_rate += part.offered_rate;
    merged.latency.merge(part.latency);
    // A part with no records keeps the zero envelope; it must not drag the
    // merged first_start to 0.
    if (part.first_start_us != 0 || part.last_end_us != 0) {
      first_start = std::min(first_start, part.first_start_us);
      last_end = std::max(last_end, part.last_end_us);
    }
    if (!part.faults.is_null()) {
      any_faults = true;
      for (const auto& [kind, n] : part.faults.as_object()) {
        auto it = fault_sums.find(kind);
        std::int64_t prior = it == fault_sums.end() ? 0 : it->second.as_int();
        fault_sums[kind] = prior + n.as_int();
      }
    }
    if (!part.targets.is_null()) {
      for (const json::Value& target : part.targets.as_array()) {
        json::Value tagged = target;
        tagged.as_object()["worker"] = static_cast<std::int64_t>(i);
        all_targets.push_back(std::move(tagged));
      }
    }
  }
  if (first_start != INT64_MAX) {
    merged.first_start_us = first_start;
    merged.last_end_us = last_end;
  }
  if (merged.committed > 0 && last_end > first_start) {
    merged.duration_s = static_cast<double>(last_end - first_start) / 1e6;
    merged.tps = static_cast<double>(merged.committed) / merged.duration_s;
  }
  merged.achieved_rate = merged.tps;
  if (any_faults) merged.faults = json::Value(std::move(fault_sums));
  if (!all_targets.empty()) merged.targets = json::Value(std::move(all_targets));
  return merged;
}

}  // namespace hammer::core
