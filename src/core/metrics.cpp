#include "core/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "util/errors.hpp"

namespace hammer::core {

// Table II. STATUS is '1' for committed transactions; timestamps are
// microseconds, so TIMESTAMPDIFF(SECOND, ...) <= 1 keeps sub-second (and
// exactly-one-second) commits, as in the paper's definition.
const char* const kTpsSql =
    "SELECT COUNT(*) AS TPS FROM Performance WHERE STATUS = '1' AND "
    "TIMESTAMPDIFF(SECOND, start_time, end_time) <= 1";

const char* const kLatencySql =
    "SELECT tx_id, start_time, end_time, "
    "TIMESTAMPDIFF(MILLISECOND, start_time, end_time) AS Latency FROM Performance";

MetricsPipeline::MetricsPipeline(std::shared_ptr<kvstore::KvStore> cache,
                                 std::shared_ptr<minisql::Database> db)
    : cache_(std::move(cache)), db_(std::move(db)) {
  HAMMER_CHECK(cache_ != nullptr);
  HAMMER_CHECK(db_ != nullptr);
  if (!db_->has_table("Performance")) {
    db_->create_table("Performance", {{"tx_id", minisql::ColumnType::kText},
                                      {"status", minisql::ColumnType::kText},
                                      {"start_time", minisql::ColumnType::kInt},
                                      {"end_time", minisql::ColumnType::kInt},
                                      {"client_id", minisql::ColumnType::kText},
                                      {"server_id", minisql::ColumnType::kText},
                                      {"chainname", minisql::ColumnType::kText},
                                      {"contractname", minisql::ColumnType::kText}});
  }
}

void MetricsPipeline::push_records(std::span<const TxRecord> records) {
  for (const TxRecord& record : records) {
    std::string key = "perf:" + record.tx_id;
    cache_->hset(key, "status",
                 record.completed && record.status == chain::TxStatus::kCommitted ? "1" : "0");
    cache_->hset(key, "start_time", std::to_string(record.start_us));
    if (record.completed) cache_->hset(key, "end_time", std::to_string(record.end_us));
    cache_->hset(key, "client_id", record.client_id);
    cache_->hset(key, "server_id", record.server_id);
    cache_->hset(key, "chainname", record.chainname);
    cache_->hset(key, "contractname", record.contractname);
  }
}

std::size_t MetricsPipeline::commit_to_sql() {
  // Collect completed records first (the scan holds shard locks), then
  // insert + delete.
  std::vector<std::pair<std::string, kvstore::Hash>> done;
  cache_->scan_hashes([&](const std::string& key, const kvstore::Hash& value) {
    if (key.rfind("perf:", 0) == 0 && value.count("end_time") > 0) {
      done.emplace_back(key, value);
    }
  });
  for (const auto& [key, fields] : done) {
    auto field = [&fields](const char* name) -> std::string {
      auto it = fields.find(name);
      return it == fields.end() ? std::string() : it->second;
    };
    db_->insert("Performance",
                {key.substr(5), field("status"), std::stoll(field("start_time")),
                 std::stoll(field("end_time")), field("client_id"), field("server_id"),
                 field("chainname"), field("contractname")});
    cache_->del(key);
  }
  return done.size();
}

std::int64_t MetricsPipeline::query_tps() const {
  minisql::ResultSet rs = db_->query(kTpsSql);
  HAMMER_CHECK(rs.rows.size() == 1);
  return std::get<std::int64_t>(rs.rows[0][0]);
}

minisql::ResultSet MetricsPipeline::query_latencies() const { return db_->query(kLatencySql); }

json::Value RunResult::to_json() const {
  json::Value v =
      json::object({{"submitted", submitted},
                    {"committed", committed},
                    {"failed", failed},
                    {"rejected", rejected},
                    {"unmatched", unmatched},
                    {"retries", retries},
                    {"send_failures", send_failures},
                    {"duration_s", duration_s},
                    {"tps", tps},
                    {"latency_mean_ms", latency.mean() / 1000.0},
                    {"latency_p50_ms", static_cast<double>(latency.percentile(50)) / 1000.0},
                    {"latency_p99_ms", static_cast<double>(latency.percentile(99)) / 1000.0}});
  if (!stages.is_null()) v.as_object()["stages"] = stages;
  if (!faults.is_null()) v.as_object()["faults"] = faults;
  if (!targets.is_null()) v.as_object()["targets"] = targets;
  if (!processor.is_null()) v.as_object()["processor"] = processor;
  return v;
}

std::string RunResult::summary() const {
  std::ostringstream os;
  os << "submitted=" << submitted << " committed=" << committed << " failed=" << failed
     << " rejected=" << rejected << " unmatched=" << unmatched << " tps=" << tps
     << " latency{" << latency.summary() << "}";
  if (retries > 0 || send_failures > 0) {
    os << " retries=" << retries << " send_failures=" << send_failures;
  }
  return os.str();
}

RunResult summarize(std::span<const TxRecord> records) {
  RunResult result;
  std::int64_t first_start = INT64_MAX;
  std::int64_t last_end = INT64_MIN;
  for (const TxRecord& record : records) {
    ++result.submitted;
    first_start = std::min(first_start, record.start_us);
    if (!record.completed) {
      ++result.unmatched;
      continue;
    }
    last_end = std::max(last_end, record.end_us);
    if (record.status == chain::TxStatus::kCommitted) {
      ++result.committed;
      result.latency.record(record.end_us - record.start_us);
    } else {
      ++result.failed;
    }
  }
  if (result.committed > 0 && last_end > first_start) {
    result.duration_s = static_cast<double>(last_end - first_start) / 1e6;
    result.tps = static_cast<double>(result.committed) / result.duration_s;
  }
  return result;
}

}  // namespace hammer::core
