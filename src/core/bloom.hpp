// Bloom filter used by the task-processing algorithm (paper Alg. 1 lines
// 14-17): transaction ids parsed from a block are first screened against
// the filter; ids Hammer never submitted (other clients' traffic in a
// shared SUT, relay artifacts, ...) are rejected without touching the hash
// index. Double hashing (Kirsch-Mitzenmatcher) derives the k probe
// positions from two 64-bit FNV-1a variants.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace hammer::core {

class BloomFilter {
 public:
  // Sized for `expected_items` at `fp_rate` false positives (m = -n ln p /
  // ln^2 2, k = m/n ln 2).
  BloomFilter(std::size_t expected_items, double fp_rate);

  void insert(std::string_view key);
  bool may_contain(std::string_view key) const;

  std::size_t bit_count() const { return bit_count_; }
  std::size_t hash_count() const { return num_hashes_; }
  std::size_t inserted() const { return inserted_; }

  // Expected false-positive rate at the current fill level.
  double estimated_fp_rate() const;

 private:
  std::vector<std::uint64_t> bits_;
  std::size_t bit_count_;
  std::size_t num_hashes_;
  std::size_t inserted_ = 0;
};

}  // namespace hammer::core
