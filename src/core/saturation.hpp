// Saturation search (DESIGN.md §14): finds the knee of the offered-load /
// latency curve — the max sustainable TPS — by ramping a paced driver.
//
// The search probes a caller-supplied ProbeFn at geometrically-growing
// offered rates (start_rate × growth^k). A probe saturates when any of:
//
//   1. its p99 latency exceeds knee_factor × the base probe's p99 (the
//      classic latency knee: queues form, service time explodes),
//   2. the SUT commits less than sustain_fraction of what was offered
//      (throughput ceiling without a visible latency knee), or
//   3. the driver could not even OFFER sustain_fraction of the target
//      (the driving side itself is resource-starved — e.g. cpu_burn eating
//      the client's cores — which is a capacity collapse all the same), or
//   4. (when deliver_fraction > 0) the committed rate fell under
//      deliver_fraction × target — an absolute floor that catches contention
//      dragging offered and achieved down together, which keeps the relative
//      ratios of 2./3. looking healthy while capacity is in fact gone.
//
// max_sustainable_tps is the TARGET rate of the last non-saturated probe —
// a grid value, so two searches over the same seeded SUT converge to the
// same knee (asserted by smoke.saturation). bisect_steps > 0 refines
// between the last good and first saturated rates, halving the bracket
// each step (still deterministic: the bracket sequence is a pure function
// of the probe outcomes).
//
// Probe k drives with util::derive_seed(seed, k), so every probe's workload
// and fault stream is decorrelated but reproducible; re-running the search
// replays the exact probe sequence.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/metrics.hpp"
#include "json/json.hpp"

namespace hammer::core {

struct SaturationOptions {
  double start_rate = 100.0;      // first (base) probe; also the p99 baseline
  double growth = 2.0;            // grid multiplier, must be > 1
  double max_rate = 1e6;          // give up ramping past this
  double knee_factor = 5.0;       // p99 knee: p99 > knee_factor * base_p99
  double sustain_fraction = 0.9;  // throughput knee: achieved/offered floor
  // Optional absolute floor: achieved < deliver_fraction * target reads as
  // saturated even when achieved/offered still looks healthy (the case where
  // contention drags the offered rate down with the achieved rate, hiding
  // the collapse from the relative criteria). 0 disables it.
  double deliver_fraction = 0.0;
  std::size_t bisect_steps = 0;   // refinement probes inside the knee bracket
  std::uint64_t seed = 1;         // master seed; probe k uses derive_seed(seed, k)
};

// One measured point of the search. `target` is what the search asked for;
// offered/achieved/p99 come from the probe's RunResult.
struct SaturationProbe {
  double target = 0.0;
  double offered = 0.0;
  double achieved = 0.0;
  double p99_ms = 0.0;
  bool saturated = false;

  json::Value to_json() const;
};

struct SaturationResult {
  // Target rate of the last probe that sustained its load (grid value, or a
  // bisection refinement when bisect_steps > 0). 0 when even the base probe
  // saturated.
  double max_sustainable_tps = 0.0;
  // Committed TPS measured at the first saturated probe (what the SUT
  // degrades to past the knee); 0 when the ramp hit max_rate unsaturated.
  double achieved_at_knee = 0.0;
  double base_p99_ms = 0.0;
  bool found_knee = false;  // false: max_rate reached without saturating
  std::vector<SaturationProbe> probes;

  json::Value to_json() const;
};

class SaturationSearch {
 public:
  // Runs one paced burst at `rate` seeded with `seed` and returns its
  // RunResult (offered_rate and the latency histogram are what the search
  // reads). Probes run sequentially, never concurrently.
  using ProbeFn = std::function<RunResult(double rate, std::uint64_t seed)>;

  explicit SaturationSearch(SaturationOptions options);

  SaturationResult run(const ProbeFn& probe) const;

 private:
  SaturationOptions options_;
};

}  // namespace hammer::core
