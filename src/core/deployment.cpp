#include "core/deployment.hpp"

#include <algorithm>

#include "chain/factory.hpp"
#include "rpc/channel_pool.hpp"
#include "telemetry/endpoint.hpp"
#include "util/errors.hpp"
#include "util/logging.hpp"

namespace hammer::core {

namespace {

// Every key a chain spec may carry. Deploy rejects anything else by name —
// a misspelled knob must fail loudly, not silently run the default.
const char* const kKnownSpecKeys[] = {
    "kind",          "name",          "num_shards",       "pool_capacity",
    "max_block_txs", "block_interval_ms", "verify_signatures", "commit_cost_us",
    "ingress_cost_us", "seed",        "hash_rate",        "endorsers",
    "transport",     "endpoints",     "rpc_workers",      "smallbank_accounts_per_shard",
    "initial_checking", "initial_savings", "faults"};

void validate_spec_keys(const json::Value& spec) {
  for (const auto& [key, value] : spec.as_object()) {
    (void)value;
    if (!is_known_chain_spec_key(key)) {
      throw ParseError("unknown chain spec key '" + key + "' in chain '" +
                       spec.get_string("name", "?") + "'");
    }
  }
}

}  // namespace

bool is_known_chain_spec_key(const std::string& key) {
  return std::any_of(std::begin(kKnownSpecKeys), std::end(kKnownSpecKeys),
                     [&](const char* k) { return key == k; });
}

std::shared_ptr<rpc::Channel> DeployedChain::connect(
    const rpc::ClientConfig& config, std::shared_ptr<fault::FaultInjector> client_faults,
    std::size_t endpoint) const {
  HAMMER_CHECK_MSG(endpoint < endpoint_count(), "endpoint index out of range");
  const rpc::TcpServer* server =
      endpoint == 0 ? tcp_server.get() : extra_endpoints[endpoint - 1].tcp_server.get();
  if (server != nullptr) {
    auto channel = std::make_shared<rpc::TcpChannel>("127.0.0.1", server->port(), config);
    if (client_faults) channel->install_fault_injector(std::move(client_faults));
    return channel;
  }
  return std::make_shared<rpc::InProcChannel>(
      endpoint == 0 ? dispatcher : extra_endpoints[endpoint - 1].dispatcher);
}

std::vector<std::shared_ptr<adapters::ChainAdapter>> DeployedChain::make_adapters(
    std::size_t count, const rpc::ClientConfig& config,
    std::shared_ptr<fault::FaultInjector> client_faults) const {
  std::vector<std::shared_ptr<adapters::ChainAdapter>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(std::make_shared<adapters::ChainAdapter>(connect(config, client_faults),
                                                           config));
  }
  return out;
}

std::shared_ptr<SutCluster> DeployedChain::make_cluster(
    std::size_t workers_per_target, std::size_t channels_per_target,
    const rpc::ClientConfig& config,
    std::shared_ptr<fault::FaultInjector> client_faults) const {
  HAMMER_CHECK_MSG(workers_per_target >= 1, "make_cluster needs >= 1 worker per target");
  const std::size_t n = endpoint_count();
  const std::uint32_t shards = chain->num_shards();
  std::vector<std::unique_ptr<SutTarget>> targets;
  targets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rpc::ClientConfig target_config = config;
    target_config.target_index = i;
    // Workers share a small channel pool; TcpChannel multiplexes in-flight
    // calls by id, so P sockets carry M > P workers without head-of-line
    // blocking on whole calls.
    rpc::ChannelPool pool([&] { return connect(target_config, client_faults, i); },
                          std::min(std::max<std::size_t>(1, channels_per_target),
                                   workers_per_target));
    std::vector<std::shared_ptr<adapters::ChainAdapter>> workers;
    workers.reserve(workers_per_target);
    for (std::size_t w = 0; w < workers_per_target; ++w) {
      workers.push_back(
          std::make_shared<adapters::ChainAdapter>(pool.next(), target_config));
    }
    // The poller never shares a socket with submissions.
    auto poller = std::make_shared<adapters::ChainAdapter>(
        connect(target_config, client_faults, i), target_config);
    std::vector<std::uint32_t> owned;
    for (std::uint32_t s = 0; s < shards; ++s) {
      if (s % n == i) owned.push_back(s);
    }
    targets.push_back(
        std::make_unique<SutTarget>(i, std::move(workers), std::move(poller), std::move(owned)));
  }
  return std::make_shared<SutCluster>(std::move(targets));
}

std::vector<std::uint16_t> DeployedChain::tcp_ports() const {
  HAMMER_CHECK_MSG(tcp_server != nullptr,
                   "tcp_ports() needs transport \"tcp\" — in-process endpoints are not dialable");
  std::vector<std::uint16_t> ports;
  ports.reserve(endpoint_count());
  ports.push_back(tcp_server->port());
  for (const ExtraEndpoint& extra : extra_endpoints) {
    HAMMER_CHECK(extra.tcp_server != nullptr);
    ports.push_back(extra.tcp_server->port());
  }
  return ports;
}

std::shared_ptr<SutCluster> make_remote_cluster(
    const std::vector<RemoteEndpoint>& endpoints, std::size_t workers_per_target,
    std::size_t channels_per_target, const rpc::ClientConfig& config,
    std::shared_ptr<fault::FaultInjector> client_faults) {
  HAMMER_CHECK_MSG(!endpoints.empty(), "make_remote_cluster needs >= 1 endpoint");
  HAMMER_CHECK_MSG(workers_per_target >= 1, "make_remote_cluster needs >= 1 worker per target");
  const std::size_t n = endpoints.size();
  std::uint32_t shards = 1;
  std::vector<std::unique_ptr<SutTarget>> targets;
  targets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rpc::ClientConfig target_config = config;
    target_config.target_index = i;
    auto dial = [&](bool with_faults) {
      auto channel = std::make_shared<rpc::TcpChannel>(endpoints[i].host, endpoints[i].port,
                                                       target_config);
      if (with_faults && client_faults) channel->install_fault_injector(client_faults);
      return channel;
    };
    rpc::ChannelPool pool([&] { return dial(/*with_faults=*/true); },
                          std::min(std::max<std::size_t>(1, channels_per_target),
                                   workers_per_target));
    std::vector<std::shared_ptr<adapters::ChainAdapter>> workers;
    workers.reserve(workers_per_target);
    for (std::size_t w = 0; w < workers_per_target; ++w) {
      workers.push_back(std::make_shared<adapters::ChainAdapter>(pool.next(), target_config));
    }
    auto poller =
        std::make_shared<adapters::ChainAdapter>(dial(/*with_faults=*/false), target_config);
    if (i == 0) shards = poller->info().shards;
    std::vector<std::uint32_t> owned;
    for (std::uint32_t s = 0; s < shards; ++s) {
      if (s % n == i) owned.push_back(s);
    }
    targets.push_back(
        std::make_unique<SutTarget>(i, std::move(workers), std::move(poller), std::move(owned)));
  }
  return std::make_shared<SutCluster>(std::move(targets));
}

Deployment Deployment::deploy(const json::Value& plan, std::shared_ptr<util::Clock> clock) {
  HAMMER_CHECK(clock != nullptr);
  Deployment deployment;
  for (const json::Value& spec : plan.at("chains").as_array()) {
    validate_spec_keys(spec);
    auto deployed = std::make_unique<DeployedChain>();
    deployed->chain = chain::make_chain(spec, clock);

    auto endpoints = static_cast<std::uint32_t>(spec.get_int("endpoints", 1));
    HAMMER_CHECK_MSG(endpoints >= 1, "chain spec needs endpoints >= 1");
    auto rpc_workers = static_cast<std::size_t>(spec.get_int("rpc_workers", 0));

    std::string transport = spec.get_string("transport", "inproc");
    if (transport != "tcp" && transport != "inproc") {
      throw ParseError("unknown transport '" + transport + "'");
    }

    // One chain instance, `endpoints` RPC surfaces over it. The i-th surface
    // is bound endpoint-tagged so chain.submit counts shard-misrouted
    // arrivals and endpoint.info reports the shards surface i owns.
    for (std::uint32_t i = 0; i < endpoints; ++i) {
      auto d = std::make_shared<rpc::Dispatcher>();
      chain::bind_chain_rpc(deployed->chain, *d, i, endpoints);
      // Every SUT endpoint also answers telemetry.metrics /
      // telemetry.snapshot — the per-node exporter Prometheus pulls from.
      telemetry::bind_telemetry_rpc(*d);
      std::unique_ptr<rpc::TcpServer> server;
      if (transport == "tcp") {
        server = std::make_unique<rpc::TcpServer>(d, 0, rpc_workers);
      }
      if (i == 0) {
        deployed->dispatcher = std::move(d);
        deployed->tcp_server = std::move(server);
      } else {
        deployed->extra_endpoints.push_back({std::move(d), std::move(server)});
      }
    }

    auto per_shard = static_cast<std::size_t>(spec.get_int("smallbank_accounts_per_shard", 0));
    if (per_shard > 0) {
      deployed->smallbank_accounts = chain::genesis_smallbank_accounts(
          *deployed->chain, per_shard, spec.get_int("initial_checking", 1000000),
          spec.get_int("initial_savings", 1000000));
    }

    if (spec.contains("faults")) {
      // One plan, one seeded injector, installed on every SUT-side surface
      // (before start() so block-production threads never race the install).
      fault::FaultPlan fault_plan = fault::FaultPlan::from_json(spec.at("faults"));
      auto faults = std::make_shared<fault::FaultInjector>(fault_plan);
      deployed->chain->install_fault_injector(faults);
      if (deployed->tcp_server) deployed->tcp_server->install_fault_injector(faults);
      for (auto& extra : deployed->extra_endpoints) {
        if (extra.tcp_server) extra.tcp_server->install_fault_injector(faults);
      }
      deployed->fault_injector = std::move(faults);
      // Resource faults from the same plan: CPU burn / ballast start now and
      // run for the deployment's lifetime; the ingress throttle (per-target
      // token bucket) gates every TCP endpoint's dispatch path.
      if (fault_plan.has_resource_faults()) {
        if (fault_plan.cpu_burn_threads > 0 || fault_plan.mem_ballast_mb > 0) {
          deployed->resource_faults = std::make_shared<fault::ResourceFaults>(fault_plan);
        }
        if (fault_plan.ingress_rps > 0.0) {
          auto install = [&](rpc::TcpServer* server) {
            if (!server) return;
            server->install_ingress_throttle(std::make_shared<fault::IngressThrottle>(
                fault_plan.ingress_rps, fault_plan.ingress_burst, clock));
          };
          install(deployed->tcp_server.get());
          for (auto& extra : deployed->extra_endpoints) install(extra.tcp_server.get());
        }
      }
    }

    deployed->chain->start();
    std::string name = deployed->chain->config().name;
    HLOG_INFO("deploy") << "started " << deployed->chain->kind() << " '" << name << "' ("
                        << deployed->chain->num_shards() << " shard(s), "
                        << deployed->endpoint_count() << " endpoint(s), "
                        << deployed->smallbank_accounts.size() << " accounts)";
    auto [it, inserted] = deployment.chains_.emplace(name, std::move(deployed));
    (void)it;
    HAMMER_CHECK_MSG(inserted, "duplicate chain name " + name);
  }
  return deployment;
}

Deployment::~Deployment() {
  for (auto& [name, deployed] : chains_) {
    if (deployed && deployed->chain) deployed->chain->stop();
  }
}

DeployedChain& Deployment::at(const std::string& name) {
  auto it = chains_.find(name);
  if (it == chains_.end()) throw NotFoundError("deployed chain " + name);
  return *it->second;
}

std::vector<std::string> Deployment::names() const {
  std::vector<std::string> out;
  out.reserve(chains_.size());
  for (const auto& [name, deployed] : chains_) {
    (void)deployed;
    out.push_back(name);
  }
  return out;
}

}  // namespace hammer::core
