#include "core/deployment.hpp"

#include "chain/factory.hpp"
#include "telemetry/endpoint.hpp"
#include "util/errors.hpp"
#include "util/logging.hpp"

namespace hammer::core {

std::shared_ptr<rpc::Channel> DeployedChain::connect(
    std::shared_ptr<fault::FaultInjector> client_faults) const {
  if (tcp_server) {
    auto channel = std::make_shared<rpc::TcpChannel>("127.0.0.1", tcp_server->port());
    if (client_faults) channel->install_fault_injector(std::move(client_faults));
    return channel;
  }
  return std::make_shared<rpc::InProcChannel>(dispatcher);
}

std::vector<std::shared_ptr<adapters::ChainAdapter>> DeployedChain::make_adapters(
    std::size_t count, adapters::AdapterOptions options,
    std::shared_ptr<fault::FaultInjector> client_faults) const {
  std::vector<std::shared_ptr<adapters::ChainAdapter>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(std::make_shared<adapters::ChainAdapter>(connect(client_faults), options));
  }
  return out;
}

Deployment Deployment::deploy(const json::Value& plan, std::shared_ptr<util::Clock> clock) {
  HAMMER_CHECK(clock != nullptr);
  Deployment deployment;
  for (const json::Value& spec : plan.at("chains").as_array()) {
    auto deployed = std::make_unique<DeployedChain>();
    deployed->chain = chain::make_chain(spec, clock);
    deployed->dispatcher = std::make_shared<rpc::Dispatcher>();
    chain::bind_chain_rpc(deployed->chain, *deployed->dispatcher);
    // Every SUT endpoint also answers telemetry.metrics / telemetry.snapshot
    // — the per-node exporter the paper's Prometheus pulls from.
    telemetry::bind_telemetry_rpc(*deployed->dispatcher);

    auto per_shard = static_cast<std::size_t>(spec.get_int("smallbank_accounts_per_shard", 0));
    if (per_shard > 0) {
      deployed->smallbank_accounts = chain::genesis_smallbank_accounts(
          *deployed->chain, per_shard, spec.get_int("initial_checking", 1000000),
          spec.get_int("initial_savings", 1000000));
    }

    std::string transport = spec.get_string("transport", "inproc");
    if (transport == "tcp") {
      deployed->tcp_server = std::make_unique<rpc::TcpServer>(deployed->dispatcher, 0);
    } else if (transport != "inproc") {
      throw ParseError("unknown transport '" + transport + "'");
    }

    if (spec.contains("faults")) {
      // One plan, one seeded injector, installed on every SUT-side surface
      // (before start() so block-production threads never race the install).
      auto faults =
          std::make_shared<fault::FaultInjector>(fault::FaultPlan::from_json(spec.at("faults")));
      deployed->chain->install_fault_injector(faults);
      if (deployed->tcp_server) deployed->tcp_server->install_fault_injector(faults);
      deployed->fault_injector = std::move(faults);
    }

    deployed->chain->start();
    std::string name = deployed->chain->config().name;
    HLOG_INFO("deploy") << "started " << deployed->chain->kind() << " '" << name << "' ("
                        << deployed->chain->num_shards() << " shard(s), "
                        << deployed->smallbank_accounts.size() << " accounts)";
    auto [it, inserted] = deployment.chains_.emplace(name, std::move(deployed));
    (void)it;
    HAMMER_CHECK_MSG(inserted, "duplicate chain name " + name);
  }
  return deployment;
}

Deployment::~Deployment() {
  for (auto& [name, deployed] : chains_) {
    if (deployed && deployed->chain) deployed->chain->stop();
  }
}

DeployedChain& Deployment::at(const std::string& name) {
  auto it = chains_.find(name);
  if (it == chains_.end()) throw NotFoundError("deployed chain " + name);
  return *it->second;
}

std::vector<std::string> Deployment::names() const {
  std::vector<std::string> out;
  out.reserve(chains_.size());
  for (const auto& [name, deployed] : chains_) {
    (void)deployed;
    out.push_back(name);
  }
  return out;
}

}  // namespace hammer::core
