// Declarative SUT deployment — the stand-in for the paper's Ansible
// playbooks ("automated deployment scripts ... to replace the manual
// deployment process"). A JSON plan names the chains to launch, their
// parameters, transport and genesis accounts; deploy() builds, populates
// and starts them, and hands back RPC-ready endpoints.
//
// Plan shape:
// {
//   "chains": [
//     {"kind": "fabric", "name": "fabric-1", "block_interval_ms": 100,
//      "transport": "inproc",            // or "tcp"
//      "smallbank_accounts_per_shard": 1000,
//      "initial_checking": 10000, "initial_savings": 10000, ...}
//   ]
// }
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adapters/chain_adapter.hpp"
#include "chain/blockchain.hpp"
#include "rpc/tcp.hpp"
#include "util/clock.hpp"

namespace hammer::core {

struct DeployedChain {
  std::shared_ptr<chain::Blockchain> chain;
  std::shared_ptr<rpc::Dispatcher> dispatcher;
  std::unique_ptr<rpc::TcpServer> tcp_server;  // null for in-process transport
  std::vector<std::string> smallbank_accounts;

  // Creates a fresh client channel (in-proc, or a new TCP connection).
  std::shared_ptr<rpc::Channel> connect() const;

  // Convenience: `count` independent adapters (one per driver thread).
  std::vector<std::shared_ptr<adapters::ChainAdapter>> make_adapters(std::size_t count) const;
};

class Deployment {
 public:
  // Builds and STARTS every chain in the plan. Chains stop on destruction.
  static Deployment deploy(const json::Value& plan, std::shared_ptr<util::Clock> clock);

  ~Deployment();
  Deployment(Deployment&&) = default;
  Deployment& operator=(Deployment&&) = default;

  DeployedChain& at(const std::string& name);
  std::vector<std::string> names() const;

 private:
  Deployment() = default;
  std::map<std::string, std::unique_ptr<DeployedChain>> chains_;
};

}  // namespace hammer::core
