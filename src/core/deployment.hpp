// Declarative SUT deployment — the stand-in for the paper's Ansible
// playbooks ("automated deployment scripts ... to replace the manual
// deployment process"). A JSON plan names the chains to launch, their
// parameters, transport and genesis accounts; deploy() builds, populates
// and starts them, and hands back RPC-ready endpoints.
//
// Plan shape:
// {
//   "chains": [
//     {"kind": "fabric", "name": "fabric-1", "block_interval_ms": 100,
//      "transport": "inproc",            // or "tcp"
//      "smallbank_accounts_per_shard": 1000,
//      "initial_checking": 10000, "initial_savings": 10000, ...,
//      "faults": {"seed": 7, "submit_reject_p": 0.05, ...}}  // optional
//   ]
// }
//
// A "faults" key builds a seeded fault::FaultInjector (fault::FaultPlan
// JSON shape) and installs it on the chain AND its TcpServer, so SUT-side
// and server-transport faults share one deterministic plan. Client-side
// faults stay client-owned: pass an injector to connect()/make_adapters().
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adapters/chain_adapter.hpp"
#include "chain/blockchain.hpp"
#include "rpc/tcp.hpp"
#include "util/clock.hpp"

namespace hammer::core {

struct DeployedChain {
  std::shared_ptr<chain::Blockchain> chain;
  std::shared_ptr<rpc::Dispatcher> dispatcher;
  std::unique_ptr<rpc::TcpServer> tcp_server;  // null for in-process transport
  std::vector<std::string> smallbank_accounts;
  // Set when the plan carried a "faults" key; shared by the chain and the
  // TCP server, so its counts_json() is the SUT-side fault record.
  std::shared_ptr<fault::FaultInjector> fault_injector;

  // Creates a fresh client channel (in-proc, or a new TCP connection).
  // `client_faults` installs a client-side injector on the new TcpChannel
  // (ignored for in-proc transport, which has no wire to break).
  std::shared_ptr<rpc::Channel> connect(
      std::shared_ptr<fault::FaultInjector> client_faults = nullptr) const;

  // Convenience: `count` independent adapters (one per driver thread), all
  // sharing the same call options / retry policy and client-side injector.
  std::vector<std::shared_ptr<adapters::ChainAdapter>> make_adapters(
      std::size_t count, adapters::AdapterOptions options = {},
      std::shared_ptr<fault::FaultInjector> client_faults = nullptr) const;
};

class Deployment {
 public:
  // Builds and STARTS every chain in the plan. Chains stop on destruction.
  static Deployment deploy(const json::Value& plan, std::shared_ptr<util::Clock> clock);

  ~Deployment();
  Deployment(Deployment&&) = default;
  Deployment& operator=(Deployment&&) = default;

  DeployedChain& at(const std::string& name);
  std::vector<std::string> names() const;

 private:
  Deployment() = default;
  std::map<std::string, std::unique_ptr<DeployedChain>> chains_;
};

}  // namespace hammer::core
