// Declarative SUT deployment — the stand-in for the paper's Ansible
// playbooks ("automated deployment scripts ... to replace the manual
// deployment process"). A JSON plan names the chains to launch, their
// parameters, transport and genesis accounts; deploy() builds, populates
// and starts them, and hands back RPC-ready endpoints.
//
// Plan shape:
// {
//   "chains": [
//     {"kind": "fabric", "name": "fabric-1", "block_interval_ms": 100,
//      "transport": "inproc",            // or "tcp"
//      "endpoints": 4,                   // RPC endpoints serving this chain
//      "rpc_workers": 2,                 // TcpServer threads per endpoint
//      "smallbank_accounts_per_shard": 1000,
//      "initial_checking": 10000, "initial_savings": 10000, ...,
//      "faults": {"seed": 7, "submit_reject_p": 0.05, ...}}  // optional
//   ]
// }
//
// Unknown keys in a chain spec are an error (named in the exception), so a
// typo like "block_intervl_ms" fails the deploy instead of silently running
// the default configuration.
//
// "endpoints": n launches n RPC surfaces over the ONE chain instance — n
// dispatchers (and, for tcp transport, n TcpServers), the i-th bound with
// endpoint tag i so chain.submit counts shard-misrouted arrivals and
// endpoint.info reports the shard set endpoint i owns (shard % n == i).
// This is the multi-endpoint SUT a SutCluster drives.
//
// A "faults" key builds a seeded fault::FaultInjector (fault::FaultPlan
// JSON shape) and installs it on the chain AND its TcpServers, so SUT-side
// and server-transport faults share one deterministic plan. Client-side
// faults stay client-owned: pass an injector to connect()/make_adapters().
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adapters/chain_adapter.hpp"
#include "chain/blockchain.hpp"
#include "core/sut_cluster.hpp"
#include "fault/resource.hpp"
#include "rpc/tcp.hpp"
#include "util/clock.hpp"

namespace hammer::core {

struct DeployedChain {
  std::shared_ptr<chain::Blockchain> chain;
  // Endpoint 0 — kept as flat fields because single-endpoint call sites
  // (tests, examples) address them directly.
  std::shared_ptr<rpc::Dispatcher> dispatcher;
  std::unique_ptr<rpc::TcpServer> tcp_server;  // null for in-process transport
  // Endpoints 1..N-1 when the spec asked for "endpoints": n > 1.
  struct ExtraEndpoint {
    std::shared_ptr<rpc::Dispatcher> dispatcher;
    std::unique_ptr<rpc::TcpServer> tcp_server;
  };
  std::vector<ExtraEndpoint> extra_endpoints;
  std::vector<std::string> smallbank_accounts;
  // Set when the plan carried a "faults" key; shared by the chain and the
  // TCP servers, so its counts_json() is the SUT-side fault record.
  std::shared_ptr<fault::FaultInjector> fault_injector;
  // Continuous contention (cpu_burn / mem_ballast) from the same plan; runs
  // until the deployment tears down. Null when the plan has none.
  std::shared_ptr<fault::ResourceFaults> resource_faults;

  std::size_t endpoint_count() const { return 1 + extra_endpoints.size(); }

  // Creates a fresh client channel to `endpoint` (in-proc, or a new TCP
  // connection negotiating per `config`). `client_faults` installs a
  // client-side injector on the new TcpChannel (ignored for in-proc
  // transport, which has no wire to break).
  std::shared_ptr<rpc::Channel> connect(
      const rpc::ClientConfig& config = {},
      std::shared_ptr<fault::FaultInjector> client_faults = nullptr,
      std::size_t endpoint = 0) const;

  // Convenience: `count` independent adapters against endpoint 0, all
  // sharing the same ClientConfig (codec preference, deadline, retry
  // policy) and client-side injector.
  std::vector<std::shared_ptr<adapters::ChainAdapter>> make_adapters(
      std::size_t count, const rpc::ClientConfig& config = {},
      std::shared_ptr<fault::FaultInjector> client_faults = nullptr) const;

  // Builds a SutCluster over every endpoint of this chain: per target,
  // `workers_per_target` adapters sharing a `channels_per_target`-deep
  // rpc::ChannelPool (fewer sockets than workers; TcpChannel multiplexes),
  // plus a dedicated poll-adapter channel. Target i owns the shards with
  // shard % endpoints == i — the same convention endpoint.info reports.
  // The ClientConfig flows unchanged into every channel and adapter the
  // cluster owns (only target_index is stamped per endpoint).
  std::shared_ptr<SutCluster> make_cluster(
      std::size_t workers_per_target, std::size_t channels_per_target = 2,
      const rpc::ClientConfig& config = {},
      std::shared_ptr<fault::FaultInjector> client_faults = nullptr) const;

  // TCP listen ports, one per endpoint, in endpoint order — the addresses a
  // coordinator hands to remote worker processes (control.deploy). Throws
  // for in-process transport, which has no wire a second process could dial.
  std::vector<std::uint16_t> tcp_ports() const;
};

// One dialable RPC surface of a remotely-deployed SUT.
struct RemoteEndpoint {
  std::string host;
  std::uint16_t port = 0;
};

// The worker-process flavour of DeployedChain::make_cluster: builds a
// SutCluster over remote TCP endpoints instead of a locally-deployed chain.
// Per target, `workers_per_target` adapters share a `channels_per_target`-
// deep ChannelPool plus a dedicated poll channel; target i owns the shards
// with shard % endpoints == i (the convention endpoint.info reports), and
// the shard count comes from the live chain.info of the first endpoint.
// `client_faults` is installed on the WORKER channels only — the poll
// channel's send count is timing-dependent, and burning seeded draws on it
// would destroy the per-worker fault-trace determinism the control plane
// guarantees.
std::shared_ptr<SutCluster> make_remote_cluster(
    const std::vector<RemoteEndpoint>& endpoints, std::size_t workers_per_target,
    std::size_t channels_per_target, const rpc::ClientConfig& config,
    std::shared_ptr<fault::FaultInjector> client_faults = nullptr);

// True when `key` is a chain spec key Deployment::deploy accepts. The tune
// subsystem validates "chain.<key>" knobs against this — the same rejection
// surface deploy itself enforces — so a tuner cannot search a knob the
// deployment would refuse.
bool is_known_chain_spec_key(const std::string& key);

class Deployment {
 public:
  // Builds and STARTS every chain in the plan. Chains stop on destruction.
  static Deployment deploy(const json::Value& plan, std::shared_ptr<util::Clock> clock);

  ~Deployment();
  Deployment(Deployment&&) = default;
  Deployment& operator=(Deployment&&) = default;

  DeployedChain& at(const std::string& name);
  std::vector<std::string> names() const;

 private:
  Deployment() = default;
  std::map<std::string, std::unique_ptr<DeployedChain>> chains_;
};

}  // namespace hammer::core
