#include "core/driver.hpp"

#include <algorithm>
#include <fstream>

#include "telemetry/registry.hpp"
#include "util/errors.hpp"
#include "util/logging.hpp"

namespace hammer::core {

namespace {
// Driver-side series: the live view of the load generator itself. The
// in-flight gauge is the difference between accepted submissions and
// completions observed in blocks, so a mid-run scrape shows backpressure.
struct DriverMetrics {
  telemetry::Counter& submitted;
  telemetry::Counter& completed;
  telemetry::Counter& rejected;
  telemetry::Counter& send_failures;
  telemetry::Gauge& inflight;
  telemetry::Gauge& offered_rate;
  telemetry::Gauge& achieved_rate;
  telemetry::StageHistogram& sign_us;
  telemetry::StageHistogram& submit_us;
  telemetry::StageHistogram& batch_txs;

  static DriverMetrics& get() {
    static DriverMetrics metrics;
    return metrics;
  }

 private:
  DriverMetrics()
      : submitted(reg().counter("hammer_driver_submitted_total",
                                "Transactions handed to the chain adapter")),
        completed(reg().counter("hammer_driver_completed_total",
                                "Transactions observed complete in blocks or receipts")),
        rejected(reg().counter("hammer_driver_rejected_total",
                               "Submissions refused by the SUT (overload)")),
        send_failures(reg().counter("hammer_driver_send_failures_total",
                                    "Transactions failed after the retry policy was exhausted")),
        inflight(reg().gauge("hammer_driver_inflight",
                             "Accepted transactions not yet observed in a block")),
        offered_rate(reg().gauge("hammer_driver_offered_rate",
                                 "Send rate the load controller released, tx/s")),
        achieved_rate(reg().gauge("hammer_driver_achieved_rate",
                                  "Commit rate observed over the run window, tx/s")),
        sign_us(reg().histogram("hammer_driver_sign_us",
                                "Per-transaction signing latency (pipelined feeder)")),
        submit_us(reg().histogram("hammer_driver_submit_us",
                                  "Submission round-trip latency per worker send")),
        batch_txs(reg().histogram("hammer_driver_batch_txs",
                                  "Transactions coalesced per worker send", "",
                                  {1, 2, 4, 8, 16, 32, 64, 128, 256})) {}

  static telemetry::MetricRegistry& reg() { return telemetry::MetricRegistry::global(); }
};

// Gauges only expose add/sub; rate gauges are set by delta so the sharded
// scrape sums land on the new value.
void set_gauge(telemetry::Gauge& gauge, std::int64_t value) {
  gauge.add(value - gauge.value());
}

// Split `total` workers over `targets`, at least one each.
std::vector<std::size_t> split_workers(std::size_t total, std::size_t targets) {
  std::vector<std::size_t> out(targets, total / targets);
  for (std::size_t i = 0; i < total % targets; ++i) ++out[i];
  for (std::size_t& n : out) n = std::max<std::size_t>(1, n);
  return out;
}
}  // namespace

namespace {

const char* const kKnownDriverOptionKeys[] = {
    "worker_threads", "submit_batch_size", "routing",       "drain_timeout_ms",
    "poll_interval_ms", "task_shards",     "pipelined_signing", "trace_every_n",
    "channels_per_target", "target_rate",  "rate_burst",    "load_seed"};

}  // namespace

bool is_known_driver_option_key(const std::string& key) {
  return std::any_of(std::begin(kKnownDriverOptionKeys), std::end(kKnownDriverOptionKeys),
                     [&](const char* k) { return key == k; });
}

DriverOptions driver_options_from_json(const json::Value& v,
                                       std::size_t* channels_per_target) {
  DriverOptions options;
  std::size_t channels = 2;
  if (!v.is_null()) {
    for (const auto& [key, value] : v.as_object()) {
      (void)value;
      if (!is_known_driver_option_key(key)) {
        throw ParseError("unknown driver option key '" + key + "'");
      }
    }
    options.worker_threads = static_cast<std::size_t>(v.get_int("worker_threads", 2));
    options.submit_batch_size = static_cast<std::size_t>(v.get_int("submit_batch_size", 1));
    options.routing = routing_kind_from_string(v.get_string("routing", "round_robin"));
    options.drain_timeout = std::chrono::milliseconds(v.get_int("drain_timeout_ms", 20000));
    options.poll_interval = std::chrono::milliseconds(v.get_int("poll_interval_ms", 25));
    options.task_processor.shards = static_cast<std::size_t>(v.get_int("task_shards", 1));
    options.pipelined_signing = v.get_bool("pipelined_signing", true);
    options.trace_every_n = static_cast<std::uint64_t>(v.get_int("trace_every_n", 0));
    channels = static_cast<std::size_t>(v.get_int("channels_per_target", 2));
    options.target_rate = v.get_double("target_rate", 0.0);
    options.rate_burst = v.get_double("rate_burst", options.rate_burst);
    options.load_seed = static_cast<std::uint64_t>(
        v.get_int("load_seed", static_cast<std::int64_t>(options.load_seed)));
    if (options.worker_threads < 1) throw ParseError("driver.worker_threads must be >= 1");
    if (options.submit_batch_size < 1) throw ParseError("driver.submit_batch_size must be >= 1");
    if (options.target_rate < 0.0) throw ParseError("driver.target_rate must be >= 0");
  }
  if (channels_per_target != nullptr) *channels_per_target = channels;
  return options;
}

HammerDriver::HammerDriver(std::shared_ptr<SutCluster> cluster,
                           std::shared_ptr<util::Clock> clock, DriverOptions options)
    : cluster_(std::move(cluster)), clock_(std::move(clock)), options_(std::move(options)) {
  HAMMER_CHECK(cluster_ != nullptr);
  HAMMER_CHECK(clock_ != nullptr);
  HAMMER_CHECK(options_.worker_threads >= 1);
  load_ = options_.load;
  if (!load_) {
    LoadOptions load_options;
    load_options.rate = options_.target_rate;
    load_options.burst = options_.rate_burst;
    load_options.seed = options_.load_seed;
    load_ = std::make_shared<LoadController>(load_options, clock_);
  }
  if (options_.client_vcpus > 0) {
    HAMMER_CHECK(options_.client_vcpus <= 64);
    client_cores_ = std::make_unique<std::counting_semaphore<64>>(options_.client_vcpus);
  }
}

HammerDriver::HammerDriver(std::vector<std::shared_ptr<adapters::ChainAdapter>> worker_adapters,
                           std::shared_ptr<adapters::ChainAdapter> poll_adapter,
                           std::shared_ptr<util::Clock> clock, DriverOptions options)
    : HammerDriver(SutCluster::single(std::move(worker_adapters), std::move(poll_adapter)),
                   std::move(clock), std::move(options)) {}

void HammerDriver::charge_client_cpu() {
  if (!client_cores_ || options_.per_tx_client_us <= 0) return;
  // Serialize per-tx client work over the modeled cores.
  client_cores_->acquire();
  std::int64_t work = options_.per_tx_client_us;
  // Oversubscription overhead: every thread beyond the core count adds
  // context-switch cost to each transaction's client-side work.
  if (options_.worker_threads > options_.client_vcpus) {
    work += options_.switch_penalty_us *
            static_cast<std::int64_t>(options_.worker_threads - options_.client_vcpus);
  }
  clock_->sleep_for(std::chrono::microseconds(work));
  client_cores_->release();
}

bool HammerDriver::route_and_push(std::vector<std::unique_ptr<SendQueue>>& queues,
                                  RoutingPolicy& policy, SendQueueItem item) {
  std::size_t t = policy.route(item.tx, *cluster_);
  // Charged at push, not at send: least_inflight must see the queued
  // backlog, or every decision happens against an empty-looking cluster.
  cluster_->target(t).add_in_flight(1);
  if (!queues[t]->push(std::move(item))) {
    cluster_->target(t).sub_in_flight(1);
    return false;
  }
  return true;
}

void HammerDriver::worker_loop(SutTarget& target, std::size_t slot, SendQueue& queue,
                               workload::RateController* rate) {
  adapters::ChainAdapter& adapter = target.worker_adapter(slot);
  const std::string& chainname = adapter.info().name;
  const std::size_t batch_limit = std::max<std::size_t>(1, options_.submit_batch_size);
  DriverMetrics& metrics = DriverMetrics::get();
  std::vector<chain::Transaction> batch;
  std::vector<std::uint64_t> ordinals;
  batch.reserve(batch_limit);
  ordinals.reserve(batch_limit);

  // Counts a refusal; in-flight accounting is handled per mode because only
  // some modes remove a rejected tx from the pending set.
  auto reject = [this, &metrics](std::uint64_t count) {
    rejections_.fetch_add(count);
    metrics.rejected.add(count);
    HLOG_EVERY_N("driver", 100) << "SUT rejected a submission ("
                                << rejections_.load() << " total this run)";
  };
  // A TransportError here means the adapter's retry policy is exhausted (or
  // retries are off): the whole send is written off as failed and the run
  // keeps going — graceful degradation, never an aborted run.
  auto send_failed = [this, &metrics](std::uint64_t count, const char* what) {
    send_failures_.fetch_add(count);
    metrics.send_failures.add(count);
    HLOG_EVERY_N("driver", 100) << "send failed after retries (" << count
                                << " txs written off): " << what;
  };

  while (auto first = queue.pop()) {
    batch.clear();
    ordinals.clear();
    batch.push_back(std::move(first->tx));
    ordinals.push_back(first->ordinal);
    // Coalesce whatever is already signed and waiting, up to the configured
    // batch size — one JSON-RPC batch frame instead of N round trips.
    while (batch.size() < batch_limit) {
      auto more = queue.try_pop();
      if (!more) break;
      batch.push_back(std::move(more->tx));
      ordinals.push_back(more->ordinal);
    }
    if (rate) {
      // One send deadline per transaction; the batch leaves when its last
      // member is due, so coalescing preserves the plan's aggregate rate.
      // An exhausted rate plan still sends the remaining queue immediately
      // (plan totals and workload size are matched by callers).
      for (std::size_t i = 0; i < batch.size(); ++i) {
        auto deadline = rate->next_send_time();
        if (deadline) clock_->sleep_until(*deadline);
      }
    }
    // Closed-loop pacing gate: one token per transaction before the send
    // leaves. Open-loop controllers return immediately, but still stamp the
    // release window so offered_rate is measured on every run.
    load_->acquire(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) charge_client_cpu();

    std::vector<std::string> tx_ids(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) tx_ids[i] = batch[i].compute_id();
    // One trace per batch frame: if any member is sampled, the whole frame
    // carries a fresh trace id and every sampled member stitches under it.
    telemetry::TraceContext trace_ctx;
    if (merger_) {
      for (std::uint64_t ordinal : ordinals) {
        if (tracer_->sampled(ordinal)) {
          trace_ctx.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
          trace_ctx.span_id = trace_ctx.trace_id;  // synthetic client-root span
          break;
        }
      }
    }
    std::int64_t start_us = clock_->now_us();
    metrics.submitted.add(batch.size());
    metrics.inflight.add(batch.size());
    metrics.batch_txs.record(static_cast<std::int64_t>(batch.size()));

    switch (options_.mode) {
      case TrackingMode::kHammer: {
        // Register BEFORE submitting so the poller can never observe the
        // block before the index knows the id.
        std::vector<std::size_t> positions(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
          positions[i] = task_processor_->register_tx(tx_ids[i], start_us, batch[i].client_id,
                                                      batch[i].server_id, chainname,
                                                      batch[i].contract, ordinals[i]);
        }
        try {
          if (batch.size() == 1 && !trace_ctx.sampled()) {
            try {
              adapter.submit(batch[0]);
            } catch (const RejectedError&) {
              reject(1);
              metrics.inflight.sub(1);
              task_processor_->mark_rejected(positions[0], clock_->now_us());
            }
          } else {
            // Traced singles go through the batch path too: submit() is a
            // batch of one anyway, and this is the overload carrying the
            // trace context onto the wire.
            auto results = adapter.submit_batch(batch, trace_ctx);
            for (std::size_t i = 0; i < results.size(); ++i) {
              if (results[i].ok()) continue;
              reject(1);
              metrics.inflight.sub(1);
              task_processor_->mark_rejected(positions[i], clock_->now_us());
            }
          }
        } catch (const TransportError& e) {
          send_failed(batch.size(), e.what());
          metrics.inflight.sub(batch.size());
          // Mark every registered position failed; if an in-doubt entry did
          // land, on_block's completed-guard absorbs the duplicate.
          for (std::size_t i = 0; i < batch.size(); ++i) {
            task_processor_->mark_rejected(positions[i], clock_->now_us());
          }
        }
        break;
      }
      case TrackingMode::kBatchQueue: {
        for (std::size_t i = 0; i < batch.size(); ++i) {
          batch_processor_->register_tx(tx_ids[i], start_us);
        }
        try {
          if (batch.size() == 1) {
            try {
              adapter.submit(batch[0]);
            } catch (const RejectedError&) {
              reject(1);
              // The baseline has no O(1) lookup; rejected ids simply rot in the
              // queue (a real Blockbench driver behaves the same way).
            }
          } else {
            auto results = adapter.submit_batch(batch);
            for (const auto& r : results) {
              if (!r.ok()) reject(1);
            }
          }
        } catch (const TransportError& e) {
          // Same as rejections: the baseline's queue has no removal path, so
          // the ids rot and surface as unmatched.
          send_failed(batch.size(), e.what());
        }
        break;
      }
      case TrackingMode::kInteractive: {
        std::vector<bool> accepted(batch.size(), false);
        bool transport_failed = false;
        try {
          if (batch.size() == 1) {
            try {
              adapter.submit(batch[0]);
              accepted[0] = true;
            } catch (const RejectedError&) {
            }
          } else {
            auto results = adapter.submit_batch(batch);
            for (std::size_t i = 0; i < results.size(); ++i) accepted[i] = results[i].ok();
          }
        } catch (const TransportError& e) {
          send_failed(batch.size(), e.what());
          transport_failed = true;
        }
        std::scoped_lock lock(interactive_mu_);
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (transport_failed) {
            // Written off: completes immediately as invalid so the listener
            // never waits on a receipt that cannot arrive.
            metrics.inflight.sub(1);
            CompletedTx done;
            done.tx_id = tx_ids[i];
            done.start_us = start_us;
            done.end_us = clock_->now_us();
            done.status = chain::TxStatus::kInvalid;
            interactive_completed_.push_back(std::move(done));
          } else if (accepted[i]) {
            // Hand the transaction to the listener (Caliper-style response
            // monitoring); sending continues without waiting.
            interactive_pending_.push_back(InteractivePending{tx_ids[i], start_us});
          } else {
            reject(1);
            metrics.inflight.sub(1);
            CompletedTx done;
            done.tx_id = tx_ids[i];
            done.start_us = start_us;
            done.end_us = clock_->now_us();
            done.status = chain::TxStatus::kInvalid;
            interactive_completed_.push_back(std::move(done));
          }
        }
        break;
      }
    }
    // Submit stage done for this batch: the target's routed backlog shrinks
    // whether the SUT accepted, rejected, or the send was written off.
    target.count_submitted(batch.size());
    target.sub_in_flight(batch.size());
    std::int64_t send_done_us = clock_->now_us();
    metrics.submit_us.record(send_done_us - start_us);
    if (tracer_) {
      for (std::uint64_t ordinal : ordinals) {
        if (!tracer_->sampled(ordinal)) continue;
        tracer_->record(ordinal, telemetry::Stage::kSubmitted, send_done_us);
        if (merger_ && trace_ctx.sampled()) {
          merger_->note_submit(telemetry::SubmitTrace{ordinal, trace_ctx.trace_id, start_us,
                                                      send_done_us, adapter.target_index()});
        }
      }
    }
  }
}

void HammerDriver::listener_loop() {
  // Interactive testing (paper §II-C2): every transaction is monitored
  // individually. The per-transaction bookkeeping (the "significant
  // resource wastage" the paper attributes to Caliper-style frameworks)
  // remains; the wire cost is one chain.receipts RPC per poll tick — or,
  // with interactive_per_tx_poll, one RPC per pending transaction per tick
  // (the faithful modeled-Caliper baseline). Poll adapters rotate across
  // cluster targets so a multi-endpoint SUT shares the polling load.
  std::uint64_t tick = 0;
  while (!stop_polling_.load()) {
    adapters::ChainAdapter& poll_adapter =
        *cluster_->target(tick++ % cluster_->size()).poll_adapter();
    std::vector<InteractivePending> snapshot;
    {
      std::scoped_lock lock(interactive_mu_);
      snapshot.assign(interactive_pending_.begin(), interactive_pending_.end());
    }
    if (snapshot.empty()) {
      clock_->sleep_for(options_.interactive_poll);
      continue;
    }
    std::vector<std::optional<adapters::ChainAdapter::ReceiptInfo>> receipts;
    if (options_.interactive_per_tx_poll) {
      // One chain.receipts round trip PER pending transaction.
      receipts.reserve(snapshot.size());
      bool poll_failed = false;
      for (const InteractivePending& pending : snapshot) {
        try {
          receipts.push_back(poll_adapter.tx_receipt(pending.tx_id));
        } catch (const Error& e) {
          HLOG_WARN("driver") << "receipt poll failed: " << e.what();
          poll_failed = true;
          break;
        }
      }
      if (poll_failed) {
        clock_->sleep_for(options_.interactive_poll);
        continue;
      }
    } else {
      std::vector<std::string> ids;
      ids.reserve(snapshot.size());
      for (const InteractivePending& pending : snapshot) ids.push_back(pending.tx_id);
      try {
        receipts = poll_adapter.receipts(ids);
      } catch (const Error& e) {
        HLOG_WARN("driver") << "receipt poll failed: " << e.what();
        clock_->sleep_for(options_.interactive_poll);
        continue;
      }
    }
    std::vector<std::pair<std::string, CompletedTx>> done;
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      if (!receipts[i]) continue;
      CompletedTx completed;
      completed.tx_id = snapshot[i].tx_id;
      completed.start_us = snapshot[i].start_us;
      completed.end_us = clock_->now_us();
      completed.status = receipts[i]->status;
      done.emplace_back(snapshot[i].tx_id, std::move(completed));
    }
    if (!done.empty()) {
      DriverMetrics::get().completed.add(done.size());
      DriverMetrics::get().inflight.sub(done.size());
      std::scoped_lock lock(interactive_mu_);
      for (auto& [id, completed] : done) {
        for (auto it = interactive_pending_.begin(); it != interactive_pending_.end(); ++it) {
          if (it->tx_id == id) {
            interactive_pending_.erase(it);
            break;
          }
        }
        interactive_completed_.push_back(std::move(completed));
      }
    }
    clock_->sleep_for(options_.interactive_poll);
  }
}

void HammerDriver::poll_loop(SutTarget& target) {
  // Detect stage: this target's poller scans ONLY the shards it owns, so N
  // pollers cover the chain without fetching any block twice.
  adapters::ChainAdapter& adapter = *target.poll_adapter();
  const std::vector<std::uint32_t>& shards = target.shards();
  std::vector<std::uint64_t> scanned(shards.size(), 0);
  const bool live_metrics = options_.mode == TrackingMode::kHammer &&
                            options_.metrics != nullptr && options_.metrics->write_behind();
  std::vector<TxRecord> fresh;
  while (!stop_polling_.load()) {
    for (std::size_t i = 0; i < shards.size(); ++i) {
      const std::uint32_t s = shards[i];
      std::uint64_t h;
      try {
        h = adapter.height(s);
      } catch (const Error& e) {
        HLOG_WARN("driver") << "height poll failed: " << e.what();
        continue;
      }
      for (std::uint64_t b = scanned[i] + 1; b <= h; ++b) {
        // Algorithm 1 line 11: the observation time IS the commit time,
        // recorded before the fetch so block transfer does not inflate
        // measured latency.
        std::int64_t block_time_us = clock_->now_us();
        chain::Block block;
        try {
          block = adapter.block(s, b);
        } catch (const Error& e) {
          HLOG_WARN("driver") << "block fetch failed: " << e.what();
          break;
        }
        target.count_polled_blocks(1);
        std::size_t matched = 0;
        if (options_.mode == TrackingMode::kHammer) {
          // The block's own seal timestamp feeds the included-stage trace so
          // the breakdown separates consensus latency from polling lag. The
          // header stamp is on the SUT's clock: map it onto the driver clock
          // via the channel's hello-handshake offset, or a skewed SUT clock
          // silently inflates/deflates the include stage and deflates/
          // inflates detect (they must sum to the observed window).
          const std::int64_t included_us =
              adapter.clock_offset().to_local(block.header.timestamp_us);
          matched =
              task_processor_->on_block(block_time_us, block.receipts, included_us).matched;
        } else {
          matched = batch_processor_->on_block(block_time_us, block.receipts);
        }
        if (matched > 0) {
          target.count_completed(matched);
          DriverMetrics::get().completed.add(matched);
          DriverMetrics::get().inflight.sub(matched);
        }
      }
      scanned[i] = h;
    }
    // Live streaming: hand records completed since the last sweep to the
    // metrics cache so the write-behind committer lands them in SQL while
    // the run is still going (each poller's drain is disjoint).
    if (live_metrics) {
      fresh.clear();
      task_processor_->drain_newly_completed(fresh);
      if (!fresh.empty()) options_.metrics->push_records(fresh);
    }
    // One poller (target 0's) refreshes the live offered-rate gauge so a
    // mid-run scrape shows the pacing the controller is actually granting.
    if (target.index() == 0) {
      set_gauge(DriverMetrics::get().offered_rate,
                static_cast<std::int64_t>(load_->offered_rate()));
    }
    clock_->sleep_for(options_.poll_interval);
  }
}

RunResult HammerDriver::run(const workload::WorkloadFile& workload,
                            const workload::ControlSequence* rate) {
  const std::size_t total = workload.transactions.size();
  const std::size_t n_targets = cluster_->size();
  if (options_.trace_every_n > 0) {
    tracer_ = std::make_unique<telemetry::TxTracer>(options_.trace_capacity,
                                                    options_.trace_every_n);
    merger_ = std::make_unique<telemetry::TraceMerger>();
    next_trace_id_.store(1);
  } else {
    tracer_.reset();
    merger_.reset();
  }
  const bool live_metrics = options_.mode == TrackingMode::kHammer &&
                            options_.metrics != nullptr && options_.metrics->write_behind();
  if (options_.mode == TrackingMode::kHammer) {
    TaskProcessor::Options tp = options_.task_processor;
    tp.expected_txs = std::max(tp.expected_txs, total);
    tp.tracer = tracer_.get();
    // Write-behind metrics stream completed records out mid-run; the
    // processor keeps a newly-completed set for the pollers to drain.
    tp.track_completions = live_metrics;
    task_processor_ = std::make_unique<ShardedTaskProcessor>(tp);
    if (live_metrics) options_.metrics->start_committer();
  } else {
    batch_processor_ = std::make_unique<BatchQueueProcessor>();
  }
  interactive_completed_.clear();
  interactive_pending_.clear();
  rejections_.store(0);
  send_failures_.store(0);
  stop_polling_.store(false);
  // Fresh bucket and offered-rate window; the target rate (possibly
  // retargeted mid-flight last run) carries over.
  load_->reset();

  // Adapters persist across runs, so RunResult::retries is a delta of the
  // lifetime counters (deduped — the poll adapter may double as a worker).
  std::vector<const adapters::ChainAdapter*> run_adapters;
  for (std::size_t t = 0; t < n_targets; ++t) {
    const SutTarget& target = cluster_->target(t);
    for (const auto& a : target.worker_adapters()) {
      if (std::find(run_adapters.begin(), run_adapters.end(), a.get()) == run_adapters.end()) {
        run_adapters.push_back(a.get());
      }
    }
    if (std::find(run_adapters.begin(), run_adapters.end(), target.poll_adapter().get()) ==
        run_adapters.end()) {
      run_adapters.push_back(target.poll_adapter().get());
    }
  }
  std::uint64_t retries_before = 0;
  for (const adapters::ChainAdapter* a : run_adapters) retries_before += a->retries();
  std::vector<std::uint64_t> submitted_before(n_targets), completed_before(n_targets);
  for (std::size_t t = 0; t < n_targets; ++t) {
    submitted_before[t] = cluster_->target(t).submitted();
    completed_before[t] = cluster_->target(t).completed();
  }

  // --- sign + route stages: one queue per target; the feeder signs, asks
  // the routing policy for a target, and pushes onto that target's queue ---
  std::vector<std::unique_ptr<SendQueue>> queues;
  queues.reserve(n_targets);
  const std::size_t per_queue_capacity =
      std::max<std::size_t>(64, options_.sign_queue_capacity / n_targets);
  for (std::size_t t = 0; t < n_targets; ++t) {
    queues.push_back(std::make_unique<SendQueue>(per_queue_capacity));
  }
  auto close_all = [&queues] {
    for (auto& q : queues) q->close();
  };
  std::unique_ptr<RoutingPolicy> policy = make_routing_policy(options_.routing);

  std::thread feeder;
  if (options_.pipelined_signing) {
    feeder = std::thread([this, &queues, &close_all, &policy, &workload] {
      DriverMetrics& metrics = DriverMetrics::get();
      std::uint64_t ordinal = 0;
      for (chain::Transaction tx : workload.transactions) {
        // The sending server stamps its id before signing (Alg. 1 line 3's
        // s_id is part of the signed payload).
        std::int64_t sign_begin_us = clock_->now_us();
        tx.server_id = options_.server_id;
        tx.sign_with(keys_->get(tx.sender));
        std::int64_t signed_us = clock_->now_us();
        metrics.sign_us.record(signed_us - sign_begin_us);
        const bool traced = tracer_ && tracer_->sampled(ordinal);
        if (traced) {
          tracer_->record(ordinal, telemetry::Stage::kStart, sign_begin_us);
          tracer_->record(ordinal, telemetry::Stage::kSigned, signed_us);
        }
        if (!route_and_push(queues, *policy, SendQueueItem{std::move(tx), ordinal})) return;
        if (traced) {
          tracer_->record(ordinal, telemetry::Stage::kEnqueued, clock_->now_us());
        }
        ++ordinal;
      }
      close_all();
    });
  } else {
    std::vector<chain::Transaction> txs = workload.transactions;
    for (chain::Transaction& tx : txs) tx.server_id = options_.server_id;
    sign_serial(txs, *keys_);
    feeder = std::thread([this, &queues, &close_all, &policy, txs = std::move(txs)]() mutable {
      // Signing happened up front, so the per-tx sign/queue stages collapse
      // to the push instant; the submit/include/detect stages stay real.
      std::uint64_t ordinal = 0;
      for (chain::Transaction& tx : txs) {
        if (tracer_ && tracer_->sampled(ordinal)) {
          std::int64_t now_us = clock_->now_us();
          tracer_->record(ordinal, telemetry::Stage::kStart, now_us);
          tracer_->record(ordinal, telemetry::Stage::kSigned, now_us);
          tracer_->record(ordinal, telemetry::Stage::kEnqueued, now_us);
        }
        if (!route_and_push(queues, *policy, SendQueueItem{std::move(tx), ordinal})) return;
        ++ordinal;
      }
      close_all();
    });
  }

  // --- submit + detect stages ---
  std::unique_ptr<workload::RateController> controller;
  if (rate) controller = std::make_unique<workload::RateController>(*rate, clock_);

  std::vector<std::thread> pollers;
  if (options_.mode == TrackingMode::kInteractive) {
    pollers.emplace_back([this] { listener_loop(); });
  } else {
    for (std::size_t t = 0; t < n_targets; ++t) {
      pollers.emplace_back([this, t] { poll_loop(cluster_->target(t)); });
    }
  }
  std::vector<std::thread> workers;
  workers.reserve(options_.worker_threads);
  const std::vector<std::size_t> per_target = split_workers(options_.worker_threads, n_targets);
  for (std::size_t t = 0; t < n_targets; ++t) {
    for (std::size_t slot = 0; slot < per_target[t]; ++slot) {
      workers.emplace_back([this, t, slot, &queues, &controller] {
        worker_loop(cluster_->target(t), slot, *queues[t], controller.get());
      });
    }
  }
  for (auto& t : workers) t.join();
  feeder.join();

  // --- drain: wait for in-flight transactions to land in blocks ---
  {
    util::TimePoint drain_deadline = clock_->now() + options_.drain_timeout;
    auto pending = [this]() -> std::size_t {
      switch (options_.mode) {
        case TrackingMode::kHammer: return task_processor_->pending_count();
        case TrackingMode::kBatchQueue: return batch_processor_->pending_count();
        case TrackingMode::kInteractive: {
          std::scoped_lock lock(interactive_mu_);
          return interactive_pending_.size();
        }
      }
      return 0;
    };
    while (pending() > 0 && clock_->now() < drain_deadline) {
      clock_->sleep_for(options_.poll_interval);
    }
    stop_polling_.store(true);
    for (auto& t : pollers) t.join();
    // Transactions that never landed before the drain deadline are no longer
    // in flight from the driver's perspective; zero the gauge's residue so
    // back-to-back runs start clean.
    DriverMetrics::get().inflight.sub(pending());
  }

  // --- summarize ---
  RunResult result;
  if (options_.mode == TrackingMode::kHammer) {
    std::vector<TxRecord> records = task_processor_->snapshot();
    result = summarize(records);
    result.processor = task_processor_->stats_json();
    if (options_.metrics) {
      if (options_.metrics->write_behind()) {
        // The pollers streamed completed records as they landed; catch any
        // stragglers completed after the last sweep, cache the still-pending
        // ones (TTL-armed, parity with the legacy path), then drain the
        // committer so every buffered row is in SQL before we return.
        std::vector<TxRecord> fresh;
        task_processor_->drain_newly_completed(fresh);
        for (const TxRecord& record : records) {
          if (!record.completed) fresh.push_back(record);
        }
        if (!fresh.empty()) options_.metrics->push_records(fresh);
        options_.metrics->flush_and_stop();
      } else {
        options_.metrics->push_records(records);
        options_.metrics->commit_to_sql();
      }
    }
  } else {
    // Build records from the baseline's completion lists.
    std::vector<TxRecord> records;
    records.reserve(total);
    auto add_completed = [&records](const CompletedTx& done) {
      TxRecord r;
      r.tx_id = done.tx_id;
      r.start_us = done.start_us;
      r.end_us = done.end_us;
      r.status = done.status;
      r.completed = true;
      records.push_back(std::move(r));
    };
    if (options_.mode == TrackingMode::kBatchQueue) {
      for (const CompletedTx& done : batch_processor_->completed()) add_completed(done);
      for (const CompletedTx& waiting : batch_processor_->pending_snapshot()) {
        TxRecord r;
        r.tx_id = waiting.tx_id;
        r.start_us = waiting.start_us;
        r.completed = false;
        records.push_back(std::move(r));
      }
    } else {
      std::scoped_lock lock(interactive_mu_);
      for (const CompletedTx& done : interactive_completed_) add_completed(done);
      for (const InteractivePending& lost : interactive_pending_) {
        TxRecord r;
        r.tx_id = lost.tx_id;
        r.start_us = lost.start_us;
        r.completed = false;
        records.push_back(std::move(r));
      }
    }
    result = summarize(records);
  }
  result.rejected = rejections_.load();
  result.send_failures = send_failures_.load();
  result.target_rate = load_->target_rate();
  result.offered_rate = load_->offered_rate();
  result.achieved_rate = result.tps;
  set_gauge(DriverMetrics::get().offered_rate,
            static_cast<std::int64_t>(result.offered_rate));
  set_gauge(DriverMetrics::get().achieved_rate,
            static_cast<std::int64_t>(result.achieved_rate));
  std::uint64_t retries_after = 0;
  for (const adapters::ChainAdapter* a : run_adapters) retries_after += a->retries();
  result.retries = retries_after - retries_before;
  json::Array targets_json;
  targets_json.reserve(n_targets);
  for (std::size_t t = 0; t < n_targets; ++t) {
    const SutTarget& target = cluster_->target(t);
    targets_json.push_back(
        json::object({{"target", static_cast<std::int64_t>(t)},
                      {"submitted", target.submitted() - submitted_before[t]},
                      {"completed", target.completed() - completed_before[t]},
                      {"shards", static_cast<std::int64_t>(target.shards().size())}}));
  }
  result.targets = json::Value(std::move(targets_json));
  if (options_.fault_injector) {
    result.faults = options_.fault_injector->counts_json();
  }
  if (tracer_) {
    result.stages = tracer_->breakdown().to_json();
  }
  if (merger_) {
    // Stitch: drain every target's server-side span ring and map it onto
    // the driver clock. Old SUTs without telemetry.spans contribute nothing
    // (fetch_spans returns empty); in-process deployments return the same
    // global ring from every endpoint and the merger dedups by span id.
    for (std::size_t t = 0; t < n_targets; ++t) {
      adapters::ChainAdapter& poll = *cluster_->target(t).poll_adapter();
      try {
        merger_->add_server_spans(t, poll.fetch_spans(), poll.clock_offset());
      } catch (const Error& e) {
        HLOG_WARN("driver") << "span fetch for target " << t << " failed: " << e.what();
      }
    }
    if (merger_->server_span_count() > 0 && result.stages.is_object()) {
      result.stages["remote"] = merger_->remote_breakdown().to_json();
    }
    if (!options_.trace_export_path.empty()) {
      std::ofstream out(options_.trace_export_path,
                        std::ios::binary | std::ios::trunc);
      if (out) {
        out << merger_->to_trace_json(tracer_->events()).dump();
        HLOG_INFO("driver") << "wrote trace timeline to " << options_.trace_export_path;
      } else {
        HLOG_WARN("driver") << "cannot open trace export path "
                            << options_.trace_export_path;
      }
    }
  }
  return result;
}

RunResult run_peak_probe(std::vector<std::shared_ptr<adapters::ChainAdapter>> worker_adapters,
                         std::shared_ptr<adapters::ChainAdapter> poll_adapter,
                         std::shared_ptr<util::Clock> clock, DriverOptions options,
                         const workload::WorkloadFile& workload) {
  HammerDriver driver(std::move(worker_adapters), std::move(poll_adapter), std::move(clock),
                      std::move(options));
  return driver.run(workload, nullptr);  // closed loop = saturation probe
}

RunResult run_peak_probe(std::shared_ptr<SutCluster> cluster, std::shared_ptr<util::Clock> clock,
                         DriverOptions options, const workload::WorkloadFile& workload) {
  HammerDriver driver(std::move(cluster), std::move(clock), std::move(options));
  return driver.run(workload, nullptr);
}

}  // namespace hammer::core
