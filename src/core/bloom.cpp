#include "core/bloom.hpp"

#include <cmath>

#include "util/errors.hpp"

namespace hammer::core {

namespace {
// Two independent 64-bit FNV-1a streams with distinct offset bases.
std::pair<std::uint64_t, std::uint64_t> hash_pair(std::string_view key) {
  std::uint64_t h1 = 14695981039346656037ULL;
  std::uint64_t h2 = 0x9e3779b97f4a7c15ULL;
  for (unsigned char c : key) {
    h1 = (h1 ^ c) * 1099511628211ULL;
    h2 = (h2 ^ (c + 0x7f)) * 0x100000001b3ULL;
  }
  // Finalization mix (splitmix-style) to decorrelate low bits.
  auto mix = [](std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  return {mix(h1), mix(h2) | 1};  // h2 odd so probes cover all positions
}
}  // namespace

BloomFilter::BloomFilter(std::size_t expected_items, double fp_rate) {
  HAMMER_CHECK(expected_items > 0);
  HAMMER_CHECK(fp_rate > 0.0 && fp_rate < 1.0);
  double ln2 = std::log(2.0);
  auto bits = static_cast<std::size_t>(
      std::ceil(-static_cast<double>(expected_items) * std::log(fp_rate) / (ln2 * ln2)));
  bit_count_ = std::max<std::size_t>(bits, 64);
  num_hashes_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(
             static_cast<double>(bit_count_) / static_cast<double>(expected_items) * ln2)));
  bits_.assign((bit_count_ + 63) / 64, 0);
}

void BloomFilter::insert(std::string_view key) {
  auto [h1, h2] = hash_pair(key);
  for (std::size_t i = 0; i < num_hashes_; ++i) {
    std::uint64_t pos = (h1 + i * h2) % bit_count_;
    bits_[pos / 64] |= 1ULL << (pos % 64);
  }
  ++inserted_;
}

bool BloomFilter::may_contain(std::string_view key) const {
  auto [h1, h2] = hash_pair(key);
  for (std::size_t i = 0; i < num_hashes_; ++i) {
    std::uint64_t pos = (h1 + i * h2) % bit_count_;
    if ((bits_[pos / 64] & (1ULL << (pos % 64))) == 0) return false;
  }
  return true;
}

double BloomFilter::estimated_fp_rate() const {
  double k = static_cast<double>(num_hashes_);
  double n = static_cast<double>(inserted_);
  double m = static_cast<double>(bit_count_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

}  // namespace hammer::core
