// SutCluster: the multi-endpoint view of a System Under Test.
//
// The paper's Meepo evaluation is explicitly sharded, and sharding
// testbeds (BlockEmulator) expose one RPC endpoint per shard — so an
// evaluation framework that funnels every transaction through a single
// node measures the node, not the chain. A SutCluster holds N SutTargets
// (endpoint + channel-pooled adapter set + per-endpoint block poller
// adapter + owned shard set) and a pluggable RoutingPolicy decides which
// target each signed transaction is submitted through:
//
//   round_robin    — even spray, endpoint-agnostic (the BLOCKBENCH shape,
//                    N times over).
//   least_inflight — balance on each target's queued + unacknowledged
//                    backlog, so a slow or faulted endpoint sheds load.
//   shard          — shard-affine: hash the transaction's hot key with the
//                    SUT's own routing function and submit to the endpoint
//                    owning that shard, the way the real Meepo SDK pins
//                    senders to their shard to avoid the extra hop.
//
// The cluster is transport-agnostic (in-proc or TCP channels) and is what
// HammerDriver drives end-to-end; `SutCluster::single` wraps the legacy
// one-endpoint adapter set so existing call sites keep their behaviour.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adapters/chain_adapter.hpp"
#include "chain/types.hpp"

namespace hammer::telemetry {
class Counter;
}

namespace hammer::core {

enum class RoutingKind { kRoundRobin, kLeastInFlight, kShardAffine };

// Accepts "round_robin", "least_inflight", "shard" (and "shard_affine").
RoutingKind routing_kind_from_string(const std::string& name);
const char* to_string(RoutingKind kind);

// One endpoint the cluster drives. Worker adapters are expected to share a
// channel pool (see DeployedChain::make_cluster); the poll adapter gets its
// own channel so receipt/block polling never queues behind submissions.
class SutTarget {
 public:
  SutTarget(std::size_t index,
            std::vector<std::shared_ptr<adapters::ChainAdapter>> worker_adapters,
            std::shared_ptr<adapters::ChainAdapter> poll_adapter,
            std::vector<std::uint32_t> shards);

  std::size_t index() const { return index_; }
  std::size_t worker_count() const { return worker_adapters_.size(); }
  adapters::ChainAdapter& worker_adapter(std::size_t slot) {
    return *worker_adapters_[slot % worker_adapters_.size()];
  }
  const std::vector<std::shared_ptr<adapters::ChainAdapter>>& worker_adapters() const {
    return worker_adapters_;
  }
  const std::shared_ptr<adapters::ChainAdapter>& poll_adapter() const { return poll_adapter_; }

  // Shards this endpoint owns (polls, and is the shard-affine home for).
  const std::vector<std::uint32_t>& shards() const { return shards_; }

  // Wire codec the worker channels negotiated with this endpoint ("binary",
  // "json") or "inproc" when there is no TCP wire — resolved once at
  // construction for run-log diagnostics and endpoint comparisons.
  const std::string& codec() const { return codec_; }

  // Offset of this endpoint's steady clock relative to the driver's,
  // measured by the poll channel's hello handshake (0 for in-process
  // endpoints). Surfaced beside codec() so run logs show per-endpoint skew.
  telemetry::ClockOffset clock_offset() const { return poll_adapter_->clock_offset(); }

  // Transactions routed here and not yet acknowledged by the endpoint
  // (queued client-side or on the wire) — the backlog signal least-in-flight
  // routing balances on.
  std::uint64_t in_flight() const { return in_flight_.load(std::memory_order_relaxed); }
  void add_in_flight(std::uint64_t n) { in_flight_.fetch_add(n, std::memory_order_relaxed); }
  void sub_in_flight(std::uint64_t n) { in_flight_.fetch_sub(n, std::memory_order_relaxed); }

  // Lifetime per-target counters; the driver differences them across a run
  // into RunResult::targets. Mirrored to the telemetry registry as
  // hammer_cluster_{submitted,completed,polled_blocks}_total{target="i"}.
  void count_submitted(std::uint64_t n);
  void count_completed(std::uint64_t n);
  void count_polled_blocks(std::uint64_t n);
  std::uint64_t submitted() const { return submitted_.load(std::memory_order_relaxed); }
  std::uint64_t completed() const { return completed_.load(std::memory_order_relaxed); }

 private:
  std::size_t index_;
  std::vector<std::shared_ptr<adapters::ChainAdapter>> worker_adapters_;
  std::shared_ptr<adapters::ChainAdapter> poll_adapter_;
  std::vector<std::uint32_t> shards_;
  std::string codec_;
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  // Registry series with this target's label, resolved once at construction.
  telemetry::Counter* submitted_metric_;
  telemetry::Counter* completed_metric_;
  telemetry::Counter* polled_metric_;
};

class SutCluster {
 public:
  explicit SutCluster(std::vector<std::unique_ptr<SutTarget>> targets);

  // Wraps pre-built single-endpoint adapters — the legacy HammerDriver
  // constructor shape. The lone target owns every shard.
  static std::shared_ptr<SutCluster> single(
      std::vector<std::shared_ptr<adapters::ChainAdapter>> worker_adapters,
      std::shared_ptr<adapters::ChainAdapter> poll_adapter);

  std::size_t size() const { return targets_.size(); }
  SutTarget& target(std::size_t i) { return *targets_[i]; }
  const SutTarget& target(std::size_t i) const { return *targets_[i]; }

  std::uint32_t total_shards() const { return total_shards_; }

  // The SUT's own routing function (the same sender hash the chain pools
  // by; remotely queryable as chain.shard_for — see ChainAdapter::shard_for).
  std::uint32_t shard_for_sender(const std::string& sender) const;

  // Target owning `shard`; targets' shard sets partition the chain.
  std::size_t owner_of_shard(std::uint32_t shard) const { return shard_owner_[shard]; }

 private:
  std::vector<std::unique_ptr<SutTarget>> targets_;
  std::uint32_t total_shards_ = 1;
  std::vector<std::size_t> shard_owner_;  // shard -> target index
};

// Picks the target each transaction is submitted through. route() is called
// once per transaction from the driver's routing stage; implementations
// must be cheap and thread-safe.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;
  virtual std::size_t route(const chain::Transaction& tx, const SutCluster& cluster) = 0;
  virtual RoutingKind kind() const = 0;
};

std::unique_ptr<RoutingPolicy> make_routing_policy(RoutingKind kind);

}  // namespace hammer::core
