// WorkerProcess: spawn helper for fleet worker processes.
//
// Forks + execs a worker binary (hammer_worker, or any binary whose worker
// mode prints its control port) and parses the one-line handshake the child
// writes to stdout before serving:
//
//   HAMMER_WORKER_PORT=<port>\n
//
// Everything else the child logs goes to stderr (util/logging writes
// there), so the stdout pipe never fills. The parent side is fork+exec
// only — no allocation between fork and exec beyond what execv needs — so
// the helper is safe under TSAN, which cannot tolerate forked threads.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

namespace hammer::core {

class WorkerProcess {
 public:
  // Spawns `binary args...` and blocks until the child prints its
  // HAMMER_WORKER_PORT line (throws TransportError if the child exits
  // first). argv[0] is `binary` itself.
  static WorkerProcess spawn(const std::string& binary,
                             const std::vector<std::string>& args);

  WorkerProcess(WorkerProcess&& other) noexcept;
  WorkerProcess& operator=(WorkerProcess&& other) noexcept;
  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;

  // SIGKILLs the child if it is still running.
  ~WorkerProcess();

  std::uint16_t port() const { return port_; }
  pid_t pid() const { return pid_; }

  // Blocks until the child exits; returns its exit status (-1 if it died to
  // a signal). Idempotent.
  int wait();

  // Asks the child to exit (SIGTERM). Pair with wait().
  void terminate();

 private:
  WorkerProcess() = default;

  pid_t pid_ = -1;
  std::uint16_t port_ = 0;
  int stdout_fd_ = -1;
  bool waited_ = false;
};

}  // namespace hammer::core
