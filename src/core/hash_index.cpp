#include "core/hash_index.hpp"

#include <bit>

#include "util/errors.hpp"

namespace hammer::core {

HashIndex::HashIndex(std::size_t initial_capacity, bool growable, double max_load_factor)
    : growable_(growable), max_load_factor_(max_load_factor) {
  HAMMER_CHECK(initial_capacity >= 2);
  HAMMER_CHECK(max_load_factor > 0.0 && max_load_factor < 1.0);
  entries_.resize(std::bit_ceil(initial_capacity));
}

std::uint64_t HashIndex::hash_key(std::string_view key) {
  // FNV-1a with splitmix finalizer; power-of-two table sizes need the
  // finalizer so low bits carry entropy.
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : key) h = (h ^ c) * 1099511628211ULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

std::size_t HashIndex::probe(std::string_view key, bool& found) const {
  std::size_t mask = entries_.size() - 1;
  std::size_t pos = static_cast<std::size_t>(hash_key(key)) & mask;
  for (;;) {
    const Entry& entry = entries_[pos];
    if (entry.key.empty()) {
      found = false;
      return pos;
    }
    if (entry.key == key) {
      found = true;
      return pos;
    }
    ++probe_steps_;
    pos = (pos + 1) & mask;
  }
}

void HashIndex::grow() {
  std::vector<Entry> old;
  old.swap(entries_);
  entries_.resize(old.size() * 2);
  ++expansions_;
  size_ = 0;
  for (Entry& entry : old) {
    if (!entry.key.empty()) {
      bool found = false;
      std::size_t pos = probe(entry.key, found);
      entries_[pos] = std::move(entry);
      ++size_;
    }
  }
}

void HashIndex::insert(std::string_view key, std::uint64_t value) {
  HAMMER_CHECK_MSG(!key.empty(), "empty keys are reserved for vacant slots");
  if (static_cast<double>(size_ + 1) >
      max_load_factor_ * static_cast<double>(entries_.size())) {
    if (growable_) {
      grow();
    } else if (size_ + 1 >= entries_.size()) {
      throw LogicError("fixed-size HashIndex is full");
    }
  }
  bool found = false;
  std::size_t pos = probe(key, found);
  HAMMER_CHECK_MSG(!found, "duplicate key in HashIndex");
  entries_[pos].key.assign(key.data(), key.size());
  entries_[pos].value = value;
  ++size_;
}

std::optional<std::uint64_t> HashIndex::find(std::string_view key) const {
  bool found = false;
  std::size_t pos = probe(key, found);
  if (!found) return std::nullopt;
  return entries_[pos].value;
}

}  // namespace hammer::core
