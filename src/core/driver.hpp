// Evaluation driver: sends a (signed) workload into a SUT through the
// adapter layer, tracks completion, and produces a RunResult.
//
// Three completion-tracking modes reproduce the paper's comparisons:
//   kHammer      — batch testing with the task-processing algorithm
//                  (Bloom filter + dynamic hash index; Alg. 1).
//   kBatchQueue  — Blockbench-style batch testing with O(n·m) queue
//                  matching (Fig. 7 / Fig. 9 baseline).
//   kInteractive — Caliper-style interactive testing: every transaction is
//                  monitored individually via receipt polling (Fig. 7
//                  baseline; "requires monitoring and parsing responses for
//                  each transaction").
//
// The driving path is staged over a SutCluster:
//
//   sign ──▶ route ──▶ submit ──▶ detect
//
//   sign    one feeder thread signs the workload (or a serial pre-pass),
//   route   the feeder consults the RoutingPolicy and pushes each signed
//           transaction onto its target's MpmcQueue,
//   submit  per-target worker threads pop, coalesce and submit through the
//           target's adapter pool,
//   detect  one poller thread per target scans only the shards that target
//           owns and feeds the ShardedTaskProcessor (kHammer mode).
//
// The legacy constructor (worker adapters + one poll adapter) wraps itself
// in SutCluster::single — one target, every shard — and behaves exactly as
// before.
//
// Load is either open-loop (a ControlSequence schedules send deadlines —
// the paper's temporal workload replay) or closed-loop (workers send
// back-to-back; used for peak-throughput search and the Fig. 10 sweeps).
//
// The optional client CPU model reproduces the paper's Fig. 10 testbed: the
// client machine has a fixed number of vCPUs, so per-transaction client
// work serializes beyond that concurrency and extra threads add scheduling
// overhead. Modeled as slept (not burned) time so the SUT sharing this box
// is unaffected.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <semaphore>
#include <thread>

#include "adapters/chain_adapter.hpp"
#include "core/baselines.hpp"
#include "core/load_controller.hpp"
#include "core/metrics.hpp"
#include "core/signing.hpp"
#include "core/sut_cluster.hpp"
#include "core/task_processor.hpp"
#include "fault/fault.hpp"
#include "telemetry/timeline.hpp"
#include "telemetry/trace.hpp"
#include "util/clock.hpp"
#include "util/mpmc_queue.hpp"
#include "workload/control_sequence.hpp"
#include "workload/workload_file.hpp"

namespace hammer::core {

enum class TrackingMode { kHammer, kBatchQueue, kInteractive };

struct DriverOptions {
  TrackingMode mode = TrackingMode::kHammer;
  std::size_t worker_threads = 2;
  std::chrono::milliseconds poll_interval{25};
  std::chrono::milliseconds interactive_poll{2};
  std::chrono::milliseconds drain_timeout{20000};
  std::string server_id = "server-0";

  // How the route stage picks a cluster target per transaction. Ignored by
  // single-target (legacy) drivers, where every road leads to target 0.
  RoutingKind routing = RoutingKind::kRoundRobin;

  // kInteractive only: poll each pending transaction with its own
  // chain.tx_receipt RPC — the modeled-Caliper per-transaction monitoring
  // cost the paper criticizes. Default false: one batched chain.receipts
  // call per tick (same bookkeeping, sane wire cost).
  bool interactive_per_tx_poll = false;

  bool pipelined_signing = true;  // false: sign the whole batch up front
  std::size_t sign_queue_capacity = 4096;

  // Closed-loop pacing (DESIGN.md §14): workers acquire tokens from a
  // LoadController before every send. target_rate = 0 keeps the open-loop
  // degenerate case (acquire never waits) — fixed-count and paced runs
  // share one code path either way, and RunResult carries the
  // target/offered/achieved rates for both.
  double target_rate = 0.0;
  double rate_burst = 64.0;
  std::uint64_t load_seed = 1;
  // Externally-owned controller (e.g. a WorkerSession retargeted live via
  // control.set_rate). Null: the driver builds its own from the three knobs
  // above.
  std::shared_ptr<LoadController> load;

  // Transactions coalesced into one JSON-RPC batch round trip per worker
  // send (1 = the blocking single-call baseline). Raising this is the
  // client-side lever for driving the SUT faster than one round trip per
  // transaction allows; see bench_tcp_transport for the measured effect.
  std::size_t submit_batch_size = 1;

  // Client CPU model (0 disables). per_tx_client_us of work serialized over
  // client_vcpus, plus scheduling overhead per tx when threads exceed the
  // core count.
  std::uint32_t client_vcpus = 0;
  std::int64_t per_tx_client_us = 0;
  std::int64_t switch_penalty_us = 0;

  // Lifecycle tracing: every n-th transaction (by workload ordinal) records
  // sign/enqueue/submit/include/detect timestamps into a bounded ring
  // buffer; the per-stage breakdown lands in RunResult::stages. 0 disables.
  std::uint64_t trace_every_n = 0;
  std::size_t trace_capacity = 1 << 16;

  // Distributed tracing (requires trace_every_n > 0): sampled transactions'
  // batch frames carry a wire-propagated trace context; at run end the
  // driver fetches each target's server-side spans (telemetry.spans),
  // aligns clocks, and adds the stitched critical path to
  // RunResult::stages["remote"]. When non-empty, a Chrome trace_event JSON
  // document (Perfetto-loadable) of the whole run is written here.
  std::string trace_export_path;

  // task_processor.shards > 1 swaps the flat Algorithm 1 processor for K
  // independent shards keyed by tx-id hash (identical observable results;
  // see ShardedTaskProcessor).
  TaskProcessor::Options task_processor;

  // Optional metrics pipeline; when set, records stream into the cache and
  // are committed to SQL at the end of the run.
  std::shared_ptr<MetricsPipeline> metrics;

  // Optional: the injector driving this run's fault plan (client- or
  // SUT-side). The driver never draws from it — it only snapshots the
  // injected-fault counts into RunResult::faults.
  std::shared_ptr<fault::FaultInjector> fault_injector;
};

// Parses the "driver" sub-object of a control.deploy plan (or a tune trial)
// into DriverOptions. Accepted keys: worker_threads, submit_batch_size,
// routing, drain_timeout_ms, poll_interval_ms, task_shards,
// pipelined_signing, trace_every_n, channels_per_target, target_rate,
// rate_burst, load_seed. Unknown keys are rejected by name — the same
// contract Deployment enforces for chain specs, so a tuner or coordinator
// cannot silently search/push a misspelled knob. `channels_per_target`
// (when non-null) receives the cluster fan-in knob, which lives beside the
// DriverOptions because it shapes the SutCluster, not the driver.
DriverOptions driver_options_from_json(const json::Value& v,
                                       std::size_t* channels_per_target = nullptr);

// True when `key` is one driver_options_from_json accepts ("driver.<key>"
// knobs in a tune spec validate against this).
bool is_known_driver_option_key(const std::string& key);

class HammerDriver {
 public:
  // Drives every target of `cluster`; options.worker_threads is the TOTAL
  // worker count, split across targets (each target gets at least one).
  HammerDriver(std::shared_ptr<SutCluster> cluster, std::shared_ptr<util::Clock> clock,
               DriverOptions options);

  // Legacy single-endpoint shape: one adapter per worker thread plus one
  // for the block poller. Wraps the adapters in SutCluster::single.
  HammerDriver(std::vector<std::shared_ptr<adapters::ChainAdapter>> worker_adapters,
               std::shared_ptr<adapters::ChainAdapter> poll_adapter,
               std::shared_ptr<util::Clock> clock, DriverOptions options);

  // Runs the workload. `rate` schedules open-loop sends; nullptr = closed
  // loop. Blocks until every transaction completes or drain_timeout passes.
  RunResult run(const workload::WorkloadFile& workload,
                const workload::ControlSequence* rate);

  // Post-run diagnostics.
  const ShardedTaskProcessor* task_processor() const { return task_processor_.get(); }
  const SutCluster& cluster() const { return *cluster_; }
  std::uint64_t send_rejections() const { return rejections_.load(); }
  // Transactions marked failed because a worker exhausted its retry policy
  // (the run kept going — graceful degradation, not an abort).
  std::uint64_t send_failures() const { return send_failures_.load(); }
  // The pacing controller this driver sends through (its own open-loop one
  // unless DriverOptions::load was set). Never null after construction.
  const std::shared_ptr<LoadController>& load_controller() const { return load_; }
  // Live during run(); reset on the next run. Null when tracing is off.
  const telemetry::TxTracer* tracer() const { return tracer_.get(); }
  // Cross-process trace stitching state; null when tracing is off.
  const telemetry::TraceMerger* merger() const { return merger_.get(); }

 private:
  struct SendQueueItem {
    chain::Transaction tx;
    std::uint64_t ordinal = 0;  // position in the workload, for tracing
  };
  using SendQueue = util::MpmcQueue<SendQueueItem>;

  // Route stage: policy decision + push onto the target's queue (in-flight
  // is charged at push so least_inflight sees queued backlog, not just
  // wire backlog). Returns false when the queues are closed.
  bool route_and_push(std::vector<std::unique_ptr<SendQueue>>& queues, RoutingPolicy& policy,
                      SendQueueItem item);

  void worker_loop(SutTarget& target, std::size_t slot, SendQueue& queue,
                   workload::RateController* rate);
  void poll_loop(SutTarget& target);  // detect stage, one per target
  void listener_loop();               // interactive mode: receipt polling
  void charge_client_cpu();

  std::shared_ptr<SutCluster> cluster_;
  std::shared_ptr<util::Clock> clock_;
  DriverOptions options_;
  std::shared_ptr<LoadController> load_;
  std::shared_ptr<KeyCache> keys_ = std::make_shared<KeyCache>();

  std::unique_ptr<ShardedTaskProcessor> task_processor_;
  std::unique_ptr<BatchQueueProcessor> batch_processor_;
  std::unique_ptr<telemetry::TxTracer> tracer_;
  std::unique_ptr<telemetry::TraceMerger> merger_;
  // Trace ids are allocated per traced batch frame; 0 means unsampled, so
  // the counter starts at 1 and never wraps to 0 in practice.
  std::atomic<std::uint64_t> next_trace_id_{1};

  // Interactive mode: submitted transactions awaiting their individual
  // response, and the completions gathered by the listener.
  struct InteractivePending {
    std::string tx_id;
    std::int64_t start_us;
  };
  std::mutex interactive_mu_;
  std::deque<InteractivePending> interactive_pending_;
  std::vector<CompletedTx> interactive_completed_;

  std::unique_ptr<std::counting_semaphore<64>> client_cores_;
  std::atomic<std::uint64_t> rejections_{0};
  std::atomic<std::uint64_t> send_failures_{0};
  std::atomic<bool> stop_polling_{false};
};

// Convenience: searches the SUT's saturation throughput by driving a
// closed-loop burst of `txs_per_probe` transactions and reporting the
// measured TPS (used by the Fig. 6 / Fig. 7 peak-performance benches).
RunResult run_peak_probe(std::vector<std::shared_ptr<adapters::ChainAdapter>> worker_adapters,
                         std::shared_ptr<adapters::ChainAdapter> poll_adapter,
                         std::shared_ptr<util::Clock> clock, DriverOptions options,
                         const workload::WorkloadFile& workload);

// Cluster flavour of the same probe.
RunResult run_peak_probe(std::shared_ptr<SutCluster> cluster, std::shared_ptr<util::Clock> clock,
                         DriverOptions options, const workload::WorkloadFile& workload);

}  // namespace hammer::core
