#include "core/worker_session.hpp"

#include <unistd.h>

#include <algorithm>

#include "core/deployment.hpp"
#include "rpc/api.hpp"
#include "telemetry/endpoint.hpp"
#include "util/errors.hpp"
#include "util/logging.hpp"

namespace hammer::core {

namespace {

// Every key a control.deploy plan may carry. Unknown keys fail by name —
// the same contract core::Deployment enforces for chain specs.
const char* const kKnownPlanKeys[] = {"worker_index", "worker_count", "endpoints",
                                      "accounts",     "workload",     "total_txs",
                                      "driver",       "client",       "faults"};

void validate_plan_keys(const json::Value& plan) {
  for (const auto& [key, value] : plan.as_object()) {
    (void)value;
    bool known = std::any_of(std::begin(kKnownPlanKeys), std::end(kKnownPlanKeys),
                             [&](const char* k) { return key == k; });
    if (!known) {
      throw ParseError("unknown deploy plan key '" + key + "' in control.deploy");
    }
  }
}

rpc::ClientConfig parse_client_config(const json::Value& v) {
  rpc::ClientConfig config;
  if (v.is_null()) return config;
  std::string codec = v.get_string("codec", "binary");
  if (codec == "json") {
    config.codec = rpc::CodecPreference::kJsonOnly;
  } else if (codec != "binary") {
    throw ParseError("unknown client codec '" + codec + "' in control.deploy");
  }
  config.timeout = std::chrono::milliseconds(v.get_int("timeout_ms", 5000));
  auto attempts = static_cast<std::uint32_t>(v.get_int("retry_attempts", 1));
  if (attempts > 1) config.retry = rpc::RetryPolicy::standard(attempts);
  config.retry.on_rejected = v.get_bool("retry_on_rejected", config.retry.on_rejected);
  return config;
}

std::vector<RemoteEndpoint> parse_endpoints(const json::Value& v) {
  std::vector<RemoteEndpoint> endpoints;
  for (const json::Value& e : v.as_array()) {
    RemoteEndpoint endpoint;
    endpoint.host = e.get_string("host", "127.0.0.1");
    endpoint.port = static_cast<std::uint16_t>(e.at("port").as_int());
    endpoints.push_back(std::move(endpoint));
  }
  if (endpoints.empty()) throw ParseError("control.deploy needs >= 1 SUT endpoint");
  return endpoints;
}

}  // namespace

WorkerSession::WorkerSession(Options options) : options_(options) {
  dispatcher_ = std::make_shared<rpc::Dispatcher>();
  dispatcher_->register_method("control.hello",
                               [this](const json::Value& p) { return handle_hello(p); });
  dispatcher_->register_method("control.deploy",
                               [this](const json::Value& p) { return handle_deploy(p); });
  dispatcher_->register_method("control.start",
                               [this](const json::Value& p) { return handle_start(p); });
  dispatcher_->register_method("control.set_rate",
                               [this](const json::Value& p) { return handle_set_rate(p); });
  dispatcher_->register_method("control.stats",
                               [this](const json::Value& p) { return handle_stats(p); });
  dispatcher_->register_method("control.report",
                               [this](const json::Value& p) { return handle_report(p); });
  dispatcher_->register_method("control.stop",
                               [this](const json::Value& p) { return handle_stop(p); });
  // One registry: control.*, telemetry.* and rpc.api share the dispatcher
  // (and thus the namespace-aware unknown-method error shape).
  telemetry::bind_telemetry_rpc(*dispatcher_);
  rpc::bind_api_info(*dispatcher_);
  server_ = std::make_unique<rpc::TcpServer>(dispatcher_, options_.port, options_.rpc_workers);
}

WorkerSession::~WorkerSession() {
  join_run_thread();
  server_->stop();
}

WorkerSession::State WorkerSession::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

const char* WorkerSession::state_name(State s) const {
  switch (s) {
    case State::kIdle: return "idle";
    case State::kDeployed: return "deployed";
    case State::kRunning: return "running";
    case State::kDone: return "done";
  }
  return "?";
}

void WorkerSession::join_run_thread() {
  if (run_thread_.joinable()) run_thread_.join();
}

json::Value WorkerSession::handle_hello(const json::Value&) {
  std::lock_guard<std::mutex> lock(mu_);
  return json::object({{"api", static_cast<std::int64_t>(rpc::kApiVersion)},
                       {"role", "worker"},
                       {"state", state_name(state_)},
                       {"worker_index", static_cast<std::int64_t>(worker_index_)},
                       {"pid", static_cast<std::int64_t>(::getpid())}});
}

json::Value WorkerSession::handle_deploy(const json::Value& params) {
  validate_plan_keys(params);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::kRunning) {
      throw RejectedError("control.deploy rejected: worker is running");
    }
  }
  // A done worker is re-deployable; its finished run thread joins here.
  join_run_thread();

  auto worker_index = static_cast<std::size_t>(params.get_int("worker_index", 0));
  auto worker_count = static_cast<std::size_t>(params.get_int("worker_count", 1));
  if (worker_count == 0 || worker_index >= worker_count) {
    throw ParseError("control.deploy needs worker_index < worker_count");
  }
  std::vector<RemoteEndpoint> endpoints = parse_endpoints(params.at("endpoints"));
  std::vector<std::string> accounts;
  for (const json::Value& a : params.at("accounts").as_array()) {
    accounts.push_back(a.as_string());
  }
  workload::WorkloadProfile profile = workload::WorkloadProfile::from_json(params.at("workload"));
  auto total_txs = static_cast<std::size_t>(params.at("total_txs").as_int());

  // Shared parser (driver_options_from_json) so the coordinator, the tuner
  // and hand-written plans all hit the same unknown-key rejection.
  std::size_t channels_per_target = 2;
  DriverOptions options = driver_options_from_json(
      params.contains("driver") ? params.at("driver") : json::Value(), &channels_per_target);
  options.server_id = "worker-" + std::to_string(worker_index);
  rpc::ClientConfig client_config =
      parse_client_config(params.contains("client") ? params.at("client") : json::Value());

  // Client-side faults: the master plan's per-worker derivation, so every
  // worker draws a decorrelated-but-deterministic stream.
  std::shared_ptr<fault::FaultInjector> client_faults;
  if (params.contains("faults")) {
    fault::FaultPlan master = fault::FaultPlan::from_json(params.at("faults"));
    client_faults = std::make_shared<fault::FaultInjector>(master.derived_for_worker(
        static_cast<std::uint64_t>(worker_index)));
    options.fault_injector = client_faults;
  }

  workload::ShardSpec shard{worker_index, worker_count};
  workload::WorkloadFile wf =
      workload::generate_workload_shard(profile, accounts, total_txs, shard);

  std::size_t workers_per_target =
      std::max<std::size_t>(1, options.worker_threads / endpoints.size());
  std::shared_ptr<SutCluster> cluster = make_remote_cluster(
      endpoints, workers_per_target, channels_per_target, client_config, client_faults);

  // Session-owned pacing controller: the driver borrows it, so a later
  // control.set_rate reaches the workers already blocked in acquire().
  LoadOptions load_options;
  load_options.rate = options.target_rate;
  load_options.burst = options.rate_burst;
  load_options.seed = options.load_seed;
  auto load = std::make_shared<LoadController>(load_options, util::SteadyClock::shared());
  options.load = load;

  std::lock_guard<std::mutex> lock(mu_);
  worker_index_ = worker_index;
  cluster_ = std::move(cluster);
  load_ = std::move(load);
  driver_options_ = std::move(options);
  workload_ = std::move(wf);
  result_.reset();
  last_submitted_ = 0;
  last_completed_ = 0;
  state_ = State::kDeployed;
  HLOG_INFO("worker") << "deployed shard " << worker_index << "/" << worker_count << ": "
                      << workload_.transactions.size() << " txs over "
                      << endpoints.size() << " endpoint(s)";
  return json::object({{"worker_index", static_cast<std::int64_t>(worker_index)},
                       {"txs", static_cast<std::int64_t>(workload_.transactions.size())},
                       {"accounts", static_cast<std::int64_t>(
                                        workload::shard_accounts(accounts, shard).size())},
                       {"shards", static_cast<std::int64_t>(cluster_->total_shards())}});
}

json::Value WorkerSession::handle_start(const json::Value&) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != State::kDeployed) {
    throw RejectedError(std::string("control.start rejected: worker is ") +
                        state_name(state_) + ", not deployed");
  }
  state_ = State::kRunning;
  run_thread_ = std::thread([this] {
    HammerDriver driver(cluster_, util::SteadyClock::shared(), driver_options_);
    RunResult result = driver.run(workload_, /*rate=*/nullptr);
    std::lock_guard<std::mutex> lock(mu_);
    result_ = std::move(result);
    state_ = State::kDone;
    cv_.notify_all();
  });
  return json::object({{"started", true}});
}

json::Value WorkerSession::handle_set_rate(const json::Value& params) {
  double rate = params.at("rate").as_double();
  if (rate < 0.0) throw ParseError("control.set_rate needs rate >= 0");
  std::lock_guard<std::mutex> lock(mu_);
  if (!load_ || state_ == State::kIdle) {
    throw RejectedError("control.set_rate rejected: worker has no deployment");
  }
  double previous = load_->target_rate();
  load_->set_rate(rate);
  HLOG_INFO("worker") << "set_rate " << previous << " -> " << rate << " tx/s";
  return json::object({{"rate", rate}, {"previous", previous}, {"state", state_name(state_)}});
}

json::Value WorkerSession::handle_stats(const json::Value&) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  if (cluster_) {
    for (std::size_t i = 0; i < cluster_->size(); ++i) {
      submitted += cluster_->target(i).submitted();
      completed += cluster_->target(i).completed();
    }
  }
  json::Value v = json::object({{"state", state_name(state_)},
                                {"submitted", submitted},
                                {"completed", completed},
                                {"delta_submitted", submitted - last_submitted_},
                                {"delta_completed", completed - last_completed_}});
  last_submitted_ = submitted;
  last_completed_ = completed;
  return v;
}

json::Value WorkerSession::handle_report(const json::Value&) {
  std::lock_guard<std::mutex> lock(mu_);
  // Never blocks: a TcpServer worker thread waiting on the run would stall
  // the control plane (stats, stop). The coordinator polls.
  if (!result_.has_value()) {
    return json::object({{"done", false}, {"state", state_name(state_)}});
  }
  return json::object({{"done", true},
                       {"worker_index", static_cast<std::int64_t>(worker_index_)},
                       {"result", result_->to_wire_json()}});
}

json::Value WorkerSession::handle_stop(const json::Value&) {
  std::lock_guard<std::mutex> lock(mu_);
  stop_requested_ = true;
  cv_.notify_all();
  return json::object({{"stopping", true}});
}

void WorkerSession::serve() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return stop_requested_ && state_ != State::kRunning; });
  }
  join_run_thread();
  // Grace window so the server thread can flush the control.stop ack the
  // coordinator is still reading (the coordinator also tolerates losing
  // the race).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server_->stop();
}

}  // namespace hammer::core
