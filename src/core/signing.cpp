#include "core/signing.hpp"

#include "util/errors.hpp"

namespace hammer::core {

const crypto::KeyPair& KeyCache::get(const std::string& sender) {
  std::scoped_lock lock(mu_);
  auto it = keys_.find(sender);
  if (it == keys_.end()) {
    it = keys_.emplace(sender, crypto::derive_keypair(sender)).first;
  }
  return it->second;
}

void KeyCache::warm(const std::vector<std::string>& senders) {
  for (const std::string& sender : senders) get(sender);
}

void sign_serial(std::vector<chain::Transaction>& txs, KeyCache& keys) {
  for (chain::Transaction& tx : txs) tx.sign_with(keys.get(tx.sender));
}

AsyncSigner::AsyncSigner(std::size_t threads, std::shared_ptr<KeyCache> keys)
    : pool_(threads), keys_(std::move(keys)) {
  HAMMER_CHECK(keys_ != nullptr);
}

void AsyncSigner::sign_batch(std::vector<chain::Transaction>& txs) {
  // Shard the batch across workers; futures gate completion.
  std::size_t shards = pool_.size() * 4;
  std::size_t chunk = (txs.size() + shards - 1) / shards;
  if (chunk == 0) return;
  std::vector<std::future<void>> futures;
  for (std::size_t begin = 0; begin < txs.size(); begin += chunk) {
    std::size_t end = std::min(begin + chunk, txs.size());
    futures.push_back(pool_.submit([this, &txs, begin, end] {
      for (std::size_t i = begin; i < end; ++i) txs[i].sign_with(keys_->get(txs[i].sender));
    }));
  }
  for (auto& f : futures) f.get();
}

SigningPipeline::SigningPipeline(std::vector<chain::Transaction> txs,
                                 std::shared_ptr<KeyCache> keys, std::size_t queue_capacity)
    : keys_(std::move(keys)), queue_(queue_capacity) {
  HAMMER_CHECK(keys_ != nullptr);
  signer_ = std::thread([this, txs = std::move(txs)]() mutable {
    for (chain::Transaction& tx : txs) {
      tx.sign_with(keys_->get(tx.sender));
      if (!queue_.push(std::move(tx))) return;  // consumer closed early
    }
    queue_.close();
  });
}

SigningPipeline::~SigningPipeline() {
  queue_.close();
  if (signer_.joinable()) signer_.join();
}

std::optional<chain::Transaction> SigningPipeline::pop() { return queue_.pop(); }

}  // namespace hammer::core
