// Transaction signing strategies (paper §III-D1, Fig. 4, Fig. 8).
//
//  - sign_serial:   the naive baseline — sign every transaction, then hand
//                   the whole batch over (execution waits for all of it).
//  - AsyncSigner:   signatures are independent of each other, so they fan
//                   out across a thread pool ("asynchronous signatures
//                   method"); the caller still waits for the batch.
//  - SigningPipeline: the full optimization — signed transactions stream
//                   into a bounded queue as they become ready, so the
//                   execution phase overlaps the preparation phase
//                   ("pipelining preparation and execution", Fig. 4c).
//
// Account keys are derived from the sender name (deterministic across
// client/server/SUT) and memoized, so the measured cost is the signature
// itself, as in the paper.
#pragma once

#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "chain/types.hpp"
#include "crypto/schnorr.hpp"
#include "util/mpmc_queue.hpp"
#include "util/thread_pool.hpp"

namespace hammer::core {

// Thread-safe memoized sender -> keypair derivation.
class KeyCache {
 public:
  const crypto::KeyPair& get(const std::string& sender);

  // Pre-derives keys for a known account population (outside timed runs).
  void warm(const std::vector<std::string>& senders);

 private:
  std::mutex mu_;
  std::unordered_map<std::string, crypto::KeyPair> keys_;
};

// Signs in place, one after another, on the calling thread.
void sign_serial(std::vector<chain::Transaction>& txs, KeyCache& keys);

class AsyncSigner {
 public:
  explicit AsyncSigner(std::size_t threads, std::shared_ptr<KeyCache> keys);

  // Signs the batch across the pool; returns when every tx is signed.
  void sign_batch(std::vector<chain::Transaction>& txs);

 private:
  util::ThreadPool pool_;
  std::shared_ptr<KeyCache> keys_;
};

// Streams signed transactions into a bounded queue from a background
// signer thread. Consumers pop() while signing continues — preparation and
// execution overlap.
class SigningPipeline {
 public:
  SigningPipeline(std::vector<chain::Transaction> txs, std::shared_ptr<KeyCache> keys,
                  std::size_t queue_capacity = 1024);
  ~SigningPipeline();

  // nullopt once every transaction has been consumed.
  std::optional<chain::Transaction> pop();

 private:
  std::shared_ptr<KeyCache> keys_;
  util::MpmcQueue<chain::Transaction> queue_;
  std::thread signer_;
};

}  // namespace hammer::core
