#include "core/sut_cluster.hpp"

#include <algorithm>
#include <limits>

#include "rpc/tcp.hpp"
#include "telemetry/registry.hpp"
#include "util/errors.hpp"
#include "util/logging.hpp"

namespace hammer::core {

RoutingKind routing_kind_from_string(const std::string& name) {
  if (name == "round_robin" || name == "rr") return RoutingKind::kRoundRobin;
  if (name == "least_inflight" || name == "least") return RoutingKind::kLeastInFlight;
  if (name == "shard" || name == "shard_affine") return RoutingKind::kShardAffine;
  throw ParseError("unknown routing policy: " + name +
                   " (expected round_robin|least_inflight|shard)");
}

const char* to_string(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::kRoundRobin:
      return "round_robin";
    case RoutingKind::kLeastInFlight:
      return "least_inflight";
    case RoutingKind::kShardAffine:
      return "shard";
  }
  return "round_robin";
}

SutTarget::SutTarget(std::size_t index,
                     std::vector<std::shared_ptr<adapters::ChainAdapter>> worker_adapters,
                     std::shared_ptr<adapters::ChainAdapter> poll_adapter,
                     std::vector<std::uint32_t> shards)
    : index_(index),
      worker_adapters_(std::move(worker_adapters)),
      poll_adapter_(std::move(poll_adapter)),
      shards_(std::move(shards)) {
  HAMMER_CHECK_MSG(!worker_adapters_.empty(), "SutTarget needs at least one worker adapter");
  HAMMER_CHECK_MSG(poll_adapter_ != nullptr, "SutTarget needs a poll adapter");
  telemetry::MetricRegistry& reg = telemetry::MetricRegistry::global();
  const std::string label = "target=\"" + std::to_string(index_) + "\"";
  submitted_metric_ = &reg.counter("hammer_cluster_submitted_total",
                                   "Transactions submitted through this cluster target", label);
  completed_metric_ = &reg.counter("hammer_cluster_completed_total",
                                   "Completions detected via this cluster target's poller", label);
  polled_metric_ = &reg.counter("hammer_cluster_polled_blocks_total",
                                "Blocks fetched by this cluster target's poller", label);
  // Surface which wire codec this endpoint's channels negotiated so mixed
  // fleets (new binary endpoints beside legacy JSON ones) are visible in
  // run logs instead of silently skewing throughput comparisons.
  if (auto* tcp = dynamic_cast<rpc::TcpChannel*>(worker_adapters_.front()->channel().get())) {
    codec_ = rpc::wire::to_string(tcp->codec());
  } else {
    codec_ = "inproc";
  }
  HLOG_DEBUG("cluster") << "target " << index_ << " speaks " << codec_ << " ("
                        << worker_adapters_.size() << " workers, clock offset "
                        << clock_offset().remote_minus_local_us << "us)";
}

void SutTarget::count_submitted(std::uint64_t n) {
  submitted_.fetch_add(n, std::memory_order_relaxed);
  submitted_metric_->add(n);
}

void SutTarget::count_completed(std::uint64_t n) {
  completed_.fetch_add(n, std::memory_order_relaxed);
  completed_metric_->add(n);
}

void SutTarget::count_polled_blocks(std::uint64_t n) { polled_metric_->add(n); }

SutCluster::SutCluster(std::vector<std::unique_ptr<SutTarget>> targets)
    : targets_(std::move(targets)) {
  HAMMER_CHECK_MSG(!targets_.empty(), "SutCluster needs at least one target");
  total_shards_ = std::max<std::uint32_t>(1, targets_[0]->poll_adapter()->info().shards);
  // Default every shard to target 0, then let each target claim its set —
  // an unclaimed shard (sparse clusters) still has a poller responsible.
  shard_owner_.assign(total_shards_, 0);
  for (const auto& target : targets_) {
    for (std::uint32_t shard : target->shards()) {
      HAMMER_CHECK_MSG(shard < total_shards_, "target claims out-of-range shard");
      shard_owner_[shard] = target->index();
    }
  }
}

std::shared_ptr<SutCluster> SutCluster::single(
    std::vector<std::shared_ptr<adapters::ChainAdapter>> worker_adapters,
    std::shared_ptr<adapters::ChainAdapter> poll_adapter) {
  std::uint32_t shards = std::max<std::uint32_t>(1, poll_adapter->info().shards);
  std::vector<std::uint32_t> all(shards);
  for (std::uint32_t s = 0; s < shards; ++s) all[s] = s;
  std::vector<std::unique_ptr<SutTarget>> targets;
  targets.push_back(std::make_unique<SutTarget>(0, std::move(worker_adapters),
                                                std::move(poll_adapter), std::move(all)));
  return std::make_shared<SutCluster>(std::move(targets));
}

std::uint32_t SutCluster::shard_for_sender(const std::string& sender) const {
  // Must agree with chain::Blockchain::shard_for_sender. For in-process SUTs
  // that is guaranteed (same std::hash); remote SUTs can be cross-checked
  // via ChainAdapter::shard_for.
  return static_cast<std::uint32_t>(std::hash<std::string>{}(sender) % total_shards_);
}

namespace {

class RoundRobinPolicy final : public RoutingPolicy {
 public:
  std::size_t route(const chain::Transaction&, const SutCluster& cluster) override {
    return next_.fetch_add(1, std::memory_order_relaxed) % cluster.size();
  }
  RoutingKind kind() const override { return RoutingKind::kRoundRobin; }

 private:
  std::atomic<std::uint64_t> next_{0};
};

class LeastInFlightPolicy final : public RoutingPolicy {
 public:
  std::size_t route(const chain::Transaction&, const SutCluster& cluster) override {
    std::size_t best = 0;
    std::uint64_t best_load = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      std::uint64_t load = cluster.target(i).in_flight();
      if (load < best_load) {  // tie -> lowest index, keeps routing stable
        best_load = load;
        best = i;
      }
    }
    return best;
  }
  RoutingKind kind() const override { return RoutingKind::kLeastInFlight; }
};

class ShardAffinePolicy final : public RoutingPolicy {
 public:
  std::size_t route(const chain::Transaction& tx, const SutCluster& cluster) override {
    return cluster.owner_of_shard(cluster.shard_for_sender(tx.sender));
  }
  RoutingKind kind() const override { return RoutingKind::kShardAffine; }
};

}  // namespace

std::unique_ptr<RoutingPolicy> make_routing_policy(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>();
    case RoutingKind::kLeastInFlight:
      return std::make_unique<LeastInFlightPolicy>();
    case RoutingKind::kShardAffine:
      return std::make_unique<ShardAffinePolicy>();
  }
  return std::make_unique<RoundRobinPolicy>();
}

}  // namespace hammer::core
