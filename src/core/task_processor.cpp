#include "core/task_processor.hpp"

#include <algorithm>
#include <iterator>

#include "telemetry/registry.hpp"
#include "util/errors.hpp"

namespace hammer::core {

namespace {
// Task-processing (Algorithm 1) health series: how hard the Bloom filter
// and hash index are working while the run is live.
struct TaskProcMetrics {
  telemetry::Counter& registered;
  telemetry::Counter& matched;
  telemetry::Counter& bloom_rejected;
  telemetry::Counter& bloom_false_positives;
  telemetry::Counter& duplicates;
  telemetry::Counter& probe_steps;

  static TaskProcMetrics& get() {
    static TaskProcMetrics metrics;
    return metrics;
  }

 private:
  TaskProcMetrics()
      : registered(reg().counter("hammer_taskproc_registered_total",
                                 "Transactions entered into the vector list")),
        matched(reg().counter("hammer_taskproc_matched_total",
                              "Receipts matched to pending records")),
        bloom_rejected(reg().counter("hammer_taskproc_bloom_rejected_total",
                                     "Receipt ids sifted out by the Bloom filter")),
        bloom_false_positives(reg().counter(
            "hammer_taskproc_bloom_false_positives_total",
            "Ids that passed the filter but were absent from the index")),
        duplicates(reg().counter("hammer_taskproc_duplicates_total",
                                 "Receipts for already-completed records")),
        probe_steps(reg().counter("hammer_taskproc_index_probe_steps_total",
                                  "Hash-index probe steps (lookup work)")) {}

  static telemetry::MetricRegistry& reg() { return telemetry::MetricRegistry::global(); }
};
}  // namespace

TaskProcessor::TaskProcessor(Options options)
    : options_(options),
      index_(options.initial_index_capacity, options.growable_index),
      bloom_(options.expected_txs, options.bloom_fp_rate) {
  records_.reserve(options.expected_txs);
}

std::size_t TaskProcessor::register_tx(std::string tx_id, std::int64_t start_us,
                                       const std::string& client_id,
                                       const std::string& server_id,
                                       const std::string& chainname,
                                       const std::string& contractname,
                                       std::uint64_t ordinal) {
  TaskProcMetrics::get().registered.add(1);
  std::scoped_lock lock(mu_);
  std::size_t position = records_.size();
  TxRecord record;
  record.tx_id = std::move(tx_id);
  record.start_us = start_us;
  record.ordinal = ordinal;
  record.client_id = client_id;
  record.server_id = server_id;
  record.chainname = chainname;
  record.contractname = contractname;
  index_.insert(record.tx_id, position);
  bloom_.insert(record.tx_id);
  records_.push_back(std::move(record));
  return position;
}

void TaskProcessor::apply_receipt_locked(const chain::TxReceipt& receipt,
                                         std::int64_t block_time_us, std::int64_t include_us,
                                         BlockOutcome& outcome) {
  // Line 15: rapid exclusion of transactions not in the index.
  if (!bloom_.may_contain(receipt.tx_id)) {
    ++outcome.bloom_rejected;
    return;
  }
  // Line 18: locate via the hash index (false positives land here).
  std::optional<std::uint64_t> position = index_.find(receipt.tx_id);
  if (!position) {
    ++outcome.unknown;
    return;
  }
  TxRecord& record = records_[*position];
  if (record.completed) {
    ++outcome.duplicates;
    return;
  }
  // Line 19: update status and end time.
  record.end_us = block_time_us;
  record.status = receipt.status;
  record.completed = true;
  ++completed_;
  ++outcome.matched;
  if (options_.track_completions) newly_completed_.push_back(*position);
  if (options_.tracer != nullptr && options_.tracer->sampled(record.ordinal)) {
    options_.tracer->record(record.ordinal, telemetry::Stage::kIncluded,
                            include_us >= 0 ? include_us : block_time_us);
    options_.tracer->record(record.ordinal, telemetry::Stage::kDetected, block_time_us);
  }
}

void TaskProcessor::flush_outcome_metrics(const BlockOutcome& outcome,
                                          std::uint64_t probe_delta) {
  TaskProcMetrics& metrics = TaskProcMetrics::get();
  metrics.matched.add(outcome.matched);
  metrics.bloom_rejected.add(outcome.bloom_rejected);
  metrics.bloom_false_positives.add(outcome.unknown);
  metrics.duplicates.add(outcome.duplicates);
  metrics.probe_steps.add(probe_delta);
}

TaskProcessor::BlockOutcome TaskProcessor::on_block(
    std::int64_t block_time_us, std::span<const chain::TxReceipt> receipts,
    std::int64_t include_us) {
  BlockOutcome outcome;
  std::uint64_t probe_delta = 0;
  {
    std::scoped_lock lock(mu_);
    const std::uint64_t probes_before = index_.probe_steps();
    for (const chain::TxReceipt& receipt : receipts) {
      apply_receipt_locked(receipt, block_time_us, include_us, outcome);
    }
    probe_delta = index_.probe_steps() - probes_before;
  }
  flush_outcome_metrics(outcome, probe_delta);
  return outcome;
}

TaskProcessor::BlockOutcome TaskProcessor::on_block_some(
    std::int64_t block_time_us, std::span<const chain::TxReceipt> receipts,
    std::span<const std::uint32_t> indices, std::int64_t include_us) {
  BlockOutcome outcome;
  std::uint64_t probe_delta = 0;
  {
    std::scoped_lock lock(mu_);
    const std::uint64_t probes_before = index_.probe_steps();
    for (std::uint32_t i : indices) {
      apply_receipt_locked(receipts[i], block_time_us, include_us, outcome);
    }
    probe_delta = index_.probe_steps() - probes_before;
  }
  flush_outcome_metrics(outcome, probe_delta);
  return outcome;
}

void TaskProcessor::mark_rejected(std::size_t position, std::int64_t end_us) {
  std::scoped_lock lock(mu_);
  HAMMER_CHECK(position < records_.size());
  TxRecord& record = records_[position];
  if (record.completed) return;
  record.end_us = end_us;
  record.status = chain::TxStatus::kInvalid;
  record.completed = true;
  ++completed_;
  if (options_.track_completions) newly_completed_.push_back(position);
}

std::size_t TaskProcessor::total_registered() const {
  std::scoped_lock lock(mu_);
  return records_.size();
}

std::size_t TaskProcessor::pending_count() const {
  std::scoped_lock lock(mu_);
  return records_.size() - completed_;
}

std::vector<TxRecord> TaskProcessor::snapshot() const {
  std::scoped_lock lock(mu_);
  return records_;
}

std::size_t TaskProcessor::drain_newly_completed(std::vector<TxRecord>& out) {
  std::scoped_lock lock(mu_);
  std::size_t count = newly_completed_.size();
  out.reserve(out.size() + count);
  for (std::size_t position : newly_completed_) out.push_back(records_[position]);
  newly_completed_.clear();
  return count;
}

std::uint64_t TaskProcessor::index_probe_steps() const {
  std::scoped_lock lock(mu_);
  return index_.probe_steps();
}

std::uint64_t TaskProcessor::index_expansions() const {
  std::scoped_lock lock(mu_);
  return index_.expansions();
}

double TaskProcessor::bloom_fill() const {
  std::scoped_lock lock(mu_);
  return bloom_.estimated_fp_rate();
}

ShardedTaskProcessor::ShardedTaskProcessor(TaskProcessor::Options options) {
  std::size_t count = std::max<std::size_t>(1, options.shards);
  TaskProcessor::Options per_shard = options;
  // Each shard sees ~1/K of the ids; size its Bloom filter and vector list
  // accordingly so K shards cost what one flat processor did.
  per_shard.expected_txs = std::max<std::size_t>(1, (options.expected_txs + count - 1) / count);
  shards_.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    shards_.push_back(std::make_unique<TaskProcessor>(per_shard));
  }
}

std::size_t ShardedTaskProcessor::register_tx(std::string tx_id, std::int64_t start_us,
                                              const std::string& client_id,
                                              const std::string& server_id,
                                              const std::string& chainname,
                                              const std::string& contractname,
                                              std::uint64_t ordinal) {
  std::size_t shard = shard_of(tx_id);
  std::size_t position = shards_[shard]->register_tx(std::move(tx_id), start_us, client_id,
                                                     server_id, chainname, contractname,
                                                     ordinal);
  return position * shards_.size() + shard;
}

TaskProcessor::BlockOutcome ShardedTaskProcessor::on_block(
    std::int64_t block_time_us, std::span<const chain::TxReceipt> receipts,
    std::int64_t include_us) {
  if (shards_.size() == 1) return shards_[0]->on_block(block_time_us, receipts, include_us);
  // Partition once, then apply each slice under its own shard's lock.
  std::vector<std::vector<std::uint32_t>> slices(shards_.size());
  for (std::uint32_t i = 0; i < receipts.size(); ++i) {
    slices[shard_of(receipts[i].tx_id)].push_back(i);
  }
  TaskProcessor::BlockOutcome merged;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (slices[s].empty()) continue;
    TaskProcessor::BlockOutcome outcome =
        shards_[s]->on_block_some(block_time_us, receipts, slices[s], include_us);
    merged.matched += outcome.matched;
    merged.bloom_rejected += outcome.bloom_rejected;
    merged.unknown += outcome.unknown;
    merged.duplicates += outcome.duplicates;
  }
  return merged;
}

void ShardedTaskProcessor::mark_rejected(std::size_t handle, std::int64_t end_us) {
  shards_[handle % shards_.size()]->mark_rejected(handle / shards_.size(), end_us);
}

std::size_t ShardedTaskProcessor::total_registered() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->total_registered();
  return total;
}

std::size_t ShardedTaskProcessor::pending_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->pending_count();
  return total;
}

std::vector<TxRecord> ShardedTaskProcessor::snapshot() const {
  std::vector<TxRecord> all;
  all.reserve(total_registered());
  for (const auto& shard : shards_) {
    std::vector<TxRecord> records = shard->snapshot();
    all.insert(all.end(), std::make_move_iterator(records.begin()),
               std::make_move_iterator(records.end()));
  }
  return all;
}

std::size_t ShardedTaskProcessor::drain_newly_completed(std::vector<TxRecord>& out) {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->drain_newly_completed(out);
  return total;
}

std::uint64_t ShardedTaskProcessor::index_probe_steps() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->index_probe_steps();
  return total;
}

std::uint64_t ShardedTaskProcessor::index_expansions() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->index_expansions();
  return total;
}

double ShardedTaskProcessor::bloom_fill() const {
  double sum = 0.0;
  for (const auto& shard : shards_) sum += shard->bloom_fill();
  return sum / static_cast<double>(shards_.size());
}

json::Value ShardedTaskProcessor::stats_json() const {
  json::Array per_shard;
  per_shard.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    per_shard.push_back(json::object(
        {{"shard", static_cast<std::int64_t>(s)},
         {"registered", shards_[s]->total_registered()},
         {"pending", shards_[s]->pending_count()},
         {"probe_steps", shards_[s]->index_probe_steps()},
         {"expansions", shards_[s]->index_expansions()},
         {"bloom_fill", shards_[s]->bloom_fill()}}));
  }
  return json::object({{"shards", static_cast<std::int64_t>(shards_.size())},
                       {"registered", total_registered()},
                       {"pending", pending_count()},
                       {"probe_steps", index_probe_steps()},
                       {"expansions", index_expansions()},
                       {"per_shard", json::Value(std::move(per_shard))}});
}

}  // namespace hammer::core
