#include "core/task_processor.hpp"

#include "telemetry/registry.hpp"
#include "util/errors.hpp"

namespace hammer::core {

namespace {
// Task-processing (Algorithm 1) health series: how hard the Bloom filter
// and hash index are working while the run is live.
struct TaskProcMetrics {
  telemetry::Counter& registered;
  telemetry::Counter& matched;
  telemetry::Counter& bloom_rejected;
  telemetry::Counter& bloom_false_positives;
  telemetry::Counter& duplicates;
  telemetry::Counter& probe_steps;

  static TaskProcMetrics& get() {
    static TaskProcMetrics metrics;
    return metrics;
  }

 private:
  TaskProcMetrics()
      : registered(reg().counter("hammer_taskproc_registered_total",
                                 "Transactions entered into the vector list")),
        matched(reg().counter("hammer_taskproc_matched_total",
                              "Receipts matched to pending records")),
        bloom_rejected(reg().counter("hammer_taskproc_bloom_rejected_total",
                                     "Receipt ids sifted out by the Bloom filter")),
        bloom_false_positives(reg().counter(
            "hammer_taskproc_bloom_false_positives_total",
            "Ids that passed the filter but were absent from the index")),
        duplicates(reg().counter("hammer_taskproc_duplicates_total",
                                 "Receipts for already-completed records")),
        probe_steps(reg().counter("hammer_taskproc_index_probe_steps_total",
                                  "Hash-index probe steps (lookup work)")) {}

  static telemetry::MetricRegistry& reg() { return telemetry::MetricRegistry::global(); }
};
}  // namespace

TaskProcessor::TaskProcessor(Options options)
    : options_(options),
      index_(options.initial_index_capacity, options.growable_index),
      bloom_(options.expected_txs, options.bloom_fp_rate) {
  records_.reserve(options.expected_txs);
}

std::size_t TaskProcessor::register_tx(std::string tx_id, std::int64_t start_us,
                                       const std::string& client_id,
                                       const std::string& server_id,
                                       const std::string& chainname,
                                       const std::string& contractname,
                                       std::uint64_t ordinal) {
  TaskProcMetrics::get().registered.add(1);
  std::scoped_lock lock(mu_);
  std::size_t position = records_.size();
  TxRecord record;
  record.tx_id = std::move(tx_id);
  record.start_us = start_us;
  record.ordinal = ordinal;
  record.client_id = client_id;
  record.server_id = server_id;
  record.chainname = chainname;
  record.contractname = contractname;
  index_.insert(record.tx_id, position);
  bloom_.insert(record.tx_id);
  records_.push_back(std::move(record));
  return position;
}

TaskProcessor::BlockOutcome TaskProcessor::on_block(
    std::int64_t block_time_us, std::span<const chain::TxReceipt> receipts,
    std::int64_t include_us) {
  BlockOutcome outcome;
  std::uint64_t probe_delta = 0;
  {
    std::scoped_lock lock(mu_);
    const std::uint64_t probes_before = index_.probe_steps();
    for (const chain::TxReceipt& receipt : receipts) {
      // Line 15: rapid exclusion of transactions not in the index.
      if (!bloom_.may_contain(receipt.tx_id)) {
        ++outcome.bloom_rejected;
        continue;
      }
      // Line 18: locate via the hash index (false positives land here).
      std::optional<std::uint64_t> position = index_.find(receipt.tx_id);
      if (!position) {
        ++outcome.unknown;
        continue;
      }
      TxRecord& record = records_[*position];
      if (record.completed) {
        ++outcome.duplicates;
        continue;
      }
      // Line 19: update status and end time.
      record.end_us = block_time_us;
      record.status = receipt.status;
      record.completed = true;
      ++completed_;
      ++outcome.matched;
      if (options_.tracer != nullptr && options_.tracer->sampled(record.ordinal)) {
        options_.tracer->record(record.ordinal, telemetry::Stage::kIncluded,
                                include_us >= 0 ? include_us : block_time_us);
        options_.tracer->record(record.ordinal, telemetry::Stage::kDetected, block_time_us);
      }
    }
    probe_delta = index_.probe_steps() - probes_before;
  }
  TaskProcMetrics& metrics = TaskProcMetrics::get();
  metrics.matched.add(outcome.matched);
  metrics.bloom_rejected.add(outcome.bloom_rejected);
  metrics.bloom_false_positives.add(outcome.unknown);
  metrics.duplicates.add(outcome.duplicates);
  metrics.probe_steps.add(probe_delta);
  return outcome;
}

void TaskProcessor::mark_rejected(std::size_t position, std::int64_t end_us) {
  std::scoped_lock lock(mu_);
  HAMMER_CHECK(position < records_.size());
  TxRecord& record = records_[position];
  if (record.completed) return;
  record.end_us = end_us;
  record.status = chain::TxStatus::kInvalid;
  record.completed = true;
  ++completed_;
}

std::size_t TaskProcessor::total_registered() const {
  std::scoped_lock lock(mu_);
  return records_.size();
}

std::size_t TaskProcessor::pending_count() const {
  std::scoped_lock lock(mu_);
  return records_.size() - completed_;
}

std::vector<TxRecord> TaskProcessor::snapshot() const {
  std::scoped_lock lock(mu_);
  return records_;
}

std::uint64_t TaskProcessor::index_probe_steps() const {
  std::scoped_lock lock(mu_);
  return index_.probe_steps();
}

std::uint64_t TaskProcessor::index_expansions() const {
  std::scoped_lock lock(mu_);
  return index_.expansions();
}

double TaskProcessor::bloom_fill() const {
  std::scoped_lock lock(mu_);
  return bloom_.estimated_fp_rate();
}

}  // namespace hammer::core
