#include "core/task_processor.hpp"

#include "util/errors.hpp"

namespace hammer::core {

TaskProcessor::TaskProcessor(Options options)
    : options_(options),
      index_(options.initial_index_capacity, options.growable_index),
      bloom_(options.expected_txs, options.bloom_fp_rate) {
  records_.reserve(options.expected_txs);
}

std::size_t TaskProcessor::register_tx(std::string tx_id, std::int64_t start_us,
                                       const std::string& client_id,
                                       const std::string& server_id,
                                       const std::string& chainname,
                                       const std::string& contractname) {
  std::scoped_lock lock(mu_);
  std::size_t position = records_.size();
  TxRecord record;
  record.tx_id = std::move(tx_id);
  record.start_us = start_us;
  record.client_id = client_id;
  record.server_id = server_id;
  record.chainname = chainname;
  record.contractname = contractname;
  index_.insert(record.tx_id, position);
  bloom_.insert(record.tx_id);
  records_.push_back(std::move(record));
  return position;
}

TaskProcessor::BlockOutcome TaskProcessor::on_block(
    std::int64_t block_time_us, std::span<const chain::TxReceipt> receipts) {
  std::scoped_lock lock(mu_);
  BlockOutcome outcome;
  for (const chain::TxReceipt& receipt : receipts) {
    // Line 15: rapid exclusion of transactions not in the index.
    if (!bloom_.may_contain(receipt.tx_id)) {
      ++outcome.bloom_rejected;
      continue;
    }
    // Line 18: locate via the hash index (false positives land here).
    std::optional<std::uint64_t> position = index_.find(receipt.tx_id);
    if (!position) {
      ++outcome.unknown;
      continue;
    }
    TxRecord& record = records_[*position];
    if (record.completed) {
      ++outcome.duplicates;
      continue;
    }
    // Line 19: update status and end time.
    record.end_us = block_time_us;
    record.status = receipt.status;
    record.completed = true;
    ++completed_;
    ++outcome.matched;
  }
  return outcome;
}

void TaskProcessor::mark_rejected(std::size_t position, std::int64_t end_us) {
  std::scoped_lock lock(mu_);
  HAMMER_CHECK(position < records_.size());
  TxRecord& record = records_[position];
  if (record.completed) return;
  record.end_us = end_us;
  record.status = chain::TxStatus::kInvalid;
  record.completed = true;
  ++completed_;
}

std::size_t TaskProcessor::total_registered() const {
  std::scoped_lock lock(mu_);
  return records_.size();
}

std::size_t TaskProcessor::pending_count() const {
  std::scoped_lock lock(mu_);
  return records_.size() - completed_;
}

std::vector<TxRecord> TaskProcessor::snapshot() const {
  std::scoped_lock lock(mu_);
  return records_;
}

std::uint64_t TaskProcessor::index_probe_steps() const {
  std::scoped_lock lock(mu_);
  return index_.probe_steps();
}

std::uint64_t TaskProcessor::index_expansions() const {
  std::scoped_lock lock(mu_);
  return index_.expansions();
}

double TaskProcessor::bloom_fill() const {
  std::scoped_lock lock(mu_);
  return bloom_.estimated_fp_rate();
}

}  // namespace hammer::core
