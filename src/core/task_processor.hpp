// The paper's task-processing algorithm (Algorithm 1).
//
// Pending transactions live in a *vector list* ("We replaced the queue with
// a vector list for storing transaction IDs, due to the high overhead
// associated with enqueue and dequeue operations"): records are appended
// once and updated in place, never removed. A dynamically-expanded hash
// index maps transaction id -> vector position in O(1), and a Bloom filter
// in front of it short-circuits ids Hammer never submitted.
//
// When a new block is observed, its observation time is recorded FIRST and
// used as the commit time of every transaction in the block ("we first
// record the time of block creation, which is considered as the time when
// transactions are successfully committed ... Subsequently, we initiate the
// block fetching operation" — this keeps block-fetch bandwidth out of the
// measured latency).
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "chain/types.hpp"
#include "core/bloom.hpp"
#include "core/hash_index.hpp"
#include "telemetry/trace.hpp"

namespace hammer::core {

struct TxRecord {
  std::string tx_id;
  std::int64_t start_us = 0;
  std::int64_t end_us = -1;        // -1 = pending
  chain::TxStatus status = chain::TxStatus::kCommitted;
  bool completed = false;
  // Workload position, threaded through for lifecycle tracing.
  std::uint64_t ordinal = 0;
  // Algorithm 1 line 5: the record carries provenance for security checks
  // and per-client/server load monitoring.
  std::string client_id;
  std::string server_id;
  std::string chainname;
  std::string contractname;
};

class TaskProcessor {
 public:
  struct Options {
    std::size_t expected_txs = 100000;
    double bloom_fp_rate = 0.01;
    bool growable_index = true;       // ablation: fixed-size index
    std::size_t initial_index_capacity = 1024;
    // Shard count for ShardedTaskProcessor (1 = the classic single-mutex
    // processor, bit-for-bit the paper's Algorithm 1). TaskProcessor itself
    // ignores this field.
    std::size_t shards = 1;
    // Optional lifecycle tracer: matched records emit included/detected
    // events for sampled ordinals. Not owned; must outlive the processor.
    telemetry::TxTracer* tracer = nullptr;
    // Record completion positions as they happen so pollers can stream
    // finished records out mid-run via drain_newly_completed() — the feed
    // for the write-behind metrics path. Off by default: non-streaming
    // runs shouldn't pay the extra bookkeeping.
    bool track_completions = false;
  };

  explicit TaskProcessor(Options options);

  // Algorithm 1 lines 4-8: store the record in the vector list, create the
  // index entry, update the Bloom filter. Returns the record's position.
  std::size_t register_tx(std::string tx_id, std::int64_t start_us,
                          const std::string& client_id, const std::string& server_id,
                          const std::string& chainname, const std::string& contractname,
                          std::uint64_t ordinal = 0);

  struct BlockOutcome {
    std::size_t matched = 0;        // records completed by this block
    std::size_t bloom_rejected = 0; // ids sifted out by the filter (line 15)
    std::size_t unknown = 0;        // passed the filter, absent from the index
    std::size_t duplicates = 0;     // already-completed records seen again
  };

  // Algorithm 1 lines 10-20: apply one confirmed block. block_time_us is
  // the observation time recorded before the block body was fetched.
  // include_us, when >= 0, is the block's own seal timestamp; it feeds the
  // included-stage trace event (detection uses block_time_us) so the
  // breakdown can separate inclusion latency from polling lag.
  BlockOutcome on_block(std::int64_t block_time_us,
                        std::span<const chain::TxReceipt> receipts,
                        std::int64_t include_us = -1);

  // Same as on_block, restricted to the receipts at `indices` — the
  // per-shard application path of ShardedTaskProcessor (the block is
  // partitioned once, each shard consumes only its slice).
  BlockOutcome on_block_some(std::int64_t block_time_us,
                             std::span<const chain::TxReceipt> receipts,
                             std::span<const std::uint32_t> indices,
                             std::int64_t include_us = -1);

  // Marks a record as failed locally (submission rejected by the SUT).
  void mark_rejected(std::size_t position, std::int64_t end_us);

  std::size_t total_registered() const;
  std::size_t pending_count() const;

  // Snapshot of the vector list (copy; call after the run for metrics).
  std::vector<TxRecord> snapshot() const;

  // Appends a copy of every record completed since the last call to `out`
  // and clears the set. Only populated when Options::track_completions is
  // set. Returns the number of records appended.
  std::size_t drain_newly_completed(std::vector<TxRecord>& out);

  // Index health metrics for the ablation benches.
  std::uint64_t index_probe_steps() const;
  std::uint64_t index_expansions() const;
  double bloom_fill() const;

 private:
  // Algorithm 1 lines 11-20 for one receipt; caller holds mu_.
  void apply_receipt_locked(const chain::TxReceipt& receipt, std::int64_t block_time_us,
                            std::int64_t include_us, BlockOutcome& outcome);
  void flush_outcome_metrics(const BlockOutcome& outcome, std::uint64_t probe_delta);

  Options options_;
  mutable std::mutex mu_;
  std::vector<TxRecord> records_;  // the vector list
  HashIndex index_;
  BloomFilter bloom_;
  std::size_t completed_ = 0;
  std::vector<std::size_t> newly_completed_;  // positions since last drain
};

// K independent TaskProcessor shards keyed by tx-id hash. Registration and
// block application touch exactly one shard's mutex, so N per-target block
// pollers and M submit workers stop funnelling through a single lock — the
// cluster driving path's completion-tracking backend. With shards == 1 the
// behaviour (sets of completed/failed records, latency samples) is
// identical to the flat TaskProcessor, which the equivalence tests pin.
class ShardedTaskProcessor {
 public:
  explicit ShardedTaskProcessor(TaskProcessor::Options options);

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_of(const std::string& tx_id) const {
    return hasher_(tx_id) % shards_.size();
  }

  // Returns an opaque handle (shard + per-shard position packed) accepted
  // by mark_rejected.
  std::size_t register_tx(std::string tx_id, std::int64_t start_us,
                          const std::string& client_id, const std::string& server_id,
                          const std::string& chainname, const std::string& contractname,
                          std::uint64_t ordinal = 0);

  // Partitions the block's receipts by tx-id hash and applies each slice to
  // its shard; outcomes are merged. Safe to call from many poller threads.
  TaskProcessor::BlockOutcome on_block(std::int64_t block_time_us,
                                       std::span<const chain::TxReceipt> receipts,
                                       std::int64_t include_us = -1);

  void mark_rejected(std::size_t handle, std::int64_t end_us);

  std::size_t total_registered() const;
  std::size_t pending_count() const;
  std::vector<TxRecord> snapshot() const;  // all shards, concatenated

  // Drains every shard's newly-completed set (see TaskProcessor).
  std::size_t drain_newly_completed(std::vector<TxRecord>& out);

  // Merged index-health diagnostics (sums; bloom_fill is the mean).
  std::uint64_t index_probe_steps() const;
  std::uint64_t index_expansions() const;
  double bloom_fill() const;

  // Per-shard stats (registered/pending/probe_steps/expansions/bloom_fill)
  // plus merged totals — lands in RunResult::processor.
  json::Value stats_json() const;

 private:
  std::vector<std::unique_ptr<TaskProcessor>> shards_;
  std::hash<std::string> hasher_;
};

}  // namespace hammer::core
