#include "core/store_committer.hpp"

#include <algorithm>
#include <iterator>

#include "telemetry/registry.hpp"
#include "util/errors.hpp"

namespace hammer::core {

namespace {
// hammer_store_* family: health of the cache → SQL write-behind path. The
// producer-side series (rows buffered/dropped at the cache) live in
// metrics.cpp; registry lookups by name are idempotent, so both TUs share
// the same instruments.
struct StoreMetrics {
  telemetry::Counter& rows_committed;
  telemetry::Counter& rows_dropped;
  telemetry::Counter& flushes;
  telemetry::StageHistogram& flush_us;

  static StoreMetrics& get() {
    static StoreMetrics metrics;
    return metrics;
  }

 private:
  StoreMetrics()
      : rows_committed(reg().counter("hammer_store_rows_committed_total",
                                     "Rows landed in the table store by the committer")),
        rows_dropped(reg().counter("hammer_store_rows_dropped_total",
                                   "Rows lost to dirty-set overflow or unbuildable records")),
        flushes(reg().counter("hammer_store_flushes_total",
                              "Committer drain rounds that found dirty rows")),
        flush_us(reg().histogram("hammer_store_flush_duration_us",
                                 "Wall time of one committer drain round")) {}

  static telemetry::MetricRegistry& reg() { return telemetry::MetricRegistry::global(); }
};
}  // namespace

StoreCommitter::StoreCommitter(std::shared_ptr<kvstore::KvStore> cache,
                               std::shared_ptr<minisql::Database> db, RowBuilder builder,
                               Options options)
    : cache_(std::move(cache)),
      db_(std::move(db)),
      builder_(std::move(builder)),
      options_(options) {
  HAMMER_CHECK(cache_ != nullptr);
  HAMMER_CHECK(db_ != nullptr);
  HAMMER_CHECK(builder_ != nullptr);
  HAMMER_CHECK(options_.batch_size > 0);
}

StoreCommitter::~StoreCommitter() { flush_and_stop(); }

void StoreCommitter::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::scoped_lock lock(mu_);
    stop_ = false;
    wakeup_ = false;
  }
  thread_ = std::thread([this] { run_loop(); });
}

void StoreCommitter::notify() {
  {
    std::scoped_lock lock(mu_);
    wakeup_ = true;
  }
  cv_.notify_one();
}

std::size_t StoreCommitter::drain_round() {
  std::scoped_lock drain_lock(drain_mu_);
  StoreMetrics& metrics = StoreMetrics::get();
  const std::int64_t begin_us = util::SteadyClock::shared()->now_us();

  // Collect under the shard locks (drain_dirty holds one at a time), ship
  // after — the SQL writer lock is never taken while a cache shard is held.
  std::vector<std::vector<minisql::Cell>> rows;
  std::size_t dropped = 0;
  cache_->drain_dirty([&](const std::string& key, const kvstore::Hash& fields) {
    std::optional<std::vector<minisql::Cell>> row = builder_(key, fields);
    if (!row) {
      ++dropped;
      return;
    }
    rows.push_back(std::move(*row));
  });
  const std::size_t committed = rows.size();
  for (std::size_t begin = 0; begin < rows.size(); begin += options_.batch_size) {
    std::size_t end = std::min(rows.size(), begin + options_.batch_size);
    std::vector<std::vector<minisql::Cell>> batch(
        std::make_move_iterator(rows.begin() + static_cast<std::ptrdiff_t>(begin)),
        std::make_move_iterator(rows.begin() + static_cast<std::ptrdiff_t>(end)));
    db_->insert_batch(options_.table, std::move(batch));
  }
  cache_->evict_expired();

  if (committed > 0 || dropped > 0) {
    rows_committed_.fetch_add(committed, std::memory_order_relaxed);
    rows_dropped_.fetch_add(dropped, std::memory_order_relaxed);
    flushes_.fetch_add(1, std::memory_order_relaxed);
    metrics.rows_committed.add(committed);
    metrics.rows_dropped.add(dropped);
    metrics.flushes.add(1);
    metrics.flush_us.record(util::SteadyClock::shared()->now_us() - begin_us);
  }
  return committed;
}

void StoreCommitter::run_loop() {
  for (;;) {
    {
      std::unique_lock lock(mu_);
      cv_.wait_for(lock, options_.flush_interval, [this] { return wakeup_ || stop_; });
      wakeup_ = false;
      if (stop_) return;  // flush_and_stop() runs the final drain itself
    }
    drain_round();
  }
}

std::size_t StoreCommitter::flush() { return drain_round(); }

std::size_t StoreCommitter::flush_and_stop() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
  return drain_round();
}

}  // namespace hammer::core
