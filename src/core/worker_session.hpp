// WorkerSession: the worker half of the distributed driver fleet
// (DESIGN.md §13).
//
// One WorkerSession is one `hammer-worker` process: a TcpServer exposing
// the versioned control-plane API (control.hello / control.deploy /
// control.start / control.stats / control.report / control.stop) alongside
// the telemetry.* methods and rpc.api — one registry, one API version —
// through which a Coordinator pushes a deployment plan plus this worker's
// workload shard, fires the start barrier, samples progress, and collects
// the finished RunResult.
//
// Lifecycle state machine (control.hello reports it; control.start and
// control.report enforce it):
//
//   idle ──deploy──▶ deployed ──start──▶ running ──(run ends)──▶ done
//                        ▲                                        │
//                        └──────────────── deploy ────────────────┘
//
// deploy is rejected while running; start is rejected unless deployed; a
// done worker can be re-deployed for the next run (reruns reuse the fleet).
//
// Determinism contract: everything the worker does is a pure function of
// the deploy plan. The workload shard draws from
// util::derive_seed(profile.seed, worker_index), the client-side fault plan
// from FaultPlan::derived_for_worker(worker_index), and the fault injector
// is installed on the submit (worker) channels only — never the poll
// channel, whose call count is timing-dependent — so the injected-fault
// trace replays exactly from (master seed, worker index).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "core/driver.hpp"
#include "rpc/tcp.hpp"
#include "workload/shard.hpp"

namespace hammer::core {

struct WorkerSessionOptions {
  std::uint16_t port = 0;       // 0 picks a free port (see port())
  std::size_t rpc_workers = 2;  // control-server threads
};

class WorkerSession {
 public:
  enum class State { kIdle, kDeployed, kRunning, kDone };

  using Options = WorkerSessionOptions;

  explicit WorkerSession(Options options = {});
  ~WorkerSession();

  WorkerSession(const WorkerSession&) = delete;
  WorkerSession& operator=(const WorkerSession&) = delete;

  std::uint16_t port() const { return server_->port(); }
  State state() const;

  // The control registry (control.* + telemetry.* + rpc.api), exposed so
  // in-process tests can drive the session over an InProcChannel.
  const std::shared_ptr<rpc::Dispatcher>& dispatcher() const { return dispatcher_; }

  // Blocks until control.stop arrives AND no run is in flight, then shuts
  // the control server down. The hammer-worker main() is serve() plus
  // argument parsing.
  void serve();

 private:
  json::Value handle_hello(const json::Value& params);
  json::Value handle_deploy(const json::Value& params);
  json::Value handle_start(const json::Value& params);
  json::Value handle_set_rate(const json::Value& params);
  json::Value handle_stats(const json::Value& params);
  json::Value handle_report(const json::Value& params);
  json::Value handle_stop(const json::Value& params);

  const char* state_name(State s) const;
  void join_run_thread();

  Options options_;
  std::shared_ptr<rpc::Dispatcher> dispatcher_;
  std::unique_ptr<rpc::TcpServer> server_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  State state_ = State::kIdle;
  bool stop_requested_ = false;
  std::size_t worker_index_ = 0;

  // Built by control.deploy, consumed by the run thread. The session (not
  // the driver) owns the LoadController so control.set_rate can retarget a
  // run already in flight — the driver only borrows it via
  // DriverOptions::load.
  std::shared_ptr<SutCluster> cluster_;
  std::shared_ptr<LoadController> load_;
  DriverOptions driver_options_;
  workload::WorkloadFile workload_;
  std::optional<RunResult> result_;
  std::thread run_thread_;

  // control.stats delta tracking (cumulative counters sampled last call).
  std::uint64_t last_submitted_ = 0;
  std::uint64_t last_completed_ = 0;
};

}  // namespace hammer::core
