#include "core/baselines.hpp"

namespace hammer::core {

void BatchQueueProcessor::register_tx(std::string tx_id, std::int64_t start_us) {
  std::scoped_lock lock(mu_);
  queue_.push_back(Pending{std::move(tx_id), start_us});
}

std::size_t BatchQueueProcessor::on_block(std::int64_t block_time_us,
                                          std::span<const chain::TxReceipt> receipts) {
  std::scoped_lock lock(mu_);
  std::size_t matched = 0;
  for (const chain::TxReceipt& receipt : receipts) {
    // O(n) scan per receipt — the baseline's defining cost.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->tx_id == receipt.tx_id) {
        completed_.push_back(
            CompletedTx{std::move(it->tx_id), it->start_us, block_time_us, receipt.status});
        queue_.erase(it);
        ++matched;
        break;
      }
    }
  }
  return matched;
}

std::size_t BatchQueueProcessor::pending_count() const {
  std::scoped_lock lock(mu_);
  return queue_.size();
}

std::vector<CompletedTx> BatchQueueProcessor::pending_snapshot() const {
  std::scoped_lock lock(mu_);
  std::vector<CompletedTx> out;
  out.reserve(queue_.size());
  for (const Pending& p : queue_) {
    out.push_back(CompletedTx{p.tx_id, p.start_us, 0, chain::TxStatus::kInvalid});
  }
  return out;
}

}  // namespace hammer::core
