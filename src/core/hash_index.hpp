// Dynamic hash index over transaction ids (paper §III-C: "Our approach
// utilizes a hash table ... we attempt to minimize the occurrence of hash
// collisions by expanding the length of the hash table").
//
// Open addressing with linear probing; the table doubles when the load
// factor crosses the threshold, which is exactly the paper's
// expand-to-avoid-collisions strategy. A non-growable mode exists for the
// ablation bench (fixed table vs dynamic expansion).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hammer::core {

class HashIndex {
 public:
  explicit HashIndex(std::size_t initial_capacity = 1024, bool growable = true,
                     double max_load_factor = 0.7);

  // Inserts key -> value; throws LogicError on duplicate key or when a
  // non-growable table is full.
  void insert(std::string_view key, std::uint64_t value);

  std::optional<std::uint64_t> find(std::string_view key) const;

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return entries_.size(); }

  // Total probe steps beyond the home slot, across all operations — the
  // collision metric the expansion strategy minimizes.
  std::uint64_t probe_steps() const { return probe_steps_; }
  std::uint64_t expansions() const { return expansions_; }

 private:
  struct Entry {
    std::string key;  // empty = vacant
    std::uint64_t value = 0;
  };

  static std::uint64_t hash_key(std::string_view key);
  void grow();
  std::size_t probe(std::string_view key, bool& found) const;

  std::vector<Entry> entries_;
  std::size_t size_ = 0;
  bool growable_;
  double max_load_factor_;
  mutable std::uint64_t probe_steps_ = 0;
  std::uint64_t expansions_ = 0;
};

}  // namespace hammer::core
