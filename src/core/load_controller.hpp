// Closed-loop load control (DESIGN.md §14).
//
// A LoadController turns the driving path from "fixed count, best effort"
// into a rate-paced pipeline: worker threads acquire() one token per
// transaction before a send leaves, and the controller refills tokens at
// the target rate with a bounded burst allowance — the classic token
// bucket. rate = 0 is the degenerate open-loop case (acquire returns
// immediately), so paced and best-effort runs share one code path and one
// accounting surface.
//
// The controller is live-retargetable: set_rate() takes effect on the next
// refill, and waiting acquirers sleep in short slices so a mid-run
// control.set_rate never strands a worker in a stale long sleep. All state
// sits behind one mutex — acquire is called once per coalesced batch, not
// per transaction, so the lock is cold next to the send round trip it
// gates.
//
// Offered-rate accounting: the controller stamps the first and last token
// release of the run; offered_rate() is releases per second of that
// window. Because workers acquire at the send site, "offered" measures
// what actually left the client — under contention (CPU-burn faults, a
// saturated pipeline) it sags below the target, and that gap is itself a
// saturation signal (see core::SaturationSearch).
//
// Determinism: with jitter = 0 (default) the controller adds no
// randomness. A seeded jitter fraction perturbs each computed wait by a
// deterministic Pcg32 draw — arrival-process roughening that replays
// exactly from (seed, draw index).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "util/clock.hpp"
#include "util/random.hpp"

namespace hammer::core {

struct LoadOptions {
  // Target aggregate send rate in tx/s. 0 = open loop (unlimited).
  double rate = 0.0;
  // Token-bucket capacity: how many sends may leave back-to-back after an
  // idle spell before pacing kicks in.
  double burst = 64.0;
  // Fraction of each computed wait perturbed by the seeded jitter stream
  // (0 = fully deterministic pacing).
  double jitter = 0.0;
  std::uint64_t seed = 1;
};

class LoadController {
 public:
  LoadController(LoadOptions options, std::shared_ptr<util::Clock> clock);

  LoadController(const LoadController&) = delete;
  LoadController& operator=(const LoadController&) = delete;

  bool open_loop() const;     // target_rate() == 0
  double target_rate() const;

  // Live retarget; <= 0 switches to open loop. Takes effect within one
  // sleep slice (~10 ms) for already-waiting acquirers.
  void set_rate(double rate);

  // Blocks until n tokens are available (immediately in open loop). A batch
  // larger than the burst runs the bucket into debt rather than waiting for
  // a fill that can never come, so the long-run rate stays exact for any
  // batch size.
  void acquire(std::size_t n);

  // Clears the bucket and the offered-rate window for a fresh run. The
  // target rate is kept — reset() is per-run, set_rate() is per-plan.
  void reset();

  std::uint64_t released() const;

  // Tokens released per second between the first and last release of the
  // current window; 0 until two distinct release instants exist.
  double offered_rate() const;

 private:
  void refill_locked(util::TimePoint now);

  std::shared_ptr<util::Clock> clock_;
  mutable std::mutex mu_;
  double rate_;
  double burst_;
  double jitter_;
  util::Pcg32 rng_;
  double tokens_;
  util::TimePoint last_refill_;
  std::uint64_t released_ = 0;
  std::int64_t first_release_us_ = 0;
  std::int64_t last_release_us_ = 0;
};

}  // namespace hammer::core
