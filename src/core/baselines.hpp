// Baseline completion-tracking strategies reimplemented from the paper's
// descriptions (§II-C), used as comparators in Fig. 7 and Fig. 9.
//
// BatchQueueProcessor — Blockbench-style batch testing: pending ids sit in
// a linked queue; every id parsed from a block is matched by walking the
// queue and the match is REMOVED ("extracts the transaction list from the
// contents of the acknowledgment block and removes the matching transaction
// list from the local queue"). Matching one block of m transactions against
// a queue of n pending entries costs O(n·m) — the complexity Hammer's hash
// index eliminates.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "chain/types.hpp"

namespace hammer::core {

struct CompletedTx {
  std::string tx_id;
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;
  chain::TxStatus status = chain::TxStatus::kCommitted;
};

class BatchQueueProcessor {
 public:
  void register_tx(std::string tx_id, std::int64_t start_us);

  // Walks the queue once per receipt (linear scan + erase).
  std::size_t on_block(std::int64_t block_time_us,
                       std::span<const chain::TxReceipt> receipts);

  std::size_t pending_count() const;
  const std::vector<CompletedTx>& completed() const { return completed_; }

  // Remaining queue entries (id + start time), for end-of-run accounting.
  std::vector<CompletedTx> pending_snapshot() const;

 private:
  struct Pending {
    std::string tx_id;
    std::int64_t start_us;
  };
  mutable std::mutex mu_;
  std::list<Pending> queue_;
  std::vector<CompletedTx> completed_;
};

}  // namespace hammer::core
