#include "core/worker_process.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/errors.hpp"

namespace hammer::core {

WorkerProcess WorkerProcess::spawn(const std::string& binary,
                                   const std::vector<std::string>& args) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw TransportError(std::string("pipe: ") + std::strerror(errno));
  }

  // argv built BEFORE fork: the child must not allocate between fork and
  // exec (another thread may hold a heap lock at fork time).
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  argv.push_back(const_cast<char*>(binary.c_str()));
  for (const std::string& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);

  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    throw TransportError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: stdout -> pipe, then exec. Only async-signal-safe calls here.
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    ::execv(binary.c_str(), argv.data());
    ::_exit(127);  // exec failed
  }

  ::close(pipe_fds[1]);
  WorkerProcess process;
  process.pid_ = pid;
  process.stdout_fd_ = pipe_fds[0];

  // Read the handshake line byte-wise: one line, then we stop touching the
  // pipe (the worker writes nothing further to stdout).
  std::string line;
  char c = 0;
  while (true) {
    ssize_t n = ::read(pipe_fds[0], &c, 1);
    if (n <= 0) {
      throw TransportError("worker process exited before announcing its port: " + binary);
    }
    if (c == '\n') {
      constexpr const char* kPrefix = "HAMMER_WORKER_PORT=";
      if (line.rfind(kPrefix, 0) == 0) {
        process.port_ = static_cast<std::uint16_t>(std::stoi(line.substr(19)));
        return process;
      }
      line.clear();  // tolerate stray stdout lines before the handshake
      continue;
    }
    line.push_back(c);
  }
}

WorkerProcess::WorkerProcess(WorkerProcess&& other) noexcept
    : pid_(other.pid_), port_(other.port_), stdout_fd_(other.stdout_fd_),
      waited_(other.waited_) {
  other.pid_ = -1;
  other.stdout_fd_ = -1;
  other.waited_ = true;
}

WorkerProcess& WorkerProcess::operator=(WorkerProcess&& other) noexcept {
  if (this != &other) {
    if (pid_ > 0 && !waited_) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
    }
    if (stdout_fd_ >= 0) ::close(stdout_fd_);
    pid_ = other.pid_;
    port_ = other.port_;
    stdout_fd_ = other.stdout_fd_;
    waited_ = other.waited_;
    other.pid_ = -1;
    other.stdout_fd_ = -1;
    other.waited_ = true;
  }
  return *this;
}

WorkerProcess::~WorkerProcess() {
  if (pid_ > 0 && !waited_) {
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
  }
  if (stdout_fd_ >= 0) ::close(stdout_fd_);
}

int WorkerProcess::wait() {
  if (waited_ || pid_ <= 0) return 0;
  int status = 0;
  ::waitpid(pid_, &status, 0);
  waited_ = true;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

void WorkerProcess::terminate() {
  if (pid_ > 0 && !waited_) ::kill(pid_, SIGTERM);
}

}  // namespace hammer::core
