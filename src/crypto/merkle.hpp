// Binary Merkle tree over transaction digests (Bitcoin-style: odd levels
// duplicate the last node). Block headers carry the root; proofs let light
// verification confirm a transaction's inclusion.
#pragma once

#include <cstddef>
#include <vector>

#include "crypto/sha256.hpp"

namespace hammer::crypto {

struct MerkleStep {
  Digest sibling;
  bool sibling_on_left;  // true when the sibling hashes in from the left
};

using MerkleProof = std::vector<MerkleStep>;

// Root of an empty list is the hash of the empty string.
Digest merkle_root(const std::vector<Digest>& leaves);

// Proof for leaves[index]; throws LogicError when index is out of range.
MerkleProof merkle_proof(const std::vector<Digest>& leaves, std::size_t index);

bool merkle_verify(const Digest& leaf, const MerkleProof& proof, const Digest& root);

}  // namespace hammer::crypto
