#include "crypto/merkle.hpp"

#include "util/errors.hpp"

namespace hammer::crypto {

namespace {
Digest hash_pair(const Digest& left, const Digest& right) {
  return Sha256().update(left).update(right).finish();
}
}  // namespace

Digest merkle_root(const std::vector<Digest>& leaves) {
  if (leaves.empty()) return sha256(std::string_view{});
  std::vector<Digest> level = leaves;
  while (level.size() > 1) {
    if (level.size() % 2 != 0) level.push_back(level.back());
    std::vector<Digest> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      next.push_back(hash_pair(level[i], level[i + 1]));
    }
    level = std::move(next);
  }
  return level[0];
}

MerkleProof merkle_proof(const std::vector<Digest>& leaves, std::size_t index) {
  HAMMER_CHECK(index < leaves.size());
  MerkleProof proof;
  std::vector<Digest> level = leaves;
  std::size_t pos = index;
  while (level.size() > 1) {
    if (level.size() % 2 != 0) level.push_back(level.back());
    std::size_t sibling = pos ^ 1;
    proof.push_back(MerkleStep{level[sibling], sibling < pos});
    std::vector<Digest> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      next.push_back(hash_pair(level[i], level[i + 1]));
    }
    level = std::move(next);
    pos /= 2;
  }
  return proof;
}

bool merkle_verify(const Digest& leaf, const MerkleProof& proof, const Digest& root) {
  Digest acc = leaf;
  for (const MerkleStep& step : proof) {
    acc = step.sibling_on_left ? hash_pair(step.sibling, acc) : hash_pair(acc, step.sibling);
  }
  return acc == root;
}

}  // namespace hammer::crypto
