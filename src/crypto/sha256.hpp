// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Digests are the basis for transaction ids, block hashes, Merkle roots and
// the Schnorr challenge hash.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hammer::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  Sha256& update(std::span<const std::uint8_t> data);
  Sha256& update(std::string_view data);

  // Finalizes and returns the digest; the object must not be reused after.
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

Digest sha256(std::span<const std::uint8_t> data);
Digest sha256(std::string_view data);

// HMAC-SHA256 (RFC 2104).
Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message);

std::string digest_hex(const Digest& d);

}  // namespace hammer::crypto
