#include "crypto/u256.hpp"

#include "util/errors.hpp"
#include "util/hex.hpp"

namespace hammer::crypto {

using u128 = unsigned __int128;

U256 U256::from_bytes(std::span<const std::uint8_t> be_bytes) {
  HAMMER_CHECK(be_bytes.size() <= 32);
  U256 out;
  // Walk from the least significant (last) byte.
  std::size_t n = be_bytes.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t byte = be_bytes[n - 1 - i];
    out.limb[i / 8] |= static_cast<std::uint64_t>(byte) << (8 * (i % 8));
  }
  return out;
}

U256 U256::from_hex(const std::string& hex) {
  auto bytes = util::from_hex(hex);
  return from_bytes(bytes);
}

std::array<std::uint8_t, 32> U256::to_bytes() const {
  std::array<std::uint8_t, 32> out{};
  for (std::size_t i = 0; i < 32; ++i) {
    out[31 - i] = static_cast<std::uint8_t>(limb[i / 8] >> (8 * (i % 8)));
  }
  return out;
}

std::string U256::to_hex() const {
  auto bytes = to_bytes();
  return util::to_hex(bytes);
}

int cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.limb[i] < b.limb[i]) return -1;
    if (a.limb[i] > b.limb[i]) return 1;
  }
  return 0;
}

U256 add(const U256& a, const U256& b, std::uint64_t* carry_out) {
  U256 r;
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 sum = static_cast<u128>(a.limb[i]) + b.limb[i] + carry;
    r.limb[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
  if (carry_out) *carry_out = static_cast<std::uint64_t>(carry);
  return r;
}

U256 sub(const U256& a, const U256& b, std::uint64_t* borrow_out) {
  U256 r;
  u128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    u128 diff = static_cast<u128>(a.limb[i]) - b.limb[i] - borrow;
    r.limb[i] = static_cast<std::uint64_t>(diff);
    borrow = (diff >> 64) & 1;  // 1 when the subtraction wrapped
  }
  if (borrow_out) *borrow_out = static_cast<std::uint64_t>(borrow);
  return r;
}

U512 mul_wide(const U256& a, const U256& b) {
  U512 r;
  for (int i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      u128 cur = static_cast<u128>(a.limb[i]) * b.limb[j] + r.limb[i + j] + carry;
      r.limb[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    r.limb[i + 4] = static_cast<std::uint64_t>(carry);
  }
  return r;
}

namespace {
// result = a * k, where k is 64-bit; returns the overflow limb.
std::uint64_t mul_by_u64(const U256& a, std::uint64_t k, U256& out) {
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 cur = static_cast<u128>(a.limb[i]) * k + carry;
    out.limb[i] = static_cast<std::uint64_t>(cur);
    carry = cur >> 64;
  }
  return static_cast<std::uint64_t>(carry);
}
}  // namespace

PseudoMersenne::PseudoMersenne(std::uint32_t c) : c_(c) {
  HAMMER_CHECK(c > 0);
  // modulus = 2^256 - c, i.e. all-ones minus (c - 1).
  U256 all_ones{{~0ULL, ~0ULL, ~0ULL, ~0ULL}};
  modulus_ = sub(all_ones, U256::from_u64(c - 1));
}

U256 PseudoMersenne::reduce256(const U256& x) const {
  if (cmp(x, modulus_) >= 0) return sub(x, modulus_);
  return x;
}

U256 PseudoMersenne::reduce(const U512& x) const {
  // Split x = hi * 2^256 + lo; since 2^256 ≡ c (mod m), fold hi*c into lo.
  U256 lo{{x.limb[0], x.limb[1], x.limb[2], x.limb[3]}};
  U256 hi{{x.limb[4], x.limb[5], x.limb[6], x.limb[7]}};

  // lo + hi * c can overflow 2^256 by a small amount; track the overflow
  // and fold it again (overflow < c + 1, so one extra fold suffices).
  U256 hi_c;
  std::uint64_t over1 = mul_by_u64(hi, c_, hi_c);  // hi*c = over1*2^256 + hi_c
  std::uint64_t carry = 0;
  U256 r = add(lo, hi_c, &carry);
  std::uint64_t extra = over1 + carry;  // total = r + extra*2^256

  while (extra != 0) {
    // extra*2^256 ≡ extra*c (mod m); extra*c fits in 128 bits.
    u128 add_val = static_cast<u128>(extra) * c_;
    U256 addend{{static_cast<std::uint64_t>(add_val), static_cast<std::uint64_t>(add_val >> 64),
                 0, 0}};
    r = add(r, addend, &carry);
    extra = carry;
  }
  while (cmp(r, modulus_) >= 0) r = sub(r, modulus_);
  return r;
}

U256 PseudoMersenne::add_mod(const U256& a, const U256& b) const {
  std::uint64_t carry = 0;
  U256 r = add(a, b, &carry);
  if (carry) {
    // r + 2^256 ≡ r + c (mod m).
    std::uint64_t carry2 = 0;
    r = add(r, U256::from_u64(c_), &carry2);
    // carry2 can only occur if r was within c of 2^256; fold once more.
    if (carry2) r = add(r, U256::from_u64(c_), nullptr);
  }
  while (cmp(r, modulus_) >= 0) r = sub(r, modulus_);
  return r;
}

U256 PseudoMersenne::sub_mod(const U256& a, const U256& b) const {
  std::uint64_t borrow = 0;
  U256 r = sub(a, b, &borrow);
  if (borrow) r = add(r, modulus_, nullptr);
  return r;
}

U256 PseudoMersenne::mul_mod(const U256& a, const U256& b) const {
  return reduce(mul_wide(a, b));
}

U256 PseudoMersenne::pow_mod(const U256& base, const U256& exp) const {
  U256 result = U256::from_u64(1);
  U256 acc = reduce256(base);
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t bits = exp.limb[limb];
    for (int i = 0; i < 64; ++i) {
      if (bits & 1) result = mul_mod(result, acc);
      bits >>= 1;
      // Skip the last squaring when no higher bits remain.
      if (bits == 0 && limb == 3) break;
      bool higher_bits = bits != 0;
      for (int l = limb + 1; l < 4 && !higher_bits; ++l) higher_bits = exp.limb[l] != 0;
      if (!higher_bits) break;
      acc = mul_mod(acc, acc);
    }
  }
  return result;
}

const PseudoMersenne& group_field() {
  static const PseudoMersenne field(189);  // p = 2^256 - 189, prime
  return field;
}

const PseudoMersenne& scalar_ring() {
  static const PseudoMersenne ring(190);  // p - 1
  return ring;
}

}  // namespace hammer::crypto
