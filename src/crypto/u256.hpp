// Fixed-width 256-bit unsigned arithmetic with fast reduction modulo
// pseudo-Mersenne moduli of the form 2^256 - c (c < 2^32).
//
// This is the numeric substrate for the Schnorr-style signature scheme in
// schnorr.hpp. The group modulus is p = 2^256 - 189 (prime); scalar
// arithmetic runs modulo p - 1 = 2^256 - 190 using the same reduction code.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "crypto/sha256.hpp"

namespace hammer::crypto {

struct U256 {
  // Little-endian limbs: value = sum limb[i] * 2^(64 i).
  std::array<std::uint64_t, 4> limb{0, 0, 0, 0};

  static U256 from_u64(std::uint64_t v) { return U256{{v, 0, 0, 0}}; }
  static U256 from_bytes(std::span<const std::uint8_t> be_bytes);  // big-endian, <= 32 bytes
  static U256 from_digest(const Digest& d) { return from_bytes(d); }
  static U256 from_hex(const std::string& hex);

  std::array<std::uint8_t, 32> to_bytes() const;  // big-endian
  std::string to_hex() const;

  bool is_zero() const { return (limb[0] | limb[1] | limb[2] | limb[3]) == 0; }

  bool operator==(const U256&) const = default;
};

// Returns -1/0/+1 for a<b / a==b / a>b.
int cmp(const U256& a, const U256& b);

// a + b; carry-out returned through `carry` if non-null.
U256 add(const U256& a, const U256& b, std::uint64_t* carry = nullptr);
// a - b; borrow-out returned through `borrow` if non-null (wraps mod 2^256).
U256 sub(const U256& a, const U256& b, std::uint64_t* borrow = nullptr);

struct U512 {
  std::array<std::uint64_t, 8> limb{};
};

// Full 256x256 -> 512-bit product.
U512 mul_wide(const U256& a, const U256& b);

// Arithmetic modulo m = 2^256 - c. All operands must already be < m.
class PseudoMersenne {
 public:
  explicit PseudoMersenne(std::uint32_t c);

  const U256& modulus() const { return modulus_; }

  U256 reduce(const U512& x) const;   // full reduction of a 512-bit value
  U256 reduce256(const U256& x) const;  // reduce a value in [0, 2^256)
  U256 add_mod(const U256& a, const U256& b) const;
  U256 sub_mod(const U256& a, const U256& b) const;
  U256 mul_mod(const U256& a, const U256& b) const;
  U256 pow_mod(const U256& base, const U256& exp) const;

 private:
  std::uint32_t c_;
  U256 modulus_;
};

// The fixed group used by the signature scheme.
// p = 2^256 - 189 (prime); the scalar ring is Z_{p-1}.
const PseudoMersenne& group_field();    // modulo p
const PseudoMersenne& scalar_ring();    // modulo p - 1

}  // namespace hammer::crypto
