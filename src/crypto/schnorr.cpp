#include "crypto/schnorr.hpp"

#include <array>
#include <vector>

#include "util/errors.hpp"

namespace hammer::crypto {

namespace {
constexpr std::uint64_t kGenerator = 7;

// Fixed-base window table for g: table[w][d] = g^(d * 16^w) for the 64
// base-16 digit positions of a 256-bit exponent. Signing then needs at most
// 63 modular multiplications instead of ~380 for square-and-multiply.
class FixedBaseTable {
 public:
  FixedBaseTable() {
    const PseudoMersenne& f = group_field();
    U256 base = U256::from_u64(kGenerator);
    for (int w = 0; w < 64; ++w) {
      table_[w][0] = U256::from_u64(1);
      for (int d = 1; d < 16; ++d) table_[w][d] = f.mul_mod(table_[w][d - 1], base);
      // Advance base to g^(16^(w+1)) = (current base)^16.
      U256 b16 = f.mul_mod(base, base);       // ^2
      b16 = f.mul_mod(b16, b16);              // ^4
      b16 = f.mul_mod(b16, b16);              // ^8
      base = f.mul_mod(b16, b16);             // ^16
    }
  }

  U256 pow(const U256& exp) const {
    const PseudoMersenne& f = group_field();
    U256 result = U256::from_u64(1);
    for (int w = 0; w < 64; ++w) {
      unsigned digit = static_cast<unsigned>((exp.limb[w / 16] >> (4 * (w % 16))) & 0xf);
      if (digit != 0) result = f.mul_mod(result, table_[w][digit]);
    }
    return result;
  }

 private:
  std::array<std::array<U256, 16>, 64> table_;
};

const FixedBaseTable& fixed_base_table() {
  static const FixedBaseTable table;
  return table;
}

U256 hash_to_scalar(std::initializer_list<std::span<const std::uint8_t>> parts) {
  Sha256 h;
  for (auto part : parts) h.update(part);
  U256 v = U256::from_digest(h.finish());
  return scalar_ring().reduce256(v);
}

std::span<const std::uint8_t> bytes_of(const std::array<std::uint8_t, 32>& a) {
  return std::span<const std::uint8_t>(a.data(), a.size());
}
}  // namespace

std::string Signature::to_hex() const { return e.to_hex() + s.to_hex(); }

Signature Signature::from_hex(const std::string& hex) {
  if (hex.size() != 128) throw ParseError("signature hex must be 128 chars");
  return Signature{U256::from_hex(hex.substr(0, 64)), U256::from_hex(hex.substr(64))};
}

U256 fixed_base_pow(const U256& exp) { return fixed_base_table().pow(exp); }

KeyPair derive_keypair(std::string_view seed) {
  Digest d = Sha256().update("hammer-key:").update(seed).finish();
  U256 x = scalar_ring().reduce256(U256::from_digest(d));
  if (x.is_zero()) x = U256::from_u64(1);
  U256 y = fixed_base_pow(x);
  return KeyPair{PrivateKey{x}, PublicKey{y}};
}

Signature sign(const PrivateKey& key, std::span<const std::uint8_t> message) {
  const PseudoMersenne& ring = scalar_ring();
  auto x_bytes = key.x.to_bytes();
  // Deterministic nonce (RFC-6979 style): k = H("nonce" || x || m).
  Sha256 kh;
  kh.update("hammer-nonce:").update(bytes_of(x_bytes)).update(message);
  U256 k = ring.reduce256(U256::from_digest(kh.finish()));
  if (k.is_zero()) k = U256::from_u64(1);

  U256 r = fixed_base_pow(k);
  auto r_bytes = r.to_bytes();
  U256 e = hash_to_scalar({bytes_of(r_bytes), message});
  // s = k - x*e mod (p-1)
  U256 xe = ring.mul_mod(key.x, e);
  U256 s = ring.sub_mod(k, xe);
  return Signature{e, s};
}

Signature sign(const PrivateKey& key, std::string_view message) {
  return sign(key, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(message.data()), message.size()));
}

bool verify(const PublicKey& key, std::span<const std::uint8_t> message, const Signature& sig) {
  const PseudoMersenne& f = group_field();
  // r' = g^s * y^e
  U256 gs = fixed_base_pow(sig.s);
  U256 ye = f.pow_mod(key.y, sig.e);
  U256 r = f.mul_mod(gs, ye);
  auto r_bytes = r.to_bytes();
  U256 e = hash_to_scalar({bytes_of(r_bytes), message});
  return e == sig.e;
}

bool verify(const PublicKey& key, std::string_view message, const Signature& sig) {
  return verify(key,
                std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(message.data()), message.size()),
                sig);
}

}  // namespace hammer::crypto
