// Schnorr-style signatures over the multiplicative group of Z_p,
// p = 2^256 - 189.
//
// SIMULATION NOTE (see DESIGN.md): the paper signs transactions with the
// SUT's production ECDSA/EdDSA; this scheme reproduces the *structure*
// (keypair, per-message nonce, hash challenge, two-exponentiation verify)
// and the microsecond-scale CPU cost that the asynchronous-signature
// experiment (Fig. 8) measures, but Z_p^* at 256 bits is NOT
// cryptographically secure. Do not reuse outside this benchmark.
//
// Scheme (e,s variant):
//   keygen:  x <- random scalar,  y = g^x mod p
//   sign(m): k <- H(x || m) as scalar (deterministic nonce), r = g^k,
//            e = H(r || m),  s = k - x*e mod (p-1)
//   verify:  r' = g^s * y^e mod p,  accept iff H(r' || m) == e
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "crypto/sha256.hpp"
#include "crypto/u256.hpp"

namespace hammer::crypto {

struct PrivateKey {
  U256 x;
};

struct PublicKey {
  U256 y;

  bool operator==(const PublicKey&) const = default;
};

struct Signature {
  U256 e;
  U256 s;

  bool operator==(const Signature&) const = default;

  // 128 hex characters: e || s.
  std::string to_hex() const;
  static Signature from_hex(const std::string& hex);
};

struct KeyPair {
  PrivateKey priv;
  PublicKey pub;
};

// Deterministic keypair derived from a seed (accounts in the simulators use
// their account id as seed so every component can re-derive keys).
KeyPair derive_keypair(std::string_view seed);

Signature sign(const PrivateKey& key, std::span<const std::uint8_t> message);
Signature sign(const PrivateKey& key, std::string_view message);

bool verify(const PublicKey& key, std::span<const std::uint8_t> message, const Signature& sig);
bool verify(const PublicKey& key, std::string_view message, const Signature& sig);

// Exposed for benchmarking: one fixed-base exponentiation g^e mod p using
// the precomputed window table (the dominant cost of sign()).
U256 fixed_base_pow(const U256& exp);

}  // namespace hammer::crypto
