// Scoped timing helper built on the Clock abstraction.
#pragma once

#include <memory>

#include "util/clock.hpp"
#include "util/errors.hpp"

namespace hammer::util {

class Stopwatch {
 public:
  explicit Stopwatch(std::shared_ptr<Clock> clock)
      : clock_(std::move(clock)), start_(clock_->now()) {
    HAMMER_CHECK(clock_ != nullptr);
  }

  void reset() { start_ = clock_->now(); }

  Duration elapsed() const { return clock_->now() - start_; }

  std::int64_t elapsed_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(elapsed()).count();
  }
  std::int64_t elapsed_ms() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(elapsed()).count();
  }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(elapsed()).count();
  }

 private:
  std::shared_ptr<Clock> clock_;
  TimePoint start_;
};

}  // namespace hammer::util
