// Clock abstraction.
//
// Everything in Hammer that measures or waits on time goes through a Clock
// so that unit tests can drive a ManualClock deterministically while benches
// and examples run on the real steady clock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

namespace hammer::util {

// Monotonic time point expressed as nanoseconds since an arbitrary epoch.
using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::time_point<std::chrono::steady_clock, Duration>;

class Clock {
 public:
  virtual ~Clock() = default;

  virtual TimePoint now() const = 0;

  // Blocks the calling thread until `deadline` (or past it).
  virtual void sleep_until(TimePoint deadline) = 0;

  void sleep_for(Duration d) { sleep_until(now() + d); }

  // Convenience: milliseconds since this clock's epoch.
  std::int64_t now_ms() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(now().time_since_epoch())
        .count();
  }
  std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(now().time_since_epoch())
        .count();
  }
};

// Real wall-time clock backed by std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  TimePoint now() const override;
  void sleep_until(TimePoint deadline) override;

  // Process-wide shared instance (stateless, so sharing is safe).
  static const std::shared_ptr<SteadyClock>& shared();
};

// Deterministic clock for tests: time only moves when advance() is called.
// Threads blocked in sleep_until() wake once the manual time passes their
// deadline.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = TimePoint{}) : now_(start) {}

  TimePoint now() const override;
  void sleep_until(TimePoint deadline) override;

  void advance(Duration d);
  void advance_ms(std::int64_t ms) { advance(std::chrono::milliseconds(ms)); }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  TimePoint now_;
};

}  // namespace hammer::util
