// Latency histogram with logarithmic buckets (HdrHistogram-style).
//
// Records values in microseconds; supports percentile queries, merging
// (per-thread histograms are merged at report time) and mean/max tracking.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hammer::util {

class Histogram {
 public:
  Histogram();

  void record(std::int64_t value_us);
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double mean() const;
  std::int64_t min() const { return count_ ? min_ : 0; }
  std::int64_t max() const { return max_; }

  // p in [0, 100]. Returns an upper bound of the bucket containing the
  // requested percentile (<= 2% relative error by construction).
  std::int64_t percentile(double p) const;

  std::string summary() const;  // human-readable one-liner

  // Serialization surface: the raw bucket counts (fixed layout, same in
  // every process built from this header) plus the tracked aggregates, so a
  // histogram can cross a process boundary and be rebuilt bin-exactly
  // (RunResult wire JSON; report merging across worker processes).
  const std::vector<std::uint64_t>& bucket_counts() const { return buckets_; }
  std::int64_t sum() const { return sum_; }

  // Rebuilds a histogram from bucket_counts()/sum()/min()/max(). The count
  // is recomputed from the buckets. Throws if `buckets` does not match this
  // build's bucket layout.
  static Histogram from_parts(const std::vector<std::uint64_t>& buckets, std::int64_t sum,
                              std::int64_t min, std::int64_t max);

  // Bin-wise equality (same buckets AND same tracked aggregates).
  bool operator==(const Histogram& other) const = default;

 private:
  static std::size_t bucket_for(std::int64_t value_us);
  static std::int64_t bucket_upper_bound(std::size_t bucket);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace hammer::util
