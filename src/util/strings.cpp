#include "util/strings.hpp"

#include <cctype>

namespace hammer::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  for (auto& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with_icase(std::string_view text, std::string_view prefix) {
  if (text.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return true;
}

std::string with_thousands(std::int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

}  // namespace hammer::util
