#include "util/random.hpp"

#include <cmath>

#include "util/errors.hpp"

namespace hammer::util {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Pcg32::next_u32() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Pcg32::next_u64() {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

std::uint64_t Pcg32::uniform(std::uint64_t lo, std::uint64_t hi) {
  HAMMER_CHECK(lo <= hi);
  std::uint64_t range = hi - lo + 1;
  if (range == 0) return next_u64();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + v % range;
}

double Pcg32::uniform01() {
  return static_cast<double>(next_u32()) / 4294967296.0;
}

double Pcg32::gaussian(double mean, double stddev) {
  if (has_spare_gauss_) {
    has_spare_gauss_ = false;
    return mean + stddev * spare_gauss_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform01() - 1.0;
    v = 2.0 * uniform01() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gauss_ = v * factor;
  has_spare_gauss_ = true;
  return mean + stddev * u * factor;
}

bool Pcg32::chance(double p) { return uniform01() < p; }

std::string Pcg32::alnum(std::size_t n) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out(n, '\0');
  for (auto& c : out) c = kAlphabet[uniform(0, sizeof(kAlphabet) - 2)];
  return out;
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index) {
  // splitmix64 finalizer (Steele et al.) over the offset master state.
  std::uint64_t z = master + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  HAMMER_CHECK(n > 0);
  HAMMER_CHECK(theta >= 0.0 && theta < 1.0);
  zetan_ = zeta(n, theta);
  zeta2theta_ = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfSampler::sample(Pcg32& rng) const {
  if (theta_ == 0.0) return rng.uniform(0, n_ - 1);
  double u = rng.uniform01();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto idx = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (idx >= n_) idx = n_ - 1;
  return idx;
}

}  // namespace hammer::util
