#include "util/thread_pool.hpp"

#include "util/errors.hpp"

namespace hammer::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  HAMMER_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::scoped_lock lock(mu_);
    HAMMER_CHECK_MSG(!stopping_, "submit() on a stopped ThreadPool");
    jobs_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [&] { return jobs_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping_ and drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++active_;
    }
    job();
    {
      std::scoped_lock lock(mu_);
      --active_;
      if (jobs_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace hammer::util
