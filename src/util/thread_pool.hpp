// Fixed-size worker pool with a futures-based submit API.
//
// Used by the asynchronous signature pipeline (paper §III-D1) and the chain
// simulators' endorsement stage.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace hammer::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn`; returns a future for its result. Throws LogicError if the
  // pool is already shutting down.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    auto fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  // Blocks until every task enqueued so far has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> jobs_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace hammer::util
