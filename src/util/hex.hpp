// Hex encoding/decoding for digests, transaction ids and addresses.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hammer::util {

std::string to_hex(std::span<const std::uint8_t> bytes);

// Throws ParseError on odd length or non-hex characters.
std::vector<std::uint8_t> from_hex(const std::string& hex);

}  // namespace hammer::util
