// Minimal leveled logger.
//
// Hammer is a measurement tool, so logging defaults to kWarn to keep the
// hot paths quiet; benches and examples raise the level explicitly.
#pragma once

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace hammer::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

// Emits one line to stderr; thread-safe (single write() per line).
void log_line(LogLevel level, const std::string& component, const std::string& message);

namespace detail {
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* component) : level_(level), component_(component) {}
  ~LogMessage() { log_line(level_, component_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace hammer::util

#define HAMMER_LOG(level, component)                                       \
  if (static_cast<int>(level) >= static_cast<int>(::hammer::util::log_level())) \
  ::hammer::util::detail::LogMessage(level, component).stream()

#define HLOG_DEBUG(component) HAMMER_LOG(::hammer::util::LogLevel::kDebug, component)
#define HLOG_INFO(component) HAMMER_LOG(::hammer::util::LogLevel::kInfo, component)
#define HLOG_WARN(component) HAMMER_LOG(::hammer::util::LogLevel::kWarn, component)
#define HLOG_ERROR(component) HAMMER_LOG(::hammer::util::LogLevel::kError, component)

// Rate-limited warning for hot paths: emits occurrences 1, n+1, 2n+1, ... at
// this call site. The occurrence counter is per call site and shared across
// threads, so a storm of identical failures logs once per n instead of
// serializing every worker on the logging mutex.
#define HLOG_EVERY_N(component, n)                                                    \
  if (static ::std::atomic<::std::uint64_t> hammer_log_every_n_counter_{0};           \
      hammer_log_every_n_counter_.fetch_add(1, ::std::memory_order_relaxed) % (n) == 0) \
  HLOG_WARN(component)
