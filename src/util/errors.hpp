// Exception hierarchy shared by every Hammer module.
//
// Per the project error-handling policy, recoverable failures are reported
// by throwing one of these types; programming errors (broken invariants)
// use HAMMER_CHECK which throws LogicError with location context.
#pragma once

#include <stdexcept>
#include <string>

namespace hammer {

// Base class for all errors raised by the framework.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Malformed input: bad JSON, bad SQL, bad config, bad wire frame.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

// A well-formed request that cannot be satisfied (unknown method, missing
// key, unknown account, ...).
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error("not found: " + what) {}
};

// The peer/SUT rejected the operation (overload, invalid transaction, ...).
class RejectedError : public Error {
 public:
  explicit RejectedError(const std::string& what) : Error("rejected: " + what) {}
};

// Transport-level failure (socket error, timeout, closed connection).
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what) : Error("transport: " + what) {}
};

// Operation exceeded its deadline.
class TimeoutError : public TransportError {
 public:
  explicit TimeoutError(const std::string& what) : TransportError("timeout: " + what) {}
};

// A wire frame exceeded rpc::kMaxFrameBytes — on send (the encoded request
// is refused before touching the socket) or on receive (the peer announced
// an oversize frame; the connection is dropped). Derives from
// TransportError so legacy catch sites keep working, but the retry
// taxonomy classifies it kProtocol: the same frame fails the same way on
// every attempt, so retrying cannot help.
class FrameTooLargeError : public TransportError {
 public:
  explicit FrameTooLargeError(const std::string& what)
      : TransportError("frame too large: " + what) {}
};

// Broken internal invariant; thrown by HAMMER_CHECK.
class LogicError : public std::logic_error {
 public:
  explicit LogicError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::string what = std::string("check failed: ") + expr + " at " + file + ":" +
                     std::to_string(line);
  if (!msg.empty()) what += " (" + msg + ")";
  throw LogicError(what);
}
}  // namespace detail

}  // namespace hammer

// Invariant check that survives release builds (unlike assert).
#define HAMMER_CHECK(expr)                                                 \
  do {                                                                     \
    if (!(expr)) ::hammer::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define HAMMER_CHECK_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr)) ::hammer::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
