#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/errors.hpp"

namespace hammer::util {

// Bucket layout: values < 64 are recorded exactly; above that, each
// power-of-two range [2^k, 2^{k+1}) is split into 32 linear sub-buckets,
// bounding relative error by 1/32 (~3%).
namespace {
constexpr std::uint64_t kLinearLimit = 64;
constexpr std::size_t kSubBuckets = 32;
constexpr std::size_t kMaxExp = 58;  // msb up to 63 -> exp = msb - 5
constexpr std::size_t kNumBuckets = kLinearLimit + kMaxExp * kSubBuckets;
}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

std::size_t Histogram::bucket_for(std::int64_t value_us) {
  std::uint64_t v = value_us < 0 ? 0 : static_cast<std::uint64_t>(value_us);
  if (v < kLinearLimit) return static_cast<std::size_t>(v);
  auto msb = static_cast<std::size_t>(63 - std::countl_zero(v));  // >= 6
  std::size_t exp = msb - 5;                                      // >= 1
  std::uint64_t sub = (v >> exp) - kSubBuckets;                   // in [0, 32)
  std::size_t idx = kLinearLimit + (exp - 1) * kSubBuckets + static_cast<std::size_t>(sub);
  return std::min(idx, kNumBuckets - 1);
}

std::int64_t Histogram::bucket_upper_bound(std::size_t bucket) {
  if (bucket < kLinearLimit) return static_cast<std::int64_t>(bucket);
  std::size_t adjusted = bucket - kLinearLimit;
  std::size_t exp = adjusted / kSubBuckets + 1;
  std::uint64_t sub = adjusted % kSubBuckets;
  return static_cast<std::int64_t>(((kSubBuckets + sub + 1) << exp) - 1);
}

void Histogram::record(std::int64_t value_us) {
  if (value_us < 0) value_us = 0;  // latencies cannot be negative; clamp
  ++buckets_[bucket_for(value_us)];
  ++count_;
  sum_ += value_us;
  if (count_ == 1) {
    min_ = max_ = value_us;
  } else {
    min_ = std::min(min_, value_us);
    max_ = std::max(max_, value_us);
  }
}

void Histogram::merge(const Histogram& other) {
  HAMMER_CHECK(buckets_.size() == other.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Histogram Histogram::from_parts(const std::vector<std::uint64_t>& buckets, std::int64_t sum,
                                std::int64_t min, std::int64_t max) {
  HAMMER_CHECK_MSG(buckets.size() == kNumBuckets, "histogram bucket layout mismatch");
  Histogram h;
  h.buckets_ = buckets;
  for (std::uint64_t n : buckets) h.count_ += n;
  h.sum_ = sum;
  if (h.count_ > 0) {
    h.min_ = min;
    h.max_ = max;
  }
  return h;
}

double Histogram::mean() const {
  return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
}

std::int64_t Histogram::percentile(double p) const {
  HAMMER_CHECK(p >= 0.0 && p <= 100.0);
  if (count_ == 0) return 0;
  auto target = static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (target == 0) target = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return std::min(bucket_upper_bound(i), max_);
  }
  return max_;
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() / 1000.0 << "ms"
     << " p50=" << static_cast<double>(percentile(50)) / 1000.0 << "ms"
     << " p95=" << static_cast<double>(percentile(95)) / 1000.0 << "ms"
     << " p99=" << static_cast<double>(percentile(99)) / 1000.0 << "ms"
     << " max=" << static_cast<double>(max_) / 1000.0 << "ms";
  return os.str();
}

}  // namespace hammer::util
