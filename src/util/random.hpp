// Deterministic pseudo-random utilities.
//
// Pcg32 is a small, fast, reproducible generator (O'Neill's PCG-XSH-RR);
// ZipfSampler implements the Gray et al. rejection-free power-law sampler
// used by YCSB so workload skew matches the literature.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hammer::util {

class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  std::uint32_t next_u32();
  std::uint64_t next_u64();

  // Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  // Uniform double in [0, 1).
  double uniform01();

  // Gaussian via Box-Muller.
  double gaussian(double mean = 0.0, double stddev = 1.0);

  // True with probability p.
  bool chance(double p);

  // Random lowercase-alphanumeric string of length n.
  std::string alnum(std::size_t n);

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint32_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }
  result_type operator()() { return next_u32(); }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_spare_gauss_ = false;
  double spare_gauss_ = 0.0;
};

// Derives a decorrelated child seed from (master, index): splitmix64 over
// the master offset by a golden-ratio multiple of (index + 1). Child i is a
// pure function of the master seed and i — this is how a distributed run
// hands each worker process its own reproducible workload and fault
// streams (disjoint in practice, deterministic always).
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index);

// Zipf-distributed sampler over {0, 1, ..., n-1} with parameter theta
// (theta = 0 degenerates to uniform). Uses the YCSB constant-time method.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double theta);

  std::uint64_t sample(Pcg32& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace hammer::util
