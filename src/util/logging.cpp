#include "util/logging.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace hammer::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

// Small sequential thread tag: stable within a thread, readable across an
// interleaved multi-worker run (unlike the 16-hex-digit native id).
unsigned this_thread_tag() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned tag = next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

void log_line(LogLevel level, const std::string& component, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  using namespace std::chrono;
  // Monotonic timestamp (steady_clock, not wall time) so deltas between
  // lines are meaningful even if NTP steps the wall clock mid-run.
  auto us = duration_cast<microseconds>(steady_clock::now().time_since_epoch()).count();
  unsigned tid = this_thread_tag();
  static std::mutex mu;
  std::scoped_lock lock(mu);
  std::fprintf(stderr, "[%10lld.%06lld] [T%02u] %s %-12s %s\n",
               static_cast<long long>(us / 1000000), static_cast<long long>(us % 1000000),
               tid, level_name(level), component.c_str(), message.c_str());
}

}  // namespace hammer::util
