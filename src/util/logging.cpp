#include "util/logging.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace hammer::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

void log_line(LogLevel level, const std::string& component, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  using namespace std::chrono;
  auto us = duration_cast<microseconds>(steady_clock::now().time_since_epoch()).count();
  static std::mutex mu;
  std::scoped_lock lock(mu);
  std::fprintf(stderr, "[%10lld.%06lld] %s %-12s %s\n",
               static_cast<long long>(us / 1000000), static_cast<long long>(us % 1000000),
               level_name(level), component.c_str(), message.c_str());
}

}  // namespace hammer::util
