// Bounded multi-producer / multi-consumer blocking queue.
//
// Backbone of the pipelined preparation→execution stages (paper §III-D2):
// the signer pushes ready transactions, sender threads pop them, and the
// bound provides backpressure so preparation cannot run arbitrarily ahead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "util/errors.hpp"

namespace hammer::util {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {
    HAMMER_CHECK(capacity > 0);
  }

  // Blocks while full. Returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty. Returns nullopt once closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  // Non-blocking pop.
  std::optional<T> try_pop() {
    std::scoped_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  // After close(), pushes fail and pops drain the remaining items.
  void close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace hammer::util
