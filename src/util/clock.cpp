#include "util/clock.hpp"

#include <thread>

namespace hammer::util {

TimePoint SteadyClock::now() const {
  return std::chrono::time_point_cast<Duration>(std::chrono::steady_clock::now());
}

void SteadyClock::sleep_until(TimePoint deadline) {
  std::this_thread::sleep_until(deadline);
}

const std::shared_ptr<SteadyClock>& SteadyClock::shared() {
  static const std::shared_ptr<SteadyClock> instance = std::make_shared<SteadyClock>();
  return instance;
}

TimePoint ManualClock::now() const {
  std::scoped_lock lock(mu_);
  return now_;
}

void ManualClock::sleep_until(TimePoint deadline) {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return now_ >= deadline; });
}

void ManualClock::advance(Duration d) {
  {
    std::scoped_lock lock(mu_);
    now_ += d;
  }
  cv_.notify_all();
}

}  // namespace hammer::util
