// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hammer::util {

std::vector<std::string> split(std::string_view text, char sep);
std::string_view trim(std::string_view text);
std::string to_lower(std::string_view text);
std::string to_upper(std::string_view text);
bool starts_with_icase(std::string_view text, std::string_view prefix);

// "1234567" -> "1,234,567" for report rendering.
std::string with_thousands(std::int64_t value);

}  // namespace hammer::util
