#include "minisql/parser.hpp"

#include <cctype>

#include "util/errors.hpp"
#include "util/strings.hpp"

namespace hammer::minisql {

using hammer::ParseError;

bool Expr::contains_aggregate() const {
  if (kind == ExprKind::kCountStar || kind == ExprKind::kAggregate) return true;
  for (const auto& child : children) {
    if (child->contains_aggregate()) return true;
  }
  return false;
}

namespace {

enum class TokKind { kIdent, kInt, kDouble, kString, kSymbol, kEnd };

struct Token {
  TokKind kind;
  std::string text;        // identifier (upper-cased), symbol, or string body
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& sql) : sql_(sql) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("SQL: " + why + " at offset " + std::to_string(current_.offset) + " in '" +
                     sql_ + "'");
  }

 private:
  void advance() {
    while (pos_ < sql_.size() && std::isspace(static_cast<unsigned char>(sql_[pos_]))) ++pos_;
    current_.offset = pos_;
    if (pos_ >= sql_.size()) {
      current_ = Token{TokKind::kEnd, "", 0, 0.0, pos_};
      return;
    }
    char c = sql_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < sql_.size() && (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
                                    sql_[pos_] == '_')) {
        ++pos_;
      }
      current_ = Token{TokKind::kIdent, util::to_upper(sql_.substr(start, pos_ - start)), 0, 0.0,
                       start};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      bool is_double = false;
      while (pos_ < sql_.size() &&
             (std::isdigit(static_cast<unsigned char>(sql_[pos_])) || sql_[pos_] == '.')) {
        if (sql_[pos_] == '.') is_double = true;
        ++pos_;
      }
      std::string tok = sql_.substr(start, pos_ - start);
      if (is_double) {
        current_ = Token{TokKind::kDouble, tok, 0, std::stod(tok), start};
      } else {
        current_ = Token{TokKind::kInt, tok, std::stoll(tok), 0.0, start};
      }
      return;
    }
    if (c == '\'') {
      std::size_t start = pos_++;
      std::string body;
      while (pos_ < sql_.size() && sql_[pos_] != '\'') body.push_back(sql_[pos_++]);
      if (pos_ >= sql_.size()) {
        current_.offset = start;
        throw ParseError("SQL: unterminated string literal in '" + sql_ + "'");
      }
      ++pos_;  // closing quote
      current_ = Token{TokKind::kString, body, 0, 0.0, start};
      return;
    }
    // Multi-char comparison symbols.
    std::size_t start = pos_;
    if (c == '<' || c == '>' || c == '!') {
      ++pos_;
      if (pos_ < sql_.size() && (sql_[pos_] == '=' || (c == '<' && sql_[pos_] == '>'))) ++pos_;
      current_ = Token{TokKind::kSymbol, sql_.substr(start, pos_ - start), 0, 0.0, start};
      return;
    }
    ++pos_;
    current_ = Token{TokKind::kSymbol, std::string(1, c), 0, 0.0, start};
  }

  const std::string& sql_;
  std::size_t pos_ = 0;
  Token current_{TokKind::kEnd, "", 0, 0.0, 0};
};

class SelectParser {
 public:
  explicit SelectParser(const std::string& sql) : lexer_(sql) {}

  SelectStatement parse() {
    expect_keyword("SELECT");
    SelectStatement stmt;
    for (;;) {
      stmt.items.push_back(parse_item());
      if (!try_symbol(",")) break;
    }
    expect_keyword("FROM");
    stmt.table = expect_ident();
    if (try_keyword("WHERE")) stmt.where = parse_expr();
    if (try_keyword("GROUP")) {
      expect_keyword("BY");
      stmt.group_by = parse_expr();
    }
    if (try_keyword("ORDER")) {
      expect_keyword("BY");
      stmt.order_by = parse_expr();
      if (try_keyword("DESC")) {
        stmt.order_desc = true;
      } else {
        try_keyword("ASC");
      }
    }
    if (try_keyword("LIMIT")) {
      Token t = lexer_.take();
      if (t.kind != TokKind::kInt) lexer_.fail("expected integer after LIMIT");
      stmt.limit = t.int_value;
    }
    if (lexer_.peek().kind == TokKind::kSymbol && lexer_.peek().text == ";") lexer_.take();
    if (lexer_.peek().kind != TokKind::kEnd) lexer_.fail("unexpected trailing tokens");
    return stmt;
  }

 private:
  SelectItem parse_item() {
    SelectItem item;
    if (lexer_.peek().kind == TokKind::kSymbol && lexer_.peek().text == "*") {
      lexer_.take();
      item.star = true;
      return item;
    }
    item.expr = parse_expr();
    if (try_keyword("AS")) item.alias = expect_ident();
    return item;
  }

  std::unique_ptr<Expr> parse_expr() { return parse_or(); }

  std::unique_ptr<Expr> parse_or() {
    auto lhs = parse_and();
    while (try_keyword("OR")) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->op = BinaryOp::kOr;
      node->children.push_back(std::move(lhs));
      node->children.push_back(parse_and());
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_and() {
    auto lhs = parse_cmp();
    while (try_keyword("AND")) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->op = BinaryOp::kAnd;
      node->children.push_back(std::move(lhs));
      node->children.push_back(parse_cmp());
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_cmp() {
    auto lhs = parse_sum();
    const Token& t = lexer_.peek();
    if (t.kind == TokKind::kSymbol) {
      BinaryOp op;
      if (t.text == "=") op = BinaryOp::kEq;
      else if (t.text == "!=" || t.text == "<>") op = BinaryOp::kNe;
      else if (t.text == "<") op = BinaryOp::kLt;
      else if (t.text == "<=") op = BinaryOp::kLe;
      else if (t.text == ">") op = BinaryOp::kGt;
      else if (t.text == ">=") op = BinaryOp::kGe;
      else return lhs;
      lexer_.take();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->op = op;
      node->children.push_back(std::move(lhs));
      node->children.push_back(parse_sum());
      return node;
    }
    return lhs;
  }

  std::unique_ptr<Expr> parse_sum() {
    auto lhs = parse_term();
    for (;;) {
      const Token& t = lexer_.peek();
      if (t.kind != TokKind::kSymbol || (t.text != "+" && t.text != "-")) return lhs;
      BinaryOp op = t.text == "+" ? BinaryOp::kAdd : BinaryOp::kSub;
      lexer_.take();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->op = op;
      node->children.push_back(std::move(lhs));
      node->children.push_back(parse_term());
      lhs = std::move(node);
    }
  }

  std::unique_ptr<Expr> parse_term() {
    auto lhs = parse_factor();
    for (;;) {
      const Token& t = lexer_.peek();
      if (t.kind != TokKind::kSymbol || (t.text != "*" && t.text != "/")) return lhs;
      BinaryOp op = t.text == "*" ? BinaryOp::kMul : BinaryOp::kDiv;
      lexer_.take();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->op = op;
      node->children.push_back(std::move(lhs));
      node->children.push_back(parse_factor());
      lhs = std::move(node);
    }
  }

  std::unique_ptr<Expr> parse_factor() {
    Token t = lexer_.take();
    auto node = std::make_unique<Expr>();
    switch (t.kind) {
      case TokKind::kInt:
        node->kind = ExprKind::kIntLiteral;
        node->int_value = t.int_value;
        return node;
      case TokKind::kDouble:
        node->kind = ExprKind::kDoubleLiteral;
        node->double_value = t.double_value;
        return node;
      case TokKind::kString:
        node->kind = ExprKind::kStringLiteral;
        node->text = t.text;
        return node;
      case TokKind::kSymbol:
        if (t.text == "(") {
          auto inner = parse_expr();
          expect_symbol(")");
          return inner;
        }
        if (t.text == "-") {
          node->kind = ExprKind::kUnaryMinus;
          node->children.push_back(parse_factor());
          return node;
        }
        lexer_.fail("unexpected symbol '" + t.text + "'");
      case TokKind::kIdent:
        return parse_ident_factor(std::move(t));
      case TokKind::kEnd:
        lexer_.fail("unexpected end of statement");
    }
    lexer_.fail("unexpected token");
  }

  std::unique_ptr<Expr> parse_ident_factor(Token ident) {
    auto node = std::make_unique<Expr>();
    const std::string& name = ident.text;  // already upper-cased
    if (name == "COUNT") {
      expect_symbol("(");
      expect_symbol("*");
      expect_symbol(")");
      node->kind = ExprKind::kCountStar;
      return node;
    }
    if (name == "AVG" || name == "SUM" || name == "MIN" || name == "MAX") {
      expect_symbol("(");
      node->kind = ExprKind::kAggregate;
      node->agg = name == "AVG"   ? AggFunc::kAvg
                  : name == "SUM" ? AggFunc::kSum
                  : name == "MIN" ? AggFunc::kMin
                                  : AggFunc::kMax;
      node->children.push_back(parse_expr());
      expect_symbol(")");
      return node;
    }
    if (name == "TIMESTAMPDIFF") {
      expect_symbol("(");
      std::string unit = expect_ident();
      node->kind = ExprKind::kTimestampDiff;
      if (unit == "SECOND") node->unit = TimeUnit::kSecond;
      else if (unit == "MILLISECOND") node->unit = TimeUnit::kMillisecond;
      else if (unit == "MICROSECOND") node->unit = TimeUnit::kMicrosecond;
      else lexer_.fail("unsupported TIMESTAMPDIFF unit " + unit);
      expect_symbol(",");
      node->children.push_back(parse_expr());
      expect_symbol(",");
      node->children.push_back(parse_expr());
      expect_symbol(")");
      return node;
    }
    node->kind = ExprKind::kColumnRef;
    node->text = name;
    return node;
  }

  bool try_keyword(const std::string& kw) {
    if (lexer_.peek().kind == TokKind::kIdent && lexer_.peek().text == kw) {
      lexer_.take();
      return true;
    }
    return false;
  }

  void expect_keyword(const std::string& kw) {
    if (!try_keyword(kw)) lexer_.fail("expected keyword " + kw);
  }

  bool try_symbol(const std::string& sym) {
    if (lexer_.peek().kind == TokKind::kSymbol && lexer_.peek().text == sym) {
      lexer_.take();
      return true;
    }
    return false;
  }

  void expect_symbol(const std::string& sym) {
    if (!try_symbol(sym)) lexer_.fail("expected '" + sym + "'");
  }

  std::string expect_ident() {
    Token t = lexer_.take();
    if (t.kind != TokKind::kIdent) lexer_.fail("expected identifier");
    return t.text;
  }

  Lexer lexer_;
};

}  // namespace

SelectStatement parse_select(const std::string& sql) { return SelectParser(sql).parse(); }

}  // namespace hammer::minisql
