#include "minisql/database.hpp"

#include <mutex>
#include <sstream>

#include "util/strings.hpp"

namespace hammer::minisql {

using hammer::LogicError;
using hammer::NotFoundError;

std::string cell_to_string(const Cell& cell) {
  if (std::holds_alternative<std::monostate>(cell)) return "NULL";
  if (const auto* i = std::get_if<std::int64_t>(&cell)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&cell)) {
    std::ostringstream os;
    os << *d;
    return os.str();
  }
  return std::get<std::string>(cell);
}

bool cell_is_null(const Cell& cell) { return std::holds_alternative<std::monostate>(cell); }

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  HAMMER_CHECK(!columns_.empty());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    auto [it, inserted] = index_by_name_.emplace(util::to_upper(columns_[i].name), i);
    (void)it;
    HAMMER_CHECK_MSG(inserted, "duplicate column " + columns_[i].name);
  }
}

std::size_t Table::column_index(const std::string& name) const {
  auto it = index_by_name_.find(util::to_upper(name));
  if (it == index_by_name_.end()) {
    throw NotFoundError("column '" + name + "' in table " + name_);
  }
  return it->second;
}

void Table::validate(std::vector<Cell>& row) const {
  HAMMER_CHECK_MSG(row.size() == columns_.size(),
                   "row arity " + std::to_string(row.size()) + " != schema arity " +
                       std::to_string(columns_.size()));
  for (std::size_t i = 0; i < row.size(); ++i) {
    Cell& cell = row[i];
    if (cell_is_null(cell)) continue;
    switch (columns_[i].type) {
      case ColumnType::kInt:
        if (!std::holds_alternative<std::int64_t>(cell)) {
          throw LogicError("column " + columns_[i].name + " expects INT");
        }
        break;
      case ColumnType::kDouble:
        if (const auto* iv = std::get_if<std::int64_t>(&cell)) {
          cell = static_cast<double>(*iv);
        } else if (!std::holds_alternative<double>(cell)) {
          throw LogicError("column " + columns_[i].name + " expects DOUBLE");
        }
        break;
      case ColumnType::kText:
        if (!std::holds_alternative<std::string>(cell)) {
          throw LogicError("column " + columns_[i].name + " expects TEXT");
        }
        break;
    }
  }
}

void Table::index_row(std::size_t position) {
  for (auto& [column, buckets] : indexes_) {
    buckets[cell_to_string(rows_[position][column])].push_back(position);
  }
}

void Table::insert(std::vector<Cell> row) {
  validate(row);
  rows_.push_back(std::move(row));
  index_row(rows_.size() - 1);
}

void Table::insert_batch(std::vector<std::vector<Cell>> rows) {
  for (auto& row : rows) validate(row);
  for (auto& row : rows) {
    rows_.push_back(std::move(row));
    index_row(rows_.size() - 1);
  }
}

void Table::create_index(const std::string& column_name) {
  std::size_t column = column_index(column_name);
  if (columns_[column].type == ColumnType::kDouble) {
    throw LogicError("hash index on DOUBLE column " + columns_[column].name +
                     " (equality is not exact)");
  }
  auto [it, inserted] = indexes_.try_emplace(column);
  if (!inserted) return;  // already indexed
  for (std::size_t pos = 0; pos < rows_.size(); ++pos) {
    it->second[cell_to_string(rows_[pos][column])].push_back(pos);
  }
}

const std::vector<std::size_t>* Table::index_lookup(std::size_t column, const Cell& key) const {
  auto idx = indexes_.find(column);
  HAMMER_CHECK_MSG(idx != indexes_.end(), "index_lookup on unindexed column");
  auto it = idx->second.find(cell_to_string(key));
  if (it == idx->second.end()) return nullptr;
  return &it->second;
}

std::size_t Table::row_count() const { return rows_.size(); }

void Table::truncate() {
  rows_.clear();
  for (auto& [column, buckets] : indexes_) buckets.clear();
}

std::string ResultSet::to_csv() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < column_names.size(); ++i) {
    if (i) os << ',';
    os << column_names[i];
  }
  os << '\n';
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << cell_to_string(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

Table& Database::create_table(const std::string& name, std::vector<Column> columns) {
  std::unique_lock lock(mu_);
  std::string key = util::to_upper(name);
  auto [it, inserted] =
      tables_.emplace(key, std::make_unique<Table>(name, std::move(columns)));
  HAMMER_CHECK_MSG(inserted, "table " + name + " already exists");
  return *it->second;
}

Table& Database::table(const std::string& name) {
  auto it = tables_.find(util::to_upper(name));
  if (it == tables_.end()) throw NotFoundError("table " + name);
  return *it->second;
}

const Table& Database::table(const std::string& name) const {
  auto it = tables_.find(util::to_upper(name));
  if (it == tables_.end()) throw NotFoundError("table " + name);
  return *it->second;
}

bool Database::has_table(const std::string& name) const {
  std::shared_lock lock(mu_);
  return tables_.count(util::to_upper(name)) > 0;
}

void Database::insert(const std::string& table_name, std::vector<Cell> row) {
  std::unique_lock lock(mu_);
  table(table_name).insert(std::move(row));
}

void Database::insert_batch(const std::string& table_name,
                            std::vector<std::vector<Cell>> rows) {
  if (rows.empty()) return;
  std::unique_lock lock(mu_);
  table(table_name).insert_batch(std::move(rows));
}

void Database::create_index(const std::string& table_name, const std::string& column_name) {
  std::unique_lock lock(mu_);
  table(table_name).create_index(column_name);
}

}  // namespace hammer::minisql
