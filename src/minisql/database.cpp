#include "minisql/database.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace hammer::minisql {

using hammer::LogicError;
using hammer::NotFoundError;

std::string cell_to_string(const Cell& cell) {
  if (std::holds_alternative<std::monostate>(cell)) return "NULL";
  if (const auto* i = std::get_if<std::int64_t>(&cell)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&cell)) {
    std::ostringstream os;
    os << *d;
    return os.str();
  }
  return std::get<std::string>(cell);
}

bool cell_is_null(const Cell& cell) { return std::holds_alternative<std::monostate>(cell); }

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  HAMMER_CHECK(!columns_.empty());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    auto [it, inserted] = index_by_name_.emplace(util::to_upper(columns_[i].name), i);
    (void)it;
    HAMMER_CHECK_MSG(inserted, "duplicate column " + columns_[i].name);
  }
}

std::size_t Table::column_index(const std::string& name) const {
  auto it = index_by_name_.find(util::to_upper(name));
  if (it == index_by_name_.end()) {
    throw NotFoundError("column '" + name + "' in table " + name_);
  }
  return it->second;
}

void Table::insert(std::vector<Cell> row) {
  HAMMER_CHECK_MSG(row.size() == columns_.size(),
                   "row arity " + std::to_string(row.size()) + " != schema arity " +
                       std::to_string(columns_.size()));
  for (std::size_t i = 0; i < row.size(); ++i) {
    Cell& cell = row[i];
    if (cell_is_null(cell)) continue;
    switch (columns_[i].type) {
      case ColumnType::kInt:
        if (!std::holds_alternative<std::int64_t>(cell)) {
          throw LogicError("column " + columns_[i].name + " expects INT");
        }
        break;
      case ColumnType::kDouble:
        if (const auto* iv = std::get_if<std::int64_t>(&cell)) {
          cell = static_cast<double>(*iv);
        } else if (!std::holds_alternative<double>(cell)) {
          throw LogicError("column " + columns_[i].name + " expects DOUBLE");
        }
        break;
      case ColumnType::kText:
        if (!std::holds_alternative<std::string>(cell)) {
          throw LogicError("column " + columns_[i].name + " expects TEXT");
        }
        break;
    }
  }
  rows_.push_back(std::move(row));
}

std::size_t Table::row_count() const { return rows_.size(); }

void Table::truncate() { rows_.clear(); }

std::string ResultSet::to_csv() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < column_names.size(); ++i) {
    if (i) os << ',';
    os << column_names[i];
  }
  os << '\n';
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << cell_to_string(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

Table& Database::create_table(const std::string& name, std::vector<Column> columns) {
  std::scoped_lock lock(mu_);
  std::string key = util::to_upper(name);
  auto [it, inserted] =
      tables_.emplace(key, std::make_unique<Table>(name, std::move(columns)));
  HAMMER_CHECK_MSG(inserted, "table " + name + " already exists");
  return *it->second;
}

Table& Database::table(const std::string& name) {
  auto it = tables_.find(util::to_upper(name));
  if (it == tables_.end()) throw NotFoundError("table " + name);
  return *it->second;
}

const Table& Database::table(const std::string& name) const {
  auto it = tables_.find(util::to_upper(name));
  if (it == tables_.end()) throw NotFoundError("table " + name);
  return *it->second;
}

bool Database::has_table(const std::string& name) const {
  return tables_.count(util::to_upper(name)) > 0;
}

void Database::insert(const std::string& table_name, std::vector<Cell> row) {
  std::scoped_lock lock(mu_);
  table(table_name).insert(std::move(row));
}

}  // namespace hammer::minisql
