// SQL subset parser.
//
// Grammar (case-insensitive keywords):
//   select   := SELECT item (',' item)* FROM ident [WHERE expr]
//               [GROUP BY expr] [ORDER BY expr [ASC|DESC]] [LIMIT int]
//   item     := expr [AS ident] | '*'
//   expr     := or_expr
//   or_expr  := and_expr (OR and_expr)*
//   and_expr := cmp (AND cmp)*
//   cmp      := sum (('=' | '!=' | '<>' | '<' | '<=' | '>' | '>=') sum)?
//   sum      := term (('+' | '-') term)*
//   term     := factor (('*' | '/') factor)*
//   factor   := INT | DOUBLE | STRING | ident | func | '(' expr ')' | '-' factor
//   func     := COUNT '(' '*' ')' | (AVG|SUM|MIN|MAX) '(' expr ')'
//             | TIMESTAMPDIFF '(' unit ',' expr ',' expr ')'
//   unit     := SECOND | MILLISECOND | MICROSECOND
//
// This covers both Table II statements from the paper verbatim (modulo the
// paper's quoting of STATUS = '1', which compares against the string form).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hammer::minisql {

enum class ExprKind {
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  kColumnRef,
  kBinary,
  kUnaryMinus,
  kCountStar,
  kAggregate,       // AVG/SUM/MIN/MAX
  kTimestampDiff,
};

enum class BinaryOp { kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr, kAdd, kSub, kMul, kDiv };
enum class AggFunc { kAvg, kSum, kMin, kMax };
enum class TimeUnit { kSecond, kMillisecond, kMicrosecond };

struct Expr {
  ExprKind kind;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::string text;  // string literal or column name
  BinaryOp op = BinaryOp::kEq;
  AggFunc agg = AggFunc::kAvg;
  TimeUnit unit = TimeUnit::kSecond;
  std::vector<std::unique_ptr<Expr>> children;

  bool contains_aggregate() const;
};

struct SelectItem {
  std::unique_ptr<Expr> expr;  // null for '*'
  std::string alias;           // empty when none
  bool star = false;
};

struct SelectStatement {
  std::vector<SelectItem> items;
  std::string table;
  std::unique_ptr<Expr> where;      // may be null
  std::unique_ptr<Expr> group_by;   // may be null
  std::unique_ptr<Expr> order_by;   // may be null
  bool order_desc = false;
  std::int64_t limit = -1;          // -1 = no limit
};

// Throws ParseError with offset context on malformed SQL.
SelectStatement parse_select(const std::string& sql);

}  // namespace hammer::minisql
