// SELECT executor for the minisql subset.
//
// Semantics follow MySQL where it matters for Table II:
//   - '/' always yields double; other int×int arithmetic stays integral
//   - NULL propagates through expressions; WHERE treats NULL as false
//   - mixed string/number comparisons coerce the string to a number when it
//     parses (so STATUS = '1' works on either column type)
//   - with aggregates and no GROUP BY, the whole filtered set is one group
//
// Two access-path optimizations keep report queries cheap at cluster rate:
//   - equality-predicate pushdown: a top-level `col = literal` conjunct over
//     an indexed column restricts the scan to the index bucket (the full
//     WHERE still re-runs on each candidate, so NULL/coercion semantics are
//     untouched)
//   - aggregate short-circuit: aggregates without GROUP BY fold row by row
//     and never buffer the filtered set
#include <algorithm>
#include <charconv>
#include <cmath>
#include <map>
#include <optional>
#include <shared_mutex>

#include "minisql/database.hpp"
#include "minisql/parser.hpp"
#include "util/errors.hpp"

namespace hammer::minisql {

using hammer::LogicError;
using hammer::ParseError;

namespace {

std::optional<double> cell_numeric(const Cell& cell) {
  if (const auto* i = std::get_if<std::int64_t>(&cell)) return static_cast<double>(*i);
  if (const auto* d = std::get_if<double>(&cell)) return *d;
  if (const auto* s = std::get_if<std::string>(&cell)) {
    double v = 0.0;
    const char* begin = s->data();
    const char* end = s->data() + s->size();
    auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec == std::errc{} && ptr == end && !s->empty()) return v;
    return std::nullopt;
  }
  return std::nullopt;
}

// Three-valued comparison result; nullopt = SQL NULL (incomparable).
std::optional<int> compare_cells(const Cell& lhs, const Cell& rhs) {
  if (cell_is_null(lhs) || cell_is_null(rhs)) return std::nullopt;
  const auto* ls = std::get_if<std::string>(&lhs);
  const auto* rs = std::get_if<std::string>(&rhs);
  if (ls && rs) return ls->compare(*rs) < 0 ? -1 : (*ls == *rs ? 0 : 1);
  auto ln = cell_numeric(lhs);
  auto rn = cell_numeric(rhs);
  if (!ln || !rn) return std::nullopt;  // non-numeric string vs number
  if (*ln < *rn) return -1;
  if (*ln > *rn) return 1;
  return 0;
}

Cell arith(BinaryOp op, const Cell& lhs, const Cell& rhs) {
  if (cell_is_null(lhs) || cell_is_null(rhs)) return Cell{};
  auto ln = cell_numeric(lhs);
  auto rn = cell_numeric(rhs);
  if (!ln || !rn) return Cell{};
  bool both_int = std::holds_alternative<std::int64_t>(lhs) &&
                  std::holds_alternative<std::int64_t>(rhs);
  switch (op) {
    case BinaryOp::kAdd:
      if (both_int) return std::get<std::int64_t>(lhs) + std::get<std::int64_t>(rhs);
      return *ln + *rn;
    case BinaryOp::kSub:
      if (both_int) return std::get<std::int64_t>(lhs) - std::get<std::int64_t>(rhs);
      return *ln - *rn;
    case BinaryOp::kMul:
      if (both_int) return std::get<std::int64_t>(lhs) * std::get<std::int64_t>(rhs);
      return *ln * *rn;
    case BinaryOp::kDiv:
      if (*rn == 0.0) return Cell{};  // division by zero -> NULL (MySQL)
      return *ln / *rn;
    default:
      throw LogicError("arith called with non-arithmetic op");
  }
}

bool truthy(const Cell& cell) {
  if (cell_is_null(cell)) return false;
  auto n = cell_numeric(cell);
  return n.has_value() && *n != 0.0;
}

class RowEvaluator {
 public:
  RowEvaluator(const Table& table, const std::vector<Cell>& row) : table_(table), row_(row) {}

  Cell eval(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kIntLiteral: return e.int_value;
      case ExprKind::kDoubleLiteral: return e.double_value;
      case ExprKind::kStringLiteral: return e.text;
      case ExprKind::kColumnRef: return row_[table_.column_index(e.text)];
      case ExprKind::kUnaryMinus: {
        Cell v = eval(*e.children[0]);
        if (cell_is_null(v)) return v;
        if (const auto* i = std::get_if<std::int64_t>(&v)) return -*i;
        if (const auto* d = std::get_if<double>(&v)) return -*d;
        return Cell{};
      }
      case ExprKind::kTimestampDiff: {
        Cell a = eval(*e.children[0]);
        Cell b = eval(*e.children[1]);
        if (cell_is_null(a) || cell_is_null(b)) return Cell{};
        auto an = cell_numeric(a);
        auto bn = cell_numeric(b);
        if (!an || !bn) return Cell{};
        // Timestamps are microseconds; TIMESTAMPDIFF(unit, a, b) = b - a
        // truncated toward zero in the requested unit (MySQL semantics).
        auto diff_us = static_cast<std::int64_t>(*bn - *an);
        switch (e.unit) {
          case TimeUnit::kSecond: return diff_us / 1000000;
          case TimeUnit::kMillisecond: return diff_us / 1000;
          case TimeUnit::kMicrosecond: return diff_us;
        }
        return Cell{};
      }
      case ExprKind::kBinary: {
        if (e.op == BinaryOp::kAnd) {
          return static_cast<std::int64_t>(truthy(eval(*e.children[0])) &&
                                           truthy(eval(*e.children[1])));
        }
        if (e.op == BinaryOp::kOr) {
          return static_cast<std::int64_t>(truthy(eval(*e.children[0])) ||
                                           truthy(eval(*e.children[1])));
        }
        Cell lhs = eval(*e.children[0]);
        Cell rhs = eval(*e.children[1]);
        switch (e.op) {
          case BinaryOp::kAdd:
          case BinaryOp::kSub:
          case BinaryOp::kMul:
          case BinaryOp::kDiv:
            return arith(e.op, lhs, rhs);
          default: {
            auto c = compare_cells(lhs, rhs);
            if (!c) return Cell{};
            bool result = false;
            switch (e.op) {
              case BinaryOp::kEq: result = *c == 0; break;
              case BinaryOp::kNe: result = *c != 0; break;
              case BinaryOp::kLt: result = *c < 0; break;
              case BinaryOp::kLe: result = *c <= 0; break;
              case BinaryOp::kGt: result = *c > 0; break;
              case BinaryOp::kGe: result = *c >= 0; break;
              default: throw LogicError("unexpected comparison op");
            }
            return static_cast<std::int64_t>(result);
          }
        }
      }
      case ExprKind::kCountStar:
      case ExprKind::kAggregate:
        throw ParseError("aggregate used where a row value is required");
    }
    throw LogicError("unhandled expression kind");
  }

 private:
  const Table& table_;
  const std::vector<Cell>& row_;
};

// Evaluates a (possibly aggregate-bearing) expression over a group of rows.
class GroupEvaluator {
 public:
  GroupEvaluator(const Table& table, const std::vector<const std::vector<Cell>*>& rows)
      : table_(table), rows_(rows) {}

  Cell eval(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kCountStar:
        return static_cast<std::int64_t>(rows_.size());
      case ExprKind::kAggregate: {
        double sum = 0.0;
        std::size_t n = 0;
        std::optional<double> best;
        for (const auto* row : rows_) {
          Cell v = RowEvaluator(table_, *row).eval(*e.children[0]);
          auto num = cell_numeric(v);
          if (!num) continue;  // NULLs are skipped by SQL aggregates
          ++n;
          sum += *num;
          if (!best) {
            best = *num;
          } else {
            best = e.agg == AggFunc::kMin ? std::min(*best, *num) : std::max(*best, *num);
          }
        }
        if (n == 0) return Cell{};
        switch (e.agg) {
          case AggFunc::kAvg: return sum / static_cast<double>(n);
          case AggFunc::kSum: return sum;
          case AggFunc::kMin:
          case AggFunc::kMax: return *best;
        }
        return Cell{};
      }
      default: {
        if (e.kind == ExprKind::kBinary && e.contains_aggregate()) {
          // e.g. COUNT(*) / 10 or SUM(x) - SUM(y).
          Cell lhs = eval(*e.children[0]);
          Cell rhs = eval(*e.children[1]);
          switch (e.op) {
            case BinaryOp::kAdd:
            case BinaryOp::kSub:
            case BinaryOp::kMul:
            case BinaryOp::kDiv:
              return arith(e.op, lhs, rhs);
            default:
              break;
          }
        }
        // Non-aggregate expression in an aggregate query: evaluate on the
        // group's first row (MySQL's permissive ONLY_FULL_GROUP_BY-off mode).
        if (rows_.empty()) return Cell{};
        return RowEvaluator(table_, *rows_[0]).eval(e);
      }
    }
  }

 private:
  const Table& table_;
  const std::vector<const std::vector<Cell>*>& rows_;
};

// Streaming replacement for GroupEvaluator in the no-GROUP-BY case: each
// aggregate leaf carries running state fed one row at a time, and finish()
// reproduces GroupEvaluator's results without the buffered row set.
class StreamingAggregator {
 public:
  StreamingAggregator(const Table& table, const std::vector<const Expr*>& select_exprs)
      : table_(table) {
    for (const Expr* e : select_exprs) collect(*e);
  }

  void accumulate(const std::vector<Cell>& row) {
    ++row_count_;
    if (first_row_.empty() && !row.empty()) first_row_ = row;
    RowEvaluator re(table_, row);
    for (auto& [node, state] : states_) {
      if (node->kind == ExprKind::kCountStar) continue;  // row_count_ covers it
      Cell v = re.eval(*node->children[0]);
      auto num = cell_numeric(v);
      if (!num) continue;  // NULLs are skipped by SQL aggregates
      ++state.n;
      state.sum += *num;
      if (!state.best) {
        state.best = *num;
      } else {
        state.best =
            node->agg == AggFunc::kMin ? std::min(*state.best, *num) : std::max(*state.best, *num);
      }
    }
  }

  Cell finish(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kCountStar:
        return static_cast<std::int64_t>(row_count_);
      case ExprKind::kAggregate: {
        const AggState& state = states_.at(&e);
        if (state.n == 0) return Cell{};
        switch (e.agg) {
          case AggFunc::kAvg: return state.sum / static_cast<double>(state.n);
          case AggFunc::kSum: return state.sum;
          case AggFunc::kMin:
          case AggFunc::kMax: return *state.best;
        }
        return Cell{};
      }
      default: {
        if (e.kind == ExprKind::kBinary && e.contains_aggregate()) {
          Cell lhs = finish(*e.children[0]);
          Cell rhs = finish(*e.children[1]);
          switch (e.op) {
            case BinaryOp::kAdd:
            case BinaryOp::kSub:
            case BinaryOp::kMul:
            case BinaryOp::kDiv:
              return arith(e.op, lhs, rhs);
            default:
              break;
          }
        }
        if (first_row_.empty()) return Cell{};
        return RowEvaluator(table_, first_row_).eval(e);
      }
    }
  }

 private:
  struct AggState {
    std::size_t n = 0;
    double sum = 0.0;
    std::optional<double> best;
  };

  void collect(const Expr& e) {
    if (e.kind == ExprKind::kCountStar || e.kind == ExprKind::kAggregate) {
      states_.emplace(&e, AggState{});
      return;  // aggregates do not nest
    }
    for (const auto& child : e.children) collect(*child);
  }

  const Table& table_;
  std::map<const Expr*, AggState> states_;
  std::size_t row_count_ = 0;
  std::vector<Cell> first_row_;
};

std::string item_output_name(const SelectItem& item, std::size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr && item.expr->kind == ExprKind::kColumnRef) return item.expr->text;
  if (item.expr && item.expr->kind == ExprKind::kCountStar) return "COUNT(*)";
  return "EXPR" + std::to_string(index + 1);
}

// Expands the select list (star -> all columns) into expression pointers and
// output column names. Star expansions are owned by `owned`.
void expand_select_list(const SelectStatement& stmt, const Table& tbl,
                        std::vector<const Expr*>& exprs,
                        std::vector<std::unique_ptr<Expr>>& owned,
                        std::vector<std::string>& column_names) {
  for (std::size_t i = 0; i < stmt.items.size(); ++i) {
    const SelectItem& item = stmt.items[i];
    if (item.star) {
      for (const Column& col : tbl.columns()) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kColumnRef;
        e->text = col.name;
        column_names.push_back(col.name);
        exprs.push_back(e.get());
        owned.push_back(std::move(e));
      }
    } else {
      // Unaliased column refs display with the schema's declared case.
      if (item.alias.empty() && item.expr->kind == ExprKind::kColumnRef) {
        column_names.push_back(tbl.columns()[tbl.column_index(item.expr->text)].name);
      } else {
        column_names.push_back(item_output_name(item, i));
      }
      exprs.push_back(item.expr.get());
    }
  }
}

// An equality conjunct eligible for index pushdown: `column = literal` (either
// order) where the literal's type matches the column exactly — TEXT against a
// string literal, INT against an int literal. Exact-match-only keeps MySQL's
// numeric-coercion semantics out of the index (e.g. INT col = '1' or
// DOUBLE comparisons still take the scan path).
struct IndexProbe {
  std::size_t column;
  Cell key;
};

std::optional<IndexProbe> probe_from_conjunct(const Table& tbl, const Expr& e) {
  if (e.kind != ExprKind::kBinary || e.op != BinaryOp::kEq) return std::nullopt;
  const Expr* col = e.children[0].get();
  const Expr* lit = e.children[1].get();
  if (col->kind != ExprKind::kColumnRef) std::swap(col, lit);
  if (col->kind != ExprKind::kColumnRef) return std::nullopt;
  std::size_t index = tbl.column_index(col->text);
  if (!tbl.has_index(index)) return std::nullopt;
  ColumnType type = tbl.columns()[index].type;
  if (type == ColumnType::kText && lit->kind == ExprKind::kStringLiteral) {
    return IndexProbe{index, Cell{lit->text}};
  }
  if (type == ColumnType::kInt && lit->kind == ExprKind::kIntLiteral) {
    return IndexProbe{index, Cell{lit->int_value}};
  }
  return std::nullopt;
}

// Searches the top-level AND conjuncts of the WHERE clause for an indexable
// equality predicate.
std::optional<IndexProbe> find_index_probe(const Table& tbl, const Expr* where) {
  if (!where) return std::nullopt;
  if (where->kind == ExprKind::kBinary && where->op == BinaryOp::kAnd) {
    if (auto probe = find_index_probe(tbl, where->children[0].get())) return probe;
    return find_index_probe(tbl, where->children[1].get());
  }
  return probe_from_conjunct(tbl, *where);
}

// Drives rows through the WHERE clause — via an index bucket when a probe is
// available, else a full scan — invoking fn for each passing row until fn
// returns false. The full WHERE re-runs on index candidates, so pushdown can
// never change which rows match.
void for_each_matching(const Table& tbl, const Expr* where, QueryStats& stats,
                       const std::function<bool(const std::vector<Cell>&)>& fn) {
  auto matches = [&](const std::vector<Cell>& row) {
    ++stats.rows_scanned;
    return !where || truthy(RowEvaluator(tbl, row).eval(*where));
  };
  if (auto probe = find_index_probe(tbl, where)) {
    stats.used_index = true;
    const auto* positions = tbl.index_lookup(probe->column, probe->key);
    if (!positions) return;
    for (std::size_t pos : *positions) {
      const auto& row = tbl.rows()[pos];
      if (matches(row) && !fn(row)) return;
    }
    return;
  }
  for (const auto& row : tbl.rows()) {
    if (matches(row) && !fn(row)) return;
  }
}

}  // namespace

ResultSet Database::query(const std::string& sql, QueryStats* stats) const {
  SelectStatement stmt = parse_select(sql);
  std::shared_lock lock(mu_);
  const Table& tbl = table(stmt.table);
  QueryStats local;

  ResultSet result;
  std::vector<const Expr*> exprs;
  std::vector<std::unique_ptr<Expr>> owned;
  expand_select_list(stmt, tbl, exprs, owned, result.column_names);

  bool aggregate_mode = stmt.group_by != nullptr;
  for (const Expr* e : exprs) {
    if (e->contains_aggregate()) aggregate_mode = true;
  }

  if (aggregate_mode && !stmt.group_by) {
    // One implicit group: fold the aggregates row by row, never buffering
    // the filtered set.
    local.aggregate_short_circuit = true;
    StreamingAggregator agg(tbl, exprs);
    for_each_matching(tbl, stmt.where.get(), local, [&](const std::vector<Cell>& row) {
      agg.accumulate(row);
      return true;
    });
    std::vector<Cell> out;
    out.reserve(exprs.size());
    for (const Expr* e : exprs) out.push_back(agg.finish(*e));
    result.rows.push_back(std::move(out));
  } else if (aggregate_mode) {
    // Group rows by the (stringified) GROUP BY key.
    std::vector<const std::vector<Cell>*> filtered;
    for_each_matching(tbl, stmt.where.get(), local, [&](const std::vector<Cell>& row) {
      filtered.push_back(&row);
      return true;
    });
    std::map<std::string, std::vector<const std::vector<Cell>*>> groups;
    for (const auto* row : filtered) {
      Cell key = RowEvaluator(tbl, *row).eval(*stmt.group_by);
      groups[cell_to_string(key)].push_back(row);
    }
    for (const auto& [key, rows] : groups) {
      (void)key;
      GroupEvaluator ge(tbl, rows);
      std::vector<Cell> out;
      out.reserve(exprs.size());
      for (const Expr* e : exprs) out.push_back(ge.eval(*e));
      result.rows.push_back(std::move(out));
    }
  } else {
    for_each_matching(tbl, stmt.where.get(), local, [&](const std::vector<Cell>& row) {
      RowEvaluator re(tbl, row);
      std::vector<Cell> out;
      out.reserve(exprs.size());
      for (const Expr* e : exprs) out.push_back(re.eval(*e));
      result.rows.push_back(std::move(out));
      return true;
    });
  }

  if (stmt.order_by) {
    if (stmt.order_by->kind != ExprKind::kColumnRef) {
      throw ParseError("ORDER BY must reference an output column");
    }
    const std::string& target = stmt.order_by->text;
    std::size_t idx = result.column_names.size();
    for (std::size_t i = 0; i < result.column_names.size(); ++i) {
      std::string upper = result.column_names[i];
      for (auto& c : upper) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      if (upper == target) {
        idx = i;
        break;
      }
    }
    if (idx == result.column_names.size()) {
      throw ParseError("ORDER BY column '" + target + "' not in select list");
    }
    bool desc = stmt.order_desc;
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [idx, desc](const std::vector<Cell>& a, const std::vector<Cell>& b) {
                       auto c = compare_cells(a[idx], b[idx]);
                       int v = c.value_or(0);
                       return desc ? v > 0 : v < 0;
                     });
  }

  if (stmt.limit >= 0 && result.rows.size() > static_cast<std::size_t>(stmt.limit)) {
    result.rows.resize(static_cast<std::size_t>(stmt.limit));
  }
  local.rows_materialized = result.rows.size();
  if (stats) *stats = local;
  return result;
}

void Database::query_stream(const std::string& sql,
                            const std::function<void(std::span<const Cell> row)>& fn,
                            QueryStats* stats) const {
  SelectStatement stmt = parse_select(sql);
  if (stmt.group_by) throw LogicError("query_stream does not support GROUP BY");
  if (stmt.order_by) throw LogicError("query_stream does not support ORDER BY");

  std::shared_lock lock(mu_);
  const Table& tbl = table(stmt.table);
  QueryStats local;

  std::vector<std::string> column_names;
  std::vector<const Expr*> exprs;
  std::vector<std::unique_ptr<Expr>> owned;
  expand_select_list(stmt, tbl, exprs, owned, column_names);
  for (const Expr* e : exprs) {
    if (e->contains_aggregate()) {
      throw LogicError("query_stream does not support aggregates");
    }
  }

  std::size_t emitted = 0;
  std::vector<Cell> out(exprs.size());
  for_each_matching(tbl, stmt.where.get(), local, [&](const std::vector<Cell>& row) {
    RowEvaluator re(tbl, row);
    for (std::size_t i = 0; i < exprs.size(); ++i) out[i] = re.eval(*exprs[i]);
    fn(std::span<const Cell>(out.data(), out.size()));
    ++emitted;
    return stmt.limit < 0 || emitted < static_cast<std::size_t>(stmt.limit);
  });
  local.rows_materialized = emitted;
  if (stats) *stats = local;
}

}  // namespace hammer::minisql
