// Embedded typed-column table store standing in for the MySQL layer of the
// paper's architecture. The visualization phase defines its metrics as SQL
// (Table II); this module stores the Performance table and executes the
// SQL subset those metrics need.
//
// Timestamps are stored as INT columns holding microseconds since the run
// epoch; TIMESTAMPDIFF(unit, a, b) operates on them like MySQL's does on
// DATETIME columns.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "util/errors.hpp"

namespace hammer::minisql {

enum class ColumnType { kInt, kDouble, kText };

// Monostate represents SQL NULL.
using Cell = std::variant<std::monostate, std::int64_t, double, std::string>;

std::string cell_to_string(const Cell& cell);
bool cell_is_null(const Cell& cell);

struct Column {
  std::string name;
  ColumnType type;
};

class Table {
 public:
  Table(std::string name, std::vector<Column> columns);

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }

  // Throws NotFoundError for unknown column names.
  std::size_t column_index(const std::string& name) const;

  // Throws LogicError on arity mismatch; validates cell types against the
  // schema (ints are accepted into double columns).
  void insert(std::vector<Cell> row);

  std::size_t row_count() const;
  const std::vector<std::vector<Cell>>& rows() const { return rows_; }
  void truncate();

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::map<std::string, std::size_t> index_by_name_;  // lower-cased name
  std::vector<std::vector<Cell>> rows_;
};

// A named collection of tables with a query entry point. Thread-safety:
// the committer inserts while report code queries, so the database holds a
// coarse mutex (query volume is tiny compared to inserts).
struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<std::vector<Cell>> rows;

  std::string to_csv() const;
};

class Database {
 public:
  Table& create_table(const std::string& name, std::vector<Column> columns);
  Table& table(const std::string& name);          // throws NotFoundError
  const Table& table(const std::string& name) const;
  bool has_table(const std::string& name) const;

  void insert(const std::string& table_name, std::vector<Cell> row);

  // Executes one SELECT statement (see parser.hpp for the grammar).
  ResultSet query(const std::string& sql) const;

  // Serializes inserts/queries from multiple threads.
  std::mutex& mutex() const { return mu_; }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Table>> tables_;  // lower-cased name
};

}  // namespace hammer::minisql
