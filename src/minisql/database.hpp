// Embedded typed-column table store standing in for the MySQL layer of the
// paper's architecture. The visualization phase defines its metrics as SQL
// (Table II); this module stores the Performance table and executes the
// SQL subset those metrics need.
//
// Timestamps are stored as INT columns holding microseconds since the run
// epoch; TIMESTAMPDIFF(unit, a, b) operates on them like MySQL's does on
// DATETIME columns.
//
// Built for cluster-rate ingestion: the write-behind committer appends
// batched multi-row inserts under a writer lock while report queries run
// under shared reader locks; tables may declare hash indexes on key
// columns, and the executor pushes equality predicates down into them so
// point lookups stop scanning whole tables.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "util/errors.hpp"

namespace hammer::minisql {

enum class ColumnType { kInt, kDouble, kText };

// Monostate represents SQL NULL.
using Cell = std::variant<std::monostate, std::int64_t, double, std::string>;

std::string cell_to_string(const Cell& cell);
bool cell_is_null(const Cell& cell);

struct Column {
  std::string name;
  ColumnType type;
};

class Table {
 public:
  Table(std::string name, std::vector<Column> columns);

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }

  // Throws NotFoundError for unknown column names.
  std::size_t column_index(const std::string& name) const;

  // Throws LogicError on arity mismatch; validates cell types against the
  // schema (ints are accepted into double columns).
  void insert(std::vector<Cell> row);

  // Multi-row insert: every row is validated first, then all are appended —
  // a bad row rejects the whole batch instead of leaving half of it behind
  // (the committer's no-partial-flush guarantee).
  void insert_batch(std::vector<std::vector<Cell>> rows);

  // Declares a hash index on an INT or TEXT column (DOUBLE equality is not
  // exact, so indexing it is refused with LogicError). Existing rows are
  // indexed immediately; idempotent for an already-indexed column.
  void create_index(const std::string& column_name);
  bool has_index(std::size_t column) const { return indexes_.count(column) > 0; }
  // Row positions whose `column` equals `key`, nullptr when the index holds
  // no such key. Only valid for indexed columns.
  const std::vector<std::size_t>* index_lookup(std::size_t column, const Cell& key) const;

  std::size_t row_count() const;
  const std::vector<std::vector<Cell>>& rows() const { return rows_; }
  void truncate();

 private:
  void validate(std::vector<Cell>& row) const;
  void index_row(std::size_t position);

  std::string name_;
  std::vector<Column> columns_;
  std::map<std::string, std::size_t> index_by_name_;  // lower-cased name
  std::vector<std::vector<Cell>> rows_;
  // column index -> (canonical cell string -> row positions, insert order)
  std::map<std::size_t, std::unordered_map<std::string, std::vector<std::size_t>>> indexes_;
};

struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<std::vector<Cell>> rows;

  std::string to_csv() const;
};

// Per-query execution diagnostics, filled when the caller passes a stats
// out-param: how much work the executor actually did. The unit tests pin
// the index-pushdown and aggregate-short-circuit behaviour through this.
struct QueryStats {
  std::uint64_t rows_scanned = 0;       // rows evaluated against WHERE
  std::uint64_t rows_materialized = 0;  // output rows copied into a ResultSet
  bool used_index = false;              // equality predicate served by a hash index
  bool aggregate_short_circuit = false; // aggregates folded without buffering rows
};

// A named collection of tables with a query entry point. Thread-safety: the
// write-behind committer batch-inserts while report code queries, so the
// database holds a reader-writer lock — queries share, inserts exclude.
class Database {
 public:
  Table& create_table(const std::string& name, std::vector<Column> columns);
  Table& table(const std::string& name);          // throws NotFoundError
  const Table& table(const std::string& name) const;
  bool has_table(const std::string& name) const;

  void insert(const std::string& table_name, std::vector<Cell> row);

  // One writer-lock acquisition for the whole batch — the committer's
  // amortized flush path.
  void insert_batch(const std::string& table_name, std::vector<std::vector<Cell>> rows);

  // Declares a hash index under the writer lock (see Table::create_index).
  void create_index(const std::string& table_name, const std::string& column_name);

  // Executes one SELECT statement (see parser.hpp for the grammar) under a
  // shared reader lock. `stats`, when non-null, receives the execution
  // diagnostics for this query.
  ResultSet query(const std::string& sql, QueryStats* stats = nullptr) const;

  // Streaming flavour: each output row is handed to `fn` as it is produced
  // — no ResultSet materialization, so report-building scans do not copy
  // whole tables. The span is only valid during the call. Aggregate and
  // ORDER BY statements need the full set anyway and are rejected with
  // LogicError; LIMIT stops the scan early.
  void query_stream(const std::string& sql,
                    const std::function<void(std::span<const Cell> row)>& fn,
                    QueryStats* stats = nullptr) const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Table>> tables_;  // lower-cased name
};

}  // namespace hammer::minisql
