// Terminal-rendered charts: the reproducible stand-in for the paper's
// Grafana dashboards. Line charts plot one or more series over a shared
// x-axis; bar charts render labelled magnitudes (used by the bench
// binaries to print paper-figure shapes directly into logs).
#pragma once

#include <string>
#include <vector>

namespace hammer::report {

struct Series {
  std::string name;
  std::vector<double> values;
};

struct ChartOptions {
  std::size_t width = 72;   // plot columns
  std::size_t height = 16;  // plot rows
  std::string x_label;
  std::string y_label;
};

// Multi-series ASCII line chart; series are resampled onto `width` columns.
std::string line_chart(const std::string& title, const std::vector<Series>& series,
                       const ChartOptions& options = {});

// Horizontal bar chart with value annotations.
std::string bar_chart(const std::string& title,
                      const std::vector<std::pair<std::string, double>>& bars,
                      std::size_t width = 50);

}  // namespace hammer::report
