#include "report/csv.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/errors.hpp"

namespace hammer::report {

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  HAMMER_CHECK(!header_.empty());
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  HAMMER_CHECK_MSG(cells.size() == header_.size(), "CSV row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << escape(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot write CSV to " + path);
  out << to_string();
}

std::string format_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace hammer::report
