#include "report/saturation_grid.hpp"

#include <sstream>

#include "util/errors.hpp"

namespace hammer::report {

void SaturationGrid::add(SaturationCell cell) { cells_.push_back(std::move(cell)); }

double SaturationGrid::knee(const std::string& chain, const std::string& scenario,
                            const std::string& fault) const {
  for (const SaturationCell& cell : cells_) {
    if (cell.chain == chain && cell.scenario == scenario && cell.fault == fault) {
      return cell.result.max_sustainable_tps;
    }
  }
  throw NotFoundError("saturation cell " + chain + "/" + scenario + "/" + fault);
}

CsvWriter SaturationGrid::to_csv() const {
  CsvWriter csv({"chain", "scenario", "fault", "max_sustainable_tps", "achieved_at_knee",
                 "base_p99_ms", "found_knee", "probes"});
  for (const SaturationCell& cell : cells_) {
    csv.add_row({cell.chain, cell.scenario, cell.fault,
                 format_double(cell.result.max_sustainable_tps, 1),
                 format_double(cell.result.achieved_at_knee, 1),
                 format_double(cell.result.base_p99_ms, 2),
                 cell.result.found_knee ? "1" : "0",
                 std::to_string(cell.result.probes.size())});
  }
  return csv;
}

json::Value SaturationGrid::to_json() const {
  json::Array rows;
  rows.reserve(cells_.size());
  for (const SaturationCell& cell : cells_) {
    rows.push_back(json::object({{"chain", cell.chain},
                                 {"scenario", cell.scenario},
                                 {"fault", cell.fault},
                                 {"result", cell.result.to_json()}}));
  }
  return json::object({{"cells", json::Value(std::move(rows))}});
}

std::string SaturationGrid::rendered() const {
  std::ostringstream os;
  os << "== Saturation grid: max sustainable TPS per (chain, scenario, fault) ==\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-10s %-10s %-12s %12s %12s %10s\n", "chain", "scenario",
                "fault", "knee_tps", "at_knee", "base_p99");
  os << line;
  for (const SaturationCell& cell : cells_) {
    std::snprintf(line, sizeof(line), "  %-10s %-10s %-12s %12.1f %12.1f %8.2fms\n",
                  cell.chain.c_str(), cell.scenario.c_str(), cell.fault.c_str(),
                  cell.result.max_sustainable_tps, cell.result.achieved_at_knee,
                  cell.result.base_p99_ms);
    os << line;
  }
  return os.str();
}

}  // namespace hammer::report
