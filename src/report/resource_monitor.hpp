// Resource sampler: the node-exporter/Prometheus stand-in. Samples this
// process's CPU time and resident memory from /proc at a fixed cadence on
// a background thread ("Prometheus pulls the internal metrics of each node
// during or after our evaluation, including CPU, memory...").
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "util/clock.hpp"

namespace hammer::report {

struct ResourceSample {
  std::int64_t at_ms = 0;        // since monitor start
  double cpu_percent = 0.0;      // of one core, since the previous sample
  std::int64_t rss_kb = 0;       // resident set size
};

// While running, the monitor also registers itself as a pull-time source in
// the global telemetry registry, exporting hammer_process_cpu_percent and
// hammer_process_rss_kb from its latest sample — so a /metrics scrape sees
// resource usage without a second /proc reader. stop() (or destruction)
// deregisters the source.
class ResourceMonitor {
 public:
  explicit ResourceMonitor(std::chrono::milliseconds interval = std::chrono::milliseconds(200));
  ~ResourceMonitor();

  void stop();
  std::vector<ResourceSample> samples() const;

  double peak_cpu_percent() const;
  double avg_cpu_percent() const;
  std::int64_t peak_rss_kb() const;

  // Reads the current process stats once (utime+stime jiffies, rss pages).
  static bool read_proc_self(std::uint64_t& cpu_jiffies, std::int64_t& rss_kb);

 private:
  void loop();

  std::chrono::milliseconds interval_;
  std::atomic<bool> stopping_{false};
  mutable std::mutex mu_;
  std::vector<ResourceSample> samples_;
  std::uint64_t source_handle_ = 0;
  std::thread thread_;
};

}  // namespace hammer::report
