// CSV artifact writer: every bench emits its figure/table data as CSV next
// to the ASCII rendering so results can be re-plotted externally.
#pragma once

#include <string>
#include <vector>

namespace hammer::report {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);  // throws LogicError on arity mismatch

  std::string to_string() const;
  void save(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  static std::string escape(const std::string& cell);
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::string format_double(double v, int decimals = 2);

}  // namespace hammer::report
