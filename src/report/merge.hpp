// Fleet report rendering: the coordinator-side view of a distributed run.
//
// The arithmetic of combining per-worker RunResults lives in
// core::merge_run_results (core cannot depend on report); this layer turns
// the merged result plus the per-worker parts into the textual dashboard
// the coordinator prints — a per-worker table and the merged summary —
// and a structured JSON artifact mirroring it.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/metrics.hpp"

namespace hammer::report {

struct FleetReport {
  core::RunResult merged;                 // core::merge_run_results of `workers`
  std::vector<core::RunResult> workers;   // per-worker parts, fleet order
  std::string rendered;                   // per-worker table + merged summary

  // Builds the report from per-worker results (already normalized into one
  // clock domain). `title` heads the rendered dashboard.
  static FleetReport build(std::span<const core::RunResult> worker_results,
                           const std::string& title);

  json::Value to_json() const;
};

}  // namespace hammer::report
