#include "report/run_report.hpp"

#include <algorithm>
#include <sstream>

#include "report/ascii_chart.hpp"
#include "report/csv.hpp"
#include "util/histogram.hpp"

namespace hammer::report {

namespace {

// Renders one stage line of the critical-path section when `stages` carries
// a summary object under `key` (the StageBreakdown / RemoteBreakdown JSON
// shape: {count, mean_ms, p50_ms, p99_ms, max_ms}).
void render_stage_line(std::ostringstream& os, const json::Value& stages,
                       const char* key, const char* label) {
  if (!stages.contains(key) || !stages.at(key).is_object()) return;
  const json::Value& s = stages.at(key);
  os << "  " << label << ": mean=" << format_double(s.get_double("mean_ms", 0.0), 3)
     << "ms p99=" << format_double(s.get_double("p99_ms", 0.0), 3)
     << "ms (n=" << s.get_int("count", 0) << ")\n";
}

}  // namespace

RunReport RunReport::build(const core::MetricsPipeline& metrics, const std::string& title,
                           const ResourceMonitor* resources, const json::Value* stages) {
  RunReport report;
  report.table2_tps = metrics.query_tps();

  // Latency distribution + per-second timeline from the Table II latency
  // statement (status filter applied on top). Streamed: at cluster rate the
  // Performance table is large, and this scan needs one pass, not a copy.
  util::Histogram hist;
  std::int64_t min_start = INT64_MAX;
  std::vector<std::int64_t> starts;
  metrics.database()->query_stream(
      "SELECT start_time, TIMESTAMPDIFF(MILLISECOND, start_time, end_time) AS Latency "
      "FROM Performance WHERE status = '1'",
      [&](std::span<const minisql::Cell> row) {
        std::int64_t start = std::get<std::int64_t>(row[0]);
        std::int64_t latency_ms = std::get<std::int64_t>(row[1]);
        hist.record(latency_ms * 1000);
        starts.push_back(start);
        min_start = std::min(min_start, start);
      });
  if (!starts.empty()) {
    std::int64_t max_start = *std::max_element(starts.begin(), starts.end());
    auto seconds = static_cast<std::size_t>((max_start - min_start) / 1000000 + 1);
    report.tps_timeline.assign(seconds, 0.0);
    for (std::int64_t s : starts) {
      report.tps_timeline[static_cast<std::size_t>((s - min_start) / 1000000)] += 1.0;
    }
  }
  report.mean_latency_ms = hist.mean() / 1000.0;
  report.p99_latency_ms = static_cast<double>(hist.percentile(99)) / 1000.0;

  std::ostringstream os;
  os << "#### Hammer run report: " << title << " ####\n";
  os << "Table II TPS (committed, latency <= 1s): " << report.table2_tps << "\n";
  os << "Committed transactions: " << hist.count() << "\n";
  os << "Latency: mean=" << report.mean_latency_ms << "ms p50="
     << static_cast<double>(hist.percentile(50)) / 1000.0
     << "ms p95=" << static_cast<double>(hist.percentile(95)) / 1000.0
     << "ms p99=" << report.p99_latency_ms << "ms\n";
  if (!report.tps_timeline.empty()) {
    os << line_chart("throughput timeline (tx/s)", {{"tps", report.tps_timeline}},
                     {.width = 60, .height = 10, .x_label = "seconds", .y_label = "tps"});
  }
  if (resources != nullptr) {
    report.has_resources = true;
    report.resource_samples = resources->samples();
    report.peak_cpu_percent = resources->peak_cpu_percent();
    report.avg_cpu_percent = resources->avg_cpu_percent();
    report.peak_rss_kb = resources->peak_rss_kb();
    os << "Resources: cpu peak=" << format_double(report.peak_cpu_percent, 1)
       << "% avg=" << format_double(report.avg_cpu_percent, 1)
       << "% rss peak=" << report.peak_rss_kb << "kB ("
       << report.resource_samples.size() << " samples)\n";
    if (report.resource_samples.size() >= 2) {
      std::vector<double> cpu;
      cpu.reserve(report.resource_samples.size());
      for (const ResourceSample& s : report.resource_samples) cpu.push_back(s.cpu_percent);
      os << line_chart("client cpu (% of one core)", {{"cpu", cpu}},
                       {.width = 60, .height = 8, .x_label = "samples", .y_label = "%"});
    }
  }
  if (stages != nullptr && stages->is_object()) {
    report.stages = *stages;
    os << "Critical path (sampled txs):\n";
    render_stage_line(os, report.stages, "sign", "sign");
    render_stage_line(os, report.stages, "queue", "queue");
    render_stage_line(os, report.stages, "submit", "submit");
    render_stage_line(os, report.stages, "include", "include");
    render_stage_line(os, report.stages, "detect", "detect");
    if (report.stages.contains("remote") && report.stages.at("remote").is_object()) {
      const json::Value& remote = report.stages.at("remote");
      os << "  remote (stitched from " << remote.get_int("stitched_txs", 0)
         << " server-side traces):\n";
      render_stage_line(os, remote, "net_send", "  net_send");
      render_stage_line(os, remote, "server_queue", "  server_queue");
      render_stage_line(os, remote, "execute", "  execute");
      render_stage_line(os, remote, "net_recv", "  net_recv");
    }
  }
  report.rendered = os.str();
  return report;
}

json::Value RunReport::to_json() const {
  json::Object obj;
  obj["table2_tps"] = table2_tps;
  obj["mean_latency_ms"] = mean_latency_ms;
  obj["p99_latency_ms"] = p99_latency_ms;
  json::Array timeline;
  timeline.reserve(tps_timeline.size());
  for (double v : tps_timeline) timeline.push_back(json::Value(v));
  obj["tps_timeline"] = json::Value(std::move(timeline));
  if (has_resources) {
    json::Array series;
    series.reserve(resource_samples.size());
    for (const ResourceSample& s : resource_samples) {
      series.push_back(json::object(
          {{"at_ms", s.at_ms}, {"cpu_percent", s.cpu_percent}, {"rss_kb", s.rss_kb}}));
    }
    obj["resources"] = json::object({{"peak_cpu_percent", peak_cpu_percent},
                                     {"avg_cpu_percent", avg_cpu_percent},
                                     {"peak_rss_kb", peak_rss_kb},
                                     {"samples", json::Value(std::move(series))}});
  }
  if (stages.is_object()) obj["stages"] = stages;
  return json::Value(std::move(obj));
}

std::string RunReport::resources_csv() const {
  CsvWriter csv({"at_ms", "cpu_percent", "rss_kb"});
  for (const ResourceSample& s : resource_samples) {
    csv.add_row({std::to_string(s.at_ms), format_double(s.cpu_percent, 2),
                 std::to_string(s.rss_kb)});
  }
  return csv.to_string();
}

}  // namespace hammer::report
