#include "report/run_report.hpp"

#include <algorithm>
#include <sstream>

#include "report/ascii_chart.hpp"
#include "util/histogram.hpp"

namespace hammer::report {

RunReport RunReport::build(const core::MetricsPipeline& metrics, const std::string& title) {
  RunReport report;
  report.table2_tps = metrics.query_tps();

  // Latency distribution + per-second timeline from the Table II latency
  // statement (status filter applied on top).
  minisql::ResultSet latencies = metrics.database()->query(
      "SELECT start_time, TIMESTAMPDIFF(MILLISECOND, start_time, end_time) AS Latency "
      "FROM Performance WHERE status = '1'");
  util::Histogram hist;
  std::int64_t min_start = INT64_MAX;
  std::vector<std::int64_t> starts;
  starts.reserve(latencies.rows.size());
  for (const auto& row : latencies.rows) {
    std::int64_t start = std::get<std::int64_t>(row[0]);
    std::int64_t latency_ms = std::get<std::int64_t>(row[1]);
    hist.record(latency_ms * 1000);
    starts.push_back(start);
    min_start = std::min(min_start, start);
  }
  if (!starts.empty()) {
    std::int64_t max_start = *std::max_element(starts.begin(), starts.end());
    auto seconds = static_cast<std::size_t>((max_start - min_start) / 1000000 + 1);
    report.tps_timeline.assign(seconds, 0.0);
    for (std::int64_t s : starts) {
      report.tps_timeline[static_cast<std::size_t>((s - min_start) / 1000000)] += 1.0;
    }
  }
  report.mean_latency_ms = hist.mean() / 1000.0;
  report.p99_latency_ms = static_cast<double>(hist.percentile(99)) / 1000.0;

  std::ostringstream os;
  os << "#### Hammer run report: " << title << " ####\n";
  os << "Table II TPS (committed, latency <= 1s): " << report.table2_tps << "\n";
  os << "Committed transactions: " << hist.count() << "\n";
  os << "Latency: mean=" << report.mean_latency_ms << "ms p50="
     << static_cast<double>(hist.percentile(50)) / 1000.0
     << "ms p95=" << static_cast<double>(hist.percentile(95)) / 1000.0
     << "ms p99=" << report.p99_latency_ms << "ms\n";
  if (!report.tps_timeline.empty()) {
    os << line_chart("throughput timeline (tx/s)", {{"tps", report.tps_timeline}},
                     {.width = 60, .height = 10, .x_label = "seconds", .y_label = "tps"});
  }
  report.rendered = os.str();
  return report;
}

}  // namespace hammer::report
