// Tune report (DESIGN.md §15): renders a tune::TuneResult as the trials
// table plus two CSV artifacts:
//
//   to_csv()        — the full record, one row per trial, measured values
//                     included (tps, latency). Saved by the tools as
//                     bench_results/tune_trials.csv.
//   canonical_csv() — the deterministic projection: trial, stage, plan,
//                     seed, txs, feasible, promoted. This is the search's
//                     DECISION record — which plans ran at which budget and
//                     who survived — with the wall-clock magnitudes dropped,
//                     so two searches at one master seed produce
//                     byte-identical documents (the property smoke.tune
//                     asserts; same canonicalization idea as the fleet
//                     smoke's projection).
#pragma once

#include <string>

#include "report/csv.hpp"
#include "tune/search.hpp"

namespace hammer::report {

class TuneReport {
 public:
  TuneReport(tune::SearchOptions options, tune::TuneResult result, double slo_p99_ms);

  const tune::TuneResult& result() const { return result_; }

  CsvWriter to_csv() const;
  CsvWriter canonical_csv() const;

  // Fixed-width trials table + the winning plan's one-line summary.
  std::string rendered() const;

 private:
  tune::SearchOptions options_;
  tune::TuneResult result_;
  double slo_p99_ms_;
};

}  // namespace hammer::report
