// Saturation grid: the capacity-planning report (DESIGN.md §14). Collects
// one core::SaturationResult per (chain, scenario, fault) cell and renders
// the max-sustainable-TPS table — the artifact a deployment sizing decision
// reads off — plus its CSV and JSON forms for external plotting.
#pragma once

#include <string>
#include <vector>

#include "core/saturation.hpp"
#include "report/csv.hpp"

namespace hammer::report {

struct SaturationCell {
  std::string chain;
  std::string scenario;  // workload name ("smallbank", "donothing", ...)
  std::string fault;     // "none", "cpu_burn", "sched_delay", ...
  core::SaturationResult result;
};

class SaturationGrid {
 public:
  void add(SaturationCell cell);

  const std::vector<SaturationCell>& cells() const { return cells_; }

  // max_sustainable_tps of the named cell; throws NotFoundError when the
  // grid has no such cell.
  double knee(const std::string& chain, const std::string& scenario,
              const std::string& fault) const;

  // One row per cell: chain, scenario, fault, max_sustainable_tps,
  // achieved_at_knee, base_p99_ms, found_knee, probes.
  CsvWriter to_csv() const;
  json::Value to_json() const;
  // Fixed-width table for the bench log.
  std::string rendered() const;

 private:
  std::vector<SaturationCell> cells_;
};

}  // namespace hammer::report
