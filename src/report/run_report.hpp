// Run report builder: the visualization-phase endpoint. Pulls the
// Performance table through the Table II SQL statements and renders a
// textual dashboard (TPS, latency distribution, per-second throughput
// timeline) — the reproducible equivalent of the paper's Grafana panels.
#pragma once

#include <memory>
#include <string>

#include "core/metrics.hpp"

namespace hammer::report {

struct RunReport {
  std::int64_t table2_tps = 0;         // Table II TPS statement result
  double mean_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  std::vector<double> tps_timeline;    // committed tx per second-of-run
  std::string rendered;                // full textual dashboard

  static RunReport build(const core::MetricsPipeline& metrics, const std::string& title);
};

}  // namespace hammer::report
