// Run report builder: the visualization-phase endpoint. Pulls the
// Performance table through the Table II SQL statements and renders a
// textual dashboard (TPS, latency distribution, per-second throughput
// timeline) — the reproducible equivalent of the paper's Grafana panels.
#pragma once

#include <memory>
#include <string>

#include "core/metrics.hpp"
#include "report/resource_monitor.hpp"

namespace hammer::report {

struct RunReport {
  std::int64_t table2_tps = 0;         // Table II TPS statement result
  double mean_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  std::vector<double> tps_timeline;    // committed tx per second-of-run
  std::string rendered;                // full textual dashboard

  // Client-process resource usage (the paper's node-exporter panels); only
  // populated when build() is given a monitor.
  bool has_resources = false;
  double peak_cpu_percent = 0.0;
  double avg_cpu_percent = 0.0;
  std::int64_t peak_rss_kb = 0;
  std::vector<ResourceSample> resource_samples;

  // Per-stage lifecycle breakdown (RunResult::stages, including the
  // stitched "remote" critical path when distributed tracing ran); null
  // when build() was not given one.
  json::Value stages;

  // When `resources` is non-null its samples become the report's resources
  // section (peak/avg CPU, peak RSS, sample series). Stop the monitor first
  // so the series covers exactly the run. When `stages` is non-null (a
  // RunResult::stages object) the report gains a critical-path section.
  static RunReport build(const core::MetricsPipeline& metrics, const std::string& title,
                         const ResourceMonitor* resources = nullptr,
                         const json::Value* stages = nullptr);

  // Structured forms of the dashboard for artifacts: JSON mirrors the
  // rendered sections; the CSV is one row per resource sample.
  json::Value to_json() const;
  std::string resources_csv() const;
};

}  // namespace hammer::report
