#include "report/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace hammer::report {

namespace {
constexpr char kMarkers[] = "*o+x#@%&";

std::string format_value(double v) {
  char buf[32];
  if (std::abs(v) >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}
}  // namespace

std::string line_chart(const std::string& title, const std::vector<Series>& series,
                       const ChartOptions& options) {
  std::ostringstream os;
  os << "== " << title << " ==\n";
  if (series.empty()) return os.str() + "(no data)\n";

  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  std::size_t longest = 0;
  for (const Series& s : series) {
    longest = std::max(longest, s.values.size());
    for (double v : s.values) {
      if (first) {
        lo = hi = v;
        first = false;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  }
  if (first || longest == 0) return os.str() + "(no data)\n";
  if (hi == lo) hi = lo + 1.0;

  std::size_t width = std::min(options.width, longest);
  width = std::max<std::size_t>(width, 1);
  std::vector<std::string> grid(options.height, std::string(width, ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& values = series[si].values;
    if (values.empty()) continue;
    char marker = kMarkers[si % (sizeof(kMarkers) - 1)];
    for (std::size_t col = 0; col < width; ++col) {
      // Resample: average the bucket of points mapping to this column.
      std::size_t begin = col * values.size() / width;
      std::size_t end = std::max(begin + 1, (col + 1) * values.size() / width);
      double sum = 0;
      for (std::size_t i = begin; i < end && i < values.size(); ++i) sum += values[i];
      double v = sum / static_cast<double>(end - begin);
      auto row = static_cast<std::size_t>(std::round(
          (v - lo) / (hi - lo) * static_cast<double>(options.height - 1)));
      row = std::min(row, options.height - 1);
      grid[options.height - 1 - row][col] = marker;
    }
  }

  std::string hi_label = format_value(hi);
  std::string lo_label = format_value(lo);
  std::size_t label_width = std::max(hi_label.size(), lo_label.size());
  for (std::size_t r = 0; r < options.height; ++r) {
    std::string label(label_width, ' ');
    if (r == 0) label = std::string(label_width - hi_label.size(), ' ') + hi_label;
    if (r == options.height - 1) label = std::string(label_width - lo_label.size(), ' ') + lo_label;
    os << label << " |" << grid[r] << "\n";
  }
  os << std::string(label_width + 1, ' ') << '+' << std::string(width, '-') << "\n";
  if (!options.x_label.empty()) {
    os << std::string(label_width + 2, ' ') << options.x_label << "\n";
  }
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  " << kMarkers[si % (sizeof(kMarkers) - 1)] << " = " << series[si].name << "\n";
  }
  return os.str();
}

std::string bar_chart(const std::string& title,
                      const std::vector<std::pair<std::string, double>>& bars,
                      std::size_t width) {
  std::ostringstream os;
  os << "== " << title << " ==\n";
  if (bars.empty()) return os.str() + "(no data)\n";
  double hi = 0.0;
  std::size_t label_width = 0;
  for (const auto& [label, value] : bars) {
    hi = std::max(hi, value);
    label_width = std::max(label_width, label.size());
  }
  if (hi <= 0) hi = 1.0;
  for (const auto& [label, value] : bars) {
    auto fill = static_cast<std::size_t>(std::round(value / hi * static_cast<double>(width)));
    os << "  " << label << std::string(label_width - label.size(), ' ') << " |"
       << std::string(fill, '#') << std::string(width - fill, ' ') << "| "
       << format_value(value) << "\n";
  }
  return os.str();
}

}  // namespace hammer::report
