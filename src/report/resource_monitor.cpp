#include "report/resource_monitor.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "telemetry/registry.hpp"

namespace hammer::report {

bool ResourceMonitor::read_proc_self(std::uint64_t& cpu_jiffies, std::int64_t& rss_kb) {
  FILE* f = std::fopen("/proc/self/stat", "r");
  if (!f) return false;
  char buf[1024];
  std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) return false;
  buf[n] = '\0';
  // Field 2 (comm) can contain spaces; skip past the closing paren.
  const char* p = std::strrchr(buf, ')');
  if (!p) return false;
  ++p;
  // Fields from 3 on: state maj flt ... utime(14) stime(15) ... rss(24).
  unsigned long long utime = 0;
  unsigned long long stime = 0;
  long rss_pages = 0;
  int scanned = std::sscanf(p,
                            " %*c %*d %*d %*d %*d %*d %*u %*u %*u %*u %*u %llu %llu "
                            "%*d %*d %*d %*d %*d %*d %*u %*u %ld",
                            &utime, &stime, &rss_pages);
  if (scanned != 3) return false;
  cpu_jiffies = utime + stime;
  rss_kb = rss_pages * (sysconf(_SC_PAGESIZE) / 1024);
  return true;
}

ResourceMonitor::ResourceMonitor(std::chrono::milliseconds interval) : interval_(interval) {
  source_handle_ = telemetry::MetricRegistry::global().add_source(
      [this]() -> std::vector<telemetry::MetricRegistry::SourceSample> {
        ResourceSample latest;
        {
          std::scoped_lock lock(mu_);
          if (samples_.empty()) return {};
          latest = samples_.back();
        }
        return {{"hammer_process_cpu_percent",
                 "Process CPU use over the last monitor interval (% of one core)", "",
                 latest.cpu_percent},
                {"hammer_process_rss_kb", "Process resident set size", "",
                 static_cast<double>(latest.rss_kb)}};
      });
  thread_ = std::thread([this] { loop(); });
}

ResourceMonitor::~ResourceMonitor() { stop(); }

void ResourceMonitor::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  // Deregister before joining so no scrape started after stop() returns can
  // reach into a monitor the caller is about to destroy.
  telemetry::MetricRegistry::global().remove_source(source_handle_);
  if (thread_.joinable()) thread_.join();
}

void ResourceMonitor::loop() {
  const long jiffies_per_second = sysconf(_SC_CLK_TCK);
  auto start = std::chrono::steady_clock::now();
  std::uint64_t last_jiffies = 0;
  std::int64_t rss = 0;
  read_proc_self(last_jiffies, rss);
  auto last_time = start;
  while (!stopping_.load()) {
    std::this_thread::sleep_for(interval_);
    std::uint64_t jiffies = 0;
    if (!read_proc_self(jiffies, rss)) continue;
    auto now = std::chrono::steady_clock::now();
    double wall_s = std::chrono::duration<double>(now - last_time).count();
    double cpu_s = static_cast<double>(jiffies - last_jiffies) /
                   static_cast<double>(jiffies_per_second);
    ResourceSample sample;
    sample.at_ms = std::chrono::duration_cast<std::chrono::milliseconds>(now - start).count();
    sample.cpu_percent = wall_s > 0 ? cpu_s / wall_s * 100.0 : 0.0;
    sample.rss_kb = rss;
    {
      std::scoped_lock lock(mu_);
      samples_.push_back(sample);
    }
    last_jiffies = jiffies;
    last_time = now;
  }
}

std::vector<ResourceSample> ResourceMonitor::samples() const {
  std::scoped_lock lock(mu_);
  return samples_;
}

double ResourceMonitor::avg_cpu_percent() const {
  std::scoped_lock lock(mu_);
  if (samples_.empty()) return 0.0;
  double total = 0;
  for (const auto& s : samples_) total += s.cpu_percent;
  return total / static_cast<double>(samples_.size());
}

double ResourceMonitor::peak_cpu_percent() const {
  std::scoped_lock lock(mu_);
  double peak = 0;
  for (const auto& s : samples_) peak = std::max(peak, s.cpu_percent);
  return peak;
}

std::int64_t ResourceMonitor::peak_rss_kb() const {
  std::scoped_lock lock(mu_);
  std::int64_t peak = 0;
  for (const auto& s : samples_) peak = std::max(peak, s.rss_kb);
  return peak;
}

}  // namespace hammer::report
