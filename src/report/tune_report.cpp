#include "report/tune_report.hpp"

#include <cstdio>
#include <sstream>

namespace hammer::report {

TuneReport::TuneReport(tune::SearchOptions options, tune::TuneResult result, double slo_p99_ms)
    : options_(options), result_(std::move(result)), slo_p99_ms_(slo_p99_ms) {}

CsvWriter TuneReport::to_csv() const {
  CsvWriter csv({"trial", "stage", "plan", "seed", "txs", "committed", "failed", "tps",
                 "p50_ms", "p99_ms", "feasible", "promoted"});
  for (const tune::TrialOutcome& t : result_.trials) {
    csv.add_row({std::to_string(t.index), t.stage, tune::assignment_key(t.assignment),
                 std::to_string(t.seed), std::to_string(t.txs), std::to_string(t.committed),
                 std::to_string(t.failed), format_double(t.tps, 1), format_double(t.p50_ms, 2),
                 format_double(t.p99_ms, 2), t.feasible ? "1" : "0", t.promoted ? "1" : "0"});
  }
  return csv;
}

CsvWriter TuneReport::canonical_csv() const {
  CsvWriter csv({"trial", "stage", "plan", "seed", "txs", "feasible", "promoted"});
  for (const tune::TrialOutcome& t : result_.trials) {
    csv.add_row({std::to_string(t.index), t.stage, tune::assignment_key(t.assignment),
                 std::to_string(t.seed), std::to_string(t.txs), t.feasible ? "1" : "0",
                 t.promoted ? "1" : "0"});
  }
  return csv;
}

std::string TuneReport::rendered() const {
  std::ostringstream os;
  os << "== Tune: " << tune::strategy_name(options_.strategy) << " search, "
     << result_.trials.size() << " trials over " << result_.rungs << " rung(s), "
     << result_.feasible << " feasible (SLO p99 <= " << format_double(slo_p99_ms_, 1)
     << " ms) ==\n";
  char line[256];
  std::snprintf(line, sizeof(line), "  %5s %-7s %-44s %8s %10s %9s %9s %4s %4s\n", "trial",
                "stage", "plan", "txs", "tps", "p50_ms", "p99_ms", "ok", "win");
  os << line;
  for (const tune::TrialOutcome& t : result_.trials) {
    std::snprintf(line, sizeof(line), "  %5zu %-7s %-44s %8zu %10.1f %9.2f %9.2f %4s %4s\n",
                  t.index, t.stage.c_str(), tune::assignment_key(t.assignment).c_str(), t.txs,
                  t.tps, t.p50_ms, t.p99_ms, t.feasible ? "yes" : "no",
                  t.promoted ? "*" : "");
    os << line;
  }
  os << "  best: " << tune::assignment_key(result_.best.assignment) << "  (tps "
     << format_double(result_.best.tps, 1) << ", p99 " << format_double(result_.best.p99_ms, 2)
     << " ms, " << (result_.best.feasible ? "feasible" : "INFEASIBLE") << ")\n";
  return os.str();
}

}  // namespace hammer::report
