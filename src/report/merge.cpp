#include "report/merge.hpp"

#include <sstream>

#include "report/csv.hpp"

namespace hammer::report {

FleetReport FleetReport::build(std::span<const core::RunResult> worker_results,
                               const std::string& title) {
  FleetReport report;
  report.workers.assign(worker_results.begin(), worker_results.end());
  report.merged = core::merge_run_results(worker_results);

  std::ostringstream os;
  os << "=== " << title << " ===\n";
  os << "workers: " << report.workers.size() << "\n";
  os << "worker  submitted  committed  failed  rejected  unmatched  tps\n";
  for (std::size_t i = 0; i < report.workers.size(); ++i) {
    const core::RunResult& w = report.workers[i];
    os << "  w" << i << "    " << w.submitted << "  " << w.committed << "  " << w.failed
       << "  " << w.rejected << "  " << w.unmatched << "  " << format_double(w.tps, 1)
       << "\n";
  }
  const core::RunResult& m = report.merged;
  os << "merged: " << m.summary() << "\n";
  os << "aggregate tps: " << format_double(m.tps, 1) << " over "
     << format_double(m.duration_s, 2) << "s\n";
  if (!m.faults.is_null()) {
    os << "faults: " << m.faults.dump() << "\n";
  }
  report.rendered = os.str();
  return report;
}

json::Value FleetReport::to_json() const {
  json::Array parts;
  parts.reserve(workers.size());
  for (const core::RunResult& w : workers) parts.push_back(w.to_wire_json());
  return json::object({{"merged", merged.to_wire_json()},
                       {"workers", json::Value(std::move(parts))}});
}

}  // namespace hammer::report
