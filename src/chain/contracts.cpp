#include "chain/contracts.hpp"

#include <algorithm>

#include "util/errors.hpp"

namespace hammer::chain {

using hammer::NotFoundError;
using hammer::ParseError;

namespace {
std::string require_string(const json::Value& args, const char* key) {
  if (!args.contains(key)) throw ParseError(std::string("missing argument ") + key);
  return args.at(key).as_string();
}

std::int64_t require_int(const json::Value& args, const char* key) {
  if (!args.contains(key)) throw ParseError(std::string("missing argument ") + key);
  return args.at(key).as_int();
}

ExecResult fail(std::string why) {
  ExecResult r;
  r.ok = false;
  r.error = std::move(why);
  return r;
}
}  // namespace

// ------------------------------------------------------------- SmallBank

ExecResult SmallBankContract::execute(const std::string& op, const json::Value& args,
                                      TxContext& ctx) const {
  auto checking_key = [](const std::string& c) { return "sb:c:" + c; };
  auto savings_key = [](const std::string& c) { return "sb:s:" + c; };

  if (op == "create_account") {
    std::string customer = require_string(args, "customer");
    ctx.put_int(checking_key(customer), require_int(args, "checking"));
    ctx.put_int(savings_key(customer), require_int(args, "savings"));
    return {};
  }
  if (op == "deposit_checking") {  // paper's "deposit"
    std::string customer = require_string(args, "customer");
    std::int64_t amount = require_int(args, "amount");
    if (amount < 0) return fail("negative deposit");
    auto balance = ctx.get_int(checking_key(customer));
    if (!balance) return fail("unknown customer " + customer);
    ctx.put_int(checking_key(customer), *balance + amount);
    return {};
  }
  if (op == "transact_savings") {  // paper's "withdraw" (negative amounts)
    std::string customer = require_string(args, "customer");
    std::int64_t amount = require_int(args, "amount");
    auto balance = ctx.get_int(savings_key(customer));
    if (!balance) return fail("unknown customer " + customer);
    if (*balance + amount < 0) return fail("insufficient savings");
    ctx.put_int(savings_key(customer), *balance + amount);
    return {};
  }
  if (op == "send_payment") {  // paper's "transfer"
    std::string from = require_string(args, "from");
    std::string to = require_string(args, "to");
    std::int64_t amount = require_int(args, "amount");
    if (amount < 0) return fail("negative payment");
    auto from_balance = ctx.get_int(checking_key(from));
    if (!from_balance) return fail("unknown customer " + from);
    auto to_balance = ctx.get_int(checking_key(to));
    if (!to_balance) return fail("unknown customer " + to);
    if (*from_balance < amount) return fail("insufficient checking");
    ctx.put_int(checking_key(from), *from_balance - amount);
    ctx.put_int(checking_key(to), *to_balance + amount);
    return {};
  }
  if (op == "write_check") {
    std::string customer = require_string(args, "customer");
    std::int64_t amount = require_int(args, "amount");
    auto checking = ctx.get_int(checking_key(customer));
    auto savings = ctx.get_int(savings_key(customer));
    if (!checking || !savings) return fail("unknown customer " + customer);
    // OLTP-Bench semantics: overdraft allowed, with a 1-unit penalty.
    std::int64_t penalty = (*checking + *savings < amount) ? 1 : 0;
    ctx.put_int(checking_key(customer), *checking - amount - penalty);
    return {};
  }
  if (op == "amalgamate") {
    std::string from = require_string(args, "from");
    std::string to = require_string(args, "to");
    auto savings = ctx.get_int(savings_key(from));
    auto checking = ctx.get_int(checking_key(from));
    if (!savings || !checking) return fail("unknown customer " + from);
    auto dest = ctx.get_int(checking_key(to));
    if (!dest) return fail("unknown customer " + to);
    ctx.put_int(savings_key(from), 0);
    ctx.put_int(checking_key(from), 0);
    ctx.put_int(checking_key(to), *dest + *savings + *checking);
    return {};
  }
  if (op == "query") {
    std::string customer = require_string(args, "customer");
    auto checking = ctx.get_int(checking_key(customer));
    auto savings = ctx.get_int(savings_key(customer));
    if (!checking || !savings) return fail("unknown customer " + customer);
    ExecResult r;
    r.return_value = json::object({{"checking", *checking}, {"savings", *savings}});
    return r;
  }
  return fail("unknown smallbank op " + op);
}

// -------------------------------------------------------------------- KV

ExecResult KvContract::execute(const std::string& op, const json::Value& args,
                               TxContext& ctx) const {
  if (op == "put") {
    ctx.put("kv:" + require_string(args, "key"), require_string(args, "value"));
    return {};
  }
  if (op == "get") {
    auto v = ctx.get("kv:" + require_string(args, "key"));
    ExecResult r;
    r.return_value = v ? json::Value(*v) : json::Value();
    return r;
  }
  if (op == "read_modify_write") {
    std::string key = "kv:" + require_string(args, "key");
    auto v = ctx.get(key);
    if (!v) return fail("missing key");
    ctx.put(key, *v + require_string(args, "suffix"));
    return {};
  }
  return fail("unknown kv op " + op);
}

// ----------------------------------------------------------------- Token

ExecResult TokenContract::execute(const std::string& op, const json::Value& args,
                                  TxContext& ctx) const {
  auto balance_key = [](const std::string& sym, const std::string& holder) {
    return "tok:" + sym + ":" + holder;
  };
  if (op == "mint") {
    std::string symbol = require_string(args, "symbol");
    std::string to = require_string(args, "to");
    std::int64_t amount = require_int(args, "amount");
    if (amount <= 0) return fail("mint amount must be positive");
    std::string supply_key = "tok:" + symbol + ":supply";
    std::int64_t supply = ctx.get_int(supply_key).value_or(0);
    std::int64_t balance = ctx.get_int(balance_key(symbol, to)).value_or(0);
    ctx.put_int(supply_key, supply + amount);
    ctx.put_int(balance_key(symbol, to), balance + amount);
    return {};
  }
  if (op == "transfer") {
    std::string symbol = require_string(args, "symbol");
    std::string from = require_string(args, "from");
    std::string to = require_string(args, "to");
    std::int64_t amount = require_int(args, "amount");
    if (amount <= 0) return fail("transfer amount must be positive");
    auto from_balance = ctx.get_int(balance_key(symbol, from));
    if (!from_balance || *from_balance < amount) return fail("insufficient balance");
    std::int64_t to_balance = ctx.get_int(balance_key(symbol, to)).value_or(0);
    ctx.put_int(balance_key(symbol, from), *from_balance - amount);
    ctx.put_int(balance_key(symbol, to), to_balance + amount);
    return {};
  }
  if (op == "balance") {
    std::string symbol = require_string(args, "symbol");
    std::string holder = require_string(args, "holder");
    ExecResult r;
    r.return_value = json::Value(ctx.get_int(balance_key(symbol, holder)).value_or(0));
    return r;
  }
  return fail("unknown token op " + op);
}

// ---------------------------------------------------- BLOCKBENCH micro set

ExecResult DoNothingContract::execute(const std::string& op, const json::Value& args,
                                      TxContext& ctx) const {
  // Pure consensus/ordering cost: any op is accepted, nothing is executed.
  (void)op;
  (void)args;
  (void)ctx;
  return {};
}

ExecResult CpuHeavyContract::execute(const std::string& op, const json::Value& args,
                                     TxContext& ctx) const {
  (void)ctx;
  if (op != "sort") return fail("unknown cpuheavy op " + op);
  std::int64_t size = require_int(args, "size");
  if (size <= 0 || size > 1 << 20) return fail("cpuheavy size out of (0, 2^20]");
  // Deterministic splitmix-style fill seeded by the caller, so identical
  // args burn identical work and the checksum is reproducible.
  std::uint64_t seed = static_cast<std::uint64_t>(require_int(args, "seed"));
  std::vector<std::uint32_t> data(static_cast<std::size_t>(size));
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL;
  for (auto& v : data) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    v = static_cast<std::uint32_t>(z ^ (z >> 31));
  }
  std::sort(data.begin(), data.end());
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < data.size(); ++i) checksum += data[i] * (i + 1);
  ExecResult r;
  r.return_value = json::Value(static_cast<std::int64_t>(checksum & 0x7fffffffffffffffULL));
  return r;
}

ExecResult IoHeavyContract::execute(const std::string& op, const json::Value& args,
                                    TxContext& ctx) const {
  std::string key = require_string(args, "key");
  std::int64_t count = require_int(args, "count");
  if (count <= 0 || count > 4096) return fail("ioheavy count out of (0, 4096]");
  auto state_key = [&key](std::int64_t i) { return "io:" + key + ":" + std::to_string(i); };
  if (op == "write" || op == "mixed") {
    for (std::int64_t i = 0; i < count; ++i) {
      ctx.put(state_key(i), key + ":" + std::to_string(i));
    }
  }
  if (op == "scan" || op == "mixed") {
    std::int64_t present = 0;
    for (std::int64_t i = 0; i < count; ++i) {
      if (ctx.get(state_key(i))) ++present;
    }
    ExecResult r;
    r.return_value = json::Value(present);
    return r;
  }
  if (op != "write") return fail("unknown ioheavy op " + op);
  return {};
}

// -------------------------------------------------------------- registry

std::shared_ptr<const ContractRegistry> ContractRegistry::standard() {
  auto registry = std::make_shared<ContractRegistry>();
  registry->add(std::make_unique<SmallBankContract>());
  registry->add(std::make_unique<KvContract>());
  registry->add(std::make_unique<TokenContract>());
  registry->add(std::make_unique<DoNothingContract>());
  registry->add(std::make_unique<CpuHeavyContract>());
  registry->add(std::make_unique<IoHeavyContract>());
  return registry;
}

void ContractRegistry::add(std::unique_ptr<Contract> contract) {
  contracts_.push_back(std::move(contract));
}

const Contract& ContractRegistry::get(const std::string& name) const {
  for (const auto& c : contracts_) {
    if (c->name() == name) return *c;
  }
  throw NotFoundError("contract " + name);
}

bool ContractRegistry::has(const std::string& name) const {
  for (const auto& c : contracts_) {
    if (c->name() == name) return true;
  }
  return false;
}

}  // namespace hammer::chain
