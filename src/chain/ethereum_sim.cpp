#include "chain/ethereum_sim.hpp"

#include <algorithm>

#include "util/errors.hpp"
#include "util/logging.hpp"

namespace hammer::chain {

namespace {
// First 8 bytes of a digest as a big-endian integer (the PoW "quality").
std::uint64_t digest_prefix(const crypto::Digest& d) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[static_cast<std::size_t>(i)];
  return v;
}
}  // namespace

EthereumSim::EthereumSim(ChainConfig config, std::shared_ptr<util::Clock> clock)
    : Blockchain(std::move(config), std::move(clock)) {
  HAMMER_CHECK_MSG(config_.num_shards == 1, "EthereumSim is non-sharded");
  HAMMER_CHECK(config_.hash_rate > 0);
  // Expected hashes per block = hash_rate * interval.
  auto initial = static_cast<std::uint64_t>(config_.hash_rate * config_.block_interval_ms / 1000);
  difficulty_.store(std::max<std::uint64_t>(initial, 16));
}

EthereumSim::~EthereumSim() { stop(); }

void EthereumSim::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  miner_ = std::thread([this] { mine_loop(); });
}

void EthereumSim::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  pools_[0]->close();
  if (miner_.joinable()) miner_.join();
}

void EthereumSim::with_state(const std::function<void(StateStore&)>& fn) { fn(*states_[0]); }

std::optional<std::uint64_t> EthereumSim::mine(const BlockHeader& header) {
  const std::uint64_t difficulty = difficulty_.load(std::memory_order_relaxed);
  const std::uint64_t target = UINT64_MAX / std::max<std::uint64_t>(difficulty, 1);
  // Pre-serialize everything except the nonce.
  BlockHeader h = header;
  h.nonce = 0;
  std::string base = h.to_json().dump();

  constexpr std::uint64_t kBatch = 128;
  std::uint64_t nonce = 0;
  for (;;) {
    for (std::uint64_t i = 0; i < kBatch; ++i, ++nonce) {
      crypto::Digest d =
          crypto::Sha256().update(base).update(std::to_string(nonce)).finish();
      if (digest_prefix(d) < target) return nonce;
    }
    if (!running_.load(std::memory_order_relaxed)) return std::nullopt;
    // Throttle to the simulated hash rate.
    auto batch_time = std::chrono::nanoseconds(
        static_cast<std::int64_t>(1e9 * static_cast<double>(kBatch) /
                                  static_cast<double>(config_.hash_rate)));
    clock_->sleep_for(batch_time);
  }
}

void EthereumSim::mine_loop() {
  util::TimePoint last_sealed = clock_->now();
  while (running_.load()) {
    maybe_stall_block_production();
    std::vector<Transaction> txs = pools_[0]->drain(config_.max_block_txs);

    Block block;
    block.receipts.reserve(txs.size());
    for (const Transaction& tx : txs) {
      auto [rw_set, result] = execute(*states_[0], tx);
      TxReceipt receipt;
      receipt.tx_id = tx.compute_id();
      if (result.ok) {
        states_[0]->apply(rw_set);
        receipt.status = TxStatus::kCommitted;
      } else {
        receipt.status = TxStatus::kInvalid;
        receipt.detail = result.error;
      }
      block.receipts.push_back(std::move(receipt));
    }
    charge_commit_cost(txs.size());

    std::shared_ptr<const Block> parent = ledgers_[0]->latest();
    block.header.height = parent ? parent->header.height + 1 : 1;
    block.header.parent_hash = parent ? parent->header.hash() : std::string(64, '0');
    block.header.merkle_root = Block::compute_merkle_root(block.receipts);
    block.header.producer = "miner-0";

    std::optional<std::uint64_t> nonce = mine(block.header);
    if (!nonce) return;  // stopped
    block.header.nonce = *nonce;
    block.header.timestamp_us = clock_->now_us();
    ledgers_[0]->append(std::move(block));

    // Difficulty retarget toward the configured interval (clamped so one
    // lucky/unlucky block cannot destabilize the cadence).
    util::TimePoint now = clock_->now();
    auto actual_ms = std::chrono::duration_cast<std::chrono::milliseconds>(now - last_sealed).count();
    last_sealed = now;
    double ratio = static_cast<double>(config_.block_interval_ms) /
                   static_cast<double>(std::max<std::int64_t>(actual_ms, 1));
    ratio = std::clamp(ratio, 0.5, 2.0);
    auto current = static_cast<double>(difficulty_.load());
    difficulty_.store(
        std::max<std::uint64_t>(static_cast<std::uint64_t>(current * ratio), 16));
  }
}

}  // namespace hammer::chain
