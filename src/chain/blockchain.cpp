#include "chain/blockchain.hpp"

#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/errors.hpp"

namespace hammer::chain {

namespace {
// SUT-side series (per process, across shards and instances) — the stand-in
// for the node exporters the paper's Prometheus pulls from each peer.
struct ChainMetrics {
  telemetry::Counter& blocks_sealed;
  telemetry::Counter& txs_committed;
  telemetry::Counter& txs_failed;
  telemetry::StageHistogram& block_txs;

  static ChainMetrics& get() {
    static ChainMetrics metrics;
    return metrics;
  }

 private:
  ChainMetrics()
      : blocks_sealed(telemetry::MetricRegistry::global().counter(
            "hammer_chain_blocks_sealed_total", "Blocks appended across all ledgers")),
        txs_committed(telemetry::MetricRegistry::global().counter(
            "hammer_chain_txs_total", "Transactions landed in blocks", "status=\"committed\"")),
        txs_failed(telemetry::MetricRegistry::global().counter(
            "hammer_chain_txs_total", "Transactions landed in blocks", "status=\"failed\"")),
        block_txs(telemetry::MetricRegistry::global().histogram(
            "hammer_chain_block_txs", "Transactions per sealed block", "",
            {1, 10, 50, 100, 250, 500, 1000, 2000, 4000})) {}
};
}  // namespace

ChainConfig ChainConfig::from_json(const json::Value& v) {
  ChainConfig c;
  c.name = v.get_string("name", c.name);
  c.num_shards = static_cast<std::uint32_t>(v.get_int("num_shards", c.num_shards));
  c.pool_capacity =
      static_cast<std::size_t>(v.get_int("pool_capacity", static_cast<std::int64_t>(c.pool_capacity)));
  c.max_block_txs =
      static_cast<std::size_t>(v.get_int("max_block_txs", static_cast<std::int64_t>(c.max_block_txs)));
  c.block_interval_ms = v.get_int("block_interval_ms", c.block_interval_ms);
  c.verify_signatures = v.get_bool("verify_signatures", c.verify_signatures);
  c.commit_cost_us = v.get_int("commit_cost_us", c.commit_cost_us);
  c.ingress_cost_us = v.get_int("ingress_cost_us", c.ingress_cost_us);
  c.seed = static_cast<std::uint64_t>(v.get_int("seed", static_cast<std::int64_t>(c.seed)));
  c.hash_rate = v.get_int("hash_rate", c.hash_rate);
  c.endorsers = static_cast<std::uint32_t>(v.get_int("endorsers", c.endorsers));
  HAMMER_CHECK(c.num_shards >= 1);
  HAMMER_CHECK(c.block_interval_ms > 0);
  return c;
}

json::Value ChainConfig::to_json() const {
  json::Object obj;
  obj["name"] = name;
  obj["num_shards"] = static_cast<std::int64_t>(num_shards);
  obj["pool_capacity"] = pool_capacity;
  obj["max_block_txs"] = max_block_txs;
  obj["block_interval_ms"] = block_interval_ms;
  obj["verify_signatures"] = verify_signatures;
  obj["commit_cost_us"] = commit_cost_us;
  obj["ingress_cost_us"] = ingress_cost_us;
  obj["seed"] = seed;
  obj["hash_rate"] = hash_rate;
  obj["endorsers"] = static_cast<std::int64_t>(endorsers);
  return json::Value(std::move(obj));
}

std::uint64_t Ledger::height() const {
  std::scoped_lock lock(mu_);
  return blocks_.size();
}

std::shared_ptr<const Block> Ledger::at(std::uint64_t height) const {
  std::scoped_lock lock(mu_);
  if (height == 0 || height > blocks_.size()) return nullptr;
  return blocks_[height - 1];  // heights are 1-based
}

std::shared_ptr<const Block> Ledger::latest() const {
  std::scoped_lock lock(mu_);
  return blocks_.empty() ? nullptr : blocks_.back();
}

void Ledger::append(Block block) {
  std::size_t committed_here = 0;
  const std::int64_t sealed_us = block.header.timestamp_us;
  const std::size_t sealed_txs = block.receipts.size();
  std::uint64_t sealed_height = 0;
  {
    std::scoped_lock lock(mu_);
    block.header.height = blocks_.size() + 1;
    sealed_height = block.header.height;
    for (const TxReceipt& r : block.receipts) {
      if (r.status == TxStatus::kCommitted) {
        ++committed_;
        ++committed_here;
      }
      tx_index_.emplace(r.tx_id, TxLocation{block.header.height, r});
    }
    ChainMetrics::get().block_txs.record(static_cast<std::int64_t>(block.receipts.size()));
    ChainMetrics::get().txs_failed.add(block.receipts.size() - committed_here);
    blocks_.push_back(std::make_shared<const Block>(std::move(block)));
  }
  ChainMetrics::get().blocks_sealed.add(1);
  ChainMetrics::get().txs_committed.add(committed_here);
  // Block seals are low-rate, so they are recorded unconditionally as
  // instant events (t0 == t1 == the header stamp) rather than sampled.
  // trace_id 0 keeps them off every per-tx critical path; the timeline
  // export renders them as markers on the sealing thread's track.
  telemetry::Span seal;
  seal.span_id = telemetry::SpanRecorder::global().next_span_id();
  seal.kind = telemetry::SpanKind::kBlockSeal;
  seal.t0_us = sealed_us;
  seal.t1_us = sealed_us;
  seal.thread = telemetry::this_thread_index();
  seal.detail = "h=" + std::to_string(sealed_height) + " txs=" + std::to_string(sealed_txs);
  telemetry::SpanRecorder::global().record(seal);
}

std::optional<Ledger::TxLocation> Ledger::find_tx(const std::string& tx_id) const {
  std::scoped_lock lock(mu_);
  auto it = tx_index_.find(tx_id);
  if (it == tx_index_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t Ledger::committed_tx_count() const {
  std::scoped_lock lock(mu_);
  return committed_;
}

Blockchain::Blockchain(ChainConfig config, std::shared_ptr<util::Clock> clock)
    : config_(std::move(config)),
      clock_(std::move(clock)),
      registry_(ContractRegistry::standard()) {
  HAMMER_CHECK(clock_ != nullptr);
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) {
    pools_.push_back(std::make_unique<TxPool>(config_.pool_capacity));
    states_.push_back(std::make_unique<StateStore>());
    ledgers_.push_back(std::make_unique<Ledger>());
  }
}

std::uint32_t Blockchain::shard_for_sender(const std::string& sender) const {
  if (config_.num_shards == 1) return 0;
  return static_cast<std::uint32_t>(std::hash<std::string>{}(sender) % config_.num_shards);
}

std::string Blockchain::submit(Transaction tx) {
  inject_submit_faults();
  check_signature(tx);
  std::string id = tx.compute_id();
  pools_[shard_for_sender(tx.sender)]->submit(std::move(tx));
  return id;
}

std::string Blockchain::submit_via(std::uint32_t endpoint, std::uint32_t total_endpoints,
                                   Transaction tx) {
  HAMMER_CHECK(total_endpoints >= 1 && endpoint < total_endpoints);
  // Admission work is paid by the receiving endpoint's serving thread —
  // slept, not burned, like commit_cost_us — so each endpoint is an
  // independent admission lane.
  if (config_.ingress_cost_us > 0) {
    clock_->sleep_for(std::chrono::microseconds(config_.ingress_cost_us));
  }
  if (shard_for_sender(tx.sender) % total_endpoints != endpoint) {
    misrouted_.fetch_add(1, std::memory_order_relaxed);
  }
  return submit(std::move(tx));
}

void Blockchain::check_signature(const Transaction& tx) const {
  if (config_.verify_signatures && !tx.verify_signature()) {
    throw RejectedError("invalid transaction signature");
  }
}

void Blockchain::inject_submit_faults() const {
  if (!faults_) return;
  // Scheduler-delay injection: the submitting thread loses its slice for
  // sched_delay_us before the chain even looks at the transaction.
  if (faults_->should(fault::FaultKind::kSchedDelay)) {
    clock_->sleep_for(std::chrono::microseconds(faults_->plan().sched_delay_us));
  }
  if (faults_->should(fault::FaultKind::kSubmitReject)) {
    throw RejectedError("injected transient submit rejection");
  }
}

void Blockchain::maybe_stall_block_production() {
  if (!faults_ || !running_.load()) return;
  if (faults_->should(fault::FaultKind::kBlockStall)) {
    clock_->sleep_for(std::chrono::milliseconds(faults_->plan().block_stall_ms));
  }
}

std::uint64_t Blockchain::height(std::uint32_t shard) const {
  HAMMER_CHECK(shard < config_.num_shards);
  return ledgers_[shard]->height();
}

std::shared_ptr<const Block> Blockchain::block_at(std::uint32_t shard,
                                                  std::uint64_t height) const {
  HAMMER_CHECK(shard < config_.num_shards);
  return ledgers_[shard]->at(height);
}

std::optional<Ledger::TxLocation> Blockchain::tx_receipt(const std::string& tx_id) const {
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) {
    if (auto loc = ledgers_[s]->find_tx(tx_id)) return loc;
  }
  return std::nullopt;
}

json::Value Blockchain::query(std::uint32_t shard, const std::string& contract,
                              const std::string& op, const json::Value& args) const {
  HAMMER_CHECK(shard < config_.num_shards);
  TxContext ctx(*states_[shard]);
  ExecResult result = registry_->get(contract).execute(op, args, ctx);
  if (!result.ok) throw RejectedError(result.error);
  return result.return_value;
}

const StateStore& Blockchain::state(std::uint32_t shard) const {
  HAMMER_CHECK(shard < config_.num_shards);
  return *states_[shard];
}

std::string Blockchain::state_digest(std::uint32_t shard) const {
  return state(shard).state_digest();
}

json::Value Blockchain::stats() const {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t committed = 0;
  std::uint64_t blocks = 0;
  std::size_t pending = 0;
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) {
    submitted += pools_[s]->total_submitted();
    rejected += pools_[s]->total_rejected();
    committed += ledgers_[s]->committed_tx_count();
    blocks += ledgers_[s]->height();
    pending += pools_[s]->size();
  }
  return json::object({{"submitted", submitted},
                       {"rejected", rejected},
                       {"committed", committed},
                       {"blocks", blocks},
                       {"pending", pending},
                       {"misrouted", misrouted_.load()}});
}

std::pair<ReadWriteSet, ExecResult> Blockchain::execute(const StateStore& state,
                                                        const Transaction& tx) const {
  TxContext ctx(state);
  ExecResult result = registry_->get(tx.contract).execute(tx.op, tx.args, ctx);
  return {ctx.take_rw_set(), std::move(result)};
}

void Blockchain::charge_commit_cost(std::size_t tx_count) {
  if (config_.commit_cost_us <= 0 || tx_count == 0) return;
  clock_->sleep_for(std::chrono::microseconds(config_.commit_cost_us) *
                    static_cast<std::int64_t>(tx_count));
}

void bind_chain_rpc(std::shared_ptr<Blockchain> chain, rpc::Dispatcher& dispatcher,
                    std::uint32_t endpoint, std::uint32_t total_endpoints) {
  HAMMER_CHECK(chain != nullptr);
  HAMMER_CHECK(total_endpoints >= 1 && endpoint < total_endpoints);

  dispatcher.register_method("chain.info", [chain](const json::Value&) {
    return json::object({{"name", chain->config().name},
                         {"kind", chain->kind()},
                         {"shards", static_cast<std::int64_t>(chain->num_shards())}});
  });

  dispatcher.register_method(
      "chain.submit", [chain, endpoint, total_endpoints](const json::Value& params) {
        Transaction tx = Transaction::from_json(params.at("tx"));
        // Nested under the handler span when the call is traced; separates
        // admission cost (ingress sleep + signature check + pool insert)
        // from the RPC plumbing around it. No-op for unsampled calls.
        telemetry::ScopedSpan span(telemetry::SpanKind::kChainSubmit);
        std::string id = chain->submit_via(endpoint, total_endpoints, std::move(tx));
        return json::object({{"tx_id", id}});
      });

  dispatcher.register_method("chain.shard_for", [chain](const json::Value& params) {
    return json::object({{"shard", static_cast<std::int64_t>(chain->shard_for_sender(
                                       params.at("sender").as_string()))}});
  });

  dispatcher.register_method(
      "endpoint.info", [chain, endpoint, total_endpoints](const json::Value&) {
        json::Array shards;
        for (std::uint32_t s = 0; s < chain->num_shards(); ++s) {
          if (s % total_endpoints == endpoint) {
            shards.push_back(json::Value(static_cast<std::int64_t>(s)));
          }
        }
        return json::object({{"endpoint", static_cast<std::int64_t>(endpoint)},
                             {"endpoints", static_cast<std::int64_t>(total_endpoints)},
                             {"shards", json::Value(std::move(shards))}});
      });

  dispatcher.register_method("chain.height", [chain](const json::Value& params) {
    auto shard = static_cast<std::uint32_t>(params.get_int("shard", 0));
    return json::object({{"height", chain->height(shard)}});
  });

  dispatcher.register_method("chain.block", [chain](const json::Value& params) {
    auto shard = static_cast<std::uint32_t>(params.get_int("shard", 0));
    auto height = static_cast<std::uint64_t>(params.at("height").as_int());
    std::shared_ptr<const Block> block = chain->block_at(shard, height);
    if (!block) throw NotFoundError("block " + std::to_string(height));
    return block->to_json();
  });

  dispatcher.register_method("chain.query", [chain](const json::Value& params) {
    auto shard = static_cast<std::uint32_t>(params.get_int("shard", 0));
    return chain->query(shard, params.at("contract").as_string(), params.at("op").as_string(),
                        params.contains("args") ? params.at("args") : json::Value());
  });

  dispatcher.register_method("chain.stats",
                             [chain](const json::Value&) { return chain->stats(); });

  dispatcher.register_method("chain.tx_receipt", [chain](const json::Value& params) {
    auto loc = chain->tx_receipt(params.at("tx_id").as_string());
    if (!loc) return json::object({{"found", false}});
    return json::object({{"found", true},
                         {"height", loc->height},
                         {"status", static_cast<int>(loc->receipt.status)}});
  });

  dispatcher.register_method("chain.receipts", [chain](const json::Value& params) {
    // Multi-transaction poll: one RPC answers a whole tick of interactive
    // tracking; entries align with tx_ids by index.
    json::Array out;
    const json::Array& ids = params.at("tx_ids").as_array();
    out.reserve(ids.size());
    for (const json::Value& idv : ids) {
      auto loc = chain->tx_receipt(idv.as_string());
      if (!loc) {
        out.push_back(json::object({{"found", false}}));
      } else {
        out.push_back(json::object({{"found", true},
                                    {"height", loc->height},
                                    {"status", static_cast<int>(loc->receipt.status)}}));
      }
    }
    return json::object({{"receipts", json::Value(std::move(out))}});
  });

  dispatcher.register_method("chain.state_digest", [chain](const json::Value& params) {
    auto shard = static_cast<std::uint32_t>(params.get_int("shard", 0));
    return json::object({{"digest", chain->state_digest(shard)}});
  });
}

}  // namespace hammer::chain
