// Bounded transaction pool. Chains reject submissions when the pool is
// full — this is the overload behaviour behind the paper's Fig. 10 knee
// ("nodes reject some requests to prevent overload").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "chain/types.hpp"

namespace hammer::chain {

class TxPool {
 public:
  explicit TxPool(std::size_t capacity);

  // Throws RejectedError when full.
  void submit(Transaction tx);

  // Removes and returns up to max_count transactions (FIFO); may be empty.
  std::vector<Transaction> drain(std::size_t max_count);

  // Blocks until at least one transaction is pooled or the pool is closed;
  // then drains like drain(). Used by epoch-driven producers.
  std::vector<Transaction> wait_and_drain(std::size_t max_count);

  void close();
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t total_submitted() const;
  std::uint64_t total_rejected() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Transaction> queue_;
  std::size_t capacity_;
  bool closed_ = false;
  std::uint64_t total_submitted_ = 0;
  std::uint64_t total_rejected_ = 0;
};

}  // namespace hammer::chain
