// Blockchain interface shared by the four SUT simulators plus the common
// per-shard machinery (pool, state, ledger) and the generic JSON-RPC
// binding the adapter layer talks to.
//
// The simulators stand in for real deployments (see DESIGN.md §1); latency
// and throughput behaviour is shaped by each chain's consensus structure
// plus a configurable per-transaction commit cost that models the remote
// cluster's execution/disk/network time without burning local CPU.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chain/contracts.hpp"
#include "chain/state.hpp"
#include "chain/txpool.hpp"
#include "chain/types.hpp"
#include "fault/fault.hpp"
#include "rpc/jsonrpc.hpp"
#include "util/clock.hpp"
#include "util/random.hpp"

namespace hammer::chain {

struct ChainConfig {
  std::string name = "chain";       // instance name (RPC "chain.info")
  std::uint32_t num_shards = 1;
  std::size_t pool_capacity = 50000;
  std::size_t max_block_txs = 500;
  std::int64_t block_interval_ms = 100;  // PoW target / batch timeout / epoch
  bool verify_signatures = true;
  // Serial commit-path cost per transaction, modelling the paper's remote
  // 2-vCPU cluster (slept, not burned, so the local core stays free for the
  // evaluation framework under test).
  std::int64_t commit_cost_us = 0;
  // Per-transaction request-admission cost at ONE RPC endpoint (slept on
  // the serving worker thread, like commit_cost_us). A node with a fixed
  // vCPU budget can only admit so many submissions per second; with
  // `"endpoints": n` each endpoint pays this independently, so driving the
  // whole cluster scales admission capacity n-fold while funnelling through
  // one node saturates it — the single-target shape SutCluster removes.
  std::int64_t ingress_cost_us = 0;
  std::uint64_t seed = 42;

  // Ethereum-only: simulated aggregate hash rate (hashes/second).
  std::int64_t hash_rate = 200000;
  // Fabric-only: endorsing peers per transaction.
  std::uint32_t endorsers = 2;

  static ChainConfig from_json(const json::Value& v);
  json::Value to_json() const;
};

// Append-only per-shard chain of sealed blocks.
class Ledger {
 public:
  std::uint64_t height() const;
  std::shared_ptr<const Block> at(std::uint64_t height) const;  // nullptr when absent
  std::shared_ptr<const Block> latest() const;
  void append(Block block);
  std::uint64_t committed_tx_count() const;

  // Per-transaction lookup (Ethereum's getTransactionReceipt equivalent);
  // what interactive-testing frameworks poll per transaction.
  struct TxLocation {
    std::uint64_t height = 0;
    TxReceipt receipt;
  };
  std::optional<TxLocation> find_tx(const std::string& tx_id) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const Block>> blocks_;
  std::unordered_map<std::string, TxLocation> tx_index_;
  std::uint64_t committed_ = 0;
};

class Blockchain {
 public:
  Blockchain(ChainConfig config, std::shared_ptr<util::Clock> clock);
  virtual ~Blockchain() = default;

  Blockchain(const Blockchain&) = delete;
  Blockchain& operator=(const Blockchain&) = delete;

  virtual std::string kind() const = 0;  // "ethereum" / "fabric" / ...
  virtual void start() = 0;
  virtual void stop() = 0;

  const ChainConfig& config() const { return config_; }
  std::uint32_t num_shards() const { return config_.num_shards; }

  // Routes the transaction to its shard pool (hash of the sender); returns
  // the transaction id. Throws RejectedError on overload or bad signature.
  virtual std::string submit(Transaction tx);

  // Endpoint-tagged submission: the RPC surface of endpoint `endpoint` (of
  // `total_endpoints`) received this transaction. Charges the endpoint's
  // ingress cost on the serving thread and counts a misroute when the
  // receiving endpoint does not own the transaction's shard (shard %
  // total_endpoints) — the extra hop a shard-affine client avoids.
  std::string submit_via(std::uint32_t endpoint, std::uint32_t total_endpoints,
                         Transaction tx);

  // Submissions that arrived at a non-owning endpoint (lifetime count).
  std::uint64_t misrouted_submits() const { return misrouted_.load(); }

  // SUT-side fault hooks, consulted on the submit path (kSubmitReject,
  // kEndorseFail in FabricSim) and by the block producers (kBlockStall).
  // Install before start().
  void install_fault_injector(std::shared_ptr<fault::FaultInjector> faults) {
    faults_ = std::move(faults);
  }

  std::uint32_t shard_for_sender(const std::string& sender) const;

  std::uint64_t height(std::uint32_t shard) const;
  std::shared_ptr<const Block> block_at(std::uint32_t shard, std::uint64_t height) const;

  // Searches every shard's tx index; nullopt when not (yet) on chain.
  std::optional<Ledger::TxLocation> tx_receipt(const std::string& tx_id) const;

  // Read-only contract call against the committed state (no transaction).
  json::Value query(std::uint32_t shard, const std::string& contract, const std::string& op,
                    const json::Value& args) const;

  const StateStore& state(std::uint32_t shard) const;
  std::string state_digest(std::uint32_t shard) const;

  // Overridable so sharded simulators can fold in their own counters
  // (MeepoSim adds cross-shard relay totals and per-shard backlog).
  virtual json::Value stats() const;

 protected:
  // Shared execution path: runs the contract, returns the rw-set + result.
  std::pair<ReadWriteSet, ExecResult> execute(const StateStore& state,
                                              const Transaction& tx) const;

  // Sleeps the configured serial commit cost for `tx_count` transactions.
  void charge_commit_cost(std::size_t tx_count);

  void check_signature(const Transaction& tx) const;  // throws RejectedError

  // Throws RejectedError when the plan's kSubmitReject fires — a transient
  // refusal, retryable under RetryPolicy::on_rejected.
  void inject_submit_faults() const;

  // Sleeps one configured stall when the plan's kBlockStall fires; block
  // producer loops call this right before sealing.
  void maybe_stall_block_production();

  ChainConfig config_;
  std::shared_ptr<fault::FaultInjector> faults_;  // set before start()
  std::shared_ptr<util::Clock> clock_;
  std::shared_ptr<const ContractRegistry> registry_;
  std::vector<std::unique_ptr<TxPool>> pools_;     // one per shard
  std::vector<std::unique_ptr<StateStore>> states_;  // one per shard
  std::vector<std::unique_ptr<Ledger>> ledgers_;   // one per shard
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> misrouted_{0};  // endpoint-tagged submits off-shard
};

// Exposes a chain over the generic JSON-RPC surface:
//   chain.info    -> {name, kind, shards}
//   chain.submit  {tx}                 -> {tx_id}
//   chain.height  {shard}              -> {height}
//   chain.block   {shard, height}      -> block JSON (error when absent)
//   chain.query   {shard, contract, op, args} -> contract return value
//   chain.stats                        -> counters
//   chain.receipts {tx_ids: [...]}     -> {receipts: [{found, height, status}...]}
//   chain.shard_for {sender}           -> {shard} (the SUT's own routing fn)
//   endpoint.info                      -> {endpoint, endpoints, shards: [...]}
//
// `endpoint`/`total_endpoints` tag this dispatcher as ONE RPC surface of a
// multi-endpoint deployment: chain.submit runs endpoint-tagged (ingress
// cost + misroute accounting) and endpoint.info reports the shard set this
// surface owns (shard % total_endpoints == endpoint). The defaults describe
// the classic single-endpoint SUT and change nothing.
void bind_chain_rpc(std::shared_ptr<Blockchain> chain, rpc::Dispatcher& dispatcher,
                    std::uint32_t endpoint = 0, std::uint32_t total_endpoints = 1);

}  // namespace hammer::chain
