// Neuchain-like deterministic-ordering chain simulator.
//
// Neuchain (VLDB'22) removes the ordering bottleneck: an epoch server cuts
// epochs on a timer, every block server executes the epoch's transactions
// in a deterministic order, and no PoW/BFT round trips sit on the commit
// path — which is why the paper measures it an order of magnitude faster
// than Fabric. Here: an epoch thread drains the pool every
// block_interval_ms, sorts the batch by transaction id (the deterministic
// order), executes serially and seals the block.
#pragma once

#include <thread>

#include "chain/blockchain.hpp"

namespace hammer::chain {

class NeuchainSim final : public Blockchain {
 public:
  NeuchainSim(ChainConfig config, std::shared_ptr<util::Clock> clock);
  ~NeuchainSim() override;

  std::string kind() const override { return "neuchain"; }
  void start() override;
  void stop() override;

  void with_state(const std::function<void(StateStore&)>& fn);

 private:
  void epoch_loop();

  std::thread epoch_thread_;
};

}  // namespace hammer::chain
