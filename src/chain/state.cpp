#include "chain/state.hpp"

#include <charconv>

#include "crypto/sha256.hpp"
#include "util/errors.hpp"

namespace hammer::chain {

std::optional<VersionedValue> StateStore::get(const std::string& key) const {
  std::scoped_lock lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

void StateStore::put(const std::string& key, std::string value) {
  std::scoped_lock lock(mu_);
  VersionedValue& vv = map_[key];
  vv.value = std::move(value);
  ++vv.version;
}

bool StateStore::validate_and_apply(const ReadWriteSet& rw_set, std::string* conflict_key) {
  std::scoped_lock lock(mu_);
  for (const ReadEntry& read : rw_set.reads) {
    auto it = map_.find(read.key);
    std::uint64_t current = it == map_.end() ? 0 : it->second.version;
    if (current != read.version) {
      if (conflict_key) *conflict_key = read.key;
      return false;
    }
  }
  for (const WriteEntry& write : rw_set.writes) {
    VersionedValue& vv = map_[write.key];
    vv.value = write.value;
    ++vv.version;
  }
  return true;
}

void StateStore::apply(const ReadWriteSet& rw_set) {
  std::scoped_lock lock(mu_);
  for (const WriteEntry& write : rw_set.writes) {
    VersionedValue& vv = map_[write.key];
    vv.value = write.value;
    ++vv.version;
  }
}

std::size_t StateStore::key_count() const {
  std::scoped_lock lock(mu_);
  return map_.size();
}

std::string StateStore::state_digest() const {
  std::scoped_lock lock(mu_);
  crypto::Sha256 h;
  for (const auto& [key, vv] : map_) {  // std::map: deterministic order
    h.update(key).update("=").update(vv.value).update(";");
  }
  return crypto::digest_hex(h.finish());
}

std::optional<std::string> TxContext::get(const std::string& key) {
  auto local = local_writes_.find(key);
  if (local != local_writes_.end()) return local->second;
  auto vv = store_.get(key);
  rw_set_.reads.push_back(ReadEntry{key, vv ? vv->version : 0});
  if (!vv) return std::nullopt;
  return vv->value;
}

void TxContext::put(const std::string& key, std::string value) {
  local_writes_[key] = value;
  // Later writes to the same key overwrite the earlier entry so the write
  // set stays minimal.
  for (WriteEntry& w : rw_set_.writes) {
    if (w.key == key) {
      w.value = std::move(value);
      return;
    }
  }
  rw_set_.writes.push_back(WriteEntry{key, std::move(value)});
}

std::optional<std::int64_t> TxContext::get_int(const std::string& key) {
  auto v = get(key);
  if (!v) return std::nullopt;
  std::int64_t out = 0;
  auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc{} || ptr != v->data() + v->size()) {
    throw hammer::LogicError("state key " + key + " holds non-integer '" + *v + "'");
  }
  return out;
}

void TxContext::put_int(const std::string& key, std::int64_t value) {
  put(key, std::to_string(value));
}

}  // namespace hammer::chain
