// Smart contracts installed on every chain simulator.
//
//  - smallbank: the paper's evaluation workload (§V Workload). Checking and
//    savings balances per customer; the canonical six OLTP-Bench operations.
//  - kv: YCSB-style put/get/readmodifywrite over opaque values.
//  - token: Blockbench-v3-style token exchange (mint/transfer/balance),
//    used by the workload module's token-exchange generator.
//  - donothing / cpuheavy / ioheavy: the BLOCKBENCH micro-benchmark set.
//    donothing isolates consensus+ordering cost (the contract is a no-op),
//    cpuheavy burns execution-layer CPU (iterative quicksort of a
//    pseudo-random array sized by the op), ioheavy stresses the state layer
//    (k sequential writes then reads against distinct keys).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "chain/state.hpp"
#include "chain/types.hpp"

namespace hammer::chain {

struct ExecResult {
  bool ok = true;
  std::string error;           // reason when !ok
  json::Value return_value;    // query results
};

class Contract {
 public:
  virtual ~Contract() = default;
  virtual std::string name() const = 0;
  // Executes op/args against ctx. Application failures (unknown account,
  // insufficient funds) come back as !ok; malformed args throw ParseError.
  virtual ExecResult execute(const std::string& op, const json::Value& args,
                             TxContext& ctx) const = 0;
};

// SmallBank state layout: "sb:c:<customer>" checking, "sb:s:<customer>"
// savings, both integer cents.
class SmallBankContract final : public Contract {
 public:
  std::string name() const override { return "smallbank"; }
  ExecResult execute(const std::string& op, const json::Value& args,
                     TxContext& ctx) const override;
};

class KvContract final : public Contract {
 public:
  std::string name() const override { return "kv"; }
  ExecResult execute(const std::string& op, const json::Value& args,
                     TxContext& ctx) const override;
};

// Token state layout: "tok:<symbol>:<holder>" integer balance and
// "tok:<symbol>:supply" total supply.
class TokenContract final : public Contract {
 public:
  std::string name() const override { return "token"; }
  ExecResult execute(const std::string& op, const json::Value& args,
                     TxContext& ctx) const override;
};

// BLOCKBENCH micro set. DoNothing accepts any op and touches nothing.
class DoNothingContract final : public Contract {
 public:
  std::string name() const override { return "donothing"; }
  ExecResult execute(const std::string& op, const json::Value& args,
                     TxContext& ctx) const override;
};

// CpuHeavy: "sort" quicksorts `size` pseudo-random ints (seeded by the
// args, no state reads) and returns a checksum so the work can't be elided.
class CpuHeavyContract final : public Contract {
 public:
  std::string name() const override { return "cpuheavy"; }
  ExecResult execute(const std::string& op, const json::Value& args,
                     TxContext& ctx) const override;
};

// IoHeavy state layout: "io:<key>:<i>" for i in [0, count). "write" puts
// count values, "scan" reads them back, "mixed" does both.
class IoHeavyContract final : public Contract {
 public:
  std::string name() const override { return "ioheavy"; }
  ExecResult execute(const std::string& op, const json::Value& args,
                     TxContext& ctx) const override;
};

// Immutable registry shared by chain nodes.
class ContractRegistry {
 public:
  // Registers the built-in contracts (smallbank/kv/token + the micro set).
  static std::shared_ptr<const ContractRegistry> standard();

  void add(std::unique_ptr<Contract> contract);
  const Contract& get(const std::string& name) const;  // throws NotFoundError
  bool has(const std::string& name) const;

 private:
  std::vector<std::unique_ptr<Contract>> contracts_;
};

}  // namespace hammer::chain
