// Hyperledger-Fabric-like execute-order-validate chain simulator.
//
// submit() performs the endorsement phase on the caller's thread (mirrors
// the Fabric SDK collecting endorsements): the transaction is simulated
// against current committed state, its read/write set captured, and each
// endorsing peer signs the result. Endorsed transactions flow to an
// ordering service that cuts blocks by size or timeout (BatchSize /
// BatchTimeout). A validator applies each block in order with MVCC
// version checks — concurrently endorsed transactions that touched the
// same keys genuinely fail here, exactly the failure mode the paper's
// usability experiment (Fig. 10) leans on.
#pragma once

#include <condition_variable>
#include <deque>
#include <thread>

#include "chain/blockchain.hpp"

namespace hammer::chain {

class FabricSim final : public Blockchain {
 public:
  FabricSim(ChainConfig config, std::shared_ptr<util::Clock> clock);
  ~FabricSim() override;

  std::string kind() const override { return "fabric"; }
  void start() override;
  void stop() override;

  // Endorse + enqueue for ordering; returns the tx id.
  std::string submit(Transaction tx) override;

  void with_state(const std::function<void(StateStore&)>& fn);

  std::uint64_t mvcc_conflicts() const { return mvcc_conflicts_.load(); }

 private:
  struct EndorsedTx {
    Transaction tx;
    std::string tx_id;
    ReadWriteSet rw_set;
    bool exec_ok = true;
    std::string exec_error;
    std::vector<crypto::Signature> endorsements;
  };

  void orderer_loop();
  void seal_block(std::vector<EndorsedTx> batch);

  // Endorsing peer identities (keys derived from the chain name).
  std::vector<crypto::KeyPair> endorser_keys_;

  std::mutex order_mu_;
  std::condition_variable order_cv_;
  std::deque<EndorsedTx> order_queue_;

  std::atomic<std::uint64_t> mvcc_conflicts_{0};
  std::thread orderer_;
};

}  // namespace hammer::chain
