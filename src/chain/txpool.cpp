#include "chain/txpool.hpp"

#include "util/errors.hpp"

namespace hammer::chain {

TxPool::TxPool(std::size_t capacity) : capacity_(capacity) { HAMMER_CHECK(capacity > 0); }

void TxPool::submit(Transaction tx) {
  {
    std::scoped_lock lock(mu_);
    if (closed_) throw RejectedError("chain is shutting down");
    if (queue_.size() >= capacity_) {
      ++total_rejected_;
      throw RejectedError("transaction pool full (" + std::to_string(capacity_) + ")");
    }
    queue_.push_back(std::move(tx));
    ++total_submitted_;
  }
  cv_.notify_one();
}

std::vector<Transaction> TxPool::drain(std::size_t max_count) {
  std::scoped_lock lock(mu_);
  std::size_t n = std::min(max_count, queue_.size());
  std::vector<Transaction> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return out;
}

std::vector<Transaction> TxPool::wait_and_drain(std::size_t max_count) {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  std::size_t n = std::min(max_count, queue_.size());
  std::vector<Transaction> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return out;
}

void TxPool::close() {
  {
    std::scoped_lock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t TxPool::size() const {
  std::scoped_lock lock(mu_);
  return queue_.size();
}

std::uint64_t TxPool::total_submitted() const {
  std::scoped_lock lock(mu_);
  return total_submitted_;
}

std::uint64_t TxPool::total_rejected() const {
  std::scoped_lock lock(mu_);
  return total_rejected_;
}

}  // namespace hammer::chain
