#include "chain/meepo_sim.hpp"

#include <charconv>

#include "util/errors.hpp"

namespace hammer::chain {

namespace {
std::optional<std::int64_t> parse_int(const std::string& s) {
  std::int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}
}  // namespace

MeepoSim::MeepoSim(ChainConfig config, std::shared_ptr<util::Clock> clock)
    : Blockchain(std::move(config), std::move(clock)) {
  HAMMER_CHECK_MSG(config_.num_shards >= 2, "MeepoSim needs at least 2 shards");
  relay_queues_.resize(config_.num_shards);
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) {
    relay_mu_.push_back(std::make_unique<std::mutex>());
  }
}

MeepoSim::~MeepoSim() { stop(); }

void MeepoSim::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) {
    epoch_threads_.emplace_back([this, s] { epoch_loop(s); });
  }
}

void MeepoSim::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  for (auto& pool : pools_) pool->close();
  for (auto& t : epoch_threads_) {
    if (t.joinable()) t.join();
  }
  epoch_threads_.clear();
}

void MeepoSim::with_state(std::uint32_t shard, const std::function<void(StateStore&)>& fn) {
  HAMMER_CHECK(shard < config_.num_shards);
  fn(*states_[shard]);
}

std::size_t MeepoSim::relay_backlog(std::uint32_t shard) const {
  HAMMER_CHECK(shard < config_.num_shards);
  std::scoped_lock lock(*relay_mu_[shard]);
  return relay_queues_[shard].size();
}

json::Value MeepoSim::stats() const {
  json::Value v = Blockchain::stats();
  json::Array backlog;
  backlog.reserve(config_.num_shards);
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) {
    backlog.push_back(json::Value(static_cast<std::int64_t>(relay_backlog(s))));
  }
  v.as_object()["cross_shard"] = cross_shard_.load();
  v.as_object()["relay_backlog"] = json::Value(std::move(backlog));
  return v;
}

void MeepoSim::enqueue_relay(std::uint32_t shard, RelayCredit credit) {
  std::scoped_lock lock(*relay_mu_[shard]);
  relay_queues_[shard].push_back(std::move(credit));
}

void MeepoSim::apply_relays(std::uint32_t shard) {
  std::deque<RelayCredit> credits;
  {
    std::scoped_lock lock(*relay_mu_[shard]);
    credits.swap(relay_queues_[shard]);
  }
  StateStore& state = *states_[shard];
  for (const RelayCredit& credit : credits) {
    auto current = state.get(credit.key);
    std::int64_t balance = current ? parse_int(current->value).value_or(0) : 0;
    state.put(credit.key, std::to_string(balance + credit.amount));
  }
}

TxReceipt MeepoSim::execute_sharded(std::uint32_t shard, const Transaction& tx) {
  TxReceipt receipt;
  receipt.tx_id = tx.compute_id();

  // Cross-shard transfer detection (smallbank payments / token transfers).
  std::string to;
  if (tx.contract == "smallbank" && tx.op == "send_payment" && tx.args.contains("to")) {
    to = tx.args.at("to").as_string();
  } else if (tx.contract == "token" && tx.op == "transfer" && tx.args.contains("to")) {
    to = tx.args.at("to").as_string();
  }

  if (!to.empty() && shard_for_sender(to) != shard) {
    // Cross-call: debit locally, relay the credit to the owning shard.
    cross_shard_.fetch_add(1, std::memory_order_relaxed);
    std::string from = tx.args.at("from").as_string();
    std::int64_t amount = tx.args.at("amount").as_int();
    std::string from_key;
    std::string to_key;
    if (tx.contract == "smallbank") {
      from_key = "sb:c:" + from;
      to_key = "sb:c:" + to;
    } else {
      std::string symbol = tx.args.at("symbol").as_string();
      from_key = "tok:" + symbol + ":" + from;
      to_key = "tok:" + symbol + ":" + to;
    }
    StateStore& state = *states_[shard];
    auto current = state.get(from_key);
    std::int64_t balance = current ? parse_int(current->value).value_or(0) : 0;
    if (!current) {
      receipt.status = TxStatus::kInvalid;
      receipt.detail = "unknown sender account " + from;
      return receipt;
    }
    if (balance < amount || amount < 0) {
      receipt.status = TxStatus::kInvalid;
      receipt.detail = "insufficient balance for cross-shard transfer";
      return receipt;
    }
    state.put(from_key, std::to_string(balance - amount));
    enqueue_relay(shard_for_sender(to), RelayCredit{to_key, amount, receipt.tx_id});
    receipt.status = TxStatus::kCommitted;
    receipt.detail = "cross-shard";
    return receipt;
  }

  // Intra-shard: ordinary order-execute.
  auto [rw_set, result] = execute(*states_[shard], tx);
  if (result.ok) {
    states_[shard]->apply(rw_set);
    receipt.status = TxStatus::kCommitted;
  } else {
    receipt.status = TxStatus::kInvalid;
    receipt.detail = result.error;
  }
  return receipt;
}

void MeepoSim::epoch_loop(std::uint32_t shard) {
  const auto epoch = std::chrono::milliseconds(config_.block_interval_ms);
  util::TimePoint next_epoch = clock_->now() + epoch;
  while (running_.load()) {
    clock_->sleep_until(next_epoch);
    next_epoch += epoch;

    // Meepo applies cross-epoch relays at epoch start, before local txs.
    apply_relays(shard);

    std::vector<Transaction> txs = pools_[shard]->drain(config_.max_block_txs);
    if (txs.empty()) continue;
    maybe_stall_block_production();

    Block block;
    block.header.shard = shard;
    block.receipts.reserve(txs.size());
    for (const Transaction& tx : txs) block.receipts.push_back(execute_sharded(shard, tx));
    charge_commit_cost(txs.size());

    std::shared_ptr<const Block> parent = ledgers_[shard]->latest();
    block.header.parent_hash = parent ? parent->header.hash() : std::string(64, '0');
    block.header.merkle_root = Block::compute_merkle_root(block.receipts);
    block.header.producer = "shard-" + std::to_string(shard);
    block.header.timestamp_us = clock_->now_us();
    ledgers_[shard]->append(std::move(block));
  }
}

}  // namespace hammer::chain
