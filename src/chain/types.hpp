// Core ledger data types shared by all chain simulators.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "json/json.hpp"

namespace hammer::chain {

// A signed smart-contract invocation. The id is the hex SHA-256 of the
// canonical payload, so every component (client, server, SUT) derives the
// same id independently.
struct Transaction {
  std::string contract;   // target contract, e.g. "smallbank"
  std::string op;         // operation, e.g. "send_payment"
  json::Value args;       // operation arguments (object)
  std::string sender;     // account that signs
  std::string client_id;  // generating client (paper Alg. 1: c_id)
  std::string server_id;  // sending server (paper Alg. 1: s_id)
  std::uint64_t nonce = 0;

  crypto::PublicKey pubkey;
  crypto::Signature signature;

  // Canonical byte string covered by the signature and hashed into the id.
  std::string signing_payload() const;
  std::string compute_id() const;

  void sign_with(const crypto::KeyPair& keys);
  bool verify_signature() const;

  json::Value to_json() const;
  static Transaction from_json(const json::Value& v);
};

enum class TxStatus : std::uint8_t { kCommitted, kConflict, kInvalid };

const char* tx_status_name(TxStatus status);

// Per-transaction outcome recorded in a block.
struct TxReceipt {
  std::string tx_id;
  TxStatus status = TxStatus::kCommitted;
  std::string detail;  // e.g. the conflicting key for MVCC failures

  json::Value to_json() const;
  static TxReceipt from_json(const json::Value& v);
};

struct BlockHeader {
  std::uint64_t height = 0;
  std::uint32_t shard = 0;
  std::string parent_hash;   // hex
  std::string merkle_root;   // hex root over tx ids
  std::int64_t timestamp_us = 0;  // producer clock at sealing time
  std::uint64_t nonce = 0;        // PoW nonce (0 for non-PoW chains)
  std::string producer;           // node id that sealed the block

  std::string hash() const;  // hex SHA-256 of the serialized header
  json::Value to_json() const;
  static BlockHeader from_json(const json::Value& v);
};

struct Block {
  BlockHeader header;
  std::vector<TxReceipt> receipts;

  // Root over the receipt tx ids; recomputed when sealing.
  static std::string compute_merkle_root(const std::vector<TxReceipt>& receipts);

  json::Value to_json() const;
  static Block from_json(const json::Value& v);
};

}  // namespace hammer::chain
