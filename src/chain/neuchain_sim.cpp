#include "chain/neuchain_sim.hpp"

#include <algorithm>

#include "util/errors.hpp"

namespace hammer::chain {

NeuchainSim::NeuchainSim(ChainConfig config, std::shared_ptr<util::Clock> clock)
    : Blockchain(std::move(config), std::move(clock)) {
  HAMMER_CHECK_MSG(config_.num_shards == 1, "NeuchainSim is non-sharded");
}

NeuchainSim::~NeuchainSim() { stop(); }

void NeuchainSim::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  epoch_thread_ = std::thread([this] { epoch_loop(); });
}

void NeuchainSim::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  pools_[0]->close();
  if (epoch_thread_.joinable()) epoch_thread_.join();
}

void NeuchainSim::with_state(const std::function<void(StateStore&)>& fn) { fn(*states_[0]); }

void NeuchainSim::epoch_loop() {
  const auto epoch = std::chrono::milliseconds(config_.block_interval_ms);
  util::TimePoint next_epoch = clock_->now() + epoch;
  while (running_.load()) {
    clock_->sleep_until(next_epoch);
    next_epoch += epoch;

    std::vector<Transaction> txs = pools_[0]->drain(config_.max_block_txs);
    if (txs.empty()) continue;  // Neuchain seals no empty blocks
    maybe_stall_block_production();

    // Deterministic order: every block server sorts the epoch identically.
    std::vector<std::pair<std::string, std::size_t>> order;
    order.reserve(txs.size());
    for (std::size_t i = 0; i < txs.size(); ++i) order.emplace_back(txs[i].compute_id(), i);
    std::sort(order.begin(), order.end());

    Block block;
    block.receipts.reserve(txs.size());
    for (const auto& [id, index] : order) {
      const Transaction& tx = txs[index];
      auto [rw_set, result] = execute(*states_[0], tx);
      TxReceipt receipt;
      receipt.tx_id = id;
      if (result.ok) {
        states_[0]->apply(rw_set);
        receipt.status = TxStatus::kCommitted;
      } else {
        receipt.status = TxStatus::kInvalid;
        receipt.detail = result.error;
      }
      block.receipts.push_back(std::move(receipt));
    }
    charge_commit_cost(txs.size());

    std::shared_ptr<const Block> parent = ledgers_[0]->latest();
    block.header.parent_hash = parent ? parent->header.hash() : std::string(64, '0');
    block.header.merkle_root = Block::compute_merkle_root(block.receipts);
    block.header.producer = "epoch-server";
    block.header.timestamp_us = clock_->now_us();
    ledgers_[0]->append(std::move(block));
  }
}

}  // namespace hammer::chain
