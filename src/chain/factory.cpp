#include "chain/factory.hpp"

#include "chain/ethereum_sim.hpp"
#include "chain/fabric_sim.hpp"
#include "chain/meepo_sim.hpp"
#include "chain/neuchain_sim.hpp"
#include "util/errors.hpp"

namespace hammer::chain {

std::shared_ptr<Blockchain> make_chain(const json::Value& config,
                                       std::shared_ptr<util::Clock> clock) {
  std::string kind = config.get_string("kind", "");
  ChainConfig cc = ChainConfig::from_json(config);
  if (kind == "ethereum") return std::make_shared<EthereumSim>(std::move(cc), std::move(clock));
  if (kind == "fabric") return std::make_shared<FabricSim>(std::move(cc), std::move(clock));
  if (kind == "neuchain") return std::make_shared<NeuchainSim>(std::move(cc), std::move(clock));
  if (kind == "meepo") return std::make_shared<MeepoSim>(std::move(cc), std::move(clock));
  throw ParseError("unknown chain kind '" + kind + "'");
}

std::vector<std::string> genesis_smallbank_accounts(Blockchain& chain, std::size_t per_shard,
                                                    std::int64_t initial_checking,
                                                    std::int64_t initial_savings) {
  // Generate names until every shard holds per_shard accounts; the name ->
  // shard mapping is the same hash the chain uses for routing.
  std::vector<std::string> accounts;
  std::vector<std::size_t> filled(chain.num_shards(), 0);
  std::size_t want_total = per_shard * chain.num_shards();
  std::uint64_t counter = 0;
  while (accounts.size() < want_total) {
    std::string name = "acct" + std::to_string(counter++);
    std::uint32_t shard = chain.shard_for_sender(name);
    if (filled[shard] >= per_shard) continue;
    ++filled[shard];
    accounts.push_back(name);
    // Write directly into the shard's state (genesis allocation).
    auto* eth = dynamic_cast<EthereumSim*>(&chain);
    auto* fab = dynamic_cast<FabricSim*>(&chain);
    auto* neu = dynamic_cast<NeuchainSim*>(&chain);
    auto* meepo = dynamic_cast<MeepoSim*>(&chain);
    auto init = [&](StateStore& state) {
      state.put("sb:c:" + name, std::to_string(initial_checking));
      state.put("sb:s:" + name, std::to_string(initial_savings));
    };
    if (eth) eth->with_state(init);
    else if (fab) fab->with_state(init);
    else if (neu) neu->with_state(init);
    else if (meepo) meepo->with_state(shard, init);
    else throw LogicError("genesis_smallbank_accounts: unknown chain type");
  }
  return accounts;
}

void genesis_kv_keys(Blockchain& chain, const std::vector<std::string>& accounts,
                     const std::string& value) {
  auto* eth = dynamic_cast<EthereumSim*>(&chain);
  auto* fab = dynamic_cast<FabricSim*>(&chain);
  auto* neu = dynamic_cast<NeuchainSim*>(&chain);
  auto* meepo = dynamic_cast<MeepoSim*>(&chain);
  for (const std::string& name : accounts) {
    auto init = [&](StateStore& state) { state.put("kv:" + name, value); };
    if (eth) eth->with_state(init);
    else if (fab) fab->with_state(init);
    else if (neu) neu->with_state(init);
    else if (meepo) meepo->with_state(chain.shard_for_sender(name), init);
    else throw LogicError("genesis_kv_keys: unknown chain type");
  }
}

}  // namespace hammer::chain
