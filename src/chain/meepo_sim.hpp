// Meepo-like sharded consortium chain simulator.
//
// Static sharding (the paper's Meepo setup): accounts hash to shards, each
// shard runs its own epoch-sealed ledger and state. Intra-shard
// transactions execute locally. Cross-shard SmallBank payments / token
// transfers follow Meepo's cross-call/cross-epoch pattern: the source
// shard debits and emits a relay credit that the destination shard applies
// at its next epoch — so a cross-shard transfer costs one extra epoch of
// latency, which is the behaviour a sharding-aware evaluation framework
// must tolerate (and the baselines in Fig. 7 cannot).
#pragma once

#include <deque>
#include <thread>

#include "chain/blockchain.hpp"

namespace hammer::chain {

class MeepoSim final : public Blockchain {
 public:
  MeepoSim(ChainConfig config, std::shared_ptr<util::Clock> clock);
  ~MeepoSim() override;

  std::string kind() const override { return "meepo"; }
  void start() override;
  void stop() override;

  void with_state(std::uint32_t shard, const std::function<void(StateStore&)>& fn);

  std::uint64_t cross_shard_count() const { return cross_shard_.load(); }

  // Relay credits parked at `shard` waiting for its next epoch.
  std::size_t relay_backlog(std::uint32_t shard) const;

  // Base counters plus the sharded view: cross-shard relay total and the
  // per-shard relay backlog (what a sharding-aware monitor watches).
  json::Value stats() const override;

 private:
  struct RelayCredit {
    std::string key;          // destination state key
    std::int64_t amount = 0;  // credit to apply
    std::string origin_tx;    // provenance for auditability
  };

  void epoch_loop(std::uint32_t shard);
  // Executes one transaction on `shard`; returns the receipt. Cross-shard
  // transfers debit locally and enqueue a relay credit.
  TxReceipt execute_sharded(std::uint32_t shard, const Transaction& tx);
  void enqueue_relay(std::uint32_t shard, RelayCredit credit);
  void apply_relays(std::uint32_t shard);

  std::vector<std::unique_ptr<std::mutex>> relay_mu_;
  std::vector<std::deque<RelayCredit>> relay_queues_;
  std::atomic<std::uint64_t> cross_shard_{0};
  std::vector<std::thread> epoch_threads_;
};

}  // namespace hammer::chain
