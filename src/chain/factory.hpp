// Constructs a chain simulator from a JSON deployment description, e.g.
//   {"kind": "fabric", "name": "fabric-1", "block_interval_ms": 100, ...}
#pragma once

#include <memory>

#include "chain/blockchain.hpp"

namespace hammer::chain {

// Known kinds: "ethereum", "fabric", "neuchain", "meepo".
// Throws ParseError on unknown kind.
std::shared_ptr<Blockchain> make_chain(const json::Value& config,
                                       std::shared_ptr<util::Clock> clock);

// Pre-populates SmallBank accounts into the correct shards (genesis-style,
// bypassing transactions) and returns the account names. Equivalent to the
// paper's setup of "5,000 accounts in each shard".
std::vector<std::string> genesis_smallbank_accounts(Blockchain& chain, std::size_t per_shard,
                                                    std::int64_t initial_checking,
                                                    std::int64_t initial_savings);

}  // namespace hammer::chain
