// Constructs a chain simulator from a JSON deployment description, e.g.
//   {"kind": "fabric", "name": "fabric-1", "block_interval_ms": 100, ...}
#pragma once

#include <memory>

#include "chain/blockchain.hpp"

namespace hammer::chain {

// Known kinds: "ethereum", "fabric", "neuchain", "meepo".
// Throws ParseError on unknown kind.
std::shared_ptr<Blockchain> make_chain(const json::Value& config,
                                       std::shared_ptr<util::Clock> clock);

// Pre-populates SmallBank accounts into the correct shards (genesis-style,
// bypassing transactions) and returns the account names. Equivalent to the
// paper's setup of "5,000 accounts in each shard".
std::vector<std::string> genesis_smallbank_accounts(Blockchain& chain, std::size_t per_shard,
                                                    std::int64_t initial_checking,
                                                    std::int64_t initial_savings);

// Pre-populates the YCSB KV contract's keys ("kv:<account>") with an
// initial value, genesis-style like the SmallBank allocation above. Without
// this, a skewed read_modify_write workload starts with a burst of
// missing-key application failures that pollute the abort-rate column.
void genesis_kv_keys(Blockchain& chain, const std::vector<std::string>& accounts,
                     const std::string& value = "genesis");

}  // namespace hammer::chain
