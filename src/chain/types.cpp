#include "chain/types.hpp"

#include "crypto/merkle.hpp"
#include "util/errors.hpp"
#include "util/hex.hpp"

namespace hammer::chain {

std::string Transaction::signing_payload() const {
  // Deterministic: json::Object keys are sorted, so dump() is canonical.
  json::Object obj;
  obj["contract"] = contract;
  obj["op"] = op;
  obj["args"] = args;
  obj["sender"] = sender;
  obj["client_id"] = client_id;
  obj["server_id"] = server_id;
  obj["nonce"] = nonce;
  return json::Value(std::move(obj)).dump();
}

std::string Transaction::compute_id() const {
  return crypto::digest_hex(crypto::sha256(signing_payload()));
}

void Transaction::sign_with(const crypto::KeyPair& keys) {
  pubkey = keys.pub;
  signature = crypto::sign(keys.priv, signing_payload());
}

bool Transaction::verify_signature() const {
  return crypto::verify(pubkey, signing_payload(), signature);
}

json::Value Transaction::to_json() const {
  json::Object obj;
  obj["contract"] = contract;
  obj["op"] = op;
  obj["args"] = args;
  obj["sender"] = sender;
  obj["client_id"] = client_id;
  obj["server_id"] = server_id;
  obj["nonce"] = nonce;
  obj["pubkey"] = pubkey.y.to_hex();
  obj["sig"] = signature.to_hex();
  return json::Value(std::move(obj));
}

Transaction Transaction::from_json(const json::Value& v) {
  Transaction tx;
  tx.contract = v.at("contract").as_string();
  tx.op = v.at("op").as_string();
  tx.args = v.contains("args") ? v.at("args") : json::Value();
  tx.sender = v.get_string("sender", "");
  tx.client_id = v.get_string("client_id", "");
  tx.server_id = v.get_string("server_id", "");
  tx.nonce = static_cast<std::uint64_t>(v.get_int("nonce", 0));
  tx.pubkey.y = crypto::U256::from_hex(v.at("pubkey").as_string());
  tx.signature = crypto::Signature::from_hex(v.at("sig").as_string());
  return tx;
}

const char* tx_status_name(TxStatus status) {
  switch (status) {
    case TxStatus::kCommitted: return "committed";
    case TxStatus::kConflict: return "conflict";
    case TxStatus::kInvalid: return "invalid";
  }
  return "?";
}

json::Value TxReceipt::to_json() const {
  json::Object obj;
  obj["tx_id"] = tx_id;
  obj["status"] = static_cast<int>(status);
  if (!detail.empty()) obj["detail"] = detail;
  return json::Value(std::move(obj));
}

TxReceipt TxReceipt::from_json(const json::Value& v) {
  TxReceipt r;
  r.tx_id = v.at("tx_id").as_string();
  r.status = static_cast<TxStatus>(v.get_int("status", 0));
  r.detail = v.get_string("detail", "");
  return r;
}

std::string BlockHeader::hash() const {
  return crypto::digest_hex(crypto::sha256(to_json().dump()));
}

json::Value BlockHeader::to_json() const {
  json::Object obj;
  obj["height"] = height;
  obj["shard"] = static_cast<std::int64_t>(shard);
  obj["parent"] = parent_hash;
  obj["merkle_root"] = merkle_root;
  obj["timestamp_us"] = timestamp_us;
  obj["nonce"] = nonce;
  obj["producer"] = producer;
  return json::Value(std::move(obj));
}

BlockHeader BlockHeader::from_json(const json::Value& v) {
  BlockHeader h;
  h.height = static_cast<std::uint64_t>(v.at("height").as_int());
  h.shard = static_cast<std::uint32_t>(v.get_int("shard", 0));
  h.parent_hash = v.get_string("parent", "");
  h.merkle_root = v.get_string("merkle_root", "");
  h.timestamp_us = v.get_int("timestamp_us", 0);
  h.nonce = static_cast<std::uint64_t>(v.get_int("nonce", 0));
  h.producer = v.get_string("producer", "");
  return h;
}

std::string Block::compute_merkle_root(const std::vector<TxReceipt>& receipts) {
  std::vector<crypto::Digest> leaves;
  leaves.reserve(receipts.size());
  for (const TxReceipt& r : receipts) leaves.push_back(crypto::sha256(r.tx_id));
  return crypto::digest_hex(crypto::merkle_root(leaves));
}

json::Value Block::to_json() const {
  json::Object obj;
  obj["header"] = header.to_json();
  json::Array rs;
  rs.reserve(receipts.size());
  for (const TxReceipt& r : receipts) rs.push_back(r.to_json());
  obj["receipts"] = json::Value(std::move(rs));
  return json::Value(std::move(obj));
}

Block Block::from_json(const json::Value& v) {
  Block b;
  b.header = BlockHeader::from_json(v.at("header"));
  for (const json::Value& r : v.at("receipts").as_array()) {
    b.receipts.push_back(TxReceipt::from_json(r));
  }
  return b;
}

}  // namespace hammer::chain
