// Versioned world state and read/write-set execution.
//
// All chains share the same execution substrate: a contract runs against a
// TxContext that records which keys it read (and at which version) and
// which it wants to write. Order-execute chains (Ethereum/Neuchain/Meepo
// sims) apply the write set immediately; Fabric's execute-order-validate
// pipeline stores the read/write set at endorsement time and revalidates
// versions at commit (MVCC) — stale reads fail the transaction, which is
// how real Fabric produces the failures the usability experiment observes.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace hammer::chain {

struct VersionedValue {
  std::string value;
  std::uint64_t version = 0;  // bumped on every write
};

struct ReadEntry {
  std::string key;
  std::uint64_t version = 0;  // 0 = key absent at read time
};

struct WriteEntry {
  std::string key;
  std::string value;
};

struct ReadWriteSet {
  std::vector<ReadEntry> reads;
  std::vector<WriteEntry> writes;
};

class StateStore {
 public:
  std::optional<VersionedValue> get(const std::string& key) const;

  void put(const std::string& key, std::string value);

  // MVCC commit: succeeds (applies all writes atomically) iff every read
  // version still matches. On failure returns the first conflicting key.
  // Used by FabricSim validation.
  bool validate_and_apply(const ReadWriteSet& rw_set, std::string* conflict_key = nullptr);

  // Unconditional apply (order-execute chains already hold execution order).
  void apply(const ReadWriteSet& rw_set);

  std::size_t key_count() const;

  // Deterministic digest over the full state; used by the correctness
  // experiment to compare ledgers rebuilt through independent paths.
  std::string state_digest() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, VersionedValue> map_;
};

// Execution-time view handed to contracts. Reads go through the store
// (recording versions) with read-your-own-writes semantics.
class TxContext {
 public:
  explicit TxContext(const StateStore& store) : store_(store) {}

  std::optional<std::string> get(const std::string& key);
  void put(const std::string& key, std::string value);

  // Integer convenience wrappers (SmallBank balances).
  std::optional<std::int64_t> get_int(const std::string& key);
  void put_int(const std::string& key, std::int64_t value);

  ReadWriteSet take_rw_set() { return std::move(rw_set_); }

 private:
  const StateStore& store_;
  ReadWriteSet rw_set_;
  std::map<std::string, std::string> local_writes_;  // read-your-own-writes
};

}  // namespace hammer::chain
