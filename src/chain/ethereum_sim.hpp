// Ethereum-like PoW chain simulator.
//
// One miner solves a real hash puzzle (SHA-256 instead of Ethash) whose
// difficulty retargets toward the configured block interval; hash rate is
// throttled so mining models a remote cluster instead of monopolizing the
// local core. Order-execute semantics: transactions are executed when the
// block is assembled, before sealing.
#pragma once

#include <thread>

#include "chain/blockchain.hpp"

namespace hammer::chain {

class EthereumSim final : public Blockchain {
 public:
  EthereumSim(ChainConfig config, std::shared_ptr<util::Clock> clock);
  ~EthereumSim() override;

  std::string kind() const override { return "ethereum"; }
  void start() override;
  void stop() override;

  // Test/genesis hook: mutate a shard's state before (or between) blocks.
  void with_state(const std::function<void(StateStore&)>& fn);

  std::uint64_t current_difficulty() const { return difficulty_.load(); }

 private:
  void mine_loop();
  // Returns the winning nonce, or nullopt if the chain stopped mid-mine.
  std::optional<std::uint64_t> mine(const BlockHeader& header);

  std::atomic<std::uint64_t> difficulty_{1};
  std::thread miner_;
};

}  // namespace hammer::chain
