#include "chain/fabric_sim.hpp"

#include "telemetry/registry.hpp"
#include "util/errors.hpp"

namespace hammer::chain {

FabricSim::FabricSim(ChainConfig config, std::shared_ptr<util::Clock> clock)
    : Blockchain(std::move(config), std::move(clock)) {
  HAMMER_CHECK_MSG(config_.num_shards == 1, "FabricSim is non-sharded");
  HAMMER_CHECK(config_.endorsers >= 1);
  for (std::uint32_t i = 0; i < config_.endorsers; ++i) {
    endorser_keys_.push_back(
        crypto::derive_keypair(config_.name + ":peer" + std::to_string(i)));
  }
}

FabricSim::~FabricSim() { stop(); }

void FabricSim::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  orderer_ = std::thread([this] { orderer_loop(); });
}

void FabricSim::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  pools_[0]->close();
  order_cv_.notify_all();
  if (orderer_.joinable()) orderer_.join();
}

void FabricSim::with_state(const std::function<void(StateStore&)>& fn) { fn(*states_[0]); }

std::string FabricSim::submit(Transaction tx) {
  if (!running_.load()) throw RejectedError("chain is not running");
  inject_submit_faults();
  check_signature(tx);
  if (faults_ && faults_->should(fault::FaultKind::kEndorseFail)) {
    throw RejectedError("injected endorsement failure: proposal responses do not match");
  }

  EndorsedTx endorsed;
  endorsed.tx_id = tx.compute_id();

  // Endorsement: simulate against committed state, capture the rw-set.
  auto [rw_set, result] = execute(*states_[0], tx);
  endorsed.rw_set = std::move(rw_set);
  endorsed.exec_ok = result.ok;
  endorsed.exec_error = result.error;

  // Each endorsing peer signs the proposal response (digest of tx id +
  // write set) — real signature work, like the peers' ECDSA.
  std::string response = endorsed.tx_id;
  for (const WriteEntry& w : endorsed.rw_set.writes) response += "|" + w.key + "=" + w.value;
  for (const crypto::KeyPair& peer : endorser_keys_) {
    endorsed.endorsements.push_back(crypto::sign(peer.priv, response));
  }
  endorsed.tx = std::move(tx);

  // Hand to the ordering service; its queue shares the pool's capacity
  // bound so overload rejects rather than queueing without limit.
  std::string tx_id = endorsed.tx_id;
  {
    std::scoped_lock lock(order_mu_);
    if (order_queue_.size() >= config_.pool_capacity) {
      throw RejectedError("ordering service backlog full");
    }
    order_queue_.push_back(std::move(endorsed));
  }
  order_cv_.notify_one();
  return tx_id;
}

void FabricSim::orderer_loop() {
  const auto batch_timeout = std::chrono::milliseconds(config_.block_interval_ms);
  while (running_.load()) {
    std::vector<EndorsedTx> batch;
    {
      std::unique_lock lock(order_mu_);
      order_cv_.wait(lock, [&] { return !running_.load() || !order_queue_.empty(); });
      if (!running_.load() && order_queue_.empty()) return;
    }
    // BatchTimeout starts at the first transaction of the batch.
    util::TimePoint deadline = clock_->now() + batch_timeout;
    for (;;) {
      {
        std::scoped_lock lock(order_mu_);
        while (!order_queue_.empty() && batch.size() < config_.max_block_txs) {
          batch.push_back(std::move(order_queue_.front()));
          order_queue_.pop_front();
        }
      }
      if (batch.size() >= config_.max_block_txs) break;
      if (clock_->now() >= deadline) break;
      if (!running_.load()) break;
      clock_->sleep_for(std::chrono::milliseconds(1));
    }
    if (!batch.empty()) {
      maybe_stall_block_production();
      seal_block(std::move(batch));
    }
  }
}

void FabricSim::seal_block(std::vector<EndorsedTx> batch) {
  Block block;
  block.receipts.reserve(batch.size());
  for (const EndorsedTx& endorsed : batch) {
    TxReceipt receipt;
    receipt.tx_id = endorsed.tx_id;
    if (!endorsed.exec_ok) {
      receipt.status = TxStatus::kInvalid;
      receipt.detail = endorsed.exec_error;
    } else {
      std::string conflict_key;
      if (states_[0]->validate_and_apply(endorsed.rw_set, &conflict_key)) {
        receipt.status = TxStatus::kCommitted;
      } else {
        receipt.status = TxStatus::kConflict;
        receipt.detail = "MVCC_READ_CONFLICT on " + conflict_key;
        mvcc_conflicts_.fetch_add(1, std::memory_order_relaxed);
        static telemetry::Counter& conflicts = telemetry::MetricRegistry::global().counter(
            "hammer_chain_mvcc_conflicts_total",
            "Order-validate MVCC read conflicts (Fabric sim)");
        conflicts.add(1);
      }
    }
    block.receipts.push_back(std::move(receipt));
  }
  charge_commit_cost(batch.size());

  std::shared_ptr<const Block> parent = ledgers_[0]->latest();
  block.header.parent_hash = parent ? parent->header.hash() : std::string(64, '0');
  block.header.merkle_root = Block::compute_merkle_root(block.receipts);
  block.header.producer = "orderer-0";
  block.header.timestamp_us = clock_->now_us();
  ledgers_[0]->append(std::move(block));
}

}  // namespace hammer::chain
