#include "kvstore/kvstore.hpp"

#include <charconv>

#include "util/errors.hpp"

namespace hammer::kvstore {

using hammer::RejectedError;

namespace {
template <typename T>
T& as_type(std::variant<std::string, Hash, List>& v, const char* op) {
  if (auto* p = std::get_if<T>(&v)) return *p;
  throw RejectedError(std::string("WRONGTYPE operation ") + op +
                      " against a key holding another kind of value");
}

template <typename T>
const T& as_type(const std::variant<std::string, Hash, List>& v, const char* op) {
  if (const auto* p = std::get_if<T>(&v)) return *p;
  throw RejectedError(std::string("WRONGTYPE operation ") + op +
                      " against a key holding another kind of value");
}
}  // namespace

KvStore::KvStore(std::shared_ptr<util::Clock> clock, Options options)
    : clock_(std::move(clock)), options_(options) {
  HAMMER_CHECK(clock_ != nullptr);
  HAMMER_CHECK(options_.num_shards > 0);
  shards_.reserve(options_.num_shards);
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

KvStore::KvStore(std::shared_ptr<util::Clock> clock, std::size_t num_shards)
    : KvStore(std::move(clock), Options{.num_shards = num_shards}) {}

KvStore::Shard& KvStore::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

const KvStore::Shard& KvStore::shard_for(const std::string& key) const {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool KvStore::expired(const Entry& entry) const {
  return entry.expires_at.has_value() && clock_->now() >= *entry.expires_at;
}

void KvStore::charge_op_cost() const {
  if (options_.op_cost_us > 0) {
    clock_->sleep_for(std::chrono::microseconds(options_.op_cost_us));
  }
}

KvStore::Entry* KvStore::find_live(Shard& shard, const std::string& key) const {
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return nullptr;
  if (expired(it->second)) {
    shard.map.erase(it);
    return nullptr;
  }
  return &it->second;
}

void KvStore::set(const std::string& key, std::string value) {
  Shard& shard = shard_for(key);
  std::scoped_lock lock(shard.mu);
  charge_op_cost();
  shard.map[key] = Entry{std::move(value), std::nullopt, false};
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  auto& shard = const_cast<Shard&>(shard_for(key));
  std::scoped_lock lock(shard.mu);
  Entry* entry = find_live(shard, key);
  if (!entry) return std::nullopt;
  return as_type<std::string>(entry->value, "GET");
}

std::int64_t KvStore::incr_by(const std::string& key, std::int64_t delta) {
  Shard& shard = shard_for(key);
  std::scoped_lock lock(shard.mu);
  charge_op_cost();
  Entry* entry = find_live(shard, key);
  if (!entry) {
    shard.map[key] = Entry{std::to_string(delta), std::nullopt, false};
    return delta;
  }
  auto& str = as_type<std::string>(entry->value, "INCRBY");
  std::int64_t current = 0;
  auto [ptr, ec] = std::from_chars(str.data(), str.data() + str.size(), current);
  if (ec != std::errc{} || ptr != str.data() + str.size()) {
    throw RejectedError("value is not an integer: '" + str + "'");
  }
  current += delta;
  str = std::to_string(current);
  return current;
}

bool KvStore::hset(const std::string& key, const std::string& field, std::string value) {
  Shard& shard = shard_for(key);
  std::scoped_lock lock(shard.mu);
  charge_op_cost();
  Entry* entry = find_live(shard, key);
  if (!entry) {
    Hash h;
    h.emplace(field, std::move(value));
    shard.map[key] = Entry{std::move(h), std::nullopt, false};
    return true;
  }
  auto& h = as_type<Hash>(entry->value, "HSET");
  auto [it, inserted] = h.insert_or_assign(field, std::move(value));
  (void)it;
  return inserted;
}

bool KvStore::mark_dirty_locked(Shard& shard, const std::string& key, Entry& entry) {
  if (entry.dirty) return true;
  if (shard.dirty.size() >= options_.dirty_capacity_per_shard) return false;
  shard.dirty.push_back(key);
  entry.dirty = true;
  dirty_count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

KvStore::HsetManyResult KvStore::hset_many(
    const std::string& key, std::span<const std::pair<std::string, std::string>> fields,
    bool mark_dirty, util::Duration ttl) {
  Shard& shard = shard_for(key);
  std::scoped_lock lock(shard.mu);
  charge_op_cost();
  Entry* entry = find_live(shard, key);
  if (!entry) {
    auto [it, inserted] = shard.map.emplace(key, Entry{Hash{}, std::nullopt, false});
    (void)inserted;
    entry = &it->second;
  }
  auto& h = as_type<Hash>(entry->value, "HSET");
  HsetManyResult result;
  for (const auto& [field, value] : fields) {
    auto [it, inserted] = h.insert_or_assign(field, value);
    (void)it;
    if (inserted) ++result.created;
  }
  if (ttl > util::Duration::zero()) entry->expires_at = clock_->now() + ttl;
  if (mark_dirty) {
    // A record bound for the table store must not age out before the drain
    // (it may have been cached earlier, incomplete, with a pending TTL).
    entry->expires_at.reset();
    result.dirty_marked = mark_dirty_locked(shard, key, *entry);
    result.dirty_dropped = !result.dirty_marked;
  }
  return result;
}

std::optional<std::string> KvStore::hget(const std::string& key, const std::string& field) const {
  auto& shard = const_cast<Shard&>(shard_for(key));
  std::scoped_lock lock(shard.mu);
  Entry* entry = find_live(shard, key);
  if (!entry) return std::nullopt;
  const auto& h = as_type<Hash>(entry->value, "HGET");
  auto it = h.find(field);
  if (it == h.end()) return std::nullopt;
  return it->second;
}

Hash KvStore::hgetall(const std::string& key) const {
  auto& shard = const_cast<Shard&>(shard_for(key));
  std::scoped_lock lock(shard.mu);
  Entry* entry = find_live(shard, key);
  if (!entry) return {};
  return as_type<Hash>(entry->value, "HGETALL");
}

std::size_t KvStore::hlen(const std::string& key) const {
  auto& shard = const_cast<Shard&>(shard_for(key));
  std::scoped_lock lock(shard.mu);
  Entry* entry = find_live(shard, key);
  if (!entry) return 0;
  return as_type<Hash>(entry->value, "HLEN").size();
}

std::size_t KvStore::rpush(const std::string& key, std::string value) {
  Shard& shard = shard_for(key);
  std::scoped_lock lock(shard.mu);
  charge_op_cost();
  Entry* entry = find_live(shard, key);
  if (!entry) {
    List l;
    l.push_back(std::move(value));
    shard.map[key] = Entry{std::move(l), std::nullopt, false};
    return 1;
  }
  auto& l = as_type<List>(entry->value, "RPUSH");
  l.push_back(std::move(value));
  return l.size();
}

List KvStore::lrange(const std::string& key, std::int64_t start, std::int64_t stop) const {
  auto& shard = const_cast<Shard&>(shard_for(key));
  std::scoped_lock lock(shard.mu);
  Entry* entry = find_live(shard, key);
  if (!entry) return {};
  const auto& l = as_type<List>(entry->value, "LRANGE");
  auto n = static_cast<std::int64_t>(l.size());
  if (start < 0) start += n;
  if (stop < 0) stop += n;
  start = std::max<std::int64_t>(start, 0);
  stop = std::min<std::int64_t>(stop, n - 1);
  if (start > stop) return {};
  return List(l.begin() + start, l.begin() + stop + 1);
}

std::size_t KvStore::llen(const std::string& key) const {
  auto& shard = const_cast<Shard&>(shard_for(key));
  std::scoped_lock lock(shard.mu);
  Entry* entry = find_live(shard, key);
  if (!entry) return 0;
  return as_type<List>(entry->value, "LLEN").size();
}

bool KvStore::del(const std::string& key) {
  Shard& shard = shard_for(key);
  std::scoped_lock lock(shard.mu);
  charge_op_cost();
  return shard.map.erase(key) > 0;
}

bool KvStore::exists(const std::string& key) const {
  auto& shard = const_cast<Shard&>(shard_for(key));
  std::scoped_lock lock(shard.mu);
  return find_live(shard, key) != nullptr;
}

bool KvStore::expire(const std::string& key, util::Duration ttl) {
  Shard& shard = shard_for(key);
  std::scoped_lock lock(shard.mu);
  charge_op_cost();
  Entry* entry = find_live(shard, key);
  if (!entry) return false;
  entry->expires_at = clock_->now() + ttl;
  return true;
}

std::size_t KvStore::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mu);
    for (const auto& [key, entry] : shard->map) {
      if (!expired(entry)) ++total;
    }
  }
  return total;
}

bool KvStore::mark_dirty(const std::string& key) {
  Shard& shard = shard_for(key);
  std::scoped_lock lock(shard.mu);
  Entry* entry = find_live(shard, key);
  if (!entry) return false;
  return mark_dirty_locked(shard, key, *entry);
}

std::size_t KvStore::drain_dirty(
    const std::function<void(const std::string& key, const Hash& fields)>& fn) {
  std::size_t drained = 0;
  for (const auto& shard : shards_) {
    std::vector<std::string> batch;
    {
      std::scoped_lock lock(shard->mu);
      if (shard->dirty.empty()) continue;
      charge_op_cost();  // one pipelined HGETALL+DEL round per shard batch
      batch.swap(shard->dirty);
      dirty_count_.fetch_sub(batch.size(), std::memory_order_relaxed);
      for (const std::string& key : batch) {
        Entry* entry = find_live(*shard, key);
        // A dirty key may have been deleted or expired since it was marked;
        // those rows were evicted, not committed, and are simply skipped.
        if (!entry || !entry->dirty) continue;
        if (const auto* h = std::get_if<Hash>(&entry->value)) {
          fn(key, *h);
          ++drained;
        }
        shard->map.erase(key);
      }
    }
  }
  return drained;
}

std::size_t KvStore::evict_expired() {
  std::size_t evicted = 0;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mu);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      if (expired(it->second)) {
        it = shard->map.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  return evicted;
}

std::vector<KvStore::Reply> KvStore::pipeline(const std::vector<Command>& commands) {
  std::vector<Reply> replies;
  replies.reserve(commands.size());
  for (const Command& cmd : commands) {
    Reply reply;
    try {
      switch (cmd.op) {
        case Command::Op::kSet:
          set(cmd.key, cmd.value);
          break;
        case Command::Op::kGet:
          if (auto v = get(cmd.key)) reply.value = *v;
          break;
        case Command::Op::kDel:
          reply.integer = del(cmd.key) ? 1 : 0;
          break;
        case Command::Op::kHset:
          reply.integer = hset(cmd.key, cmd.field, cmd.value) ? 1 : 0;
          break;
        case Command::Op::kHget:
          if (auto v = hget(cmd.key, cmd.field)) reply.value = *v;
          break;
        case Command::Op::kIncrBy:
          reply.integer = incr_by(cmd.key, cmd.delta);
          break;
        case Command::Op::kRpush:
          reply.integer = static_cast<std::int64_t>(rpush(cmd.key, cmd.value));
          break;
      }
    } catch (const std::exception& e) {
      reply.ok = false;
      reply.error = e.what();
    }
    replies.push_back(std::move(reply));
  }
  return replies;
}

void KvStore::scan_hashes(
    const std::function<void(const std::string& key, const Hash& value)>& fn) const {
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mu);
    for (const auto& [key, entry] : shard->map) {
      if (expired(entry)) continue;
      if (const auto* h = std::get_if<Hash>(&entry.value)) fn(key, *h);
    }
  }
}

std::vector<std::string> KvStore::keys() const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mu);
    for (const auto& [key, entry] : shard->map) {
      if (!expired(entry)) out.push_back(key);
    }
  }
  return out;
}

}  // namespace hammer::kvstore
