// In-memory key-value store standing in for the Redis cluster of the
// paper's architecture (Fig. 2): the driver caches transaction vector-list
// state here, and a committer drains it into the minisql table store
// ("MySQL") for the visualization layer.
//
// Supports the Redis subset Hammer needs: strings (GET/SET/INCR), hashes
// (HSET/HGET/HGETALL, multi-field HSET), lists (RPUSH/LRANGE), key expiry,
// pipelined batches and a full scan. Keys are sharded by hash across
// cache-line-padded, independently locked partitions so driver threads and
// the committer do not serialize on one mutex.
//
// Write-behind support: every shard keeps a *dirty set* — keys whose
// latest state has not yet been drained to the table store. Producers mark
// keys dirty (bounded per shard; overflow is reported so the caller can
// count dropped rows), and the committer's drain_dirty() empties each
// shard's set in turn, handing the live hash values to a callback and
// evicting them from the cache.
//
// Scaling model: `op_cost_us` charges a modeled per-command processing
// cost (slept, not burned, while the shard lock is held — the same idiom
// as the SUT's ingress cost in bench_cluster_scaleout) so the cache
// behaves like N single-threaded Redis instances: commands on one shard
// serialize, commands on different shards overlap, and the sharding
// speedup survives a one-core bench box. 0 (the default) disables the
// model entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "util/clock.hpp"

namespace hammer::kvstore {

using Hash = std::map<std::string, std::string>;
using List = std::vector<std::string>;

class KvStore {
 public:
  struct Options {
    std::size_t num_shards = 16;
    // Modeled per-command cost of the cache node, slept while the shard
    // lock is held. 0 disables (no sleep call at all).
    std::int64_t op_cost_us = 0;
    // Bound on each shard's dirty set: marks beyond it are refused and the
    // row is reported dropped (the write-behind backpressure policy).
    std::size_t dirty_capacity_per_shard = 1 << 16;
  };

  KvStore(std::shared_ptr<util::Clock> clock, Options options);
  explicit KvStore(std::shared_ptr<util::Clock> clock, std::size_t num_shards = 16);

  // --- string ops ---
  void set(const std::string& key, std::string value);
  std::optional<std::string> get(const std::string& key) const;
  // Returns the post-increment value; key created at `delta` when absent.
  // Throws RejectedError if the value is not an integer string.
  std::int64_t incr_by(const std::string& key, std::int64_t delta);

  // --- hash ops ---
  // Returns true when the field was newly created.
  bool hset(const std::string& key, const std::string& field, std::string value);
  std::optional<std::string> hget(const std::string& key, const std::string& field) const;
  Hash hgetall(const std::string& key) const;
  std::size_t hlen(const std::string& key) const;

  // Multi-field HSET: one lock acquisition (and one modeled command cost)
  // for the whole record instead of one per field. Optionally marks the key
  // dirty in the same critical section (write-behind producers) and/or arms
  // a TTL (ttl > 0; pending records that never complete age out of the
  // cache instead of leaking).
  struct HsetManyResult {
    std::size_t created = 0;   // newly created fields
    bool dirty_marked = false; // key entered the shard's dirty set
    bool dirty_dropped = false;// dirty set full: the row will never drain
  };
  HsetManyResult hset_many(const std::string& key,
                           std::span<const std::pair<std::string, std::string>> fields,
                           bool mark_dirty = false, util::Duration ttl = util::Duration::zero());

  // --- generic ---
  bool del(const std::string& key);
  bool exists(const std::string& key) const;
  bool expire(const std::string& key, util::Duration ttl);
  std::size_t size() const;  // live (non-expired) key count

  // --- write-behind dirty sets ---
  // Marks the key for the next drain. Returns false (and counts nothing)
  // when the shard's dirty set is at capacity — the caller decides whether
  // that is a dropped row. A key already dirty is a cheap no-op.
  bool mark_dirty(const std::string& key);
  // Total keys currently awaiting drain (relaxed; a live gauge).
  std::size_t dirty_count() const {
    return dirty_count_.load(std::memory_order_relaxed);
  }
  // Empties every shard's dirty set: each dirty key still live in the cache
  // is handed to fn (hash keys expose their fields) and evicted. Shards are
  // drained one at a time — producers on other shards make progress — and
  // each non-empty shard round charges one modeled command cost (the
  // committer's pipelined HGETALL+DEL round trip). Returns keys drained.
  std::size_t drain_dirty(
      const std::function<void(const std::string& key, const Hash& fields)>& fn);

  // --- TTL eviction ---
  // Active sweep erasing every expired entry (lazy expiry still applies on
  // reads). The committer runs this once per flush interval. Returns the
  // number of entries evicted.
  std::size_t evict_expired();

  // --- pipelining ---
  // One round trip applying many commands (paper: "processes ... through a
  // pipeline"). Commands run in order; each reply slot holds the op result
  // or an error message.
  struct Command {
    enum class Op { kSet, kGet, kDel, kHset, kHget, kIncrBy, kRpush } op;
    std::string key;
    std::string field;  // HSET/HGET field
    std::string value;  // SET/HSET/RPUSH payload
    std::int64_t delta = 0;
  };
  struct Reply {
    bool ok = true;
    std::string value;       // GET/HGET result (empty if missing)
    std::int64_t integer = 0;  // INCRBY/RPUSH/DEL result
    std::string error;
  };
  std::vector<Reply> pipeline(const std::vector<Command>& commands);

  // --- list ops ---
  std::size_t rpush(const std::string& key, std::string value);
  // Inclusive range; negative indices count from the tail (Redis semantics).
  List lrange(const std::string& key, std::int64_t start, std::int64_t stop) const;
  std::size_t llen(const std::string& key) const;

  // --- scan ---
  // Invokes fn for every live key (hash keys expose their fields). Used by
  // the legacy synchronous Redis→MySQL commit. Shards are visited one at a
  // time so writers on other shards make progress during a scan.
  void scan_hashes(const std::function<void(const std::string& key, const Hash& value)>& fn) const;
  std::vector<std::string> keys() const;

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    std::variant<std::string, Hash, List> value;
    std::optional<util::TimePoint> expires_at;
    bool dirty = false;  // present in the shard's dirty set
  };
  // Cache-line padded: neighbouring shard locks never share a line, so a
  // contended shard does not slow its neighbours by false sharing.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> map;
    std::vector<std::string> dirty;  // keys awaiting write-behind drain
  };

  Shard& shard_for(const std::string& key);
  const Shard& shard_for(const std::string& key) const;
  bool expired(const Entry& entry) const;
  // Sleeps the modeled per-command cost; call with the shard lock held.
  void charge_op_cost() const;
  // Caller holds shard.mu. Returns false when the dirty set is full.
  bool mark_dirty_locked(Shard& shard, const std::string& key, Entry& entry);

  // Returns nullptr when absent or expired (erases lazily).
  Entry* find_live(Shard& shard, const std::string& key) const;

  std::shared_ptr<util::Clock> clock_;
  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> dirty_count_{0};
};

}  // namespace hammer::kvstore
