// In-memory key-value store standing in for the Redis cluster of the
// paper's architecture (Fig. 2): the driver caches transaction vector-list
// state here, and a committer periodically drains it into the minisql table
// store ("MySQL") for the visualization layer.
//
// Supports the Redis subset Hammer needs: strings (GET/SET/INCR), hashes
// (HSET/HGET/HGETALL), lists (RPUSH/LRANGE), key expiry, pipelined batches
// and a full scan for the periodic flush. Keys are sharded across
// independently locked partitions so driver threads and the committer do
// not serialize on one mutex.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "util/clock.hpp"

namespace hammer::kvstore {

using Hash = std::map<std::string, std::string>;
using List = std::vector<std::string>;

class KvStore {
 public:
  explicit KvStore(std::shared_ptr<util::Clock> clock, std::size_t num_shards = 16);

  // --- string ops ---
  void set(const std::string& key, std::string value);
  std::optional<std::string> get(const std::string& key) const;
  // Returns the post-increment value; key created at `delta` when absent.
  // Throws RejectedError if the value is not an integer string.
  std::int64_t incr_by(const std::string& key, std::int64_t delta);

  // --- hash ops ---
  // Returns true when the field was newly created.
  bool hset(const std::string& key, const std::string& field, std::string value);
  std::optional<std::string> hget(const std::string& key, const std::string& field) const;
  Hash hgetall(const std::string& key) const;
  std::size_t hlen(const std::string& key) const;

  // --- list ops ---
  std::size_t rpush(const std::string& key, std::string value);
  // Inclusive range; negative indices count from the tail (Redis semantics).
  List lrange(const std::string& key, std::int64_t start, std::int64_t stop) const;
  std::size_t llen(const std::string& key) const;

  // --- generic ---
  bool del(const std::string& key);
  bool exists(const std::string& key) const;
  bool expire(const std::string& key, util::Duration ttl);
  std::size_t size() const;  // live (non-expired) key count

  // --- pipelining ---
  // One round trip applying many commands (paper: "processes ... through a
  // pipeline"). Commands run in order; each reply slot holds the op result
  // or an error message.
  struct Command {
    enum class Op { kSet, kGet, kDel, kHset, kHget, kIncrBy, kRpush } op;
    std::string key;
    std::string field;  // HSET/HGET field
    std::string value;  // SET/HSET/RPUSH payload
    std::int64_t delta = 0;
  };
  struct Reply {
    bool ok = true;
    std::string value;       // GET/HGET result (empty if missing)
    std::int64_t integer = 0;  // INCRBY/RPUSH/DEL result
    std::string error;
  };
  std::vector<Reply> pipeline(const std::vector<Command>& commands);

  // --- scan ---
  // Invokes fn for every live key (hash keys expose their fields). Used by
  // the Redis→MySQL committer. Shards are visited one at a time so writers
  // on other shards make progress during a scan.
  void scan_hashes(const std::function<void(const std::string& key, const Hash& value)>& fn) const;
  std::vector<std::string> keys() const;

 private:
  struct Entry {
    std::variant<std::string, Hash, List> value;
    std::optional<util::TimePoint> expires_at;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> map;
  };

  Shard& shard_for(const std::string& key);
  const Shard& shard_for(const std::string& key) const;
  bool expired(const Entry& entry) const;

  // Returns nullptr when absent or expired (erases lazily).
  Entry* find_live(Shard& shard, const std::string& key) const;

  std::shared_ptr<util::Clock> clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hammer::kvstore
