// Fixed-size pool of channels to ONE endpoint, handed out round-robin.
//
// A TcpChannel multiplexes any number of in-flight calls over its single
// connection, so M driver workers do not need M sockets: a pool of P
// channels (P <= M) spreads socket/reader work across a few connections
// while every worker still submits without head-of-line blocking. This is
// the per-target channel reuse the SutCluster builds on — N endpoints x P
// channels instead of N x M.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rpc/client_config.hpp"
#include "rpc/jsonrpc.hpp"

namespace hammer::rpc {

class ChannelPool {
 public:
  using Factory = std::function<std::shared_ptr<Channel>()>;

  // Eagerly opens `size` channels via `factory` (size >= 1).
  ChannelPool(const Factory& factory, std::size_t size);

  // Convenience: a pool of TcpChannels to one endpoint, each constructed
  // from (and negotiating per) the same ClientConfig.
  ChannelPool(const std::string& host, std::uint16_t port, const ClientConfig& config,
              std::size_t size);

  // Round-robin handout; thread-safe. Channels are shared, never exclusive:
  // two callers may hold the same channel concurrently (they multiplex).
  std::shared_ptr<Channel> next();

  std::size_t size() const { return channels_.size(); }
  const std::shared_ptr<Channel>& at(std::size_t i) const { return channels_.at(i); }

 private:
  std::vector<std::shared_ptr<Channel>> channels_;
  std::atomic<std::size_t> cursor_{0};
};

}  // namespace hammer::rpc
