#include "rpc/channel_pool.hpp"

#include "rpc/tcp.hpp"
#include "util/errors.hpp"

namespace hammer::rpc {

ChannelPool::ChannelPool(const std::string& host, std::uint16_t port,
                         const ClientConfig& config, std::size_t size)
    : ChannelPool([&] { return std::make_shared<TcpChannel>(host, port, config); }, size) {}

ChannelPool::ChannelPool(const Factory& factory, std::size_t size) {
  HAMMER_CHECK(factory != nullptr);
  HAMMER_CHECK(size >= 1);
  channels_.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    std::shared_ptr<Channel> channel = factory();
    HAMMER_CHECK(channel != nullptr);
    channels_.push_back(std::move(channel));
  }
}

std::shared_ptr<Channel> ChannelPool::next() {
  return channels_[cursor_.fetch_add(1, std::memory_order_relaxed) % channels_.size()];
}

}  // namespace hammer::rpc
