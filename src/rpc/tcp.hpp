// TCP transport for JSON-RPC: 4-byte big-endian length prefix followed by
// the UTF-8 request/response document.
//
// The benches default to the in-process channel (this machine is a single
// box), but the TCP path is what a real multi-node deployment would use and
// the integration tests exercise it over loopback.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rpc/jsonrpc.hpp"

namespace hammer::rpc {

// Serves one Dispatcher on a loopback port; one thread per connection
// (connection counts in an evaluation run are small and long-lived).
class TcpServer {
 public:
  // port = 0 picks a free port; see port() after construction.
  TcpServer(std::shared_ptr<const Dispatcher> dispatcher, std::uint16_t port = 0);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  std::uint16_t port() const { return port_; }
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);

  std::shared_ptr<const Dispatcher> dispatcher_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
};

// Blocking client channel. One outstanding call at a time per channel;
// drivers that need concurrency open one channel per worker.
class TcpChannel final : public Channel {
 public:
  TcpChannel(const std::string& host, std::uint16_t port,
             std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));
  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  json::Value call(const std::string& method, json::Value params) override;

 private:
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::mutex mu_;
};

}  // namespace hammer::rpc
