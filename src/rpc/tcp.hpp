// TCP transport: 4-byte big-endian length prefix followed by either a raw
// JSON-RPC document (the legacy/fallback codec) or a versioned wire frame
// (magic + version + kind; see rpc/wire/codec.hpp and DESIGN.md §11).
//
// Server: a single epoll event loop owns every connection socket and does
// the framing over pooled arena buffers; complete request frames are sliced
// out zero-copy (wire::Slice shares the buffer, no substr) and fan out to a
// small worker pool that runs the dispatcher and writes response frames
// back with one scatter-gather writev (per-connection write lock, so frames
// never interleave). Hello/control frames are answered by the event thread
// itself. The server speaks whichever codec each request frame arrived in,
// so one server carries JSON and binary clients side by side.
//
// Client: TcpChannel multiplexes one connection. At connect time the
// channel negotiates the wire codec (ClientConfig::codec — binary
// preferred, JSON fallback when the server does not answer the hello).
// Writers frame requests back-to-back without waiting (call_async /
// call_batch); a dedicated reader thread parses response frames and
// completes the matching promise by request id, so responses may arrive in
// any order. Blocking call() is just call_async().get() with the per-call
// timeout applied.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "fault/resource.hpp"
#include "rpc/client_config.hpp"
#include "rpc/jsonrpc.hpp"
#include "rpc/wire/arena.hpp"
#include "rpc/wire/codec.hpp"
#include "util/mpmc_queue.hpp"

namespace hammer::rpc {

// Frames above this are a protocol violation. The sender fails the call
// with FrameTooLargeError before touching the socket; a receiver announces
// wire::kErrFrameTooLarge and drops the connection instead of attempting
// the allocation. Both ends count hammer_wire_oversize_frames_total.
inline constexpr std::size_t kMaxFrameBytes = 64u * 1024 * 1024;

// Serves one Dispatcher on a loopback port through an epoll event loop
// plus a fixed worker pool.
class TcpServer {
 public:
  // port = 0 picks a free port; see port() after construction.
  // worker_threads = 0 sizes the pool from the hardware (clamped to [2,8]).
  explicit TcpServer(std::shared_ptr<const Dispatcher> dispatcher, std::uint16_t port = 0,
                     std::size_t worker_threads = 0);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  std::uint16_t port() const { return port_; }
  std::size_t worker_count() const { return workers_.size(); }
  void stop();

  // Server-side fault hooks (kDropResponse: the request executes but the
  // reply never leaves; kSlowLoris: the reply stalls slow_loris_us on a
  // worker thread). Install before clients generate traffic.
  void install_fault_injector(std::shared_ptr<fault::FaultInjector> faults);

  // Ingress throttling (resource fault): workers block on the throttle's
  // token bucket before dispatching each request, so this target's
  // admission rate collapses to the throttle's rps. Null uninstalls.
  void install_ingress_throttle(std::shared_ptr<fault::IngressThrottle> throttle);

 private:
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();  // closes fd once the last reference drops

    const int fd;
    // Read side, event thread only: an arena buffer being filled, and the
    // parse cursor into it. The buffer is retired (tail copied to a fresh
    // one) as soon as a frame is sliced out of it, so outstanding Slices
    // are never invalidated by later appends — see wire/arena.hpp.
    wire::BufferPtr rdbuf;
    std::size_t rd_off = 0;
    std::mutex write_mu;  // one response frame at a time
    std::atomic<bool> dead{false};
  };
  struct Work {
    std::shared_ptr<Connection> conn;
    wire::Slice request;    // payload bytes, zero-copy out of rdbuf
    wire::WireCodec codec;  // codec the frame arrived in (reply mirrors it)
    // Distributed tracing: context from a kTracedRequest prefix (JSON
    // frames carry theirs in params) and the event-thread arrival stamp
    // that anchors the dispatch-queue-wait span.
    telemetry::TraceContext trace;
    std::int64_t recv_us = 0;
  };

  void event_loop();
  void accept_new();
  void drain_readable(const std::shared_ptr<Connection>& conn);
  void drop_connection(int fd);
  // Sends a versioned control frame (hello-ok / error) from the event
  // thread; best-effort, never throws.
  void send_control(const std::shared_ptr<Connection>& conn, wire::FrameKind kind,
                    const std::string& body);
  void worker_loop();
  void reply_json(const Work& work);
  void reply_binary(const Work& work);

  std::shared_ptr<fault::FaultInjector> fault_injector() const;
  std::shared_ptr<fault::IngressThrottle> ingress_throttle() const;

  std::shared_ptr<const Dispatcher> dispatcher_;
  mutable std::mutex faults_mu_;
  std::shared_ptr<fault::FaultInjector> faults_;
  std::shared_ptr<fault::IngressThrottle> throttle_;  // guarded by faults_mu_
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  util::MpmcQueue<Work> work_queue_{1024};
  std::mutex connections_mu_;
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;
  std::thread event_thread_;
  std::vector<std::thread> workers_;
};

// Multiplexing client channel: any number of in-flight calls share the one
// connection, correlated by request id. Thread-safe; drivers may still open
// one channel per worker to spread socket work across server connections.
//
// A broken connection is not terminal: the next call(), call_async() or
// call_batch() reconnects to the original endpoint and re-negotiates the
// codec (in-flight calls from the broken generation still fail — ids are
// not replayed). Retry policy lives a layer up (rpc::ClientConfig::retry);
// the channel only makes retrying possible.
class TcpChannel final : public Channel {
 public:
  // Full configuration: codec preference and the blocking-call timeout come
  // from `config` (per-call CallOptions deadlines still override the
  // timeout; call_async futures are unbounded — the caller owns the wait
  // policy). The default config negotiates binary-preferred with a 5 s
  // timeout.
  TcpChannel(const std::string& host, std::uint16_t port, const ClientConfig& config = {});
  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  json::Value call(const std::string& method, json::Value params,
                   const CallOptions& opts = {}) override;
  std::future<json::Value> call_async(const std::string& method, json::Value params,
                                      const CallOptions& opts = {}) override;
  std::vector<BatchReply> call_batch(const std::vector<BatchCall>& calls,
                                     const CallOptions& opts = {}) override;

  // Codec this channel negotiated for the current connection generation.
  wire::WireCodec codec() const { return codec_.load(std::memory_order_relaxed); }

  // True when the peer's hello-ok advertised the "trace" feature — the gate
  // for sending trace contexts (kTracedRequest frames / `_trace` params).
  bool peer_traces() const { return peer_traces_.load(std::memory_order_relaxed); }

  // Method-surface version the peer's hello-ok advertised ("api"), or -1
  // when unknown — the peer predates API versioning, or this channel is
  // kJsonOnly and never exchanged hellos. See rpc::kApiVersion.
  int peer_api() const { return peer_api_.load(std::memory_order_relaxed); }

  // Peer-steady-clock offset measured during the hello round trip of the
  // current connection generation ({} when the peer predates the
  // handshake). See telemetry::ClockOffset.
  telemetry::ClockOffset clock_offset() const override {
    return telemetry::ClockOffset{clock_offset_us_.load(std::memory_order_relaxed)};
  }

  // Client-side fault hooks (kClientLatency sleeps before a send,
  // kConnReset shuts the socket down and fails the call). Install before
  // sharing the channel across threads.
  void install_fault_injector(std::shared_ptr<fault::FaultInjector> faults);

 private:
  std::future<json::Value> send_request(const std::string& method, json::Value params,
                                        std::uint64_t& id_out,
                                        const telemetry::TraceContext& trace = {});
  // Reopens the socket and restarts the reader if the connection broke.
  void ensure_connected();
  // Offers the binary codec on a fresh socket (blocking, pre-reader) and
  // records the negotiated outcome in codec_.
  void negotiate(int fd);
  void inject_send_faults();  // sleeps or throws per the installed plan
  std::chrono::milliseconds effective_deadline(const CallOptions& opts) const {
    return opts.deadline.count() > 0 ? opts.deadline : timeout_;
  }
  // Shared completion state for one call_batch round trip. Two completion
  // modes share it:
  //
  //  direct frame handoff (binary fast path): the reader recognizes a
  //    response frame that covers the batch's entire id range and hands the
  //    raw payload over as a zero-copy Slice; the CALLER decodes it straight
  //    into its reply vector. Keeping decode on the consuming thread means
  //    every tree node is malloc'd, read and freed on one core — no
  //    cross-thread allocator traffic, no reply moves through the group.
  //
  //  slot fills (JSON batches, stray/partial frames): the reader writes
  //    reply slots directly under mu (one mutex + condvar per batch, not N
  //    futex-backed futures) and wakes the caller when the last slot lands.
  struct BatchGroup {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining = 0;         // guarded by mu; counts unfilled slots
    std::exception_ptr failure;        // guarded by mu; first transport error
    std::vector<BatchReply> replies;   // slot per call, guarded by mu
    std::vector<bool> filled;          // guarded by mu; guards double completion
    bool abandoned = false;            // guarded by mu; fills are skipped once set
    wire::Slice frame;                 // guarded by mu; direct-handoff payload
    bool frame_ready = false;          // guarded by mu
  };
  // One in-flight single call (call / call_async). Batches never enter the
  // per-id table: a batch's consecutive ids register as ONE BatchRange, so a
  // 64-call batch costs one map node, not 64 hash-table nodes.
  struct PendingSlot {
    std::promise<json::Value> promise;
  };
  struct BatchRange {  // guarded by pending_mu_, keyed by first_id
    std::uint32_t count = 0;
    std::shared_ptr<BatchGroup> group;
  };

  void reader_loop(int fd);
  // Reader-side half of the direct frame handoff: if the binary response
  // frame at `body` (a view into `buf`) exactly covers one registered batch
  // range, parks a zero-copy Slice on that group, wakes the caller and
  // returns true. False means the frame needs the complete_binary path.
  bool try_handoff(const wire::BufferPtr& buf, std::string_view body);
  void complete(const json::Value& response);
  // Completes every entry of one binary response frame: one pass under the
  // pending-table lock to resolve ids, one lock per batch group (usually a
  // single group per frame) to fill replies. Results are moved out.
  void complete_binary(std::vector<wire::ResponseEntry>& entries);
  // Looks up the batch range covering `id` (pending_mu_ must be held; the
  // returned pointer is only valid while it is). Writes the slot index and
  // returns the table's range entry, or null for no match.
  BatchRange* find_range(std::uint64_t id, std::uint32_t& slot_out);
  void fail_all(std::exception_ptr reason);
  void forget(std::uint64_t id);
  // Abandons a batch: drops its range entry and reconciles the in-flight
  // gauge for the slots that never completed.
  void forget_range(std::uint64_t first_id, const std::shared_ptr<BatchGroup>& group);
  // Idempotent terminal transition for a group: marks it abandoned (fills
  // become no-ops), records the first failure if one is given, wakes the
  // waiter and reconciles the in-flight gauge for the unfilled slots. Must
  // be called WITHOUT pending_mu_ or the group mutex held.
  void abandon_group(const std::shared_ptr<BatchGroup>& group, std::exception_ptr reason);

  std::string host_;
  std::uint16_t port_ = 0;
  int fd_ = -1;  // guarded by write_mu_ once the channel is shared
  std::chrono::milliseconds timeout_;
  CodecPreference preference_ = CodecPreference::kBinaryPreferred;
  std::atomic<wire::WireCodec> codec_{wire::WireCodec::kJson};
  std::atomic<bool> peer_traces_{false};
  std::atomic<int> peer_api_{-1};
  std::atomic<std::int64_t> clock_offset_us_{0};
  std::shared_ptr<fault::FaultInjector> faults_;
  std::mutex write_mu_;  // request frames are written atomically, back-to-back

  std::mutex pending_mu_;
  std::unordered_map<std::uint64_t, PendingSlot> pending_;
  std::map<std::uint64_t, BatchRange> batch_ranges_;  // guarded by pending_mu_
  std::uint64_t next_id_ = 1;        // guarded by pending_mu_
  bool broken_ = false;              // guarded by pending_mu_
  std::exception_ptr break_reason_;  // guarded by pending_mu_

  std::thread reader_;
};

}  // namespace hammer::rpc
