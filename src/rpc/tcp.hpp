// TCP transport for JSON-RPC: 4-byte big-endian length prefix followed by
// the UTF-8 request/response document.
//
// Server: a single epoll event loop owns every connection socket and does
// the framing; decoded requests fan out to a small worker pool that runs
// the dispatcher and writes response frames back (per-connection write
// lock, so frames never interleave). Hundreds of driver connections cost
// one event thread plus the fixed pool — not hundreds of threads.
//
// Client: TcpChannel multiplexes one connection. Writers frame requests
// back-to-back without waiting (call_async / call_batch); a dedicated
// reader thread parses response frames and completes the matching
// promise by request id, so responses may arrive in any order. Blocking
// call() is just call_async().get() with the per-call timeout applied.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "rpc/jsonrpc.hpp"
#include "util/mpmc_queue.hpp"

namespace hammer::rpc {

// Frames above this are a protocol violation; both ends drop the
// connection with a transport error instead of attempting the allocation.
inline constexpr std::size_t kMaxFrameBytes = 64u * 1024 * 1024;

// Serves one Dispatcher on a loopback port through an epoll event loop
// plus a fixed worker pool.
class TcpServer {
 public:
  // port = 0 picks a free port; see port() after construction.
  // worker_threads = 0 sizes the pool from the hardware (clamped to [2,8]).
  explicit TcpServer(std::shared_ptr<const Dispatcher> dispatcher, std::uint16_t port = 0,
                     std::size_t worker_threads = 0);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  std::uint16_t port() const { return port_; }
  std::size_t worker_count() const { return workers_.size(); }
  void stop();

  // Server-side fault hooks (kDropResponse: the request executes but the
  // reply never leaves; kSlowLoris: the reply stalls slow_loris_us on a
  // worker thread). Install before clients generate traffic.
  void install_fault_injector(std::shared_ptr<fault::FaultInjector> faults);

 private:
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();  // closes fd once the last reference drops

    const int fd;
    std::string buffer;       // partial frame bytes; event thread only
    std::mutex write_mu;      // one response frame at a time
    std::atomic<bool> dead{false};
  };
  struct Work {
    std::shared_ptr<Connection> conn;
    std::string request;
  };

  void event_loop();
  void accept_new();
  void drain_readable(const std::shared_ptr<Connection>& conn);
  void drop_connection(int fd);
  void worker_loop();

  std::shared_ptr<fault::FaultInjector> fault_injector() const;

  std::shared_ptr<const Dispatcher> dispatcher_;
  mutable std::mutex faults_mu_;
  std::shared_ptr<fault::FaultInjector> faults_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  util::MpmcQueue<Work> work_queue_{1024};
  std::mutex connections_mu_;
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;
  std::thread event_thread_;
  std::vector<std::thread> workers_;
};

// Multiplexing client channel: any number of in-flight calls share the one
// connection, correlated by request id. Thread-safe; drivers may still open
// one channel per worker to spread socket work across server connections.
//
// A broken connection is not terminal: the next call(), call_async() or
// call_batch() reconnects to the original endpoint (in-flight calls from
// the broken generation still fail — ids are not replayed). Retry policy
// lives a layer up (adapters::AdapterOptions); the channel only makes
// retrying possible.
class TcpChannel final : public Channel {
 public:
  // `timeout` bounds each blocking call() / call_batch() wait unless the
  // per-call CallOptions deadline overrides it; call_async futures are
  // unbounded (the caller owns the wait policy).
  TcpChannel(const std::string& host, std::uint16_t port,
             std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));
  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  json::Value call(const std::string& method, json::Value params,
                   const CallOptions& opts = {}) override;
  std::future<json::Value> call_async(const std::string& method, json::Value params,
                                      const CallOptions& opts = {}) override;
  std::vector<BatchReply> call_batch(const std::vector<BatchCall>& calls,
                                     const CallOptions& opts = {}) override;

  // Client-side fault hooks (kClientLatency sleeps before a send,
  // kConnReset shuts the socket down and fails the call). Install before
  // sharing the channel across threads.
  void install_fault_injector(std::shared_ptr<fault::FaultInjector> faults);

 private:
  std::future<json::Value> send_request(const std::string& method, json::Value params,
                                        std::uint64_t& id_out);
  // Reopens the socket and restarts the reader if the connection broke.
  void ensure_connected();
  void inject_send_faults();  // sleeps or throws per the installed plan
  std::chrono::milliseconds effective_deadline(const CallOptions& opts) const {
    return opts.deadline.count() > 0 ? opts.deadline : timeout_;
  }
  void reader_loop(int fd);
  void complete(const json::Value& response);
  void fail_all(std::exception_ptr reason);
  void forget(std::uint64_t id);

  std::string host_;
  std::uint16_t port_ = 0;
  int fd_ = -1;  // guarded by write_mu_ once the channel is shared
  std::chrono::milliseconds timeout_;
  std::shared_ptr<fault::FaultInjector> faults_;
  std::mutex write_mu_;  // request frames are written atomically, back-to-back

  std::mutex pending_mu_;
  std::unordered_map<std::uint64_t, std::promise<json::Value>> pending_;
  std::uint64_t next_id_ = 1;        // guarded by pending_mu_
  bool broken_ = false;              // guarded by pending_mu_
  std::exception_ptr break_reason_;  // guarded by pending_mu_

  std::thread reader_;
};

}  // namespace hammer::rpc
