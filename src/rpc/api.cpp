#include "rpc/api.hpp"

#include <algorithm>

#include "rpc/jsonrpc.hpp"

namespace hammer::rpc {

std::string_view method_namespace(std::string_view method) {
  std::size_t dot = method.find('.');
  return dot == std::string_view::npos ? method : method.substr(0, dot);
}

void bind_api_info(Dispatcher& dispatcher) {
  dispatcher.register_method("rpc.api", [&dispatcher](const json::Value&) {
    std::vector<std::string> methods = dispatcher.method_names();
    json::Array method_list;
    json::Array namespace_list;
    std::string last_namespace;
    for (const std::string& name : methods) {  // method_names() is sorted
      method_list.emplace_back(name);
      std::string ns{method_namespace(name)};
      if (ns != last_namespace) {
        namespace_list.emplace_back(ns);
        last_namespace = std::move(ns);
      }
    }
    return json::object({{"api", static_cast<std::int64_t>(kApiVersion)},
                         {"methods", json::Value(std::move(method_list))},
                         {"namespaces", json::Value(std::move(namespace_list))}});
  });
}

}  // namespace hammer::rpc
