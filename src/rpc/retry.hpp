// Policy-driven retry for adapter calls (DESIGN.md §8).
//
// A failed call lands in one of four client error classes (the PR 1
// taxonomy): kTimeout (deadline passed with no response — the call is IN
// DOUBT: the server may have executed it), kTransport (connection-level
// failure), kRejected (the SUT refused the operation: kServerError), and
// kProtocol (malformed request/response, unknown method — retrying cannot
// help). A RetryPolicy says which classes to retry and how long to back
// off between attempts: exponential growth clamped at max_backoff, scaled
// by a jitter factor drawn from a seeded PCG stream so schedules are
// reproducible.
//
// The default policy is a single attempt — existing call sites keep their
// exact pre-retry behaviour unless they opt in.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "util/random.hpp"

namespace hammer::rpc {

enum class ErrorClass { kTimeout, kTransport, kRejected, kProtocol };

const char* to_string(ErrorClass c);

// Maps the in-flight exception onto an ErrorClass. Must be called from
// inside a catch block; the exception stays active for a later `throw;`.
ErrorClass classify_current_exception();

struct RetryPolicy {
  // Total attempts including the first; 1 = no retry.
  std::uint32_t max_attempts = 1;

  std::chrono::milliseconds initial_backoff{5};
  double multiplier = 2.0;
  std::chrono::milliseconds max_backoff{500};
  // Backoff is scaled by a factor drawn uniformly from [1 - jitter, 1], so
  // jitter = 0 gives the exact exponential schedule.
  double jitter = 0.5;

  bool on_transport = true;
  bool on_timeout = true;
  // Off by default: a rejection is an application-level verdict (overload,
  // bad signature) and most callers must count it, not mask it. Fault-storm
  // runs turn it on to ride out injected transient rejections.
  bool on_rejected = false;

  bool enabled() const { return max_attempts > 1; }
  bool retries(ErrorClass c) const;

  // Backoff before the next attempt after `failed_attempts` failures
  // (>= 1). Deterministic given the rng state.
  std::chrono::microseconds backoff(std::uint32_t failed_attempts, util::Pcg32& rng) const;

  // A reasonable default for flaky-infrastructure runs.
  static RetryPolicy standard(std::uint32_t attempts = 4);
};

// Shared retry executor: owns the policy, the jitter stream and the retry
// counter (also surfaced as hammer_rpc_retries_total). Thread-safe; one
// Retryer per ChainAdapter.
class Retryer {
 public:
  explicit Retryer(RetryPolicy policy, std::uint64_t seed = 0x5eed5eedULL);

  const RetryPolicy& policy() const { return policy_; }
  std::uint64_t retry_count() const { return retries_.load(std::memory_order_relaxed); }

  // Counts one retry and sleeps the jittered backoff for `failed_attempts`
  // failures so far. Exposed for callers (submit_batch) that need custom
  // per-attempt work between failures.
  void before_retry(std::uint32_t failed_attempts);

  // Runs `op` under the policy: rethrows immediately for non-retryable
  // classes, otherwise backs off and retries up to max_attempts total.
  template <typename F>
  auto run(F&& op) -> decltype(op()) {
    for (std::uint32_t attempt = 1;; ++attempt) {
      try {
        return op();
      } catch (...) {
        ErrorClass cls = classify_current_exception();
        if (attempt >= policy_.max_attempts || !policy_.retries(cls)) throw;
        before_retry(attempt);
      }
    }
  }

 private:
  RetryPolicy policy_;
  std::mutex rng_mu_;
  util::Pcg32 rng_;
  std::atomic<std::uint64_t> retries_{0};
};

}  // namespace hammer::rpc
