#include "rpc/jsonrpc.hpp"

#include "util/errors.hpp"
#include "util/logging.hpp"

namespace hammer::rpc {

void Dispatcher::register_method(const std::string& name, Handler handler) {
  std::scoped_lock lock(mu_);
  HAMMER_CHECK_MSG(methods_.emplace(name, std::move(handler)).second,
                   "duplicate RPC method " + name);
}

bool Dispatcher::has_method(const std::string& name) const {
  std::scoped_lock lock(mu_);
  return methods_.count(name) > 0;
}

json::Value Dispatcher::dispatch(const json::Value& request) const {
  json::Value id;  // null until we can extract one
  try {
    if (!request.is_object()) {
      return make_error_response(id, kInvalidRequest, "request must be an object");
    }
    if (request.contains("id")) id = request.at("id");
    if (request.get_string("jsonrpc", "") != "2.0") {
      return make_error_response(id, kInvalidRequest, "missing jsonrpc: \"2.0\"");
    }
    if (!request.contains("method") || !request.at("method").is_string()) {
      return make_error_response(id, kInvalidRequest, "missing method");
    }
    const std::string& method = request.at("method").as_string();

    Handler handler;
    {
      std::scoped_lock lock(mu_);
      auto it = methods_.find(method);
      if (it == methods_.end()) {
        return make_error_response(id, kMethodNotFound, "unknown method " + method);
      }
      handler = it->second;
    }
    json::Value params = request.contains("params") ? request.at("params") : json::Value();
    return make_result_response(id, handler(params));
  } catch (const RejectedError& e) {
    return make_error_response(id, kServerError, e.what());
  } catch (const NotFoundError& e) {
    return make_error_response(id, kInvalidParams, e.what());
  } catch (const ParseError& e) {
    return make_error_response(id, kInvalidParams, e.what());
  } catch (const std::exception& e) {
    HLOG_WARN("rpc") << "handler raised: " << e.what();
    return make_error_response(id, kInternalError, e.what());
  }
}

std::string Dispatcher::dispatch_text(const std::string& request_text) const {
  json::Value request;
  try {
    request = json::Value::parse(request_text);
  } catch (const ParseError& e) {
    return make_error_response(json::Value(), kParseError, e.what()).dump();
  }
  return dispatch(request).dump();
}

json::Value make_request(std::uint64_t id, const std::string& method, json::Value params) {
  json::Object obj;
  obj["jsonrpc"] = "2.0";
  obj["id"] = static_cast<std::int64_t>(id);
  obj["method"] = method;
  obj["params"] = std::move(params);
  return json::Value(std::move(obj));
}

json::Value make_result_response(const json::Value& id, json::Value result) {
  json::Object obj;
  obj["jsonrpc"] = "2.0";
  obj["id"] = id;
  obj["result"] = std::move(result);
  return json::Value(std::move(obj));
}

json::Value make_error_response(const json::Value& id, int code, const std::string& message) {
  json::Object err;
  err["code"] = code;
  err["message"] = message;
  json::Object obj;
  obj["jsonrpc"] = "2.0";
  obj["id"] = id;
  obj["error"] = json::Value(std::move(err));
  return json::Value(std::move(obj));
}

json::Value take_result(const json::Value& response) {
  if (!response.is_object()) throw ParseError("RPC response is not an object");
  if (response.contains("error")) {
    const json::Value& err = response.at("error");
    throw RpcError(static_cast<int>(err.get_int("code", kInternalError)),
                   err.get_string("message", "unknown error"));
  }
  if (!response.contains("result")) throw ParseError("RPC response lacks result and error");
  return response.at("result");
}

InProcChannel::InProcChannel(std::shared_ptr<const Dispatcher> dispatcher)
    : dispatcher_(std::move(dispatcher)) {
  HAMMER_CHECK(dispatcher_ != nullptr);
}

json::Value InProcChannel::call(const std::string& method, json::Value params) {
  std::uint64_t id;
  {
    std::scoped_lock lock(mu_);
    id = next_id_++;
  }
  // Round-trip through text so the in-process path exercises exactly the
  // same (de)serialization as the TCP path.
  json::Value request = make_request(id, method, std::move(params));
  std::string response_text = dispatcher_->dispatch_text(request.dump());
  return take_result(json::Value::parse(response_text));
}

}  // namespace hammer::rpc
