#include "rpc/jsonrpc.hpp"

#include <algorithm>
#include <unordered_map>

#include "rpc/api.hpp"
#include "util/errors.hpp"
#include "util/logging.hpp"

namespace hammer::rpc {

void throw_client_error(int code, const std::string& message) {
  if (code == kServerError) throw RejectedError(message);
  throw RpcError(code, message);
}

void throw_client_error(const RpcError& error) {
  if (error.code() == kServerError) throw RejectedError(error.what());
  throw error;
}

const json::Value& BatchReply::take() const {
  if (!ok()) throw_client_error(error_code, error_message);
  return result;
}

BatchReply to_batch_reply(const json::Value& response) {
  BatchReply reply;
  if (!response.is_object()) {
    reply.error_code = kParseError;
    reply.error_message = "RPC response is not an object";
    return reply;
  }
  if (response.contains("error")) {
    const json::Value& err = response.at("error");
    reply.error_code = static_cast<int>(err.get_int("code", kInternalError));
    if (reply.error_code == 0) reply.error_code = kInternalError;
    reply.error_message = err.get_string("message", "unknown error");
    return reply;
  }
  if (!response.contains("result")) {
    reply.error_code = kParseError;
    reply.error_message = "RPC response lacks result and error";
    return reply;
  }
  reply.result = response.at("result");
  return reply;
}

std::vector<BatchReply> match_batch_replies(const json::Value& response,
                                            const std::vector<std::uint64_t>& ids) {
  std::vector<BatchReply> out(ids.size());
  if (!response.is_array()) {
    // Whole-batch failure (e.g. the server judged the batch invalid): every
    // entry carries the same error.
    BatchReply shared = to_batch_reply(response);
    for (BatchReply& r : out) r = shared;
    return out;
  }
  std::unordered_map<std::uint64_t, const json::Value*> by_id;
  for (const json::Value& entry : response.as_array()) {
    if (!entry.is_object() || !entry.contains("id") || !entry.at("id").is_int()) continue;
    by_id.emplace(static_cast<std::uint64_t>(entry.at("id").as_int()), &entry);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto it = by_id.find(ids[i]);
    if (it == by_id.end()) {
      out[i].error_code = kInternalError;
      out[i].error_message = "no response for batch id " + std::to_string(ids[i]);
    } else {
      out[i] = to_batch_reply(*it->second);
    }
  }
  return out;
}

void Dispatcher::register_method(const std::string& name, Handler handler) {
  std::scoped_lock lock(mu_);
  HAMMER_CHECK_MSG(methods_.emplace(name, std::move(handler)).second,
                   "duplicate RPC method " + name);
}

bool Dispatcher::has_method(const std::string& name) const {
  std::scoped_lock lock(mu_);
  return methods_.count(name) > 0;
}

std::vector<std::string> Dispatcher::method_names() const {
  std::scoped_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(methods_.size());
  for (const auto& [name, handler] : methods_) {
    (void)handler;
    out.push_back(name);
  }
  return out;
}

CallOutcome Dispatcher::invoke(std::string_view method, const json::Value& params) const {
  CallOutcome outcome;
  try {
    Handler handler;
    {
      std::scoped_lock lock(mu_);
      auto it = methods_.find(method);
      if (it == methods_.end()) {
        outcome.error_code = kMethodNotFound;
        // A method from a namespace with no registered methods at all is
        // almost certainly a typo'd (or version-skewed) namespace; report
        // it by name, the same shape deployment uses for unknown spec keys.
        std::string_view ns = method_namespace(method);
        bool namespace_known =
            std::any_of(methods_.begin(), methods_.end(), [ns](const auto& entry) {
              return method_namespace(entry.first) == ns;
            });
        outcome.error_message =
            namespace_known
                ? "unknown method " + std::string(method)
                : "unknown method namespace '" + std::string(ns) + "' in method '" +
                      std::string(method) + "'";
        return outcome;
      }
      handler = it->second;
    }
    if (telemetry::trace_active()) {
      // First traced call of the frame flushes the pending queue-wait span;
      // then the handler runs under its own span so chain-level spans
      // opened inside it parent correctly.
      telemetry::emit_queue_wait_span();
      telemetry::ScopedSpan span(telemetry::SpanKind::kHandler, std::string(method));
      outcome.result = handler(params);
    } else {
      outcome.result = handler(params);
    }
  } catch (const RejectedError& e) {
    outcome.error_code = kServerError;
    outcome.error_message = e.what();
  } catch (const NotFoundError& e) {
    outcome.error_code = kInvalidParams;
    outcome.error_message = e.what();
  } catch (const ParseError& e) {
    outcome.error_code = kInvalidParams;
    outcome.error_message = e.what();
  } catch (const std::exception& e) {
    HLOG_WARN("rpc") << "handler raised: " << e.what();
    outcome.error_code = kInternalError;
    outcome.error_message = e.what();
  }
  return outcome;
}

json::Value Dispatcher::dispatch(const json::Value& request) const {
  json::Value id;  // null until we can extract one
  try {
    if (!request.is_object()) {
      return make_error_response(id, kInvalidRequest, "request must be an object");
    }
    if (request.contains("id")) id = request.at("id");
    if (request.get_string("jsonrpc", "") != "2.0") {
      return make_error_response(id, kInvalidRequest, "missing jsonrpc: \"2.0\"");
    }
    if (!request.contains("method") || !request.at("method").is_string()) {
      return make_error_response(id, kInvalidRequest, "missing method");
    }
    const std::string& method = request.at("method").as_string();
    json::Value params = request.contains("params") ? request.at("params") : json::Value();
    // JSON-codec trace propagation: a `_trace` params member carries the
    // context. It is stripped before the handler sees the params, so traced
    // and untraced calls observe identical arguments.
    telemetry::TraceContext trace;
    if (params.is_object() && params.contains("_trace")) {
      const json::Value& t = params.at("_trace");
      trace.trace_id = static_cast<std::uint64_t>(t.get_int("t", 0));
      trace.span_id = static_cast<std::uint64_t>(t.get_int("s", 0));
      params.as_object().erase("_trace");
    }
    CallOutcome outcome;
    if (trace.sampled()) {
      telemetry::ScopedTrace scope(trace);
      outcome = invoke(method, params);
    } else {
      outcome = invoke(method, params);
    }
    if (!outcome.ok()) {
      return make_error_response(id, outcome.error_code, outcome.error_message);
    }
    return make_result_response(id, std::move(outcome.result));
  } catch (const std::exception& e) {
    HLOG_WARN("rpc") << "dispatch raised: " << e.what();
    return make_error_response(id, kInternalError, e.what());
  }
}

json::Value Dispatcher::dispatch_batch(const json::Value& batch) const {
  if (!batch.is_array()) {
    return make_error_response(json::Value(), kInvalidRequest, "batch must be an array");
  }
  const json::Array& entries = batch.as_array();
  if (entries.empty()) {
    return make_error_response(json::Value(), kInvalidRequest, "empty batch");
  }
  json::Array responses;
  responses.reserve(entries.size());
  // Each entry dispatches independently; a malformed or failing entry
  // yields its own error response without poisoning its siblings.
  for (const json::Value& entry : entries) responses.push_back(dispatch(entry));
  return json::Value(std::move(responses));
}

std::string Dispatcher::dispatch_text(std::string_view request_text) const {
  std::string out;
  dispatch_text_into(request_text, out);
  return out;
}

void Dispatcher::dispatch_text_into(std::string_view request_text, std::string& out) const {
  json::Value request;
  try {
    request = json::Value::parse(request_text);
  } catch (const ParseError& e) {
    make_error_response(json::Value(), kParseError, e.what()).dump_into(out);
    return;
  }
  if (request.is_array()) {
    dispatch_batch(request).dump_into(out);
  } else {
    dispatch(request).dump_into(out);
  }
}

json::Value make_request(std::uint64_t id, const std::string& method, json::Value params) {
  json::Object obj;
  obj["jsonrpc"] = "2.0";
  obj["id"] = static_cast<std::int64_t>(id);
  obj["method"] = method;
  obj["params"] = std::move(params);
  return json::Value(std::move(obj));
}

json::Value make_result_response(const json::Value& id, json::Value result) {
  json::Object obj;
  obj["jsonrpc"] = "2.0";
  obj["id"] = id;
  obj["result"] = std::move(result);
  return json::Value(std::move(obj));
}

json::Value make_error_response(const json::Value& id, int code, const std::string& message) {
  json::Object err;
  err["code"] = code;
  err["message"] = message;
  json::Object obj;
  obj["jsonrpc"] = "2.0";
  obj["id"] = id;
  obj["error"] = json::Value(std::move(err));
  return json::Value(std::move(obj));
}

json::Value take_result(const json::Value& response) {
  if (!response.is_object()) throw ParseError("RPC response is not an object");
  if (response.contains("error")) {
    const json::Value& err = response.at("error");
    throw RpcError(static_cast<int>(err.get_int("code", kInternalError)),
                   err.get_string("message", "unknown error"));
  }
  if (!response.contains("result")) throw ParseError("RPC response lacks result and error");
  return response.at("result");
}

std::future<json::Value> Channel::call_async(const std::string& method, json::Value params,
                                             const CallOptions& opts) {
  std::promise<json::Value> promise;
  try {
    promise.set_value(call(method, std::move(params), opts));
  } catch (...) {
    promise.set_exception(std::current_exception());
  }
  return promise.get_future();
}

std::vector<BatchReply> Channel::call_batch(const std::vector<BatchCall>& calls,
                                            const CallOptions& opts) {
  std::vector<BatchReply> out;
  out.reserve(calls.size());
  for (const BatchCall& c : calls) {
    BatchReply reply;
    try {
      reply.result = call(c.method, c.params, opts);
    } catch (const RpcError& e) {
      reply.error_code = e.code();
      reply.error_message = e.what();
    }
    out.push_back(std::move(reply));
  }
  return out;
}

InProcChannel::InProcChannel(std::shared_ptr<const Dispatcher> dispatcher)
    : dispatcher_(std::move(dispatcher)) {
  HAMMER_CHECK(dispatcher_ != nullptr);
}

json::Value InProcChannel::call(const std::string& method, json::Value params,
                                const CallOptions& opts) {
  std::uint64_t id;
  {
    std::scoped_lock lock(mu_);
    id = next_id_++;
  }
  // Round-trip through text so the in-process path exercises exactly the
  // same (de)serialization as the TCP path. Tracing installs the context
  // directly (dispatch runs on the calling thread) instead of rewriting the
  // request, so traced and untraced wire bytes stay identical.
  json::Value request = make_request(id, method, std::move(params));
  std::string response_text;
  if (opts.trace.sampled()) {
    telemetry::ScopedTrace scope(opts.trace);
    response_text = dispatcher_->dispatch_text(request.dump());
  } else {
    response_text = dispatcher_->dispatch_text(request.dump());
  }
  return take_result(json::Value::parse(response_text));
}

std::vector<BatchReply> InProcChannel::call_batch(const std::vector<BatchCall>& calls,
                                                  const CallOptions& opts) {
  if (calls.empty()) return {};
  std::vector<std::uint64_t> ids(calls.size());
  json::Array entries;
  entries.reserve(calls.size());
  {
    std::scoped_lock lock(mu_);
    for (std::size_t i = 0; i < calls.size(); ++i) {
      ids[i] = next_id_++;
      entries.push_back(make_request(ids[i], calls[i].method, calls[i].params));
    }
  }
  std::string request_text = json::Value(std::move(entries)).dump();
  std::string response_text;
  if (opts.trace.sampled()) {
    telemetry::ScopedTrace scope(opts.trace);
    response_text = dispatcher_->dispatch_text(request_text);
  } else {
    response_text = dispatcher_->dispatch_text(request_text);
  }
  return match_batch_replies(json::Value::parse(response_text), ids);
}

}  // namespace hammer::rpc
