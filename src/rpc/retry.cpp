#include "rpc/retry.hpp"

#include <algorithm>
#include <thread>

#include "rpc/jsonrpc.hpp"
#include "telemetry/registry.hpp"
#include "util/errors.hpp"

namespace hammer::rpc {

namespace {
telemetry::Counter& retries_counter() {
  static telemetry::Counter& counter = telemetry::MetricRegistry::global().counter(
      "hammer_rpc_retries_total", "RPC attempts beyond the first (adapter retry policy)");
  return counter;
}
}  // namespace

const char* to_string(ErrorClass c) {
  switch (c) {
    case ErrorClass::kTimeout: return "timeout";
    case ErrorClass::kTransport: return "transport";
    case ErrorClass::kRejected: return "rejected";
    case ErrorClass::kProtocol: return "protocol";
  }
  return "unknown";
}

ErrorClass classify_current_exception() {
  // Order matters: FrameTooLargeError and TimeoutError both derive from
  // TransportError (catch-compatibility) but classify differently, and
  // RejectedError is the mapped form of kServerError RpcErrors.
  try {
    throw;
  } catch (const FrameTooLargeError&) {
    return ErrorClass::kProtocol;  // identical on every attempt; never retry
  } catch (const TimeoutError&) {
    return ErrorClass::kTimeout;
  } catch (const TransportError&) {
    return ErrorClass::kTransport;
  } catch (const RejectedError&) {
    return ErrorClass::kRejected;
  } catch (const RpcError& e) {
    return e.code() == kServerError ? ErrorClass::kRejected : ErrorClass::kProtocol;
  } catch (...) {
    return ErrorClass::kProtocol;
  }
}

bool RetryPolicy::retries(ErrorClass c) const {
  switch (c) {
    case ErrorClass::kTimeout: return on_timeout;
    case ErrorClass::kTransport: return on_transport;
    case ErrorClass::kRejected: return on_rejected;
    case ErrorClass::kProtocol: return false;
  }
  return false;
}

std::chrono::microseconds RetryPolicy::backoff(std::uint32_t failed_attempts,
                                               util::Pcg32& rng) const {
  HAMMER_CHECK(failed_attempts >= 1);
  double base_us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(initial_backoff).count());
  const double cap_us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(max_backoff).count());
  for (std::uint32_t i = 1; i < failed_attempts && base_us < cap_us; ++i) {
    base_us *= multiplier;
  }
  base_us = std::min(base_us, cap_us);
  double factor = 1.0 - std::clamp(jitter, 0.0, 1.0) * rng.uniform01();
  return std::chrono::microseconds(static_cast<std::int64_t>(base_us * factor));
}

RetryPolicy RetryPolicy::standard(std::uint32_t attempts) {
  RetryPolicy p;
  p.max_attempts = attempts;
  return p;
}

Retryer::Retryer(RetryPolicy policy, std::uint64_t seed) : policy_(policy), rng_(seed) {}

void Retryer::before_retry(std::uint32_t failed_attempts) {
  retries_.fetch_add(1, std::memory_order_relaxed);
  retries_counter().add(1);
  std::chrono::microseconds wait{0};
  {
    std::scoped_lock lock(rng_mu_);
    wait = policy_.backoff(failed_attempts, rng_);
  }
  // Real time, not the injected Clock: backoff is client-side transport
  // behaviour, and the channels it protects already run on real sockets.
  if (wait.count() > 0) std::this_thread::sleep_for(wait);
}

}  // namespace hammer::rpc
