// The versioned public RPC API surface.
//
// Every method Hammer exposes lives in a namespaced registry on one
// rpc::Dispatcher per endpoint: `chain.*` / `endpoint.*` (the SUT surface),
// `telemetry.*` (metrics/snapshot/spans), `control.*` (the coordinator ->
// worker control plane) and `rpc.*` (introspection). kApiVersion names the
// shape of that whole surface — method names, parameter and result schemas
// — and is distinct from wire::kVersion, which only versions the framing
// underneath. It is advertised in every hello/hello-ok body ("api") and in
// control.hello replies; a Coordinator refuses workers that report a
// different version instead of mis-parsing their replies.
//
// Calling a method whose namespace is not registered at all is reported by
// name ("unknown method namespace 'x' in method 'x.y'"), the same loud
// by-name rejection deployment uses for unknown chain-spec keys — a typo'd
// namespace must fail obviously, not look like one missing method.
#pragma once

#include <string_view>

namespace hammer::rpc {

class Dispatcher;

// Version of the public method surface. Bump when a method's name, params
// or result shape changes incompatibly.
//   v1: initial control/chain/telemetry surface.
//   v2: control.set_rate (live fleet retargeting) + rate fields in
//       control.report results.
inline constexpr int kApiVersion = 2;

// Namespace prefix of a method name ("chain.submit" -> "chain"); the whole
// name when it carries no dot.
std::string_view method_namespace(std::string_view method);

// Registers `rpc.api` on the dispatcher: {"api": kApiVersion, "methods":
// [...], "namespaces": [...]} — the introspection method clients use to
// enumerate the registry. The dispatcher must outlive its own handlers,
// which it does by construction (handlers die with it).
void bind_api_info(Dispatcher& dispatcher);

}  // namespace hammer::rpc
