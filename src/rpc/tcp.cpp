#include "rpc/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <utility>

#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/clock.hpp"
#include "util/errors.hpp"
#include "util/logging.hpp"

namespace hammer::rpc {

namespace {

// Span/handshake timestamps share the process steady-clock base every other
// subsystem stamps with (driver stages, chain seal times).
std::int64_t steady_now_us() { return util::SteadyClock::shared()->now_us(); }

// Transport telemetry on the process-global registry. References are
// resolved once; the per-event cost is one relaxed shard-local add.
struct RpcMetrics {
  telemetry::Counter& client_frames_sent;
  telemetry::Counter& client_frames_recv;
  telemetry::Counter& client_bytes_sent;
  telemetry::Counter& client_bytes_recv;
  telemetry::Counter& calls_single;
  telemetry::Counter& calls_async;
  telemetry::Counter& calls_batch;
  telemetry::StageHistogram& batch_size;
  telemetry::Gauge& inflight;
  telemetry::Counter& client_reconnects;
  telemetry::Counter& server_conns_total;
  telemetry::Gauge& server_conns;
  telemetry::Counter& server_dropped;
  telemetry::Counter& server_requests;
  telemetry::Counter& server_bytes_recv;
  telemetry::Counter& server_bytes_sent;

  static RpcMetrics& get() {
    static RpcMetrics metrics;
    return metrics;
  }

 private:
  RpcMetrics()
      : client_frames_sent(reg().counter("hammer_rpc_client_frames_total",
                                         "Frames on client channels", "dir=\"sent\"")),
        client_frames_recv(reg().counter("hammer_rpc_client_frames_total",
                                         "Frames on client channels", "dir=\"recv\"")),
        client_bytes_sent(reg().counter("hammer_rpc_client_bytes_total",
                                        "Wire bytes on client channels", "dir=\"sent\"")),
        client_bytes_recv(reg().counter("hammer_rpc_client_bytes_total",
                                        "Wire bytes on client channels", "dir=\"recv\"")),
        calls_single(reg().counter("hammer_rpc_client_calls_total",
                                   "RPC calls by submission shape", "shape=\"single\"")),
        calls_async(reg().counter("hammer_rpc_client_calls_total",
                                  "RPC calls by submission shape", "shape=\"async\"")),
        calls_batch(reg().counter("hammer_rpc_client_calls_total",
                                  "RPC calls by submission shape", "shape=\"batch\"")),
        batch_size(reg().histogram("hammer_rpc_client_batch_size",
                                   "Calls coalesced per batch frame", "",
                                   {1, 2, 4, 8, 16, 32, 64, 128, 256})),
        inflight(reg().gauge("hammer_rpc_client_inflight",
                             "Requests awaiting a response across all channels")),
        client_reconnects(reg().counter("hammer_rpc_client_reconnects_total",
                                        "Successful channel reconnects after a broken "
                                        "connection")),
        server_conns_total(reg().counter("hammer_rpc_server_connections_total",
                                         "Connections ever accepted")),
        server_conns(reg().gauge("hammer_rpc_server_connections", "Open server connections")),
        server_dropped(reg().counter("hammer_rpc_server_dropped_total",
                                     "Connections dropped (EOF, error, oversize frame)")),
        server_requests(reg().counter("hammer_rpc_server_requests_total",
                                      "Request frames dispatched to workers")),
        server_bytes_recv(reg().counter("hammer_rpc_server_bytes_total",
                                        "Wire bytes on the server", "dir=\"recv\"")),
        server_bytes_sent(reg().counter("hammer_rpc_server_bytes_total",
                                        "Wire bytes on the server", "dir=\"sent\"")) {}

  static telemetry::MetricRegistry& reg() { return telemetry::MetricRegistry::global(); }
};

// Wire-codec telemetry (DESIGN.md §11): negotiation outcomes and the
// oversize-frame taxonomy counter, labeled by where the violation surfaced.
struct WireMetrics {
  telemetry::Counter& oversize_client_send;
  telemetry::Counter& oversize_client_recv;
  telemetry::Counter& oversize_server_recv;
  telemetry::Counter& negotiated_binary;
  telemetry::Counter& negotiated_json;

  static WireMetrics& get() {
    static WireMetrics metrics;
    return metrics;
  }

 private:
  WireMetrics()
      : oversize_client_send(reg().counter(
            "hammer_wire_oversize_frames_total",
            "Frames refused for exceeding kMaxFrameBytes", "site=\"client_send\"")),
        oversize_client_recv(reg().counter(
            "hammer_wire_oversize_frames_total",
            "Frames refused for exceeding kMaxFrameBytes", "site=\"client_recv\"")),
        oversize_server_recv(reg().counter(
            "hammer_wire_oversize_frames_total",
            "Frames refused for exceeding kMaxFrameBytes", "site=\"server_recv\"")),
        negotiated_binary(reg().counter("hammer_wire_codec_negotiations_total",
                                        "Codec negotiation outcomes on client channels",
                                        "codec=\"binary\"")),
        negotiated_json(reg().counter("hammer_wire_codec_negotiations_total",
                                      "Codec negotiation outcomes on client channels",
                                      "codec=\"json\"")) {}

  static telemetry::MetricRegistry& reg() { return telemetry::MetricRegistry::global(); }
};

// Gathered write of every iovec, handling partial writes and EINTR.
// sendmsg instead of writev for MSG_NOSIGNAL (a dead peer must surface as
// EPIPE, not kill the process).
void write_gather(int fd, struct iovec* iov, std::size_t count) {
  std::size_t idx = 0;
  while (idx < count) {
    msghdr msg{};
    msg.msg_iov = iov + idx;
    msg.msg_iovlen = count - idx;
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TransportError(std::string("sendmsg: ") + std::strerror(errno));
    }
    auto left = static_cast<std::size_t>(n);
    while (idx < count && left >= iov[idx].iov_len) {
      left -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < count) {
      iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + left;
      iov[idx].iov_len -= left;
    }
  }
}

// Returns false on clean EOF at a frame boundary.
bool read_all(int fd, void* data, std::size_t len, bool eof_ok) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n == 0) {
      if (eof_ok && got == 0) return false;
      throw TransportError("connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) throw TimeoutError("recv");
      throw TransportError(std::string("recv: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

// One scatter-gather syscall per frame: [u32-be length][payload].
void send_frame(int fd, std::string_view payload) {
  std::uint32_t len_be = htonl(static_cast<std::uint32_t>(payload.size()));
  struct iovec iov[2];
  iov[0].iov_base = &len_be;
  iov[0].iov_len = sizeof(len_be);
  iov[1].iov_base = const_cast<char*>(payload.data());
  iov[1].iov_len = payload.size();
  write_gather(fd, iov, payload.empty() ? 1 : 2);
}

bool recv_frame(int fd, std::string& payload, bool eof_ok) {
  std::uint32_t len_be = 0;
  if (!read_all(fd, &len_be, sizeof(len_be), eof_ok)) return false;
  std::uint32_t len = ntohl(len_be);
  if (len > kMaxFrameBytes) {
    WireMetrics::get().oversize_client_recv.add(1);
    throw FrameTooLargeError("peer announced a " + std::to_string(len) + " byte frame (max " +
                             std::to_string(kMaxFrameBytes) + ")");
  }
  payload.resize(len);  // capacity persists: callers reuse one string across frames
  if (len > 0) read_all(fd, payload.data(), len, false);
  return true;
}

// Arena-buffer variant for the reader loop: the frame lands in a pooled
// buffer so a Slice of it can be handed to a waiting batch caller without
// copying; capacity recycles through the arena instead of one reused string.
bool recv_frame_pooled(int fd, wire::BufferPtr& out, bool eof_ok) {
  std::uint32_t len_be = 0;
  if (!read_all(fd, &len_be, sizeof(len_be), eof_ok)) return false;
  std::uint32_t len = ntohl(len_be);
  if (len > kMaxFrameBytes) {
    WireMetrics::get().oversize_client_recv.add(1);
    throw FrameTooLargeError("peer announced a " + std::to_string(len) + " byte frame (max " +
                             std::to_string(kMaxFrameBytes) + ")");
  }
  out = wire::BufferArena::global().acquire(len);
  out->resize(len);
  if (len > 0) read_all(fd, out->data(), len, false);
  return true;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_send_timeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// timeout 0 clears the receive deadline (the reader thread blocks forever;
// negotiation sets a temporary deadline so a mute peer cannot hang connect).
void set_recv_timeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

// Opens a connected client socket or throws TransportError.
int open_socket(const std::string& host, std::uint16_t port,
                std::chrono::milliseconds send_timeout) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError(std::string("socket: ") + std::strerror(errno));
  // Note: no steady-state receive timeout — the reader thread blocks until a
  // frame or shutdown; per-call deadlines are enforced on the futures.
  set_send_timeout(fd, send_timeout);
  set_nodelay(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError("invalid host address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    throw TransportError("connect " + host + ":" + std::to_string(port) + ": " +
                         std::strerror(err));
  }
  return fd;
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpServer
// ---------------------------------------------------------------------------

TcpServer::Connection::~Connection() { ::close(fd); }

TcpServer::TcpServer(std::shared_ptr<const Dispatcher> dispatcher, std::uint16_t port,
                     std::size_t worker_threads)
    : dispatcher_(std::move(dispatcher)) {
  HAMMER_CHECK(dispatcher_ != nullptr);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) throw TransportError(std::string("socket: ") + std::strerror(errno));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw TransportError(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 256) != 0) {
    ::close(listen_fd_);
    throw TransportError(std::string("listen: ") + std::strerror(errno));
  }

  epoll_fd_ = ::epoll_create1(0);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    throw TransportError(std::string("epoll setup: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  if (worker_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    worker_threads = std::clamp<std::size_t>(hw == 0 ? 2 : hw, 2, 8);
  }
  workers_.reserve(worker_threads);
  for (std::size_t i = 0; i < worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  event_thread_ = std::thread([this] { event_loop(); });
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  if (event_thread_.joinable()) event_thread_.join();

  // Unblock workers stuck writing to stalled peers, then let them drain the
  // queued requests (their sends fail fast on the shut-down sockets).
  {
    std::scoped_lock lock(connections_mu_);
    for (auto& [fd, conn] : connections_) {
      conn->dead.store(true);
      ::shutdown(fd, SHUT_RDWR);
    }
    RpcMetrics::get().server_conns.sub(static_cast<std::int64_t>(connections_.size()));
    connections_.clear();  // sockets close when the last Work reference drops
  }
  work_queue_.close();
  for (auto& w : workers_) w.join();

  ::close(listen_fd_);
  ::close(epoll_fd_);
  ::close(wake_fd_);
}

void TcpServer::event_loop() {
  std::vector<epoll_event> events(64);
  while (!stopping_.load()) {
    int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      HLOG_WARN("tcp") << "epoll_wait failed: " << std::strerror(errno);
      return;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) continue;  // stop() raised the flag; loop condition exits
      if (fd == listen_fd_) {
        accept_new();
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        std::scoped_lock lock(connections_mu_);
        auto it = connections_.find(fd);
        if (it == connections_.end()) continue;
        conn = it->second;
      }
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        drop_connection(fd);
        continue;
      }
      drain_readable(conn);
    }
  }
}

void TcpServer::accept_new() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK && !stopping_.load()) {
        HLOG_WARN("tcp") << "accept failed: " << std::strerror(errno);
      }
      return;
    }
    set_nodelay(fd);
    set_send_timeout(fd, std::chrono::milliseconds(10000));
    RpcMetrics::get().server_conns_total.add(1);
    RpcMetrics::get().server_conns.add(1);
    auto conn = std::make_shared<Connection>(fd);
    {
      std::scoped_lock lock(connections_mu_);
      connections_.emplace(fd, std::move(conn));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void TcpServer::drain_readable(const std::shared_ptr<Connection>& conn) {
  constexpr std::size_t kReadChunk = 64 * 1024;
  if (!conn->rdbuf) {
    conn->rdbuf = wire::BufferArena::global().acquire(kReadChunk);
    conn->rd_off = 0;
  }
  // Append readable bytes directly onto the arena buffer's tail. Growing the
  // buffer here is safe: any Slice handed out of it caused the buffer to be
  // retired at the end of the previous drain, so no view can dangle.
  for (;;) {
    std::size_t old_size = conn->rdbuf->size();
    conn->rdbuf->resize(old_size + kReadChunk);
    ssize_t n = ::recv(conn->fd, conn->rdbuf->data() + old_size, kReadChunk, MSG_DONTWAIT);
    if (n > 0) {
      conn->rdbuf->resize(old_size + static_cast<std::size_t>(n));
      RpcMetrics::get().server_bytes_recv.add(static_cast<std::uint64_t>(n));
      continue;
    }
    conn->rdbuf->resize(old_size);
    if (n == 0) {  // peer closed
      drop_connection(conn->fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    drop_connection(conn->fd);
    return;
  }

  // Slice complete frames off the buffer zero-copy; partial tails wait for
  // more bytes. Workers receive Slices that share the buffer's ownership.
  bool sliced = false;
  const wire::Buffer& buf = *conn->rdbuf;
  while (buf.size() - conn->rd_off >= sizeof(std::uint32_t)) {
    std::uint32_t len_be;
    std::memcpy(&len_be, buf.data() + conn->rd_off, sizeof(len_be));
    std::uint32_t len = ntohl(len_be);
    if (len > kMaxFrameBytes) {
      // Satellite of the codec redesign: announce the violation (a kError
      // control frame the client maps onto FrameTooLargeError / kProtocol)
      // instead of vanishing with a silent close that reads as a timeout.
      WireMetrics::get().oversize_server_recv.add(1);
      HLOG_WARN("tcp") << "dropping connection: frame length " << len << " exceeds max";
      send_control(conn, wire::FrameKind::kError,
                   wire::make_error_body(wire::kErrFrameTooLarge,
                                         "frame of " + std::to_string(len) +
                                             " bytes exceeds max " +
                                             std::to_string(kMaxFrameBytes)));
      drop_connection(conn->fd);
      return;
    }
    if (buf.size() - conn->rd_off < sizeof(len_be) + len) break;
    std::size_t payload_off = conn->rd_off + sizeof(len_be);
    conn->rd_off = payload_off + len;
    std::string_view payload(buf.data() + payload_off, len);
    if (wire::is_versioned(payload)) {
      wire::ParsedFrame frame;
      try {
        frame = wire::parse_versioned(payload);
      } catch (const ParseError& e) {
        HLOG_WARN("tcp") << "dropping connection: " << e.what();
        send_control(conn, wire::FrameKind::kError,
                     wire::make_error_body(wire::kErrUnsupportedVersion, e.what()));
        drop_connection(conn->fd);
        return;
      }
      switch (frame.kind) {
        case wire::FrameKind::kHello:
          // Codec negotiation: the client blocks on this reply before its
          // reader starts, so answering from the event thread is ordered
          // ahead of any response frame for this connection. The reply's
          // steady-clock stamp is the server half of the clock-offset
          // handshake.
          send_control(conn, wire::FrameKind::kHelloOk,
                       wire::make_hello_ok_body(steady_now_us()));
          break;
        case wire::FrameKind::kBinaryRequest: {
          Work work{conn,
                    wire::Slice(conn->rdbuf, payload_off + wire::kHeaderBytes,
                                len - wire::kHeaderBytes),
                    wire::WireCodec::kBinary};
          work.recv_us = steady_now_us();
          sliced = true;
          RpcMetrics::get().server_requests.add(1);
          if (!work_queue_.push(std::move(work))) return;  // queue closed: stopping
          break;
        }
        case wire::FrameKind::kTracedRequest: {
          // A binary request carrying a trace context prefix. The two
          // varints decode here on the event thread (cheap, and only traced
          // frames pay it); the body slice starts past them.
          std::string_view body = payload.substr(wire::kHeaderBytes);
          wire::TracePrefix prefix;
          try {
            prefix = wire::parse_trace_prefix(body);
          } catch (const ParseError& e) {
            HLOG_WARN("tcp") << "dropping connection: bad trace prefix: " << e.what();
            send_control(conn, wire::FrameKind::kError,
                         wire::make_error_body(kParseError, e.what()));
            drop_connection(conn->fd);
            return;
          }
          std::size_t prefix_bytes = body.size() - prefix.rest.size();
          Work work{conn,
                    wire::Slice(conn->rdbuf, payload_off + wire::kHeaderBytes + prefix_bytes,
                                len - wire::kHeaderBytes - prefix_bytes),
                    wire::WireCodec::kBinary};
          work.trace = telemetry::TraceContext{prefix.trace_id, prefix.span_id};
          work.recv_us = steady_now_us();
          sliced = true;
          RpcMetrics::get().server_requests.add(1);
          if (!work_queue_.push(std::move(work))) return;  // queue closed: stopping
          break;
        }
        default:
          HLOG_DEBUG("tcp") << "ignoring unexpected frame kind "
                            << static_cast<int>(frame.kind);
          break;
      }
    } else {
      Work work{conn, wire::Slice(conn->rdbuf, payload_off, len), wire::WireCodec::kJson};
      work.recv_us = steady_now_us();
      sliced = true;
      RpcMetrics::get().server_requests.add(1);
      if (!work_queue_.push(std::move(work))) return;  // queue closed: stopping
    }
  }

  if (sliced) {
    // Outstanding Slices pin the old buffer; retire it to them and carry the
    // partial tail (if any) into a fresh buffer we are free to grow.
    std::size_t tail = conn->rdbuf->size() - conn->rd_off;
    wire::BufferPtr fresh = wire::BufferArena::global().acquire(std::max(tail, kReadChunk));
    fresh->append(conn->rdbuf->data() + conn->rd_off, tail);
    conn->rdbuf = std::move(fresh);
    conn->rd_off = 0;
  } else if (conn->rd_off > 0) {
    // Only control frames consumed: no views exist, compact in place.
    conn->rdbuf->erase(0, conn->rd_off);
    conn->rd_off = 0;
  }
}

void TcpServer::drop_connection(int fd) {
  std::shared_ptr<Connection> conn;
  {
    std::scoped_lock lock(connections_mu_);
    auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    conn = std::move(it->second);
    connections_.erase(it);
  }
  RpcMetrics::get().server_conns.sub(1);
  RpcMetrics::get().server_dropped.add(1);
  conn->dead.store(true);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  // The fd closes in ~Connection once in-flight workers release their
  // references; shutdown here so their writes fail instead of blocking.
  ::shutdown(fd, SHUT_RDWR);
}

void TcpServer::send_control(const std::shared_ptr<Connection>& conn, wire::FrameKind kind,
                             const std::string& body) {
  std::string payload;
  payload.reserve(wire::kHeaderBytes + body.size());
  wire::put_header(payload, kind);
  payload += body;
  std::scoped_lock lock(conn->write_mu);
  if (conn->dead.load()) return;
  try {
    send_frame(conn->fd, payload);
    RpcMetrics::get().server_bytes_sent.add(sizeof(std::uint32_t) + payload.size());
  } catch (const TransportError& e) {
    conn->dead.store(true);
    if (!stopping_.load()) HLOG_DEBUG("tcp") << "control write failed: " << e.what();
  }
}

void TcpServer::install_fault_injector(std::shared_ptr<fault::FaultInjector> faults) {
  std::scoped_lock lock(faults_mu_);
  faults_ = std::move(faults);
}

std::shared_ptr<fault::FaultInjector> TcpServer::fault_injector() const {
  std::scoped_lock lock(faults_mu_);
  return faults_;
}

void TcpServer::install_ingress_throttle(std::shared_ptr<fault::IngressThrottle> throttle) {
  std::scoped_lock lock(faults_mu_);
  throttle_ = std::move(throttle);
}

std::shared_ptr<fault::IngressThrottle> TcpServer::ingress_throttle() const {
  std::scoped_lock lock(faults_mu_);
  return throttle_;
}

void TcpServer::worker_loop() {
  while (auto work = work_queue_.pop()) {
    // Admission gate: under an ingress throttle every request frame —
    // whatever its codec — waits for a token before dispatch, like
    // slow_loris blocking a worker thread (the event loop keeps draining
    // sockets; only dispatch capacity collapses).
    if (std::shared_ptr<fault::IngressThrottle> throttle = ingress_throttle()) {
      if (stopping_.load()) continue;
      throttle->admit();
    }
    if (work->codec == wire::WireCodec::kBinary) {
      reply_binary(*work);
    } else {
      reply_json(*work);
    }
  }
}

void TcpServer::reply_json(const Work& work) {
  // JSON frames carry any trace context inside params (`_trace`), so
  // whether this frame is traced is only known after parsing; publish the
  // receive/dequeue stamps and let the dispatcher emit the queue-wait span
  // for the first traced call it meets.
  telemetry::set_server_rx(work.recv_us, steady_now_us());
  // Pooled response buffer: dispatch serializes straight into it, and its
  // capacity survives for the next response this worker produces.
  wire::BufferPtr out = wire::BufferArena::global().acquire(work.request.size() + 256);
  dispatcher_->dispatch_text_into(work.request.view(), *out);
  telemetry::clear_server_rx();
  if (std::shared_ptr<fault::FaultInjector> faults = fault_injector()) {
    // Dropped response: the request DID execute — the client sees a timeout
    // on an operation the SUT may have applied, the in-doubt case idempotent
    // resubmission exists for.
    if (faults->should(fault::FaultKind::kDropResponse)) return;
    if (faults->should(fault::FaultKind::kSlowLoris)) {
      std::this_thread::sleep_for(std::chrono::microseconds(faults->plan().slow_loris_us));
    }
  }
  std::scoped_lock lock(work.conn->write_mu);
  if (work.conn->dead.load()) return;
  try {
    send_frame(work.conn->fd, *out);
    RpcMetrics::get().server_bytes_sent.add(sizeof(std::uint32_t) + out->size());
  } catch (const TransportError& e) {
    work.conn->dead.store(true);
    if (!stopping_.load()) HLOG_DEBUG("tcp") << "response write failed: " << e.what();
  }
}

void TcpServer::reply_binary(const Work& work) {
  // Traced frame: install the context for this worker so the decode span
  // below, the dispatcher's queue-wait/handler spans and any chain-level
  // spans all record under it. Untraced frames skip all of it.
  std::optional<telemetry::ScopedTrace> trace_scope;
  if (work.trace.sampled()) {
    telemetry::set_server_rx(work.recv_us, steady_now_us());
    trace_scope.emplace(work.trace);
  }
  std::vector<wire::DecodedCall> calls;
  try {
    telemetry::ScopedSpan decode_span(telemetry::SpanKind::kFrameDecode);
    calls = wire::decode_request_body(work.request.view());
  } catch (const ParseError& e) {
    HLOG_WARN("tcp") << "malformed binary request: " << e.what();
    send_control(work.conn, wire::FrameKind::kError,
                 wire::make_error_body(kParseError, e.what()));
    work.conn->dead.store(true);
    ::shutdown(work.conn->fd, SHUT_RDWR);  // event thread reaps it via EPOLLHUP
    return;
  }
  wire::BufferPtr out = wire::BufferArena::global().acquire(work.request.size() + 256);
  wire::put_header(*out, wire::FrameKind::kBinaryResponse);
  wire::put_varint(*out, calls.size());
  for (wire::DecodedCall& call : calls) {
    // Same method tables and exception→code mapping as the JSON-RPC path
    // (Dispatcher::invoke), minus the envelope.
    CallOutcome outcome = dispatcher_->invoke(call.method, call.params);
    wire::ResponseEntry entry;
    entry.id = call.id;
    entry.error_code = outcome.error_code;
    entry.error_message = std::move(outcome.error_message);
    entry.result = std::move(outcome.result);
    wire::encode_response_entry(*out, entry);
  }
  if (trace_scope) telemetry::clear_server_rx();
  if (std::shared_ptr<fault::FaultInjector> faults = fault_injector()) {
    if (faults->should(fault::FaultKind::kDropResponse)) return;
    if (faults->should(fault::FaultKind::kSlowLoris)) {
      std::this_thread::sleep_for(std::chrono::microseconds(faults->plan().slow_loris_us));
    }
  }
  std::scoped_lock lock(work.conn->write_mu);
  if (work.conn->dead.load()) return;
  try {
    send_frame(work.conn->fd, *out);
    RpcMetrics::get().server_bytes_sent.add(sizeof(std::uint32_t) + out->size());
  } catch (const TransportError& e) {
    work.conn->dead.store(true);
    if (!stopping_.load()) HLOG_DEBUG("tcp") << "response write failed: " << e.what();
  }
}

// ---------------------------------------------------------------------------
// TcpChannel
// ---------------------------------------------------------------------------

TcpChannel::TcpChannel(const std::string& host, std::uint16_t port, const ClientConfig& config)
    : host_(host), port_(port), timeout_(config.timeout), preference_(config.codec) {
  fd_ = open_socket(host_, port_, timeout_);
  try {
    negotiate(fd_);
  } catch (...) {
    ::close(fd_);
    throw;
  }
  reader_ = std::thread([this, fd = fd_] { reader_loop(fd); });
}

void TcpChannel::install_fault_injector(std::shared_ptr<fault::FaultInjector> faults) {
  faults_ = std::move(faults);
}

void TcpChannel::negotiate(int fd) {
  peer_traces_.store(false, std::memory_order_relaxed);
  peer_api_.store(-1, std::memory_order_relaxed);
  clock_offset_us_.store(0, std::memory_order_relaxed);
  if (preference_ == CodecPreference::kJsonOnly) {
    codec_.store(wire::WireCodec::kJson, std::memory_order_relaxed);
    WireMetrics::get().negotiated_json.add(1);
    return;
  }
  // Offer binary with one blocking round trip before the reader thread
  // exists, so the reply cannot race with response frames. Deliberately not
  // routed through inject_send_faults: negotiation is connection plumbing,
  // and burning seeded fault draws on it would make the draw sequence
  // depend on reconnect count.
  std::string hello;
  wire::put_header(hello, wire::FrameKind::kHello);
  hello += wire::make_hello_body(steady_now_us());
  wire::WireCodec outcome = wire::WireCodec::kJson;
  try {
    std::int64_t send_us = steady_now_us();
    send_frame(fd, hello);
    set_recv_timeout(fd, timeout_);
    std::string reply;
    recv_frame(fd, reply, /*eof_ok=*/false);
    std::int64_t recv_us = steady_now_us();
    if (wire::is_versioned(reply)) {
      wire::ParsedFrame frame = wire::parse_versioned(reply);
      if (frame.kind == wire::FrameKind::kHelloOk) {
        if (wire::offers_binary(frame.body)) outcome = wire::WireCodec::kBinary;
        // Trace feature + clock offset ride the same round trip: the server
        // stamp is assumed to sit at the RTT midpoint (NTP-style). A peer
        // predating the handshake simply omits both keys.
        peer_traces_.store(wire::offers_trace(frame.body), std::memory_order_relaxed);
        peer_api_.store(wire::hello_api_version(frame.body), std::memory_order_relaxed);
        std::int64_t server_now = wire::hello_now_us(frame.body);
        if (server_now >= 0) {
          clock_offset_us_.store(
              telemetry::ClockOffset::estimate(send_us, server_now, recv_us)
                  .remote_minus_local_us,
              std::memory_order_relaxed);
        }
      }
    }
    // A non-versioned reply is a legacy server JSON-parsing our hello and
    // answering with a parse-error response: fall back to JSON.
  } catch (const TimeoutError&) {
    // The peer ignored the hello entirely (pre-framing server): JSON.
  } catch (const ParseError&) {
    // Versioned-looking reply we cannot parse: JSON.
  }
  // Other TransportErrors propagate — the connection itself is unusable.
  set_recv_timeout(fd, std::chrono::milliseconds(0));
  codec_.store(outcome, std::memory_order_relaxed);
  if (outcome == wire::WireCodec::kBinary) {
    WireMetrics::get().negotiated_binary.add(1);
  } else {
    WireMetrics::get().negotiated_json.add(1);
  }
  HLOG_DEBUG("tcp") << "negotiated " << wire::to_string(outcome) << " codec with " << host_
                    << ":" << port_;
}

void TcpChannel::ensure_connected() {
  std::scoped_lock conn_lock(write_mu_);
  {
    std::scoped_lock lock(pending_mu_);
    if (!broken_) return;
  }
  // The reader exits after fail_all set broken_, so the join is brief; any
  // calls arriving while we hold write_mu_ wait for the fresh socket.
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
  fd_ = open_socket(host_, port_, timeout_);  // throws if the server stays down
  try {
    negotiate(fd_);  // the replacement server may speak a different codec
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
  {
    std::scoped_lock lock(pending_mu_);
    broken_ = false;
    break_reason_ = nullptr;
  }
  reader_ = std::thread([this, fd = fd_] { reader_loop(fd); });
  RpcMetrics::get().client_reconnects.add(1);
  HLOG_DEBUG("tcp") << "reconnected to " << host_ << ":" << port_;
}

void TcpChannel::inject_send_faults() {
  if (!faults_) return;
  if (faults_->should(fault::FaultKind::kClientLatency)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(faults_->plan().client_latency_us));
  }
  if (faults_->should(fault::FaultKind::kConnReset)) {
    // Kill the real socket so the reader observes the break exactly like a
    // peer reset, then fail this call before its frame ever leaves. Mark the
    // channel broken here rather than waiting for the reader to notice EOF:
    // a retry must always take the reconnect path, never race the reader and
    // burn a fault draw on a send into the dead socket (that would make the
    // seeded draw sequence scheduling-dependent).
    std::scoped_lock lock(write_mu_);
    ::shutdown(fd_, SHUT_RDWR);
    {
      std::scoped_lock plock(pending_mu_);
      broken_ = true;
      if (!break_reason_) {
        break_reason_ = std::make_exception_ptr(TransportError("injected connection reset"));
      }
    }
    throw TransportError("injected connection reset");
  }
}

TcpChannel::~TcpChannel() {
  {
    std::scoped_lock lock(pending_mu_);
    broken_ = true;
    if (!break_reason_) {
      break_reason_ = std::make_exception_ptr(TransportError("channel closed"));
    }
  }
  ::shutdown(fd_, SHUT_RDWR);  // wakes the reader, which fails any pending calls
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
}

std::future<json::Value> TcpChannel::send_request(const std::string& method, json::Value params,
                                                  std::uint64_t& id_out,
                                                  const telemetry::TraceContext& trace) {
  std::future<json::Value> future;
  {
    std::scoped_lock lock(pending_mu_);
    if (broken_) std::rethrow_exception(break_reason_);
    id_out = next_id_++;
    future = pending_[id_out].promise.get_future();
    // Inside the lock so fail_all/complete can never decrement first.
    RpcMetrics::get().inflight.add(1);
  }
  const bool traced = trace.sampled() && peer_traces();
  const wire::WireCodec codec = codec_.load(std::memory_order_relaxed);
  wire::BufferPtr frame = wire::BufferArena::global().acquire(256);
  if (codec == wire::WireCodec::kBinary) {
    if (traced) {
      wire::put_header(*frame, wire::FrameKind::kTracedRequest);
      wire::put_trace_prefix(*frame, trace.trace_id, trace.span_id);
    } else {
      wire::put_header(*frame, wire::FrameKind::kBinaryRequest);
    }
    wire::put_varint(*frame, 1);  // a single call is a batch of one
    wire::encode_call(*frame, id_out, method, params);
  } else {
    if (traced && params.is_object()) {
      params["_trace"] = json::object({{"t", static_cast<std::int64_t>(trace.trace_id)},
                                       {"s", static_cast<std::int64_t>(trace.span_id)}});
    }
    make_request(id_out, method, std::move(params)).dump_into(*frame);
  }
  if (frame->size() > kMaxFrameBytes) {
    forget(id_out);
    WireMetrics::get().oversize_client_send.add(1);
    throw FrameTooLargeError("request frame of " + std::to_string(frame->size()) +
                             " bytes (max " + std::to_string(kMaxFrameBytes) +
                             "); the channel remains usable");
  }
  try {
    inject_send_faults();
    std::scoped_lock lock(write_mu_);
    send_frame(fd_, *frame);
  } catch (...) {
    forget(id_out);
    throw;
  }
  RpcMetrics::get().client_frames_sent.add(1);
  RpcMetrics::get().client_bytes_sent.add(sizeof(std::uint32_t) + frame->size());
  return future;
}

json::Value TcpChannel::call(const std::string& method, json::Value params,
                             const CallOptions& opts) {
  ensure_connected();
  RpcMetrics::get().calls_single.add(1);
  std::uint64_t id = 0;
  std::future<json::Value> future = send_request(method, std::move(params), id, opts.trace);
  if (future.wait_for(effective_deadline(opts)) == std::future_status::timeout) {
    forget(id);  // a late response for this id is silently dropped
    throw TimeoutError("call " + method);
  }
  return future.get();
}

std::future<json::Value> TcpChannel::call_async(const std::string& method, json::Value params,
                                                const CallOptions& opts) {
  ensure_connected();
  RpcMetrics::get().calls_async.add(1);
  std::uint64_t id = 0;
  return send_request(method, std::move(params), id, opts.trace);
}

namespace {

// Moves one binary response entry into a caller's reply slot. Error entries
// never construct an exception; the message carries the exact string the
// JSON path's RpcError::what() would, so BatchReply consumers are
// codec-blind.
void fill_reply(BatchReply& reply, wire::ResponseEntry& entry) {
  if (entry.ok()) {
    reply.result = std::move(entry.result);
  } else {
    reply.error_code = entry.error_code;
    reply.error_message =
        "rpc error " + std::to_string(entry.error_code) + ": " + entry.error_message;
  }
}

// Decodes a direct-handoff binary response frame straight into the caller's
// reply vector — ids map to slots by offset from first_id, so there is no
// table lookup, no ResponseEntry staging and no cross-thread tree at all.
// Returns false (leaving `out` unusable) if the frame is not a well-formed
// response covering exactly [first_id, first_id + n): the caller then keeps
// waiting, which matches the legacy drop-malformed-frame behavior.
bool decode_direct(std::string_view body, std::uint64_t first_id, std::size_t n,
                   std::vector<BatchReply>& out) {
  try {
    const char* p = body.data();
    const char* end = p + body.size();
    if (wire::get_varint(p, end) != n) return false;
    out.clear();
    out.resize(n);
    std::vector<bool> seen(n, false);
    for (std::size_t k = 0; k < n; ++k) {
      std::uint64_t idx = wire::get_varint(p, end) - first_id;
      if (idx >= n || seen[idx]) return false;
      seen[idx] = true;
      if (p >= end) return false;
      unsigned char status = static_cast<unsigned char>(*p++);
      BatchReply& reply = out[idx];
      if (status == 0) {
        reply.result = wire::decode_value(p, end);
      } else if (status == 1) {
        reply.error_code = static_cast<int>(wire::get_zigzag(p, end));
        std::uint64_t len = wire::get_varint(p, end);
        if (len > static_cast<std::uint64_t>(end - p)) return false;
        // Same text RpcError::what() would produce on the JSON path.
        reply.error_message = "rpc error " + std::to_string(reply.error_code) + ": ";
        reply.error_message.append(p, static_cast<std::size_t>(len));
        p += len;
      } else {
        return false;
      }
    }
    return p == end;
  } catch (const ParseError&) {
    return false;
  }
}

}  // namespace

std::vector<BatchReply> TcpChannel::call_batch(const std::vector<BatchCall>& calls,
                                               const CallOptions& opts) {
  if (calls.empty()) return {};
  ensure_connected();
  RpcMetrics::get().calls_batch.add(calls.size());
  RpcMetrics::get().batch_size.record(static_cast<std::int64_t>(calls.size()));
  // One shared completion group for the whole batch: the reader writes
  // straight into its reply slots, so a 64-call batch costs one mutex and
  // one condvar instead of 64 promise/future shared states. The batch's
  // consecutive ids register as a single range entry — one map node per
  // batch, not one hash-table node per call.
  auto group = std::make_shared<BatchGroup>();
  group->remaining = calls.size();
  group->replies.resize(calls.size());
  group->filled.assign(calls.size(), false);
  std::uint64_t first_id = 0;
  {
    std::scoped_lock lock(pending_mu_);
    if (broken_) std::rethrow_exception(break_reason_);
    first_id = next_id_;
    next_id_ += calls.size();
    batch_ranges_.emplace(first_id,
                          BatchRange{static_cast<std::uint32_t>(calls.size()), group});
    RpcMetrics::get().inflight.add(static_cast<std::int64_t>(calls.size()));
  }
  const bool traced = opts.trace.sampled() && peer_traces();
  const wire::WireCodec codec = codec_.load(std::memory_order_relaxed);
  wire::BufferPtr frame = wire::BufferArena::global().acquire(64 * calls.size());
  if (codec == wire::WireCodec::kBinary) {
    // One frame, one writev: [hdr][varint n][call entries...] — no JSON-RPC
    // envelope objects materialize at all. A traced frame prepends the
    // context before the call count; the whole batch shares one trace.
    if (traced) {
      wire::put_header(*frame, wire::FrameKind::kTracedRequest);
      wire::put_trace_prefix(*frame, opts.trace.trace_id, opts.trace.span_id);
    } else {
      wire::put_header(*frame, wire::FrameKind::kBinaryRequest);
    }
    wire::put_varint(*frame, calls.size());
    for (std::size_t i = 0; i < calls.size(); ++i) {
      wire::encode_call(*frame, first_id + i, calls[i].method, calls[i].params);
    }
  } else {
    json::Array entries;
    entries.reserve(calls.size());
    for (std::size_t i = 0; i < calls.size(); ++i) {
      if (traced && calls[i].params.is_object()) {
        json::Value params = calls[i].params;
        params["_trace"] =
            json::object({{"t", static_cast<std::int64_t>(opts.trace.trace_id)},
                          {"s", static_cast<std::int64_t>(opts.trace.span_id)}});
        entries.push_back(make_request(first_id + i, calls[i].method, std::move(params)));
      } else {
        entries.push_back(make_request(first_id + i, calls[i].method, calls[i].params));
      }
    }
    json::Value(std::move(entries)).dump_into(*frame);
  }
  if (frame->size() > kMaxFrameBytes) {
    forget_range(first_id, group);
    WireMetrics::get().oversize_client_send.add(1);
    throw FrameTooLargeError("batch frame of " + std::to_string(frame->size()) +
                             " bytes (max " + std::to_string(kMaxFrameBytes) +
                             "); split the batch");
  }
  try {
    inject_send_faults();
    std::scoped_lock lock(write_mu_);
    send_frame(fd_, *frame);
  } catch (...) {
    forget_range(first_id, group);
    throw;
  }
  RpcMetrics::get().client_frames_sent.add(1);
  RpcMetrics::get().client_bytes_sent.add(sizeof(std::uint32_t) + frame->size());

  // One deadline for the whole batch: it is a single logical round trip.
  auto deadline = std::chrono::steady_clock::now() + effective_deadline(opts);
  {
    std::unique_lock glock(group->mu);
    for (;;) {
      bool done = group->cv.wait_until(glock, deadline, [&group] {
        return group->remaining == 0 || group->failure != nullptr || group->frame_ready;
      });
      if (group->frame_ready) {
        // Direct frame handoff: the reader parked the raw response frame
        // here; decode on THIS thread, straight into the reply vector —
        // every tree node is allocated, read and freed on the consuming
        // core, and nothing funnels through the per-slot fill path.
        wire::Slice raw = std::exchange(group->frame, wire::Slice{});
        group->frame_ready = false;
        glock.unlock();
        std::vector<BatchReply> replies;
        if (decode_direct(raw.view(), first_id, calls.size(), replies)) {
          forget_range(first_id, group);
          return replies;
        }
        // Malformed frame: drop it (matching the JSON path's drop-bad-frame
        // semantics) and keep waiting — the batch times out unless a valid
        // frame still arrives.
        HLOG_WARN("tcp") << "dropping malformed direct-handoff frame for batch at id "
                         << first_id;
        glock.lock();
        continue;
      }
      if (group->failure) {
        // The connection died mid-batch: the whole batch failed, exactly like a
        // single call. Late stragglers for these ids are silently dropped.
        std::exception_ptr failure = group->failure;
        glock.unlock();
        forget_range(first_id, group);
        std::rethrow_exception(failure);
      }
      if (!done) {
        glock.unlock();
        forget_range(first_id, group);
        throw TimeoutError("batch of " + std::to_string(calls.size()) + " calls");
      }
      break;  // remaining == 0: every slot filled by the reader
    }
  }
  forget_range(first_id, group);  // all slots filled: just drops the map entry
  return std::move(group->replies);
}

void TcpChannel::forget(std::uint64_t id) {
  std::size_t erased;
  {
    std::scoped_lock lock(pending_mu_);
    erased = pending_.erase(id);
  }
  if (erased) RpcMetrics::get().inflight.sub(1);
}

TcpChannel::BatchRange* TcpChannel::find_range(std::uint64_t id, std::uint32_t& slot_out) {
  auto it = batch_ranges_.upper_bound(id);
  if (it == batch_ranges_.begin()) return nullptr;
  --it;
  if (id - it->first >= it->second.count) return nullptr;
  slot_out = static_cast<std::uint32_t>(id - it->first);
  return &it->second;
}

void TcpChannel::complete(const json::Value& response) {
  if (!response.is_object() || !response.contains("id") || !response.at("id").is_int()) {
    HLOG_DEBUG("tcp") << "dropping response without a usable id";
    return;
  }
  auto id = static_cast<std::uint64_t>(response.at("id").as_int());
  std::promise<json::Value> promise;
  bool single = false;
  std::shared_ptr<BatchGroup> group;
  std::uint32_t slot = 0;
  {
    std::scoped_lock lock(pending_mu_);
    auto it = pending_.find(id);
    if (it != pending_.end()) {
      promise = std::move(it->second.promise);
      pending_.erase(it);
      single = true;
    } else {
      BatchRange* range = find_range(id, slot);
      if (!range) return;  // timed out and forgotten, or stray
      group = range->group;
    }
  }
  if (single) {
    RpcMetrics::get().inflight.sub(1);
    try {
      promise.set_value(take_result(response));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
    return;
  }
  BatchReply reply;
  try {
    reply.result = take_result(response);
  } catch (const RpcError& e) {
    reply.error_code = e.code();
    reply.error_message = e.what();
  } catch (...) {
    // Malformed entry: fail the whole batch, like a transport error.
    abandon_group(group, std::current_exception());
    return;
  }
  {
    std::scoped_lock glock(group->mu);
    if (group->abandoned || group->filled[slot]) return;  // late or duplicate
    group->replies[slot] = std::move(reply);
    group->filled[slot] = true;
    if (--group->remaining == 0) group->cv.notify_one();
  }
  RpcMetrics::get().inflight.sub(1);
}

void TcpChannel::complete_binary(std::vector<wire::ResponseEntry>& entries) {
  // Resolve every id in one pass under the table lock: singles are claimed
  // (erased) outright, batch hits just record (group, slot) — the range
  // entry stays put, so a 64-call batch costs ZERO table mutations here.
  struct RangeHit {
    wire::ResponseEntry* entry;
    BatchGroup* group;  // kept alive by `keepalive`
    std::uint32_t slot;
  };
  std::vector<std::pair<wire::ResponseEntry*, std::promise<json::Value>>> singles;
  std::vector<RangeHit> hits;
  // One shared_ptr per distinct group (normally exactly one per frame), not
  // per entry: pins the groups after pending_mu_ drops without paying two
  // refcount RMWs per call.
  std::vector<std::shared_ptr<BatchGroup>> keepalive;
  hits.reserve(entries.size());
  {
    std::scoped_lock lock(pending_mu_);
    for (wire::ResponseEntry& entry : entries) {
      auto it = pending_.find(entry.id);
      if (it != pending_.end()) {
        singles.emplace_back(&entry, std::move(it->second.promise));
        pending_.erase(it);
        continue;
      }
      std::uint32_t slot = 0;
      if (BatchRange* range = find_range(entry.id, slot)) {
        hits.push_back(RangeHit{&entry, range->group.get(), slot});
        if (keepalive.empty() || keepalive.back().get() != range->group.get()) {
          keepalive.push_back(range->group);
        }
      }
      // else: timed out and forgotten, or stray — drop silently.
    }
  }
  if (!singles.empty()) {
    RpcMetrics::get().inflight.sub(static_cast<std::int64_t>(singles.size()));
    for (auto& [entry, promise] : singles) {
      if (entry->ok()) {
        promise.set_value(std::move(entry->result));
      } else {
        // Same exception the JSON path's take_result would raise, so
        // everything above the channel (adapters, taxonomy) is codec-blind.
        promise.set_exception(
            std::make_exception_ptr(RpcError(entry->error_code, entry->error_message)));
      }
    }
  }
  // Fill each group's run of entries under ONE lock — the whole frame is
  // normally one call_batch, so this is two mutex acquisitions per frame
  // (table + group) instead of two per call.
  for (std::size_t i = 0; i < hits.size();) {
    BatchGroup& group = *hits[i].group;
    std::int64_t newly = 0;
    {
      std::scoped_lock glock(group.mu);
      while (i < hits.size() && hits[i].group == &group) {
        const std::uint32_t slot = hits[i].slot;
        if (!group.abandoned && !group.filled[slot]) {
          fill_reply(group.replies[slot], *hits[i].entry);
          group.filled[slot] = true;
          --group.remaining;
          ++newly;
        }
        ++i;
      }
      if (newly > 0 && group.remaining == 0) group.cv.notify_one();
    }
    if (newly > 0) RpcMetrics::get().inflight.sub(newly);
  }
}

void TcpChannel::abandon_group(const std::shared_ptr<BatchGroup>& group,
                               std::exception_ptr reason) {
  std::size_t unfilled = 0;
  {
    std::scoped_lock glock(group->mu);
    if (reason && !group->failure) group->failure = reason;
    if (!group->abandoned) {
      group->abandoned = true;
      unfilled = group->remaining;
    }
    group->cv.notify_one();
  }
  if (unfilled > 0) RpcMetrics::get().inflight.sub(static_cast<std::int64_t>(unfilled));
}

void TcpChannel::forget_range(std::uint64_t first_id,
                              const std::shared_ptr<BatchGroup>& group) {
  {
    std::scoped_lock lock(pending_mu_);
    batch_ranges_.erase(first_id);
  }
  // After the erase no new fills can resolve this range; abandon_group
  // linearizes against in-flight fills on the group mutex, so the gauge is
  // reconciled exactly once per never-filled slot.
  abandon_group(group, nullptr);
}

void TcpChannel::fail_all(std::exception_ptr reason) {
  std::unordered_map<std::uint64_t, PendingSlot> orphans;
  std::map<std::uint64_t, BatchRange> orphan_ranges;
  {
    std::scoped_lock lock(pending_mu_);
    broken_ = true;
    if (!break_reason_) break_reason_ = reason;
    orphans.swap(pending_);
    orphan_ranges.swap(batch_ranges_);
  }
  if (!orphans.empty()) {
    RpcMetrics::get().inflight.sub(static_cast<std::int64_t>(orphans.size()));
    for (auto& [id, slot] : orphans) slot.promise.set_exception(reason);
  }
  for (auto& [first_id, range] : orphan_ranges) abandon_group(range.group, reason);
}

// Tries to hand a binary response frame to the batch caller it answers,
// without decoding it: peek the count and first id, and if they cover one
// registered range exactly, park a zero-copy Slice on the group and wake
// the caller. Returns false when the frame needs the reader-side
// (complete_binary) path instead — single calls, or anything irregular.
bool TcpChannel::try_handoff(const wire::BufferPtr& buf, std::string_view body) {
  const char* p = body.data();
  const char* end = p + body.size();
  std::uint64_t count = 0;
  std::uint64_t first = 0;
  try {
    count = wire::get_varint(p, end);
    if (count == 0) return false;
    first = wire::get_varint(p, end);
  } catch (const ParseError&) {
    return false;  // malformed; the fallback path reports it
  }
  std::shared_ptr<BatchGroup> group;
  {
    std::scoped_lock lock(pending_mu_);
    std::uint32_t slot = 0;
    BatchRange* range = find_range(first, slot);
    if (!range || slot != 0 || count != range->count) return false;
    group = range->group;
  }
  std::scoped_lock glock(group->mu);
  if (group->abandoned || group->frame_ready) return true;  // late/duplicate: drop
  group->frame = wire::Slice(buf, static_cast<std::size_t>(body.data() - buf->data()),
                             body.size());
  group->frame_ready = true;
  group->cv.notify_one();
  return true;
}

void TcpChannel::reader_loop(int fd) {
  std::vector<wire::ResponseEntry> entries;  // reused across fallback frames
  for (;;) {
    wire::BufferPtr buf;  // pooled: capacity recycles through the arena
    try {
      if (!recv_frame_pooled(fd, buf, /*eof_ok=*/true)) {
        fail_all(std::make_exception_ptr(TransportError("connection closed by server")));
        return;
      }
    } catch (const TransportError&) {  // includes FrameTooLargeError on inbound oversize
      fail_all(std::current_exception());
      return;
    }
    const std::string_view payload(*buf);
    RpcMetrics::get().client_frames_recv.add(1);
    RpcMetrics::get().client_bytes_recv.add(sizeof(std::uint32_t) + payload.size());
    if (wire::is_versioned(payload)) {
      try {
        wire::ParsedFrame frame = wire::parse_versioned(payload);
        if (frame.kind == wire::FrameKind::kBinaryResponse) {
          if (!try_handoff(buf, frame.body)) {
            wire::decode_response_into(frame.body, entries);
            complete_binary(entries);
          }
        } else if (frame.kind == wire::FrameKind::kError) {
          // The server's last words before dropping us; distinct taxonomy
          // for the oversize case so callers never misread it as a timeout.
          int code = kInternalError;
          std::string message = "unspecified server error";
          try {
            json::Value body = json::Value::parse(frame.body);
            code = static_cast<int>(body.get_int("code", code));
            message = body.get_string("message", message);
          } catch (const ParseError&) {
          }
          std::exception_ptr reason;
          if (code == wire::kErrFrameTooLarge) {
            reason = std::make_exception_ptr(
                FrameTooLargeError("server rejected frame: " + message));
          } else {
            reason = std::make_exception_ptr(
                TransportError("server error " + std::to_string(code) + ": " + message));
          }
          fail_all(reason);
          return;
        }
        // Stray hello traffic (negotiation happens pre-reader): ignore.
      } catch (const std::exception& e) {
        HLOG_WARN("tcp") << "dropping malformed response frame: " << e.what();
      }
      continue;
    }
    try {
      json::Value response = json::Value::parse(payload);
      if (response.is_array()) {
        // Batch response: complete every contained reply independently.
        for (const json::Value& entry : response.as_array()) complete(entry);
      } else {
        complete(response);
      }
    } catch (const std::exception& e) {
      HLOG_WARN("tcp") << "dropping malformed response frame: " << e.what();
    }
  }
}

}  // namespace hammer::rpc
