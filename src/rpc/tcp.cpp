#include "rpc/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/errors.hpp"
#include "util/logging.hpp"

namespace hammer::rpc {

namespace {

void write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TransportError(std::string("send: ") + std::strerror(errno));
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

// Returns false on clean EOF at a frame boundary.
bool read_all(int fd, void* data, std::size_t len, bool eof_ok) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n == 0) {
      if (eof_ok && got == 0) return false;
      throw TransportError("connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) throw TimeoutError("recv");
      throw TransportError(std::string("recv: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void send_frame(int fd, const std::string& payload) {
  std::uint32_t len = htonl(static_cast<std::uint32_t>(payload.size()));
  write_all(fd, &len, sizeof(len));
  write_all(fd, payload.data(), payload.size());
}

bool recv_frame(int fd, std::string& payload, bool eof_ok) {
  std::uint32_t len_be = 0;
  if (!read_all(fd, &len_be, sizeof(len_be), eof_ok)) return false;
  std::uint32_t len = ntohl(len_be);
  if (len > 64u * 1024 * 1024) throw TransportError("frame exceeds 64MiB");
  payload.resize(len);
  if (len > 0) read_all(fd, payload.data(), len, false);
  return true;
}

}  // namespace

TcpServer::TcpServer(std::shared_ptr<const Dispatcher> dispatcher, std::uint16_t port)
    : dispatcher_(std::move(dispatcher)) {
  HAMMER_CHECK(dispatcher_ != nullptr);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw TransportError(std::string("socket: ") + std::strerror(errno));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw TransportError(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw TransportError(std::string("listen: ") + std::strerror(errno));
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::scoped_lock lock(workers_mu_);
    workers.swap(workers_);
  }
  for (auto& w : workers) w.join();
}

void TcpServer::accept_loop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      HLOG_WARN("tcp") << "accept failed: " << std::strerror(errno);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::scoped_lock lock(workers_mu_);
    workers_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void TcpServer::serve_connection(int fd) {
  std::string request;
  try {
    while (!stopping_.load()) {
      if (!recv_frame(fd, request, /*eof_ok=*/true)) break;
      send_frame(fd, dispatcher_->dispatch_text(request));
    }
  } catch (const TransportError& e) {
    if (!stopping_.load()) HLOG_DEBUG("tcp") << "connection error: " << e.what();
  }
  ::close(fd);
}

TcpChannel::TcpChannel(const std::string& host, std::uint16_t port,
                       std::chrono::milliseconds timeout) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw TransportError(std::string("socket: ") + std::strerror(errno));

  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw TransportError("invalid host address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd_);
    throw TransportError("connect " + host + ":" + std::to_string(port) + ": " +
                         std::strerror(err));
  }
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

json::Value TcpChannel::call(const std::string& method, json::Value params) {
  std::scoped_lock lock(mu_);
  json::Value request = make_request(next_id_++, method, std::move(params));
  send_frame(fd_, request.dump());
  std::string response_text;
  recv_frame(fd_, response_text, /*eof_ok=*/false);
  return take_result(json::Value::parse(response_text));
}

}  // namespace hammer::rpc
