#include "rpc/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "telemetry/registry.hpp"
#include "util/errors.hpp"
#include "util/logging.hpp"

namespace hammer::rpc {

namespace {

// Transport telemetry on the process-global registry. References are
// resolved once; the per-event cost is one relaxed shard-local add.
struct RpcMetrics {
  telemetry::Counter& client_frames_sent;
  telemetry::Counter& client_frames_recv;
  telemetry::Counter& client_bytes_sent;
  telemetry::Counter& client_bytes_recv;
  telemetry::Counter& calls_single;
  telemetry::Counter& calls_async;
  telemetry::Counter& calls_batch;
  telemetry::StageHistogram& batch_size;
  telemetry::Gauge& inflight;
  telemetry::Counter& client_reconnects;
  telemetry::Counter& server_conns_total;
  telemetry::Gauge& server_conns;
  telemetry::Counter& server_dropped;
  telemetry::Counter& server_requests;
  telemetry::Counter& server_bytes_recv;
  telemetry::Counter& server_bytes_sent;

  static RpcMetrics& get() {
    static RpcMetrics metrics;
    return metrics;
  }

 private:
  RpcMetrics()
      : client_frames_sent(reg().counter("hammer_rpc_client_frames_total",
                                         "Frames on client channels", "dir=\"sent\"")),
        client_frames_recv(reg().counter("hammer_rpc_client_frames_total",
                                         "Frames on client channels", "dir=\"recv\"")),
        client_bytes_sent(reg().counter("hammer_rpc_client_bytes_total",
                                        "Wire bytes on client channels", "dir=\"sent\"")),
        client_bytes_recv(reg().counter("hammer_rpc_client_bytes_total",
                                        "Wire bytes on client channels", "dir=\"recv\"")),
        calls_single(reg().counter("hammer_rpc_client_calls_total",
                                   "RPC calls by submission shape", "shape=\"single\"")),
        calls_async(reg().counter("hammer_rpc_client_calls_total",
                                  "RPC calls by submission shape", "shape=\"async\"")),
        calls_batch(reg().counter("hammer_rpc_client_calls_total",
                                  "RPC calls by submission shape", "shape=\"batch\"")),
        batch_size(reg().histogram("hammer_rpc_client_batch_size",
                                   "Calls coalesced per batch frame", "",
                                   {1, 2, 4, 8, 16, 32, 64, 128, 256})),
        inflight(reg().gauge("hammer_rpc_client_inflight",
                             "Requests awaiting a response across all channels")),
        client_reconnects(reg().counter("hammer_rpc_client_reconnects_total",
                                        "Successful channel reconnects after a broken "
                                        "connection")),
        server_conns_total(reg().counter("hammer_rpc_server_connections_total",
                                         "Connections ever accepted")),
        server_conns(reg().gauge("hammer_rpc_server_connections", "Open server connections")),
        server_dropped(reg().counter("hammer_rpc_server_dropped_total",
                                     "Connections dropped (EOF, error, oversize frame)")),
        server_requests(reg().counter("hammer_rpc_server_requests_total",
                                      "Request frames dispatched to workers")),
        server_bytes_recv(reg().counter("hammer_rpc_server_bytes_total",
                                        "Wire bytes on the server", "dir=\"recv\"")),
        server_bytes_sent(reg().counter("hammer_rpc_server_bytes_total",
                                        "Wire bytes on the server", "dir=\"sent\"")) {}

  static telemetry::MetricRegistry& reg() { return telemetry::MetricRegistry::global(); }
};

void write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TransportError(std::string("send: ") + std::strerror(errno));
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

// Returns false on clean EOF at a frame boundary.
bool read_all(int fd, void* data, std::size_t len, bool eof_ok) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n == 0) {
      if (eof_ok && got == 0) return false;
      throw TransportError("connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) throw TimeoutError("recv");
      throw TransportError(std::string("recv: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void send_frame(int fd, const std::string& payload) {
  std::uint32_t len = htonl(static_cast<std::uint32_t>(payload.size()));
  write_all(fd, &len, sizeof(len));
  write_all(fd, payload.data(), payload.size());
}

bool recv_frame(int fd, std::string& payload, bool eof_ok) {
  std::uint32_t len_be = 0;
  if (!read_all(fd, &len_be, sizeof(len_be), eof_ok)) return false;
  std::uint32_t len = ntohl(len_be);
  if (len > kMaxFrameBytes) throw TransportError("frame exceeds max size");
  payload.resize(len);
  if (len > 0) read_all(fd, payload.data(), len, false);
  return true;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_send_timeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// Opens a connected client socket or throws TransportError.
int open_socket(const std::string& host, std::uint16_t port,
                std::chrono::milliseconds send_timeout) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError(std::string("socket: ") + std::strerror(errno));
  // Note: no receive timeout — the reader thread blocks until a frame or
  // shutdown; per-call deadlines are enforced on the futures instead.
  set_send_timeout(fd, send_timeout);
  set_nodelay(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError("invalid host address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    throw TransportError("connect " + host + ":" + std::to_string(port) + ": " +
                         std::strerror(err));
  }
  return fd;
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpServer
// ---------------------------------------------------------------------------

TcpServer::Connection::~Connection() { ::close(fd); }

TcpServer::TcpServer(std::shared_ptr<const Dispatcher> dispatcher, std::uint16_t port,
                     std::size_t worker_threads)
    : dispatcher_(std::move(dispatcher)) {
  HAMMER_CHECK(dispatcher_ != nullptr);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) throw TransportError(std::string("socket: ") + std::strerror(errno));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw TransportError(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 256) != 0) {
    ::close(listen_fd_);
    throw TransportError(std::string("listen: ") + std::strerror(errno));
  }

  epoll_fd_ = ::epoll_create1(0);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    throw TransportError(std::string("epoll setup: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  if (worker_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    worker_threads = std::clamp<std::size_t>(hw == 0 ? 2 : hw, 2, 8);
  }
  workers_.reserve(worker_threads);
  for (std::size_t i = 0; i < worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  event_thread_ = std::thread([this] { event_loop(); });
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  if (event_thread_.joinable()) event_thread_.join();

  // Unblock workers stuck writing to stalled peers, then let them drain the
  // queued requests (their sends fail fast on the shut-down sockets).
  {
    std::scoped_lock lock(connections_mu_);
    for (auto& [fd, conn] : connections_) {
      conn->dead.store(true);
      ::shutdown(fd, SHUT_RDWR);
    }
    RpcMetrics::get().server_conns.sub(static_cast<std::int64_t>(connections_.size()));
    connections_.clear();  // sockets close when the last Work reference drops
  }
  work_queue_.close();
  for (auto& w : workers_) w.join();

  ::close(listen_fd_);
  ::close(epoll_fd_);
  ::close(wake_fd_);
}

void TcpServer::event_loop() {
  std::vector<epoll_event> events(64);
  while (!stopping_.load()) {
    int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      HLOG_WARN("tcp") << "epoll_wait failed: " << std::strerror(errno);
      return;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) continue;  // stop() raised the flag; loop condition exits
      if (fd == listen_fd_) {
        accept_new();
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        std::scoped_lock lock(connections_mu_);
        auto it = connections_.find(fd);
        if (it == connections_.end()) continue;
        conn = it->second;
      }
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        drop_connection(fd);
        continue;
      }
      drain_readable(conn);
    }
  }
}

void TcpServer::accept_new() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK && !stopping_.load()) {
        HLOG_WARN("tcp") << "accept failed: " << std::strerror(errno);
      }
      return;
    }
    set_nodelay(fd);
    set_send_timeout(fd, std::chrono::milliseconds(10000));
    RpcMetrics::get().server_conns_total.add(1);
    RpcMetrics::get().server_conns.add(1);
    auto conn = std::make_shared<Connection>(fd);
    {
      std::scoped_lock lock(connections_mu_);
      connections_.emplace(fd, std::move(conn));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void TcpServer::drain_readable(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      RpcMetrics::get().server_bytes_recv.add(static_cast<std::uint64_t>(n));
      conn->buffer.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {  // peer closed
      drop_connection(conn->fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    drop_connection(conn->fd);
    return;
  }
  // Slice complete frames off the buffer; partial tails wait for more bytes.
  while (conn->buffer.size() >= sizeof(std::uint32_t)) {
    std::uint32_t len_be;
    std::memcpy(&len_be, conn->buffer.data(), sizeof(len_be));
    std::uint32_t len = ntohl(len_be);
    if (len > kMaxFrameBytes) {
      HLOG_WARN("tcp") << "dropping connection: frame length " << len << " exceeds max";
      drop_connection(conn->fd);
      return;
    }
    if (conn->buffer.size() < sizeof(len_be) + len) break;
    Work work{conn, conn->buffer.substr(sizeof(len_be), len)};
    conn->buffer.erase(0, sizeof(len_be) + len);
    RpcMetrics::get().server_requests.add(1);
    if (!work_queue_.push(std::move(work))) return;  // queue closed: stopping
  }
}

void TcpServer::drop_connection(int fd) {
  std::shared_ptr<Connection> conn;
  {
    std::scoped_lock lock(connections_mu_);
    auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    conn = std::move(it->second);
    connections_.erase(it);
  }
  RpcMetrics::get().server_conns.sub(1);
  RpcMetrics::get().server_dropped.add(1);
  conn->dead.store(true);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  // The fd closes in ~Connection once in-flight workers release their
  // references; shutdown here so their writes fail instead of blocking.
  ::shutdown(fd, SHUT_RDWR);
}

void TcpServer::install_fault_injector(std::shared_ptr<fault::FaultInjector> faults) {
  std::scoped_lock lock(faults_mu_);
  faults_ = std::move(faults);
}

std::shared_ptr<fault::FaultInjector> TcpServer::fault_injector() const {
  std::scoped_lock lock(faults_mu_);
  return faults_;
}

void TcpServer::worker_loop() {
  while (auto work = work_queue_.pop()) {
    std::string response = dispatcher_->dispatch_text(work->request);
    if (std::shared_ptr<fault::FaultInjector> faults = fault_injector()) {
      // Dropped response: the request DID execute — the client sees a
      // timeout on an operation the SUT may have applied, the in-doubt case
      // idempotent resubmission exists for.
      if (faults->should(fault::FaultKind::kDropResponse)) continue;
      if (faults->should(fault::FaultKind::kSlowLoris)) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(faults->plan().slow_loris_us));
      }
    }
    std::scoped_lock lock(work->conn->write_mu);
    if (work->conn->dead.load()) continue;
    try {
      send_frame(work->conn->fd, response);
      RpcMetrics::get().server_bytes_sent.add(sizeof(std::uint32_t) + response.size());
    } catch (const TransportError& e) {
      work->conn->dead.store(true);
      if (!stopping_.load()) HLOG_DEBUG("tcp") << "response write failed: " << e.what();
    }
  }
}

// ---------------------------------------------------------------------------
// TcpChannel
// ---------------------------------------------------------------------------

TcpChannel::TcpChannel(const std::string& host, std::uint16_t port,
                       std::chrono::milliseconds timeout)
    : host_(host), port_(port), timeout_(timeout) {
  fd_ = open_socket(host_, port_, timeout_);
  reader_ = std::thread([this, fd = fd_] { reader_loop(fd); });
}

void TcpChannel::install_fault_injector(std::shared_ptr<fault::FaultInjector> faults) {
  faults_ = std::move(faults);
}

void TcpChannel::ensure_connected() {
  std::scoped_lock conn_lock(write_mu_);
  {
    std::scoped_lock lock(pending_mu_);
    if (!broken_) return;
  }
  // The reader exits after fail_all set broken_, so the join is brief; any
  // calls arriving while we hold write_mu_ wait for the fresh socket.
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
  fd_ = open_socket(host_, port_, timeout_);  // throws if the server stays down
  {
    std::scoped_lock lock(pending_mu_);
    broken_ = false;
    break_reason_ = nullptr;
  }
  reader_ = std::thread([this, fd = fd_] { reader_loop(fd); });
  RpcMetrics::get().client_reconnects.add(1);
  HLOG_DEBUG("tcp") << "reconnected to " << host_ << ":" << port_;
}

void TcpChannel::inject_send_faults() {
  if (!faults_) return;
  if (faults_->should(fault::FaultKind::kClientLatency)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(faults_->plan().client_latency_us));
  }
  if (faults_->should(fault::FaultKind::kConnReset)) {
    // Kill the real socket so the reader observes the break exactly like a
    // peer reset, then fail this call before its frame ever leaves. Mark the
    // channel broken here rather than waiting for the reader to notice EOF:
    // a retry must always take the reconnect path, never race the reader and
    // burn a fault draw on a send into the dead socket (that would make the
    // seeded draw sequence scheduling-dependent).
    std::scoped_lock lock(write_mu_);
    ::shutdown(fd_, SHUT_RDWR);
    {
      std::scoped_lock plock(pending_mu_);
      broken_ = true;
      if (!break_reason_) {
        break_reason_ = std::make_exception_ptr(TransportError("injected connection reset"));
      }
    }
    throw TransportError("injected connection reset");
  }
}

TcpChannel::~TcpChannel() {
  {
    std::scoped_lock lock(pending_mu_);
    broken_ = true;
    if (!break_reason_) {
      break_reason_ = std::make_exception_ptr(TransportError("channel closed"));
    }
  }
  ::shutdown(fd_, SHUT_RDWR);  // wakes the reader, which fails any pending calls
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
}

std::future<json::Value> TcpChannel::send_request(const std::string& method, json::Value params,
                                                  std::uint64_t& id_out) {
  std::future<json::Value> future;
  {
    std::scoped_lock lock(pending_mu_);
    if (broken_) std::rethrow_exception(break_reason_);
    id_out = next_id_++;
    future = pending_[id_out].get_future();
    // Inside the lock so fail_all/complete can never decrement first.
    RpcMetrics::get().inflight.add(1);
  }
  std::string frame = make_request(id_out, method, std::move(params)).dump();
  try {
    inject_send_faults();
    std::scoped_lock lock(write_mu_);
    send_frame(fd_, frame);
  } catch (...) {
    forget(id_out);
    throw;
  }
  RpcMetrics::get().client_frames_sent.add(1);
  RpcMetrics::get().client_bytes_sent.add(sizeof(std::uint32_t) + frame.size());
  return future;
}

json::Value TcpChannel::call(const std::string& method, json::Value params,
                             const CallOptions& opts) {
  ensure_connected();
  RpcMetrics::get().calls_single.add(1);
  std::uint64_t id = 0;
  std::future<json::Value> future = send_request(method, std::move(params), id);
  if (future.wait_for(effective_deadline(opts)) == std::future_status::timeout) {
    forget(id);  // a late response for this id is silently dropped
    throw TimeoutError("call " + method);
  }
  return future.get();
}

std::future<json::Value> TcpChannel::call_async(const std::string& method, json::Value params,
                                                const CallOptions&) {
  ensure_connected();
  RpcMetrics::get().calls_async.add(1);
  std::uint64_t id = 0;
  return send_request(method, std::move(params), id);
}

std::vector<BatchReply> TcpChannel::call_batch(const std::vector<BatchCall>& calls,
                                               const CallOptions& opts) {
  if (calls.empty()) return {};
  ensure_connected();
  RpcMetrics::get().calls_batch.add(calls.size());
  RpcMetrics::get().batch_size.record(static_cast<std::int64_t>(calls.size()));
  std::vector<std::uint64_t> ids(calls.size());
  std::vector<std::future<json::Value>> futures(calls.size());
  json::Array entries;
  entries.reserve(calls.size());
  {
    std::scoped_lock lock(pending_mu_);
    if (broken_) std::rethrow_exception(break_reason_);
    for (std::size_t i = 0; i < calls.size(); ++i) {
      ids[i] = next_id_++;
      futures[i] = pending_[ids[i]].get_future();
      entries.push_back(make_request(ids[i], calls[i].method, calls[i].params));
    }
    RpcMetrics::get().inflight.add(static_cast<std::int64_t>(calls.size()));
  }
  std::string frame = json::Value(std::move(entries)).dump();
  try {
    inject_send_faults();
    std::scoped_lock lock(write_mu_);
    send_frame(fd_, frame);
  } catch (...) {
    for (std::uint64_t id : ids) forget(id);
    throw;
  }
  RpcMetrics::get().client_frames_sent.add(1);
  RpcMetrics::get().client_bytes_sent.add(sizeof(std::uint32_t) + frame.size());

  // One deadline for the whole batch: it is a single logical round trip.
  auto deadline = std::chrono::steady_clock::now() + effective_deadline(opts);
  std::vector<BatchReply> out(calls.size());
  for (std::size_t i = 0; i < calls.size(); ++i) {
    if (futures[i].wait_until(deadline) == std::future_status::timeout) {
      for (std::size_t j = i; j < calls.size(); ++j) forget(ids[j]);
      throw TimeoutError("batch of " + std::to_string(calls.size()) + " calls");
    }
    try {
      out[i].result = futures[i].get();
    } catch (const RpcError& e) {
      out[i].error_code = e.code();
      out[i].error_message = e.what();
    }
    // TransportError propagates: if the connection died, the whole batch
    // failed, exactly like a single call.
  }
  return out;
}

void TcpChannel::forget(std::uint64_t id) {
  std::size_t erased;
  {
    std::scoped_lock lock(pending_mu_);
    erased = pending_.erase(id);
  }
  if (erased) RpcMetrics::get().inflight.sub(1);
}

void TcpChannel::complete(const json::Value& response) {
  if (!response.is_object() || !response.contains("id") || !response.at("id").is_int()) {
    HLOG_DEBUG("tcp") << "dropping response without a usable id";
    return;
  }
  auto id = static_cast<std::uint64_t>(response.at("id").as_int());
  std::promise<json::Value> promise;
  {
    std::scoped_lock lock(pending_mu_);
    auto it = pending_.find(id);
    if (it == pending_.end()) return;  // timed out and forgotten, or stray
    promise = std::move(it->second);
    pending_.erase(it);
  }
  RpcMetrics::get().inflight.sub(1);
  try {
    promise.set_value(take_result(response));
  } catch (...) {
    promise.set_exception(std::current_exception());
  }
}

void TcpChannel::fail_all(std::exception_ptr reason) {
  std::unordered_map<std::uint64_t, std::promise<json::Value>> orphans;
  {
    std::scoped_lock lock(pending_mu_);
    broken_ = true;
    if (!break_reason_) break_reason_ = reason;
    orphans.swap(pending_);
  }
  RpcMetrics::get().inflight.sub(static_cast<std::int64_t>(orphans.size()));
  for (auto& [id, promise] : orphans) promise.set_exception(reason);
}

void TcpChannel::reader_loop(int fd) {
  for (;;) {
    std::string payload;
    try {
      if (!recv_frame(fd, payload, /*eof_ok=*/true)) {
        fail_all(std::make_exception_ptr(TransportError("connection closed by server")));
        return;
      }
    } catch (const TransportError&) {
      fail_all(std::current_exception());
      return;
    }
    RpcMetrics::get().client_frames_recv.add(1);
    RpcMetrics::get().client_bytes_recv.add(sizeof(std::uint32_t) + payload.size());
    try {
      json::Value response = json::Value::parse(payload);
      if (response.is_array()) {
        // Batch response: complete every contained reply independently.
        for (const json::Value& entry : response.as_array()) complete(entry);
      } else {
        complete(response);
      }
    } catch (const std::exception& e) {
      HLOG_WARN("tcp") << "dropping malformed response frame: " << e.what();
    }
  }
}

}  // namespace hammer::rpc
