// JSON-RPC 2.0 dispatch layer (paper §III-A2: "a generic interface, which
// integrates SDKs of various blockchain platforms and introduces JSON-RPC").
//
// Every SUT — sharded or not, whatever its implementation language would be
// — exposes the same method set through a Dispatcher; the adapter layer
// (src/adapters) talks only JSON-RPC, which is what makes Hammer
// architecture- and language-agnostic.
//
// The client surface supports three call shapes, all id-correlated so they
// compose over a single multiplexed connection (tcp.hpp):
//   call()        one blocking request/response round trip;
//   call_async()  pipelined: the request leaves immediately, the result
//                 arrives through a future when the response frame lands;
//   call_batch()  one framed JSON-RPC 2.0 batch array carrying N calls,
//                 responses matched by id (order-independent).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "telemetry/span.hpp"

namespace hammer::rpc {

// Standard JSON-RPC 2.0 error codes.
inline constexpr int kParseError = -32700;
inline constexpr int kInvalidRequest = -32600;
inline constexpr int kMethodNotFound = -32601;
inline constexpr int kInvalidParams = -32602;
inline constexpr int kInternalError = -32603;
inline constexpr int kServerError = -32000;  // application-level rejection

// Thrown by Channel::call when the server returned an error response.
class RpcError : public hammer::Error {
 public:
  RpcError(int code, const std::string& message)
      : Error("rpc error " + std::to_string(code) + ": " + message), code_(code) {}
  int code() const { return code_; }

 private:
  int code_;
};

// The one place the JSON-RPC error taxonomy maps onto client-side exception
// types: kServerError (the SUT rejected the operation) becomes
// RejectedError so drivers can count overload separately from transport and
// protocol failures; every other code stays RpcError. Single calls
// (ChainAdapter) and batch entries (BatchReply::take) share this mapping so
// both paths fail identically.
[[noreturn]] void throw_client_error(int code, const std::string& message);
[[noreturn]] void throw_client_error(const RpcError& error);

// One call of a batch request.
struct BatchCall {
  std::string method;
  json::Value params;
};

// One entry of a batch response. error_code == 0 means success (JSON-RPC
// error codes are never 0).
struct BatchReply {
  json::Value result;
  int error_code = 0;
  std::string error_message;

  bool ok() const { return error_code == 0; }
  // Returns the result, or throws what the equivalent single call() would
  // have thrown (through throw_client_error).
  const json::Value& take() const;
};

// Converts one response envelope into a BatchReply (never throws).
BatchReply to_batch_reply(const json::Value& response);

// Matches a batch response to the request ids it answers, order-independent.
// A single error object (the server rejected the whole batch) is fanned out
// to every entry; ids with no response become kInternalError entries.
std::vector<BatchReply> match_batch_replies(const json::Value& response,
                                            const std::vector<std::uint64_t>& ids);

// Handler receives the `params` value and returns the `result` value.
// Throwing maps to an error response (RejectedError -> kServerError,
// NotFoundError/ParseError -> kInvalidParams, anything else -> internal).
using Handler = std::function<json::Value(const json::Value& params)>;

// Outcome of one dispatched call without the JSON-RPC envelope around it.
// error_code == 0 means success (JSON-RPC error codes are never 0).
struct CallOutcome {
  json::Value result;
  int error_code = 0;
  std::string error_message;
  bool ok() const { return error_code == 0; }
};

class Dispatcher {
 public:
  void register_method(const std::string& name, Handler handler);
  bool has_method(const std::string& name) const;

  // Every registered method name, sorted — the registry view rpc.api (see
  // rpc/api.hpp) serves to clients.
  std::vector<std::string> method_names() const;

  // Full wire-level entry point: parses a request document, dispatches, and
  // serializes the response (never throws; errors become error responses).
  // A JSON array is treated as a JSON-RPC 2.0 batch: each entry dispatches
  // independently and the response is the array of per-entry responses
  // (an empty batch is a kInvalidRequest error, per spec).
  std::string dispatch_text(std::string_view request_text) const;

  // Same, serializing the response into `out` (appended) so transport
  // workers can reuse pooled buffers instead of materializing a fresh
  // string per response.
  void dispatch_text_into(std::string_view request_text, std::string& out) const;

  // Envelope-free entry point used by the binary wire codec: looks up
  // `method` in the same table and maps handler exceptions onto the same
  // error codes as dispatch(), but touches no JSON-RPC envelope. Never
  // throws.
  CallOutcome invoke(std::string_view method, const json::Value& params) const;

  // Structured entry points used by the in-process channel.
  json::Value dispatch(const json::Value& request) const;
  json::Value dispatch_batch(const json::Value& batch) const;

 private:
  mutable std::mutex mu_;
  // Heterogeneous compare: invoke() looks methods up by string_view with no
  // temporary std::string on the hot path.
  std::map<std::string, Handler, std::less<>> methods_;
};

// Per-call knobs threaded through every Channel entry point. Zero values
// mean "use the channel's defaults", so `{}` keeps legacy behaviour.
struct CallOptions {
  // Deadline for the blocking wait of call() / call_batch() (a batch is one
  // logical round trip, so one deadline covers it). 0 = the channel's
  // constructor-configured timeout. call_async ignores it: the future's
  // wait policy belongs to the caller.
  std::chrono::milliseconds deadline{0};

  // Distributed-tracing context for this call (batch: for the whole frame).
  // Default-constructed = unsampled, which costs one branch per call.
  // Transports propagate it only when the peer negotiated the "trace"
  // feature, so old servers never see it.
  telemetry::TraceContext trace;
};

// Client-side transport abstraction. Implementations: InProcChannel (below)
// and TcpChannel (tcp.hpp).
class Channel {
 public:
  virtual ~Channel() = default;

  // Performs one call; returns the result value or throws RpcError /
  // TransportError (TimeoutError when opts.deadline passes unanswered).
  virtual json::Value call(const std::string& method, json::Value params,
                           const CallOptions& opts = {}) = 0;

  // Pipelined call: returns a future that yields the result or rethrows
  // what call() would have thrown. The default implementation performs the
  // call synchronously and returns a ready future, so every Channel
  // supports the API; multiplexing transports override it with a
  // genuinely non-blocking path.
  virtual std::future<json::Value> call_async(const std::string& method, json::Value params,
                                              const CallOptions& opts = {});

  // Performs N calls as one logical round trip; replies align with `calls`
  // by index regardless of the order responses arrive in. The default
  // implementation loops over call() so non-batching transports keep
  // working; transports with wire-level batch support override it.
  virtual std::vector<BatchReply> call_batch(const std::vector<BatchCall>& calls,
                                             const CallOptions& opts = {});

  // Offset of the peer's steady clock relative to ours, measured by the
  // hello handshake. Identity for in-process channels; a transport that
  // never negotiated reports 0 too (spans then merge unshifted, which is
  // the best available guess).
  virtual telemetry::ClockOffset clock_offset() const { return {}; }
};

// Zero-copy-ish channel for in-process SUTs. Still round-trips through the
// JSON-RPC envelope so behaviour matches the TCP path. Dispatch is
// synchronous, so CallOptions deadlines have nothing to bound and are
// ignored.
class InProcChannel final : public Channel {
 public:
  explicit InProcChannel(std::shared_ptr<const Dispatcher> dispatcher);

  json::Value call(const std::string& method, json::Value params,
                   const CallOptions& opts = {}) override;
  std::vector<BatchReply> call_batch(const std::vector<BatchCall>& calls,
                                     const CallOptions& opts = {}) override;

 private:
  std::shared_ptr<const Dispatcher> dispatcher_;
  std::uint64_t next_id_ = 1;
  std::mutex mu_;
};

// Request/response envelope helpers shared by transports.
json::Value make_request(std::uint64_t id, const std::string& method, json::Value params);
json::Value make_result_response(const json::Value& id, json::Value result);
json::Value make_error_response(const json::Value& id, int code, const std::string& message);

// Extracts the result from a response or throws RpcError/ParseError.
json::Value take_result(const json::Value& response);

}  // namespace hammer::rpc
