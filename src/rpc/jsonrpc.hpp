// JSON-RPC 2.0 dispatch layer (paper §III-A2: "a generic interface, which
// integrates SDKs of various blockchain platforms and introduces JSON-RPC").
//
// Every SUT — sharded or not, whatever its implementation language would be
// — exposes the same method set through a Dispatcher; the adapter layer
// (src/adapters) talks only JSON-RPC, which is what makes Hammer
// architecture- and language-agnostic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "json/json.hpp"

namespace hammer::rpc {

// Standard JSON-RPC 2.0 error codes.
inline constexpr int kParseError = -32700;
inline constexpr int kInvalidRequest = -32600;
inline constexpr int kMethodNotFound = -32601;
inline constexpr int kInvalidParams = -32602;
inline constexpr int kInternalError = -32603;
inline constexpr int kServerError = -32000;  // application-level rejection

// Thrown by Channel::call when the server returned an error response.
class RpcError : public hammer::Error {
 public:
  RpcError(int code, const std::string& message)
      : Error("rpc error " + std::to_string(code) + ": " + message), code_(code) {}
  int code() const { return code_; }

 private:
  int code_;
};

// Handler receives the `params` value and returns the `result` value.
// Throwing maps to an error response (RejectedError -> kServerError,
// NotFoundError/ParseError -> kInvalidParams, anything else -> internal).
using Handler = std::function<json::Value(const json::Value& params)>;

class Dispatcher {
 public:
  void register_method(const std::string& name, Handler handler);
  bool has_method(const std::string& name) const;

  // Full wire-level entry point: parses a request document, dispatches, and
  // serializes the response (never throws; errors become error responses).
  std::string dispatch_text(const std::string& request_text) const;

  // Structured entry point used by the in-process channel.
  json::Value dispatch(const json::Value& request) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Handler> methods_;
};

// Client-side transport abstraction. Implementations: InProcChannel (below)
// and TcpChannel (tcp.hpp).
class Channel {
 public:
  virtual ~Channel() = default;

  // Performs one call; returns the result value or throws RpcError /
  // TransportError.
  virtual json::Value call(const std::string& method, json::Value params) = 0;
};

// Zero-copy-ish channel for in-process SUTs. Still round-trips through the
// JSON-RPC envelope so behaviour matches the TCP path.
class InProcChannel final : public Channel {
 public:
  explicit InProcChannel(std::shared_ptr<const Dispatcher> dispatcher);

  json::Value call(const std::string& method, json::Value params) override;

 private:
  std::shared_ptr<const Dispatcher> dispatcher_;
  std::uint64_t next_id_ = 1;
  std::mutex mu_;
};

// Request/response envelope helpers shared by transports.
json::Value make_request(std::uint64_t id, const std::string& method, json::Value params);
json::Value make_result_response(const json::Value& id, json::Value result);
json::Value make_error_response(const json::Value& id, int code, const std::string& message);

// Extracts the result from a response or throws RpcError/ParseError.
json::Value take_result(const json::Value& response);

}  // namespace hammer::rpc
