// rpc::ClientConfig — the one options struct for the client call surface.
//
// Before this existed, configuring a client meant threading three separate
// ad-hoc pieces through every layer: rpc::CallOptions (per-call deadline),
// rpc::RetryPolicy + seed, and transport knobs hard-coded at each
// TcpChannel construction site. ClientConfig collapses
// them into one value that flows unchanged through make_adapter,
// ChannelPool, DeployedChain::make_adapters/make_cluster and the SutCluster
// builders — and adds the codec preference the wire redesign introduces.
//
// ClientConfig is the ONLY way to configure the client surface: the legacy
// shapes that predated it (adapters::AdapterOptions, the bare TcpChannel
// timeout constructor) are gone, and every entry point takes a ClientConfig
// with a default of `{}` — binary-preferred codec, 5 s timeout, one attempt.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "rpc/jsonrpc.hpp"
#include "rpc/retry.hpp"

namespace hammer::rpc {

// Which wire codec a TcpChannel negotiates (DESIGN.md §11). Binary is
// preferred by default: the channel offers it at connect time and falls
// back to JSON-RPC 2.0 when the server does not speak it, so pointing a
// new client at an old server keeps working.
enum class CodecPreference { kBinaryPreferred, kJsonOnly };

struct ClientConfig {
  // Wire codec negotiation stance (TCP transport only; in-proc channels
  // have no wire and ignore it).
  CodecPreference codec = CodecPreference::kBinaryPreferred;

  // Per-call deadline defaults, forwarded to every RPC (CallOptions{0}
  // defers to `timeout` below).
  CallOptions call;

  // Blocking-call timeout / connect send timeout of the channel itself.
  std::chrono::milliseconds timeout{5000};

  // Adapter retry policy (default: one attempt, no retry) and the seed of
  // its jitter stream.
  RetryPolicy retry;
  std::uint64_t retry_seed = 0xbacc0ffULL;

  // Which SutCluster target (endpoint) the adapter built from this config
  // speaks to; the cluster builder stamps it for per-endpoint telemetry.
  std::size_t target_index = 0;
};

}  // namespace hammer::rpc
