// Pooled buffer arena and byte slices for the RPC wire path.
//
// The pre-wire transport re-materialized a std::string at every hop:
// substr() per request frame on the server, a fresh dump() per response,
// a heap allocation per send. At cluster rates that is an allocation storm
// on the hottest path in the process. The arena replaces it with two
// primitives:
//
//   BufferArena  a thread-safe free list of reusable byte buffers. acquire()
//                hands out a cleared buffer whose *capacity* persists across
//                uses, so steady-state traffic stops allocating entirely.
//                Buffers return to the arena automatically when the last
//                reference drops (shared_ptr deleter), which makes handing a
//                buffer to another thread safe by construction.
//
//   Slice        a non-owning {pointer, length} view that shares ownership
//                of the buffer holding its bytes. The server's event thread
//                slices complete request frames out of a connection's read
//                buffer and hands the slices to worker threads without
//                copying the payload; the buffer is recycled once the last
//                slice (and the connection's own reference) is gone.
//
// Lifetime rules (DESIGN.md §11): a Slice keeps its backing buffer alive;
// a buffer handed out by acquire() must not be resized once any Slice into
// it exists (reallocation would dangle the view) — the TCP server retires a
// read buffer to its slices and switches to a fresh one the moment a frame
// is sliced out of it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace hammer::rpc::wire {

// A pooled byte buffer. Plain std::string storage so existing encode paths
// (json dump, codec writers) append without adaptation.
using Buffer = std::string;
using BufferPtr = std::shared_ptr<Buffer>;

class BufferArena {
 public:
  // `max_pooled` bounds the free list; `max_retained_bytes` drops buffers
  // that grew beyond it instead of pooling them (one oversized burst must
  // not pin its high-water mark forever).
  explicit BufferArena(std::size_t max_pooled = 64,
                       std::size_t max_retained_bytes = 1u << 20);
  ~BufferArena() = default;

  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  // Returns an empty buffer (capacity >= reserve_hint) that recycles into
  // this arena when its last reference — including every Slice viewing it —
  // is released. Outlives the arena handle safely: the free list is kept
  // alive by the deleters themselves.
  BufferPtr acquire(std::size_t reserve_hint = 0);

  // Process-wide arena shared by every channel and server.
  static BufferArena& global();

  // Observability (also mirrored to hammer_wire_arena_* telemetry).
  std::uint64_t allocated() const;  // acquires served by a fresh allocation
  std::uint64_t reused() const;     // acquires served from the free list

 private:
  struct State;
  std::shared_ptr<State> state_;
};

// View over bytes owned by a pooled buffer (or any shared string). Copying
// a Slice is cheap: it bumps the buffer's refcount, never the bytes.
class Slice {
 public:
  Slice() = default;
  Slice(std::shared_ptr<const Buffer> owner, std::size_t offset, std::size_t len);

  // Wraps a self-contained string (copies once); for call sites that need a
  // Slice but have no arena buffer in hand.
  static Slice copy_of(std::string_view bytes);

  const char* data() const { return owner_ ? owner_->data() + offset_ : nullptr; }
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  std::string_view view() const { return {data(), len_}; }

 private:
  std::shared_ptr<const Buffer> owner_;
  std::size_t offset_ = 0;
  std::size_t len_ = 0;
};

}  // namespace hammer::rpc::wire
