#include "rpc/wire/arena.hpp"

#include <mutex>
#include <utility>
#include <vector>

#include "telemetry/registry.hpp"
#include "util/errors.hpp"

namespace hammer::rpc::wire {

namespace {

struct ArenaMetrics {
  telemetry::Counter& alloc;
  telemetry::Counter& reuse;

  static ArenaMetrics& get() {
    static ArenaMetrics metrics;
    return metrics;
  }

 private:
  ArenaMetrics()
      : alloc(telemetry::MetricRegistry::global().counter(
            "hammer_wire_arena_buffers_total", "Arena buffer acquisitions by source",
            "source=\"alloc\"")),
        reuse(telemetry::MetricRegistry::global().counter(
            "hammer_wire_arena_buffers_total", "Arena buffer acquisitions by source",
            "source=\"reuse\"")) {}
};

}  // namespace

// Kept alive by every outstanding buffer's deleter, so a buffer released
// after the arena handle is gone still recycles (and then frees) safely.
struct BufferArena::State {
  std::mutex mu;
  std::vector<std::unique_ptr<Buffer>> free;
  std::size_t max_pooled;
  std::size_t max_retained_bytes;
  std::uint64_t allocated = 0;
  std::uint64_t reused = 0;
};

BufferArena::BufferArena(std::size_t max_pooled, std::size_t max_retained_bytes)
    : state_(std::make_shared<State>()) {
  HAMMER_CHECK(max_pooled >= 1);
  state_->max_pooled = max_pooled;
  state_->max_retained_bytes = max_retained_bytes;
}

BufferPtr BufferArena::acquire(std::size_t reserve_hint) {
  std::unique_ptr<Buffer> buf;
  {
    std::scoped_lock lock(state_->mu);
    if (!state_->free.empty()) {
      buf = std::move(state_->free.back());
      state_->free.pop_back();
      ++state_->reused;
    } else {
      ++state_->allocated;
    }
  }
  if (buf) {
    ArenaMetrics::get().reuse.add(1);
  } else {
    ArenaMetrics::get().alloc.add(1);
    buf = std::make_unique<Buffer>();
  }
  buf->clear();
  if (reserve_hint > 0) buf->reserve(reserve_hint);
  Buffer* raw = buf.release();
  std::shared_ptr<State> state = state_;
  return BufferPtr(raw, [state](Buffer* b) {
    std::unique_ptr<Buffer> owned(b);
    if (owned->capacity() > state->max_retained_bytes) return;  // drop oversized
    std::scoped_lock lock(state->mu);
    if (state->free.size() < state->max_pooled) state->free.push_back(std::move(owned));
  });
}

BufferArena& BufferArena::global() {
  static BufferArena arena(/*max_pooled=*/256, /*max_retained_bytes=*/4u << 20);
  return arena;
}

std::uint64_t BufferArena::allocated() const {
  std::scoped_lock lock(state_->mu);
  return state_->allocated;
}

std::uint64_t BufferArena::reused() const {
  std::scoped_lock lock(state_->mu);
  return state_->reused;
}

Slice::Slice(std::shared_ptr<const Buffer> owner, std::size_t offset, std::size_t len)
    : owner_(std::move(owner)), offset_(offset), len_(len) {
  HAMMER_CHECK(owner_ != nullptr);
  HAMMER_CHECK(offset_ + len_ <= owner_->size());
}

Slice Slice::copy_of(std::string_view bytes) {
  auto owner = std::make_shared<Buffer>(bytes);
  std::size_t len = owner->size();
  return Slice(std::move(owner), 0, len);
}

}  // namespace hammer::rpc::wire
