// Binary wire codec and versioned framing for the RPC layer (DESIGN.md §11).
//
// Every frame on the TCP transport is `u32-be length` + payload. Two payload
// families coexist on one connection:
//
//   raw JSON        payload begins '{', '[' or whitespace — the PR-1 wire
//                   format, untouched. Old clients keep working; a client
//                   configured kJsonOnly never sends anything else.
//
//   versioned       payload begins with the magic byte 0xB7 (never a legal
//                   first byte of a JSON document), then a version byte,
//                   then a frame-kind byte, then the body:
//
//                     [0xB7][ver][kind][body ...]
//
//                   kHello / kHelloOk carry a small JSON body and perform
//                   codec negotiation; kError carries {"code","message"}
//                   (the server's last words before dropping a connection,
//                   e.g. an oversize frame); kBinaryRequest/kBinaryResponse
//                   carry the binary-codec batch bodies below.
//
// The binary codec drops the JSON-RPC envelope entirely — framing IS the
// envelope — but dispatches through the exact same Dispatcher method tables,
// so the taxonomy/retry/fault layers above notice nothing:
//
//   request body    varint n, then n x [varint id][varint len method][value params]
//   response body   varint n, then n x [varint id][status u8]
//                     status 0: [value result]
//                     status 1: [zigzag code][varint len message]
//
// Values serialize as a tag byte + payload (varint/zigzag ints, 8-byte LE
// doubles, length-prefixed strings, count-prefixed arrays/objects). Object
// members encode in key order (json::Object is sorted), so encoding is
// canonical: encode(decode(bytes)) == bytes for every valid input.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"

namespace hammer::rpc::wire {

inline constexpr unsigned char kMagic = 0xB7;
inline constexpr unsigned char kVersion = 0x01;
// [magic][version][kind] precede every versioned payload.
inline constexpr std::size_t kHeaderBytes = 3;

enum class FrameKind : unsigned char {
  kHello = 0x00,           // client -> server: codec offer (JSON body)
  kHelloOk = 0x01,         // server -> client: accepted codecs (JSON body)
  kError = 0x02,           // server -> client: fatal connection error (JSON body)
  kBinaryRequest = 0x10,   // binary batch of calls
  kBinaryResponse = 0x11,  // binary batch of replies
  // A kBinaryRequest whose body is prefixed with a trace context:
  // [varint trace_id][varint span_id][request body]. Sent only after the
  // peer advertised the "trace" feature in its hello-ok (old servers never
  // see it); the response is a plain kBinaryResponse.
  kTracedRequest = 0x12,
};

// Which codec a channel speaks after negotiation.
enum class WireCodec : unsigned char { kJson = 1, kBinary = 2 };
const char* to_string(WireCodec codec);

// Error code carried by a kError frame when a frame exceeded
// rpc::kMaxFrameBytes (outside the JSON-RPC -327xx range on purpose: it is
// a transport verdict, not a dispatch one).
inline constexpr int kErrFrameTooLarge = -32010;
inline constexpr int kErrUnsupportedVersion = -32011;

// ---------------------------------------------------------------- varints

void put_varint(std::string& out, std::uint64_t v);
void put_zigzag(std::string& out, std::int64_t v);

// Readers advance `p`; throw hammer::ParseError on truncated/overlong input.
std::uint64_t get_varint(const char*& p, const char* end);
std::int64_t get_zigzag(const char*& p, const char* end);

// ---------------------------------------------------------------- values

// Canonical binary encoding of a JSON value tree, appended to `out` in one
// direct recursive pass — no intermediate strings or temporaries.
void encode_value(std::string& out, const json::Value& v);

// Decodes one value starting at `p`; advances `p` past it.
json::Value decode_value(const char*& p, const char* end);

// ---------------------------------------------------------------- frames

// Appends the 3-byte versioned header for `kind`.
void put_header(std::string& out, FrameKind kind);

// True when `payload` starts with the versioned magic byte.
bool is_versioned(std::string_view payload);

// Splits a versioned payload into its kind + body view. Throws ParseError
// on a bad magic byte or unsupported version.
struct ParsedFrame {
  FrameKind kind;
  std::string_view body;
};
ParsedFrame parse_versioned(std::string_view payload);

// ------------------------------------------------------- request/response

struct DecodedCall {
  std::uint64_t id = 0;
  std::string method;
  json::Value params;
};

struct ResponseEntry {
  std::uint64_t id = 0;
  int error_code = 0;  // 0 = success
  std::string error_message;
  json::Value result;
  bool ok() const { return error_code == 0; }
};

// Appends one call entry (no count prefix — the caller writes the varint
// count first, which is what lets call_batch scatter-gather entries).
void encode_call(std::string& out, std::uint64_t id, std::string_view method,
                 const json::Value& params);
std::vector<DecodedCall> decode_request_body(std::string_view body);

void encode_response_entry(std::string& out, const ResponseEntry& entry);
std::vector<ResponseEntry> decode_response_body(std::string_view body);
// Clears `out` and decodes into it, reusing its capacity — the reader-loop
// path, which decodes one frame after another into the same vector.
void decode_response_into(std::string_view body, std::vector<ResponseEntry>& out);

// ---------------------------------------------------------------- control

// Hello bodies are JSON (always decodable, whatever the negotiation
// outcome): {"version": 1, "api": rpc::kApiVersion, "codecs": ["binary",
// "json"], "features": ["trace"], "now_us": <steady-clock stamp>}. Peers
// that predate a key ignore it; absence of a key means the capability is
// off — negotiate down, never up. `now_us` (omitted when negative) is the
// sender's steady clock at build time: the hello/hello-ok round trip
// doubles as the clock-offset handshake that maps SUT span timestamps onto
// the driver's monotonic base. "api" is the version of the method surface
// (rpc/api.hpp), distinct from "version" which names the framing.
std::string make_hello_body(std::int64_t now_us = -1);
std::string make_hello_ok_body(std::int64_t now_us = -1);
std::string make_error_body(int code, const std::string& message);

// True when a hello/hello-ok body advertises the binary codec at a version
// we speak. Malformed bodies are simply "no".
bool offers_binary(std::string_view hello_body);

// True when a hello/hello-ok body advertises the "trace" feature at a
// version we speak (same malformed-means-no rule).
bool offers_trace(std::string_view hello_body);

// The peer's steady-clock stamp from a hello/hello-ok body, or -1 when the
// peer predates the handshake (or the body is malformed).
std::int64_t hello_now_us(std::string_view hello_body);

// The peer's method-surface version ("api") from a hello/hello-ok body, or
// -1 when the peer predates API versioning (or the body is malformed).
int hello_api_version(std::string_view hello_body);

// ------------------------------------------------------------ trace prefix

// Appends the kTracedRequest context prefix.
void put_trace_prefix(std::string& out, std::uint64_t trace_id, std::uint64_t span_id);

// Splits a kTracedRequest body into its context and the request body that
// follows. Throws ParseError on truncated input.
struct TracePrefix {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::string_view rest;
};
TracePrefix parse_trace_prefix(std::string_view body);

}  // namespace hammer::rpc::wire
