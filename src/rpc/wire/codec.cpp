#include "rpc/wire/codec.hpp"

#include <algorithm>
#include <cstring>

#include "rpc/api.hpp"
#include "util/errors.hpp"

namespace hammer::rpc::wire {

namespace {

// Value tag bytes. Booleans get their own tags so true/false cost one byte.
enum : unsigned char {
  kTagNull = 0,
  kTagFalse = 1,
  kTagTrue = 2,
  kTagInt = 3,
  kTagDouble = 4,
  kTagString = 5,
  kTagArray = 6,
  kTagObject = 7,
};

[[noreturn]] void truncated(const char* what) {
  throw ParseError(std::string("binary frame truncated in ") + what);
}

void put_bytes(std::string& out, std::string_view bytes) {
  put_varint(out, bytes.size());
  out.append(bytes.data(), bytes.size());
}

std::string_view get_bytes(const char*& p, const char* end, const char* what) {
  std::uint64_t len = get_varint(p, end);
  if (len > static_cast<std::uint64_t>(end - p)) truncated(what);
  std::string_view view(p, static_cast<std::size_t>(len));
  p += len;
  return view;
}

}  // namespace

const char* to_string(WireCodec codec) {
  switch (codec) {
    case WireCodec::kJson: return "json";
    case WireCodec::kBinary: return "binary";
  }
  return "?";
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_zigzag(std::string& out, std::int64_t v) {
  put_varint(out, (static_cast<std::uint64_t>(v) << 1) ^
                      static_cast<std::uint64_t>(v >> 63));
}

std::uint64_t get_varint(const char*& p, const char* end) {
  std::uint64_t v = 0;
  int shift = 0;
  while (p < end) {
    unsigned char byte = static_cast<unsigned char>(*p++);
    if (shift == 63 && byte > 1) throw ParseError("varint overflows 64 bits");
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) throw ParseError("varint overflows 64 bits");
  }
  truncated("varint");
}

std::int64_t get_zigzag(const char*& p, const char* end) {
  std::uint64_t raw = get_varint(p, end);
  return static_cast<std::int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
}

// Direct recursive walk rather than the json::Visitor SAX interface: the
// encoder sits on the per-call hot path, and a type switch inlines where
// fifteen virtual dispatches per tree do not.
void encode_value(std::string& out, const json::Value& v) {
  switch (v.type()) {
    case json::Value::Type::kNull:
      out.push_back(static_cast<char>(kTagNull));
      return;
    case json::Value::Type::kBool:
      out.push_back(static_cast<char>(v.as_bool() ? kTagTrue : kTagFalse));
      return;
    case json::Value::Type::kInt:
      out.push_back(static_cast<char>(kTagInt));
      put_zigzag(out, v.as_int());
      return;
    case json::Value::Type::kDouble: {
      out.push_back(static_cast<char>(kTagDouble));
      double d = v.as_double();
      char bytes[sizeof(double)];
      std::memcpy(bytes, &d, sizeof(double));
      out.append(bytes, sizeof(double));
      return;
    }
    case json::Value::Type::kString:
      out.push_back(static_cast<char>(kTagString));
      put_bytes(out, v.as_string());
      return;
    case json::Value::Type::kArray: {
      const json::Array& arr = v.as_array();
      out.push_back(static_cast<char>(kTagArray));
      put_varint(out, arr.size());
      for (const json::Value& item : arr) encode_value(out, item);
      return;
    }
    case json::Value::Type::kObject: {
      const json::Object& obj = v.as_object();
      out.push_back(static_cast<char>(kTagObject));
      put_varint(out, obj.size());
      for (const auto& [key, item] : obj) {
        put_bytes(out, key);
        encode_value(out, item);
      }
      return;
    }
  }
}

json::Value decode_value(const char*& p, const char* end) {
  if (p >= end) truncated("value tag");
  unsigned char tag = static_cast<unsigned char>(*p++);
  switch (tag) {
    case kTagNull: return json::Value(nullptr);
    case kTagFalse: return json::Value(false);
    case kTagTrue: return json::Value(true);
    case kTagInt: return json::Value(get_zigzag(p, end));
    case kTagDouble: {
      if (end - p < static_cast<std::ptrdiff_t>(sizeof(double))) truncated("double");
      double d;
      std::memcpy(&d, p, sizeof(double));
      p += sizeof(double);
      return json::Value(d);
    }
    case kTagString: return json::Value(std::string(get_bytes(p, end, "string")));
    case kTagArray: {
      std::uint64_t count = get_varint(p, end);
      json::Array arr;
      // Guard reserve with the bytes actually available: a corrupt count
      // must not pre-allocate gigabytes before the decode loop fails.
      arr.reserve(static_cast<std::size_t>(
          std::min<std::uint64_t>(count, static_cast<std::uint64_t>(end - p))));
      for (std::uint64_t i = 0; i < count; ++i) arr.push_back(decode_value(p, end));
      return json::Value(std::move(arr));
    }
    case kTagObject: {
      std::uint64_t count = get_varint(p, end);
      json::Object obj;
      for (std::uint64_t i = 0; i < count; ++i) {
        std::string key(get_bytes(p, end, "object key"));
        // Canonical encoding emits keys in sorted order, so an end() hint
        // makes each insert amortized O(1); an unsorted (foreign) encoder
        // still decodes correctly, the hint is just wasted.
        obj.emplace_hint(obj.end(), std::move(key), decode_value(p, end));
      }
      return json::Value(std::move(obj));
    }
    default:
      throw ParseError("unknown binary value tag " + std::to_string(tag));
  }
}

void put_header(std::string& out, FrameKind kind) {
  out.push_back(static_cast<char>(kMagic));
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(kind));
}

bool is_versioned(std::string_view payload) {
  return !payload.empty() && static_cast<unsigned char>(payload[0]) == kMagic;
}

ParsedFrame parse_versioned(std::string_view payload) {
  if (payload.size() < kHeaderBytes || !is_versioned(payload)) {
    throw ParseError("not a versioned wire frame");
  }
  if (static_cast<unsigned char>(payload[1]) != kVersion) {
    throw ParseError("unsupported wire version " +
                     std::to_string(static_cast<unsigned char>(payload[1])));
  }
  ParsedFrame frame;
  frame.kind = static_cast<FrameKind>(static_cast<unsigned char>(payload[2]));
  frame.body = payload.substr(kHeaderBytes);
  return frame;
}

void encode_call(std::string& out, std::uint64_t id, std::string_view method,
                 const json::Value& params) {
  put_varint(out, id);
  put_bytes(out, method);
  encode_value(out, params);
}

std::vector<DecodedCall> decode_request_body(std::string_view body) {
  const char* p = body.data();
  const char* end = p + body.size();
  std::uint64_t count = get_varint(p, end);
  std::vector<DecodedCall> calls;
  calls.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, static_cast<std::uint64_t>(end - p) + 1)));
  for (std::uint64_t i = 0; i < count; ++i) {
    DecodedCall call;
    call.id = get_varint(p, end);
    call.method = std::string(get_bytes(p, end, "method"));
    call.params = decode_value(p, end);
    calls.push_back(std::move(call));
  }
  if (p != end) throw ParseError("trailing bytes after binary request body");
  return calls;
}

void encode_response_entry(std::string& out, const ResponseEntry& entry) {
  put_varint(out, entry.id);
  if (entry.ok()) {
    out.push_back(0);
    encode_value(out, entry.result);
  } else {
    out.push_back(1);
    put_zigzag(out, entry.error_code);
    put_bytes(out, entry.error_message);
  }
}

std::vector<ResponseEntry> decode_response_body(std::string_view body) {
  std::vector<ResponseEntry> entries;
  decode_response_into(body, entries);
  return entries;
}

void decode_response_into(std::string_view body, std::vector<ResponseEntry>& out) {
  out.clear();
  const char* p = body.data();
  const char* end = p + body.size();
  std::uint64_t count = get_varint(p, end);
  out.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, static_cast<std::uint64_t>(end - p) + 1)));
  for (std::uint64_t i = 0; i < count; ++i) {
    ResponseEntry entry;
    entry.id = get_varint(p, end);
    if (p >= end) truncated("response status");
    unsigned char status = static_cast<unsigned char>(*p++);
    if (status == 0) {
      entry.result = decode_value(p, end);
    } else if (status == 1) {
      entry.error_code = static_cast<int>(get_zigzag(p, end));
      entry.error_message = std::string(get_bytes(p, end, "error message"));
    } else {
      throw ParseError("unknown response status " + std::to_string(status));
    }
    out.push_back(std::move(entry));
  }
  if (p != end) throw ParseError("trailing bytes after binary response body");
}

std::string make_hello_body(std::int64_t now_us) {
  json::Value body = json::object({{"version", static_cast<std::int64_t>(kVersion)},
                                   {"api", static_cast<std::int64_t>(kApiVersion)},
                                   {"codecs", json::array({"binary", "json"})},
                                   {"features", json::array({"trace"})}});
  if (now_us >= 0) body["now_us"] = now_us;
  return body.dump();
}

std::string make_hello_ok_body(std::int64_t now_us) { return make_hello_body(now_us); }

std::string make_error_body(int code, const std::string& message) {
  return json::object({{"code", code}, {"message", message}}).dump();
}

bool offers_binary(std::string_view hello_body) {
  try {
    json::Value body = json::Value::parse(hello_body);
    if (body.get_int("version", 0) != kVersion) return false;
    if (!body.contains("codecs")) return false;
    for (const json::Value& codec : body.at("codecs").as_array()) {
      if (codec.is_string() && codec.as_string() == "binary") return true;
    }
  } catch (const Error&) {
    // Malformed hello: negotiate down, never up.
  }
  return false;
}

bool offers_trace(std::string_view hello_body) {
  try {
    json::Value body = json::Value::parse(hello_body);
    if (body.get_int("version", 0) != kVersion) return false;
    if (!body.contains("features")) return false;
    for (const json::Value& feature : body.at("features").as_array()) {
      if (feature.is_string() && feature.as_string() == "trace") return true;
    }
  } catch (const Error&) {
    // Malformed hello: negotiate down, never up.
  }
  return false;
}

std::int64_t hello_now_us(std::string_view hello_body) {
  try {
    json::Value body = json::Value::parse(hello_body);
    return body.get_int("now_us", -1);
  } catch (const Error&) {
    return -1;
  }
}

int hello_api_version(std::string_view hello_body) {
  try {
    json::Value body = json::Value::parse(hello_body);
    return static_cast<int>(body.get_int("api", -1));
  } catch (const Error&) {
    return -1;
  }
}

void put_trace_prefix(std::string& out, std::uint64_t trace_id, std::uint64_t span_id) {
  put_varint(out, trace_id);
  put_varint(out, span_id);
}

TracePrefix parse_trace_prefix(std::string_view body) {
  const char* p = body.data();
  const char* end = body.data() + body.size();
  TracePrefix prefix;
  prefix.trace_id = get_varint(p, end);
  prefix.span_id = get_varint(p, end);
  prefix.rest = std::string_view(p, static_cast<std::size_t>(end - p));
  return prefix;
}

}  // namespace hammer::rpc::wire
