#include "workload/generator.hpp"

#include "util/errors.hpp"

namespace hammer::workload {

AccountPicker::AccountPicker(const WorkloadProfile& profile, std::vector<std::string> accounts)
    : accounts_(std::move(accounts)) {
  HAMMER_CHECK_MSG(!accounts_.empty(), "generator needs at least one account");
  if (profile.distribution == Distribution::kZipfian) {
    zipf_.emplace(accounts_.size(), profile.zipf_theta);
  }
}

const std::string& AccountPicker::pick(util::Pcg32& rng) const {
  std::size_t index = zipf_ ? static_cast<std::size_t>(zipf_->sample(rng))
                            : static_cast<std::size_t>(rng.uniform(0, accounts_.size() - 1));
  return accounts_[index];
}

std::pair<const std::string*, const std::string*> AccountPicker::pick_pair(
    util::Pcg32& rng) const {
  if (accounts_.size() == 1) return {&accounts_[0], &accounts_[0]};
  const std::string* from = &pick(rng);
  const std::string* to = &pick(rng);
  // Re-draw 'to' until distinct (cheap: collision odds are ~1/n uniform;
  // for heavy zipf skew fall back to a neighbouring account).
  for (int attempt = 0; to == from && attempt < 8; ++attempt) to = &pick(rng);
  if (to == from) {
    std::size_t i = static_cast<std::size_t>(from - accounts_.data());
    to = &accounts_[(i + 1) % accounts_.size()];
  }
  return {from, to};
}

std::unique_ptr<Generator> make_generator(const WorkloadProfile& profile,
                                          std::vector<std::string> accounts) {
  if (profile.contract == "smallbank") {
    return std::make_unique<SmallBankGenerator>(profile, std::move(accounts));
  }
  if (profile.contract == "kv") {
    return std::make_unique<YcsbGenerator>(profile, std::move(accounts));
  }
  if (profile.contract == "token") {
    return std::make_unique<TokenGenerator>(profile, std::move(accounts));
  }
  if (profile.contract == "donothing" || profile.contract == "cpuheavy" ||
      profile.contract == "ioheavy") {
    return std::make_unique<MicroGenerator>(profile, std::move(accounts));
  }
  throw ParseError("no generator for contract '" + profile.contract + "'");
}

// ------------------------------------------------------------- SmallBank

SmallBankGenerator::SmallBankGenerator(WorkloadProfile profile, std::vector<std::string> accounts)
    : profile_(std::move(profile)),
      picker_(profile_, std::move(accounts)),
      rng_(profile_.seed) {
  for (const auto& [op, weight] : profile_.effective_mix()) {
    mix_total_ += weight;
    cumulative_mix_.emplace_back(op, mix_total_);
  }
  HAMMER_CHECK_MSG(mix_total_ > 0, "op mix has zero total weight");
}

chain::Transaction SmallBankGenerator::next() {
  double roll = rng_.uniform01() * mix_total_;
  const std::string* op = &cumulative_mix_.back().first;
  for (const auto& [name, cumulative] : cumulative_mix_) {
    if (roll < cumulative) {
      op = &name;
      break;
    }
  }

  chain::Transaction tx;
  tx.contract = "smallbank";
  tx.op = *op;
  tx.client_id = profile_.client_id;
  tx.nonce = nonce_++;
  std::int64_t amount =
      static_cast<std::int64_t>(rng_.uniform(static_cast<std::uint64_t>(profile_.amount_min),
                                             static_cast<std::uint64_t>(profile_.amount_max)));

  if (*op == "send_payment" || *op == "amalgamate") {
    auto [from, to] = picker_.pick_pair(rng_);
    tx.sender = *from;
    json::Object args;
    args["from"] = *from;
    args["to"] = *to;
    if (*op == "send_payment") args["amount"] = amount;
    tx.args = json::Value(std::move(args));
  } else {
    const std::string& customer = picker_.pick(rng_);
    tx.sender = customer;
    json::Object args;
    args["customer"] = customer;
    if (*op == "transact_savings") {
      // "withdraw": negative savings delta.
      args["amount"] = -amount;
    } else if (*op != "query") {
      args["amount"] = amount;
    }
    tx.args = json::Value(std::move(args));
  }
  return tx;
}

// ------------------------------------------------------------------ YCSB

YcsbGenerator::YcsbGenerator(WorkloadProfile profile, std::vector<std::string> accounts)
    : profile_(std::move(profile)),
      picker_(profile_, std::move(accounts)),
      rng_(profile_.seed) {}

chain::Transaction YcsbGenerator::next() {
  chain::Transaction tx;
  tx.contract = "kv";
  tx.client_id = profile_.client_id;
  tx.nonce = nonce_++;
  const std::string& key = picker_.pick(rng_);
  tx.sender = key;  // the key's "owner" signs
  auto mix = profile_.effective_mix();
  double write_weight = mix.count("put") ? mix.at("put") : 0.0;
  // YCSB-F flavour: a read-modify-write touches the key's current value, so
  // under MVCC (Fabric) two skewed rmw's on one hot key in flight together
  // produce a read-set conflict — the abort mode bench_blockbench measures.
  double rmw_weight = mix.count("read_modify_write") ? mix.at("read_modify_write") : 0.0;
  double total = 0.0;
  for (const auto& [op, w] : mix) {
    (void)op;
    total += w;
  }
  double roll = rng_.uniform01() * total;
  if (roll < write_weight) {
    tx.op = "put";
    tx.args = json::object({{"key", key}, {"value", rng_.alnum(16)}});
  } else if (roll < write_weight + rmw_weight) {
    tx.op = "read_modify_write";
    tx.args = json::object({{"key", key}, {"suffix", rng_.alnum(4)}});
  } else {
    tx.op = "get";
    tx.args = json::object({{"key", key}});
  }
  return tx;
}

// ----------------------------------------------------------------- Token

TokenGenerator::TokenGenerator(WorkloadProfile profile, std::vector<std::string> accounts)
    : profile_(std::move(profile)),
      picker_(profile_, std::move(accounts)),
      rng_(profile_.seed) {}

chain::Transaction TokenGenerator::next() {
  chain::Transaction tx;
  tx.contract = "token";
  tx.client_id = profile_.client_id;
  tx.nonce = nonce_++;
  auto mix = profile_.effective_mix();
  double mint_weight = mix.count("mint") ? mix.at("mint") : 0.0;
  double total = 0.0;
  for (const auto& [op, w] : mix) {
    (void)op;
    total += w;
  }
  std::int64_t amount =
      static_cast<std::int64_t>(rng_.uniform(static_cast<std::uint64_t>(profile_.amount_min),
                                             static_cast<std::uint64_t>(profile_.amount_max)));
  if (rng_.uniform01() * total < mint_weight) {
    const std::string& to = picker_.pick(rng_);
    tx.op = "mint";
    tx.sender = "issuer";
    tx.args = json::object({{"symbol", "HMR"}, {"to", to}, {"amount", amount}});
  } else {
    auto [from, to] = picker_.pick_pair(rng_);
    tx.op = "transfer";
    tx.sender = *from;
    tx.args = json::object({{"symbol", "HMR"}, {"from", *from}, {"to", *to}, {"amount", amount}});
  }
  return tx;
}

// ------------------------------------------------------------- micro set

MicroGenerator::MicroGenerator(WorkloadProfile profile, std::vector<std::string> accounts)
    : profile_(std::move(profile)),
      picker_(profile_, std::move(accounts)),
      rng_(profile_.seed) {
  for (const auto& [op, weight] : profile_.effective_mix()) {
    mix_total_ += weight;
    cumulative_mix_.emplace_back(op, mix_total_);
  }
  HAMMER_CHECK_MSG(mix_total_ > 0, "op mix has zero total weight");
}

chain::Transaction MicroGenerator::next() {
  double roll = rng_.uniform01() * mix_total_;
  const std::string* op = &cumulative_mix_.back().first;
  for (const auto& [name, cumulative] : cumulative_mix_) {
    if (roll < cumulative) {
      op = &name;
      break;
    }
  }

  chain::Transaction tx;
  tx.contract = profile_.contract;
  tx.op = *op;
  tx.client_id = profile_.client_id;
  tx.nonce = nonce_++;
  const std::string& account = picker_.pick(rng_);
  tx.sender = account;
  if (profile_.contract == "donothing") {
    tx.args = json::object({});
  } else if (profile_.contract == "cpuheavy") {
    // The per-tx sort seed is drawn (not the nonce) so shards decorrelate
    // the same way every other generated field does.
    tx.args = json::object({{"size", profile_.micro_size},
                            {"seed", static_cast<std::int64_t>(
                                         rng_.uniform(0, 0x7fffffff))}});
  } else {  // ioheavy
    tx.args = json::object({{"key", account}, {"count", profile_.micro_size}});
  }
  return tx;
}

}  // namespace hammer::workload
