#include "workload/profile.hpp"

#include "util/errors.hpp"

namespace hammer::workload {

WorkloadProfile WorkloadProfile::from_json(const json::Value& v) {
  WorkloadProfile p;
  p.contract = v.get_string("contract", p.contract);
  p.num_accounts =
      static_cast<std::size_t>(v.get_int("num_accounts", static_cast<std::int64_t>(p.num_accounts)));
  std::string dist = v.get_string("distribution", "uniform");
  if (dist == "uniform") {
    p.distribution = Distribution::kUniform;
  } else if (dist == "zipfian") {
    p.distribution = Distribution::kZipfian;
  } else {
    throw ParseError("unknown distribution '" + dist + "'");
  }
  p.zipf_theta = v.get_double("zipf_theta", p.zipf_theta);
  if (v.contains("op_mix")) {
    for (const auto& [op, weight] : v.at("op_mix").as_object()) {
      double w = weight.as_double();
      if (w < 0) throw ParseError("negative op weight for " + op);
      p.op_mix[op] = w;
    }
  }
  p.amount_min = v.get_int("amount_min", p.amount_min);
  p.amount_max = v.get_int("amount_max", p.amount_max);
  if (p.amount_min > p.amount_max) throw ParseError("amount_min > amount_max");
  p.micro_size = v.get_int("micro_size", p.micro_size);
  if (p.micro_size <= 0) throw ParseError("micro_size must be positive");
  p.client_id = v.get_string("client_id", p.client_id);
  p.seed = static_cast<std::uint64_t>(v.get_int("seed", static_cast<std::int64_t>(p.seed)));
  if (p.num_accounts == 0) throw ParseError("num_accounts must be positive");
  return p;
}

json::Value WorkloadProfile::to_json() const {
  json::Object obj;
  obj["contract"] = contract;
  obj["num_accounts"] = num_accounts;
  obj["distribution"] = distribution == Distribution::kUniform ? "uniform" : "zipfian";
  obj["zipf_theta"] = zipf_theta;
  if (!op_mix.empty()) {
    json::Object mix;
    for (const auto& [op, w] : op_mix) mix[op] = w;
    obj["op_mix"] = json::Value(std::move(mix));
  }
  obj["amount_min"] = amount_min;
  obj["amount_max"] = amount_max;
  obj["micro_size"] = micro_size;
  obj["client_id"] = client_id;
  obj["seed"] = seed;
  return json::Value(std::move(obj));
}

std::map<std::string, double> WorkloadProfile::effective_mix() const {
  if (!op_mix.empty()) return op_mix;
  if (contract == "smallbank") {
    // Paper §V Workload: deposit, withdraw, transfer, amalgamate — uniform.
    return {{"deposit_checking", 1.0},
            {"transact_savings", 1.0},
            {"send_payment", 1.0},
            {"amalgamate", 1.0}};
  }
  if (contract == "kv") {
    // YCSB-A-like: 50/50 read/update.
    return {{"get", 1.0}, {"put", 1.0}};
  }
  if (contract == "token") {
    return {{"transfer", 9.0}, {"mint", 1.0}};
  }
  // BLOCKBENCH micro set defaults.
  if (contract == "donothing") {
    return {{"noop", 1.0}};
  }
  if (contract == "cpuheavy") {
    return {{"sort", 1.0}};
  }
  if (contract == "ioheavy") {
    // Write-leaning, like the original IOHeavy benchmark's write/scan split.
    return {{"write", 2.0}, {"scan", 1.0}};
  }
  throw ParseError("no default op mix for contract '" + contract + "'");
}

}  // namespace hammer::workload
