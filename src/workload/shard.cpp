#include "workload/shard.hpp"

#include "util/errors.hpp"
#include "util/random.hpp"

namespace hammer::workload {

std::vector<std::string> shard_accounts(const std::vector<std::string>& accounts,
                                        const ShardSpec& spec) {
  HAMMER_CHECK_MSG(spec.count >= 1, "shard count must be >= 1");
  HAMMER_CHECK_MSG(spec.index < spec.count, "shard index out of range");
  std::vector<std::string> out;
  out.reserve(accounts.size() / spec.count + 1);
  for (std::size_t j = spec.index; j < accounts.size(); j += spec.count) {
    out.push_back(accounts[j]);
  }
  return out;
}

std::size_t shard_tx_count(std::size_t total, const ShardSpec& spec) {
  HAMMER_CHECK_MSG(spec.count >= 1, "shard count must be >= 1");
  HAMMER_CHECK_MSG(spec.index < spec.count, "shard index out of range");
  return total / spec.count + (spec.index < total % spec.count ? 1 : 0);
}

WorkloadProfile shard_profile(const WorkloadProfile& profile, const ShardSpec& spec) {
  HAMMER_CHECK_MSG(spec.count >= 1, "shard count must be >= 1");
  HAMMER_CHECK_MSG(spec.index < spec.count, "shard index out of range");
  if (spec.identity()) return profile;
  WorkloadProfile out = profile;
  out.seed = util::derive_seed(profile.seed, spec.index);
  out.client_id = profile.client_id + "-w" + std::to_string(spec.index);
  out.num_accounts = profile.num_accounts / spec.count +
                     (spec.index < profile.num_accounts % spec.count ? 1 : 0);
  if (out.num_accounts == 0) out.num_accounts = 1;  // profile invariant
  return out;
}

WorkloadFile generate_workload_shard(const WorkloadProfile& profile,
                                     const std::vector<std::string>& accounts,
                                     std::size_t total, const ShardSpec& spec) {
  std::vector<std::string> owned = shard_accounts(accounts, spec);
  HAMMER_CHECK_MSG(!owned.empty(), "shard owns no accounts — fewer accounts than workers");
  return generate_workload(shard_profile(profile, spec), std::move(owned),
                           shard_tx_count(total, spec));
}

}  // namespace hammer::workload
