// Workload profile: the JSON document the client parses in the preparation
// phase ("the workload profile is parsed to obtain information such as
// workload read/write ratio, distribution, and so on" — paper §III-A1).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace hammer::workload {

enum class Distribution { kUniform, kZipfian };

struct WorkloadProfile {
  std::string contract = "smallbank";  // smallbank | ycsb | token
  std::size_t num_accounts = 1000;
  Distribution distribution = Distribution::kUniform;
  double zipf_theta = 0.9;             // used when distribution == kZipfian

  // Operation mix: op name -> weight. Empty = the contract's default mix
  // (SmallBank: the paper's four ops with uniform weights).
  std::map<std::string, double> op_mix;

  // Payment / deposit amounts drawn uniformly from [amount_min, amount_max].
  std::int64_t amount_min = 1;
  std::int64_t amount_max = 100;

  // BLOCKBENCH micro set sizing: cpuheavy sorts micro_size elements per
  // transaction, ioheavy writes/scans micro_size state keys.
  std::int64_t micro_size = 64;

  std::string client_id = "client-0";
  std::uint64_t seed = 1;

  static WorkloadProfile from_json(const json::Value& v);
  json::Value to_json() const;

  // The default mix for this profile's contract (used when op_mix is empty).
  std::map<std::string, double> effective_mix() const;
};

}  // namespace hammer::workload
