// Workload file persistence: the client "executes the corresponding
// commands to generate workload, which are persisted to a file and sent to
// the server via secure copy" (paper §III-B1). In this single-box
// reproduction the SCP hop is a local file move; the format is one JSON
// header line followed by one unsigned transaction per line, which the
// server streams through its asynchronous signature pipeline.
#pragma once

#include <string>
#include <vector>

#include "chain/types.hpp"
#include "workload/profile.hpp"

namespace hammer::workload {

struct WorkloadFile {
  WorkloadProfile profile;
  std::vector<chain::Transaction> transactions;  // unsigned

  void save(const std::string& path) const;
  static WorkloadFile load(const std::string& path);
};

// Convenience: generate `count` transactions from the profile.
WorkloadFile generate_workload(const WorkloadProfile& profile,
                               std::vector<std::string> accounts, std::size_t count);

}  // namespace hammer::workload
