// Workload generators: turn a profile + account population into a stream of
// unsigned transactions ("the payload is generated based on custom
// application actions" — paper §III-A1). Signing happens later, on the
// server, through the asynchronous signature pipeline (§III-D1).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/types.hpp"
#include "util/random.hpp"
#include "workload/profile.hpp"

namespace hammer::workload {

class Generator {
 public:
  virtual ~Generator() = default;

  // Produces the next unsigned transaction (deterministic per seed).
  virtual chain::Transaction next() = 0;
};

// Weighted op sampling + account-pair selection under the configured
// access distribution, shared by the concrete generators.
class AccountPicker {
 public:
  AccountPicker(const WorkloadProfile& profile, std::vector<std::string> accounts);

  const std::string& pick(util::Pcg32& rng) const;
  // Two distinct accounts (from, to).
  std::pair<const std::string*, const std::string*> pick_pair(util::Pcg32& rng) const;

  const std::vector<std::string>& accounts() const { return accounts_; }

 private:
  std::vector<std::string> accounts_;
  std::optional<util::ZipfSampler> zipf_;
};

// Factory: builds the generator matching profile.contract.
// Throws ParseError for unknown contracts.
std::unique_ptr<Generator> make_generator(const WorkloadProfile& profile,
                                          std::vector<std::string> accounts);

class SmallBankGenerator final : public Generator {
 public:
  SmallBankGenerator(WorkloadProfile profile, std::vector<std::string> accounts);
  chain::Transaction next() override;

 private:
  WorkloadProfile profile_;
  AccountPicker picker_;
  std::vector<std::pair<std::string, double>> cumulative_mix_;
  double mix_total_ = 0.0;
  util::Pcg32 rng_;
  std::uint64_t nonce_ = 0;
};

class YcsbGenerator final : public Generator {
 public:
  YcsbGenerator(WorkloadProfile profile, std::vector<std::string> accounts);
  chain::Transaction next() override;

 private:
  WorkloadProfile profile_;
  AccountPicker picker_;
  util::Pcg32 rng_;
  std::uint64_t nonce_ = 0;
};

class TokenGenerator final : public Generator {
 public:
  TokenGenerator(WorkloadProfile profile, std::vector<std::string> accounts);
  chain::Transaction next() override;

 private:
  WorkloadProfile profile_;
  AccountPicker picker_;
  util::Pcg32 rng_;
  std::uint64_t nonce_ = 0;
};

// One generator covers the whole BLOCKBENCH micro set (donothing /
// cpuheavy / ioheavy): ops come from the profile's effective mix, work
// sizes from profile.micro_size, and the accessed account (ioheavy key,
// tx sender) from the configured distribution.
class MicroGenerator final : public Generator {
 public:
  MicroGenerator(WorkloadProfile profile, std::vector<std::string> accounts);
  chain::Transaction next() override;

 private:
  WorkloadProfile profile_;
  AccountPicker picker_;
  std::vector<std::pair<std::string, double>> cumulative_mix_;
  double mix_total_ = 0.0;
  util::Pcg32 rng_;
  std::uint64_t nonce_ = 0;
};

}  // namespace hammer::workload
