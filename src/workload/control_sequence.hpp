// Temporal control sequences: "a time sequence to control the number of
// concurrent transactions within a time period. It simulates the timing
// features of real-world blockchain applications" (paper §III-B1).
//
// A sequence holds one transaction count per time slice. The forecast
// module (src/forecast) produces extended sequences from learned models;
// the RateController turns a sequence into an open-loop send schedule.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "util/clock.hpp"

namespace hammer::workload {

class ControlSequence {
 public:
  ControlSequence() = default;
  ControlSequence(std::vector<double> counts, util::Duration slice);

  static ControlSequence constant(double rate_per_second, util::Duration total,
                                  util::Duration slice);

  const std::vector<double>& counts() const { return counts_; }
  util::Duration slice() const { return slice_; }
  std::size_t num_slices() const { return counts_.size(); }
  double total() const;
  double peak() const;
  util::Duration duration() const { return slice_ * static_cast<std::int64_t>(counts_.size()); }

  // Rescales so the busiest slice issues `peak` transactions (lets one
  // learned shape be replayed at different load levels).
  ControlSequence scaled_to_peak(double peak) const;
  // Rescales so the sum of all slices is `total`.
  ControlSequence scaled_to_total(double total) const;

  json::Value to_json() const;
  static ControlSequence from_json(const json::Value& v);

  void save(const std::string& path) const;
  static ControlSequence load(const std::string& path);

 private:
  std::vector<double> counts_;
  util::Duration slice_{std::chrono::seconds(1)};
};

// Open-loop scheduler: spreads each slice's transactions uniformly across
// the slice and yields absolute send deadlines. Thread-safe: concurrent
// workers can pull deadlines from one controller.
class RateController {
 public:
  RateController(ControlSequence sequence, std::shared_ptr<util::Clock> clock);

  // Next absolute send time, or nullopt when the sequence is exhausted.
  // Deadlines are monotonically non-decreasing across calls.
  std::optional<util::TimePoint> next_send_time();

  std::uint64_t total_planned() const { return total_planned_; }

 private:
  ControlSequence sequence_;
  std::shared_ptr<util::Clock> clock_;
  util::TimePoint start_;
  std::uint64_t total_planned_ = 0;

  std::mutex mu_;
  std::size_t slice_index_ = 0;
  std::uint64_t issued_in_slice_ = 0;
  std::uint64_t slice_quota_ = 0;
  double carry_ = 0.0;  // fractional counts carry into the next slice
};

}  // namespace hammer::workload
