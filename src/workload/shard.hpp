// Workload sharding for the distributed driver fleet (DESIGN.md §13).
//
// A coordinator splits ONE logical workload across N worker processes so
// that the union of the shards stresses the SUT exactly like the
// single-process run would, while no two workers ever contend on the same
// sender: shard `index` of `count` owns the accounts at positions
// j % count == index (strided, so each shard keeps the same chain-shard
// balance as the full population), draws from its own derived seed
// (util::derive_seed(profile.seed, index)), and generates
// total/count (+1 for the first total%count shards) transactions.
//
// Shard (0, 1) is the identity: same accounts, same seed, same client_id,
// same transaction stream as the unsharded profile — the property the
// merge test pins down.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "workload/workload_file.hpp"

namespace hammer::workload {

// Which slice of the fleet this worker is: `index` in [0, count).
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  bool identity() const { return count == 1; }
};

// The accounts shard `spec` owns: accounts[j] for j % count == index.
// Disjoint across shards (no cross-worker nonce conflicts) and strided so
// every shard covers the chain's account space evenly.
std::vector<std::string> shard_accounts(const std::vector<std::string>& accounts,
                                        const ShardSpec& spec);

// How many of `total` transactions shard `spec` generates. Shards sum to
// exactly `total`; the first total % count shards carry one extra.
std::size_t shard_tx_count(std::size_t total, const ShardSpec& spec);

// The per-worker profile: seed derived from (profile.seed, index), client_id
// suffixed "-w<index>", num_accounts scaled to the shard's slice. Identity
// for count == 1.
WorkloadProfile shard_profile(const WorkloadProfile& profile, const ShardSpec& spec);

// Composes the three: shard `spec`'s slice of a `total`-transaction workload
// over `accounts`. generate_workload_shard(p, a, n, {0, 1}) ==
// generate_workload(p, a, n).
WorkloadFile generate_workload_shard(const WorkloadProfile& profile,
                                     const std::vector<std::string>& accounts,
                                     std::size_t total, const ShardSpec& spec);

}  // namespace hammer::workload
