#include "workload/control_sequence.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/errors.hpp"

namespace hammer::workload {

ControlSequence::ControlSequence(std::vector<double> counts, util::Duration slice)
    : counts_(std::move(counts)), slice_(slice) {
  HAMMER_CHECK(slice_.count() > 0);
  for (double c : counts_) HAMMER_CHECK_MSG(c >= 0, "negative slice count");
}

ControlSequence ControlSequence::constant(double rate_per_second, util::Duration total,
                                          util::Duration slice) {
  HAMMER_CHECK(rate_per_second >= 0);
  HAMMER_CHECK(slice.count() > 0);
  auto num_slices = static_cast<std::size_t>(
      (total + slice - util::Duration(1)) / slice);
  double per_slice = rate_per_second * std::chrono::duration<double>(slice).count();
  return ControlSequence(std::vector<double>(num_slices, per_slice), slice);
}

double ControlSequence::total() const {
  double sum = 0;
  for (double c : counts_) sum += c;
  return sum;
}

double ControlSequence::peak() const {
  double best = 0;
  for (double c : counts_) best = std::max(best, c);
  return best;
}

ControlSequence ControlSequence::scaled_to_peak(double peak_target) const {
  double p = peak();
  HAMMER_CHECK_MSG(p > 0, "cannot scale an all-zero sequence");
  std::vector<double> scaled = counts_;
  for (double& c : scaled) c *= peak_target / p;
  return ControlSequence(std::move(scaled), slice_);
}

ControlSequence ControlSequence::scaled_to_total(double total_target) const {
  double t = total();
  HAMMER_CHECK_MSG(t > 0, "cannot scale an all-zero sequence");
  std::vector<double> scaled = counts_;
  for (double& c : scaled) c *= total_target / t;
  return ControlSequence(std::move(scaled), slice_);
}

json::Value ControlSequence::to_json() const {
  json::Array arr;
  arr.reserve(counts_.size());
  for (double c : counts_) arr.emplace_back(c);
  return json::object(
      {{"slice_ms",
        std::chrono::duration_cast<std::chrono::milliseconds>(slice_).count()},
       {"counts", json::Value(std::move(arr))}});
}

ControlSequence ControlSequence::from_json(const json::Value& v) {
  std::vector<double> counts;
  for (const json::Value& c : v.at("counts").as_array()) counts.push_back(c.as_double());
  return ControlSequence(std::move(counts),
                         std::chrono::milliseconds(v.at("slice_ms").as_int()));
}

void ControlSequence::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot write control sequence to " + path);
  out << to_json().dump(2);
}

ControlSequence ControlSequence::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot read control sequence from " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(json::Value::parse(buffer.str()));
}

RateController::RateController(ControlSequence sequence, std::shared_ptr<util::Clock> clock)
    : sequence_(std::move(sequence)), clock_(std::move(clock)) {
  HAMMER_CHECK(clock_ != nullptr);
  start_ = clock_->now();
  double planned = 0;
  for (double c : sequence_.counts()) planned += c;
  total_planned_ = static_cast<std::uint64_t>(planned);
}

std::optional<util::TimePoint> RateController::next_send_time() {
  std::scoped_lock lock(mu_);
  for (;;) {
    if (slice_index_ >= sequence_.num_slices()) return std::nullopt;
    if (issued_in_slice_ == 0) {
      // Entering the slice: fix its integer quota, carrying fractions.
      double want = sequence_.counts()[slice_index_] + carry_;
      slice_quota_ = static_cast<std::uint64_t>(want);
      carry_ = want - static_cast<double>(slice_quota_);
    }
    if (issued_in_slice_ < slice_quota_) {
      util::TimePoint slice_start =
          start_ + sequence_.slice() * static_cast<std::int64_t>(slice_index_);
      // Spread sends uniformly across the slice.
      auto offset = sequence_.slice() * static_cast<std::int64_t>(issued_in_slice_) /
                    static_cast<std::int64_t>(slice_quota_);
      ++issued_in_slice_;
      return slice_start + offset;
    }
    ++slice_index_;
    issued_in_slice_ = 0;
  }
}

}  // namespace hammer::workload
