#include "workload/workload_file.hpp"

#include <fstream>

#include "util/errors.hpp"
#include "workload/generator.hpp"

namespace hammer::workload {

namespace {
// Transactions in workload files are unsigned; serialize without the
// signature fields Transaction::to_json would include.
json::Value unsigned_tx_to_json(const chain::Transaction& tx) {
  json::Object obj;
  obj["contract"] = tx.contract;
  obj["op"] = tx.op;
  obj["args"] = tx.args;
  obj["sender"] = tx.sender;
  obj["client_id"] = tx.client_id;
  obj["nonce"] = tx.nonce;
  return json::Value(std::move(obj));
}

chain::Transaction unsigned_tx_from_json(const json::Value& v) {
  chain::Transaction tx;
  tx.contract = v.at("contract").as_string();
  tx.op = v.at("op").as_string();
  tx.args = v.contains("args") ? v.at("args") : json::Value();
  tx.sender = v.get_string("sender", "");
  tx.client_id = v.get_string("client_id", "");
  tx.nonce = static_cast<std::uint64_t>(v.get_int("nonce", 0));
  return tx;
}
}  // namespace

void WorkloadFile::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot write workload file " + path);
  out << profile.to_json().dump() << '\n';
  for (const chain::Transaction& tx : transactions) {
    out << unsigned_tx_to_json(tx).dump() << '\n';
  }
  if (!out) throw Error("short write to workload file " + path);
}

WorkloadFile WorkloadFile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot read workload file " + path);
  WorkloadFile wf;
  std::string line;
  if (!std::getline(in, line)) throw ParseError("workload file " + path + " is empty");
  wf.profile = WorkloadProfile::from_json(json::Value::parse(line));
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    wf.transactions.push_back(unsigned_tx_from_json(json::Value::parse(line)));
  }
  return wf;
}

WorkloadFile generate_workload(const WorkloadProfile& profile,
                               std::vector<std::string> accounts, std::size_t count) {
  WorkloadFile wf;
  wf.profile = profile;
  std::unique_ptr<Generator> gen = make_generator(profile, std::move(accounts));
  wf.transactions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) wf.transactions.push_back(gen->next());
  return wf;
}

}  // namespace hammer::workload
