#include "json/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hammer::json {

using hammer::NotFoundError;
using hammer::ParseError;

namespace {
const char* type_name(Value::Type t) {
  switch (t) {
    case Value::Type::kNull: return "null";
    case Value::Type::kBool: return "bool";
    case Value::Type::kInt: return "int";
    case Value::Type::kDouble: return "double";
    case Value::Type::kString: return "string";
    case Value::Type::kArray: return "array";
    case Value::Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_mismatch(Value::Type want, Value::Type got) {
  throw ParseError(std::string("expected JSON ") + type_name(want) + ", got " + type_name(got));
}
}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) type_mismatch(Type::kBool, type());
  return std::get<bool>(data_);
}

std::int64_t Value::as_int() const {
  if (is_int()) return std::get<std::int64_t>(data_);
  if (is_double()) {
    double d = std::get<double>(data_);
    if (std::floor(d) == d) return static_cast<std::int64_t>(d);
  }
  type_mismatch(Type::kInt, type());
}

double Value::as_double() const {
  if (is_double()) return std::get<double>(data_);
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(data_));
  type_mismatch(Type::kDouble, type());
}

const std::string& Value::as_string() const {
  if (!is_string()) type_mismatch(Type::kString, type());
  return std::get<std::string>(data_);
}

const Array& Value::as_array() const {
  if (!is_array()) type_mismatch(Type::kArray, type());
  return std::get<Array>(data_);
}

Array& Value::as_array() {
  if (!is_array()) type_mismatch(Type::kArray, type());
  return std::get<Array>(data_);
}

const Object& Value::as_object() const {
  if (!is_object()) type_mismatch(Type::kObject, type());
  return std::get<Object>(data_);
}

Object& Value::as_object() {
  if (!is_object()) type_mismatch(Type::kObject, type());
  return std::get<Object>(data_);
}

bool Value::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

const Value& Value::at(const std::string& key) const {
  const Object& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) throw NotFoundError("JSON key '" + key + "'");
  return it->second;
}

Value& Value::operator[](const std::string& key) {
  if (is_null()) data_ = Object{};
  return as_object()[key];
}

std::int64_t Value::get_int(const std::string& key, std::int64_t fallback) const {
  return contains(key) ? at(key).as_int() : fallback;
}

double Value::get_double(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_double() : fallback;
}

std::string Value::get_string(const std::string& key, const std::string& fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

// ---------------------------------------------------------------- writing

namespace {
void write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}
}  // namespace

void Value::write(std::string& out, int indent, int depth) const {
  switch (type()) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += std::get<bool>(data_) ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(std::get<std::int64_t>(data_));
      break;
    case Type::kDouble: {
      double d = std::get<double>(data_);
      if (!std::isfinite(d)) {
        out += "null";  // JSON has no NaN/Inf
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out += buf;
      break;
    }
    case Type::kString:
      write_escaped(out, std::get<std::string>(data_));
      break;
    case Type::kArray: {
      const Array& arr = std::get<Array>(data_);
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      bool first = true;
      for (const Value& v : arr) {
        if (!first) out.push_back(',');
        first = false;
        newline_indent(out, indent, depth + 1);
        v.write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      const Object& obj = std::get<Object>(data_);
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, v] : obj) {
        if (!first) out.push_back(',');
        first = false;
        newline_indent(out, indent, depth + 1);
        write_escaped(out, key);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        v.write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

void Value::dump_into(std::string& out, int indent) const { write(out, indent, 0); }

// ---------------------------------------------------------------- parsing

namespace {
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw ParseError(why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      char c = take();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        char esc = take();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            // Encode the code point as UTF-8 (surrogate pairs collapse to
            // the replacement character; ids and config never use them).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default: fail("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
  }

  Value parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("invalid number");
    std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    if (integral) {
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Value(static_cast<std::int64_t>(v));
      }
      // Fall through to double on overflow.
    }
    char* end = nullptr;
    errno = 0;
    double d = std::strtod(token.c_str(), &end);
    if (errno != 0 || end != token.c_str() + token.size()) fail("invalid number '" + token + "'");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};
}  // namespace

Value Value::parse(std::string_view text) { return Parser(text).parse_document(); }

Value object(std::initializer_list<std::pair<std::string, Value>> items) {
  Object obj;
  for (const auto& [k, v] : items) obj[k] = v;
  return Value(std::move(obj));
}

Value array(std::initializer_list<Value> items) { return Value(Array(items)); }

}  // namespace hammer::json
