// Self-contained JSON value model, parser and writer.
//
// Used for: workload profiles, deployment plans, the JSON-RPC wire format,
// and chain payload encoding. Numbers are stored as int64 when the literal
// is integral (transaction ids, timestamps) and double otherwise.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/errors.hpp"

namespace hammer::json {

class Value;
using Array = std::vector<Value>;
// std::map keeps serialized output deterministic (sorted keys), which the
// test suite and golden files rely on.
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(unsigned int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(std::int64_t i) : data_(i) {}
  Value(std::uint64_t i) : data_(static_cast<std::int64_t>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  Type type() const { return static_cast<Type>(data_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  // Checked accessors; throw ParseError when the type does not match
  // (the common use is validating externally-supplied documents).
  bool as_bool() const;
  std::int64_t as_int() const;    // accepts integral doubles too
  double as_double() const;       // accepts ints
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  // Object helpers.
  bool contains(const std::string& key) const;
  const Value& at(const std::string& key) const;  // throws NotFoundError
  Value& operator[](const std::string& key);      // inserts null if absent

  // Lookup with defaults for optional config fields.
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

  // Serialization. `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  // Appends the serialized document to `out` instead of returning a fresh
  // string — the allocation-free path for pooled/reused output buffers.
  void dump_into(std::string& out, int indent = 0) const;

  // Parsing; throws ParseError with position info on malformed input.
  static Value parse(std::string_view text);

 private:
  void write(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object> data_;
};

// Convenience builders: json::object({{"a", 1}}), json::array({1, 2}).
Value object(std::initializer_list<std::pair<std::string, Value>> items);
Value array(std::initializer_list<Value> items);

}  // namespace hammer::json
