#include "forecast/tensor.hpp"

#include <cmath>
#include <unordered_set>

#include "util/errors.hpp"

namespace hammer::forecast {

TensorImpl::TensorImpl(std::size_t r, std::size_t c, bool rg)
    : rows(r), cols(c), value(r * c, 0.0), requires_grad(rg) {
  if (requires_grad) grad.assign(rows * cols, 0.0);
}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols, bool requires_grad) {
  return Tensor(std::make_shared<TensorImpl>(rows, cols, requires_grad));
}

Tensor Tensor::from_values(std::size_t rows, std::size_t cols, std::vector<double> values,
                           bool requires_grad) {
  HAMMER_CHECK(values.size() == rows * cols);
  auto impl = std::make_shared<TensorImpl>(rows, cols, requires_grad);
  impl->value = std::move(values);
  return Tensor(impl);
}

Tensor Tensor::scalar(double v) { return from_values(1, 1, {v}); }

Tensor Tensor::param(std::size_t rows, std::size_t cols, util::Pcg32& rng) {
  auto impl = std::make_shared<TensorImpl>(rows, cols, /*requires_grad=*/true);
  double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& v : impl->value) v = (rng.uniform01() * 2.0 - 1.0) * limit;
  return Tensor(impl);
}

double Tensor::item() const {
  HAMMER_CHECK(impl_ && impl_->size() == 1);
  return impl_->value[0];
}

namespace {

// Builds the result node; grads propagate only to parents that require
// them. A node in the graph requires grad iff any parent does.
Tensor make_node(std::size_t rows, std::size_t cols, std::vector<TensorPtr> parents,
                 std::function<void(const TensorImpl&)> backward_fn) {
  bool requires_grad = false;
  for (const TensorPtr& p : parents) requires_grad |= p->requires_grad;
  auto impl = std::make_shared<TensorImpl>(rows, cols, requires_grad);
  if (requires_grad) {
    impl->parents = std::move(parents);
    impl->backward_fn = std::move(backward_fn);
  }
  return Tensor(impl);
}

void topo_sort(const TensorPtr& node, std::unordered_set<TensorImpl*>& seen,
               std::vector<TensorPtr>& order) {
  if (!node->requires_grad || seen.count(node.get())) return;
  seen.insert(node.get());
  for (const TensorPtr& parent : node->parents) topo_sort(parent, seen, order);
  order.push_back(node);
}

}  // namespace

void Tensor::backward() const {
  HAMMER_CHECK(impl_ && impl_->size() == 1);
  HAMMER_CHECK_MSG(impl_->requires_grad, "backward() on a graph with no parameters");
  std::unordered_set<TensorImpl*> seen;
  std::vector<TensorPtr> order;
  topo_sort(impl_, seen, order);
  for (const TensorPtr& node : order) {
    std::fill(node->grad.begin(), node->grad.end(), 0.0);
  }
  impl_->grad[0] = 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn(**it);
  }
}

// ------------------------------------------------------------------- ops

Tensor add(const Tensor& a, const Tensor& b) {
  HAMMER_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  auto out = make_node(a.rows(), a.cols(), {a.ptr(), b.ptr()}, nullptr);
  for (std::size_t i = 0; i < out->size(); ++i) {
    out->value[i] = a->value[i] + b->value[i];
  }
  if (out->requires_grad) {
    TensorPtr ap = a.ptr();
    TensorPtr bp = b.ptr();
    out->backward_fn = [ap, bp](const TensorImpl& o) {
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (ap->requires_grad) ap->grad[i] += o.grad[i];
        if (bp->requires_grad) bp->grad[i] += o.grad[i];
      }
    };
  }
  return out;
}

Tensor add_row_broadcast(const Tensor& a, const Tensor& row) {
  HAMMER_CHECK(row.rows() == 1 && row.cols() == a.cols());
  auto out = make_node(a.rows(), a.cols(), {a.ptr(), row.ptr()}, nullptr);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      out->at(r, c) = a->at(r, c) + row->value[c];
    }
  }
  if (out->requires_grad) {
    TensorPtr ap = a.ptr();
    TensorPtr rp = row.ptr();
    out->backward_fn = [ap, rp](const TensorImpl& o) {
      for (std::size_t r = 0; r < o.rows; ++r) {
        for (std::size_t c = 0; c < o.cols; ++c) {
          double g = o.grad[r * o.cols + c];
          if (ap->requires_grad) ap->grad[r * o.cols + c] += g;
          if (rp->requires_grad) rp->grad[c] += g;
        }
      }
    };
  }
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) { return add(a, scale(b, -1.0)); }

Tensor mul(const Tensor& a, const Tensor& b) {
  HAMMER_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  auto out = make_node(a.rows(), a.cols(), {a.ptr(), b.ptr()}, nullptr);
  for (std::size_t i = 0; i < out->size(); ++i) out->value[i] = a->value[i] * b->value[i];
  if (out->requires_grad) {
    TensorPtr ap = a.ptr();
    TensorPtr bp = b.ptr();
    out->backward_fn = [ap, bp](const TensorImpl& o) {
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (ap->requires_grad) ap->grad[i] += o.grad[i] * bp->value[i];
        if (bp->requires_grad) bp->grad[i] += o.grad[i] * ap->value[i];
      }
    };
  }
  return out;
}

Tensor scale(const Tensor& a, double k) {
  auto out = make_node(a.rows(), a.cols(), {a.ptr()}, nullptr);
  for (std::size_t i = 0; i < out->size(); ++i) out->value[i] = a->value[i] * k;
  if (out->requires_grad) {
    TensorPtr ap = a.ptr();
    out->backward_fn = [ap, k](const TensorImpl& o) {
      for (std::size_t i = 0; i < o.size(); ++i) ap->grad[i] += o.grad[i] * k;
    };
  }
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  HAMMER_CHECK(a.cols() == b.rows());
  std::size_t R = a.rows();
  std::size_t K = a.cols();
  std::size_t C = b.cols();
  auto out = make_node(R, C, {a.ptr(), b.ptr()}, nullptr);
  for (std::size_t r = 0; r < R; ++r) {
    for (std::size_t k = 0; k < K; ++k) {
      double av = a->at(r, k);
      if (av == 0.0) continue;
      for (std::size_t c = 0; c < C; ++c) out->at(r, c) += av * b->at(k, c);
    }
  }
  if (out->requires_grad) {
    TensorPtr ap = a.ptr();
    TensorPtr bp = b.ptr();
    out->backward_fn = [ap, bp, R, K, C](const TensorImpl& o) {
      // dA = dOut * B^T ; dB = A^T * dOut
      for (std::size_t r = 0; r < R; ++r) {
        for (std::size_t c = 0; c < C; ++c) {
          double g = o.grad[r * C + c];
          if (g == 0.0) continue;
          for (std::size_t k = 0; k < K; ++k) {
            if (ap->requires_grad) ap->grad[r * K + k] += g * bp->value[k * C + c];
            if (bp->requires_grad) bp->grad[k * C + c] += g * ap->value[r * K + k];
          }
        }
      }
    };
  }
  return out;
}

Tensor transpose(const Tensor& a) {
  auto out = make_node(a.cols(), a.rows(), {a.ptr()}, nullptr);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) out->at(c, r) = a->at(r, c);
  }
  if (out->requires_grad) {
    TensorPtr ap = a.ptr();
    out->backward_fn = [ap](const TensorImpl& o) {
      for (std::size_t r = 0; r < ap->rows; ++r) {
        for (std::size_t c = 0; c < ap->cols; ++c) {
          ap->grad[r * ap->cols + c] += o.grad[c * o.cols + r];
        }
      }
    };
  }
  return out;
}

namespace {
template <typename Fwd, typename Bwd>
Tensor unary_op(const Tensor& a, Fwd fwd, Bwd bwd_from_out) {
  auto out = make_node(a.rows(), a.cols(), {a.ptr()}, nullptr);
  for (std::size_t i = 0; i < out->size(); ++i) out->value[i] = fwd(a->value[i]);
  if (out->requires_grad) {
    TensorPtr ap = a.ptr();
    out->backward_fn = [ap, bwd_from_out](const TensorImpl& o) {
      for (std::size_t i = 0; i < o.size(); ++i) {
        ap->grad[i] += o.grad[i] * bwd_from_out(ap->value[i], o.value[i]);
      }
    };
  }
  return out;
}
}  // namespace

Tensor sigmoid(const Tensor& a) {
  return unary_op(
      a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
      [](double, double y) { return y * (1.0 - y); });
}

Tensor tanh_t(const Tensor& a) {
  return unary_op(
      a, [](double x) { return std::tanh(x); }, [](double, double y) { return 1.0 - y * y; });
}

Tensor relu(const Tensor& a) {
  return unary_op(
      a, [](double x) { return x > 0 ? x : 0.0; },
      [](double x, double) { return x > 0 ? 1.0 : 0.0; });
}

Tensor abs_t(const Tensor& a) {
  return unary_op(
      a, [](double x) { return std::abs(x); },
      [](double x, double) { return x >= 0 ? 1.0 : -1.0; });
}

Tensor square(const Tensor& a) {
  return unary_op(
      a, [](double x) { return x * x; }, [](double x, double) { return 2.0 * x; });
}

Tensor softmax_rows(const Tensor& a) {
  auto out = make_node(a.rows(), a.cols(), {a.ptr()}, nullptr);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double max = a->at(r, 0);
    for (std::size_t c = 1; c < a.cols(); ++c) max = std::max(max, a->at(r, c));
    double sum = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) {
      double e = std::exp(a->at(r, c) - max);
      out->at(r, c) = e;
      sum += e;
    }
    for (std::size_t c = 0; c < a.cols(); ++c) out->at(r, c) /= sum;
  }
  if (out->requires_grad) {
    TensorPtr ap = a.ptr();
    out->backward_fn = [ap](const TensorImpl& o) {
      // dx_i = y_i * (dy_i - sum_j dy_j y_j), per row.
      for (std::size_t r = 0; r < o.rows; ++r) {
        double dot = 0.0;
        for (std::size_t c = 0; c < o.cols; ++c) {
          dot += o.grad[r * o.cols + c] * o.value[r * o.cols + c];
        }
        for (std::size_t c = 0; c < o.cols; ++c) {
          std::size_t i = r * o.cols + c;
          ap->grad[i] += o.value[i] * (o.grad[i] - dot);
        }
      }
    };
  }
  return out;
}

Tensor concat_cols(const Tensor& a, const Tensor& b) {
  HAMMER_CHECK(a.rows() == b.rows());
  std::size_t C1 = a.cols();
  std::size_t C2 = b.cols();
  auto out = make_node(a.rows(), C1 + C2, {a.ptr(), b.ptr()}, nullptr);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < C1; ++c) out->at(r, c) = a->at(r, c);
    for (std::size_t c = 0; c < C2; ++c) out->at(r, C1 + c) = b->at(r, c);
  }
  if (out->requires_grad) {
    TensorPtr ap = a.ptr();
    TensorPtr bp = b.ptr();
    out->backward_fn = [ap, bp, C1, C2](const TensorImpl& o) {
      for (std::size_t r = 0; r < o.rows; ++r) {
        for (std::size_t c = 0; c < C1; ++c) {
          if (ap->requires_grad) ap->grad[r * C1 + c] += o.grad[r * (C1 + C2) + c];
        }
        for (std::size_t c = 0; c < C2; ++c) {
          if (bp->requires_grad) bp->grad[r * C2 + c] += o.grad[r * (C1 + C2) + C1 + c];
        }
      }
    };
  }
  return out;
}

Tensor concat_rows(const Tensor& a, const Tensor& b) {
  HAMMER_CHECK(a.cols() == b.cols());
  std::size_t R1 = a.rows();
  std::size_t C = a.cols();
  auto out = make_node(R1 + b.rows(), C, {a.ptr(), b.ptr()}, nullptr);
  std::copy(a->value.begin(), a->value.end(), out->value.begin());
  std::copy(b->value.begin(), b->value.end(), out->value.begin() + static_cast<long>(R1 * C));
  if (out->requires_grad) {
    TensorPtr ap = a.ptr();
    TensorPtr bp = b.ptr();
    out->backward_fn = [ap, bp, R1, C](const TensorImpl& o) {
      for (std::size_t i = 0; i < R1 * C; ++i) {
        if (ap->requires_grad) ap->grad[i] += o.grad[i];
      }
      for (std::size_t i = 0; i < bp->value.size(); ++i) {
        if (bp->requires_grad) bp->grad[i] += o.grad[R1 * C + i];
      }
    };
  }
  return out;
}

Tensor slice_rows(const Tensor& a, std::size_t begin, std::size_t count) {
  HAMMER_CHECK(begin + count <= a.rows());
  std::size_t C = a.cols();
  auto out = make_node(count, C, {a.ptr()}, nullptr);
  std::copy(a->value.begin() + static_cast<long>(begin * C),
            a->value.begin() + static_cast<long>((begin + count) * C), out->value.begin());
  if (out->requires_grad) {
    TensorPtr ap = a.ptr();
    out->backward_fn = [ap, begin, C](const TensorImpl& o) {
      for (std::size_t i = 0; i < o.value.size(); ++i) {
        ap->grad[begin * C + i] += o.grad[i];
      }
    };
  }
  return out;
}

Tensor slice_cols(const Tensor& a, std::size_t begin, std::size_t count) {
  HAMMER_CHECK(begin + count <= a.cols());
  std::size_t C = a.cols();
  auto out = make_node(a.rows(), count, {a.ptr()}, nullptr);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < count; ++c) out->at(r, c) = a->at(r, begin + c);
  }
  if (out->requires_grad) {
    TensorPtr ap = a.ptr();
    out->backward_fn = [ap, begin, C](const TensorImpl& o) {
      for (std::size_t r = 0; r < o.rows; ++r) {
        for (std::size_t c = 0; c < o.cols; ++c) {
          ap->grad[r * C + begin + c] += o.grad[r * o.cols + c];
        }
      }
    };
  }
  return out;
}

Tensor reverse_rows(const Tensor& a) {
  std::size_t R = a.rows();
  std::size_t C = a.cols();
  auto out = make_node(R, C, {a.ptr()}, nullptr);
  for (std::size_t r = 0; r < R; ++r) {
    for (std::size_t c = 0; c < C; ++c) out->at(r, c) = a->at(R - 1 - r, c);
  }
  if (out->requires_grad) {
    TensorPtr ap = a.ptr();
    out->backward_fn = [ap, R, C](const TensorImpl& o) {
      for (std::size_t r = 0; r < R; ++r) {
        for (std::size_t c = 0; c < C; ++c) {
          ap->grad[(R - 1 - r) * C + c] += o.grad[r * C + c];
        }
      }
    };
  }
  return out;
}

Tensor sum_all(const Tensor& a) {
  auto out = make_node(1, 1, {a.ptr()}, nullptr);
  double sum = 0.0;
  for (double v : a->value) sum += v;
  out->value[0] = sum;
  if (out->requires_grad) {
    TensorPtr ap = a.ptr();
    out->backward_fn = [ap](const TensorImpl& o) {
      for (double& g : ap->grad) g += o.grad[0];
    };
  }
  return out;
}

Tensor mean_all(const Tensor& a) {
  return scale(sum_all(a), 1.0 / static_cast<double>(a->size()));
}

Tensor layer_norm_rows(const Tensor& a, const Tensor& gain, const Tensor& bias, double eps) {
  HAMMER_CHECK(gain.rows() == 1 && gain.cols() == a.cols());
  HAMMER_CHECK(bias.rows() == 1 && bias.cols() == a.cols());
  std::size_t R = a.rows();
  std::size_t C = a.cols();
  auto out = make_node(R, C, {a.ptr(), gain.ptr(), bias.ptr()}, nullptr);
  // Cache per-row mean / inv-std for backward.
  auto stats = std::make_shared<std::vector<double>>(2 * R);
  for (std::size_t r = 0; r < R; ++r) {
    double mean = 0.0;
    for (std::size_t c = 0; c < C; ++c) mean += a->at(r, c);
    mean /= static_cast<double>(C);
    double var = 0.0;
    for (std::size_t c = 0; c < C; ++c) {
      double d = a->at(r, c) - mean;
      var += d * d;
    }
    var /= static_cast<double>(C);
    double inv_std = 1.0 / std::sqrt(var + eps);
    (*stats)[2 * r] = mean;
    (*stats)[2 * r + 1] = inv_std;
    for (std::size_t c = 0; c < C; ++c) {
      out->at(r, c) = (a->at(r, c) - mean) * inv_std * gain->value[c] + bias->value[c];
    }
  }
  if (out->requires_grad) {
    TensorPtr ap = a.ptr();
    TensorPtr gp = gain.ptr();
    TensorPtr bp = bias.ptr();
    out->backward_fn = [ap, gp, bp, stats, R, C](const TensorImpl& o) {
      for (std::size_t r = 0; r < R; ++r) {
        double mean = (*stats)[2 * r];
        double inv_std = (*stats)[2 * r + 1];
        // dxhat accumulated terms.
        double sum_dxhat = 0.0;
        double sum_dxhat_xhat = 0.0;
        for (std::size_t c = 0; c < C; ++c) {
          double xhat = (ap->value[r * C + c] - mean) * inv_std;
          double dy = o.grad[r * C + c];
          double dxhat = dy * gp->value[c];
          sum_dxhat += dxhat;
          sum_dxhat_xhat += dxhat * xhat;
          if (gp->requires_grad) gp->grad[c] += dy * xhat;
          if (bp->requires_grad) bp->grad[c] += dy;
        }
        if (ap->requires_grad) {
          double n = static_cast<double>(C);
          for (std::size_t c = 0; c < C; ++c) {
            double xhat = (ap->value[r * C + c] - mean) * inv_std;
            double dxhat = o.grad[r * C + c] * gp->value[c];
            ap->grad[r * C + c] +=
                inv_std / n * (n * dxhat - sum_dxhat - xhat * sum_dxhat_xhat);
          }
        }
      }
    };
  }
  return out;
}

Tensor mae_loss(const Tensor& prediction, const Tensor& target) {
  return mean_all(abs_t(sub(prediction, target)));
}

Tensor mse_loss(const Tensor& prediction, const Tensor& target) {
  return mean_all(square(sub(prediction, target)));
}

}  // namespace hammer::forecast
