// Training / evaluation harness for the Table III comparison and the
// Fig. 11 sequence generation, plus the bridge from a trained model to a
// workload ControlSequence (the whole point of §IV: extending limited real
// control sequences for large-scale testing).
#pragma once

#include <functional>

#include "forecast/dataset.hpp"
#include "forecast/models.hpp"
#include "workload/control_sequence.hpp"

namespace hammer::forecast {

struct TrainOptions {
  std::size_t epochs = 30;   // hard cap
  std::size_t batch_size = 8;
  double lr = 3e-3;
  double clip_norm = 1.0;
  std::uint64_t shuffle_seed = 99;
  // Convergence-based stopping (paper: "the training process concludes
  // when the model's loss converges"): hold out the tail `val_fraction` of
  // the training windows and stop after `patience` epochs without
  // validation improvement. patience = 0 disables early stopping.
  double val_fraction = 0.0;
  std::size_t patience = 0;
  // Loss per the paper (Eq. 8) is MAE.
  std::function<void(std::size_t epoch, double loss)> on_epoch;  // optional
};

// Trains in place; returns the final epoch's mean training loss. With
// early stopping enabled, parameters are restored to the best-validation
// snapshot before returning.
double train_model(ForecastModel& model, const WindowDataset& train, const TrainOptions& options);

// One-step-ahead predictions over a dataset, denormalized.
std::vector<double> predict_all(const ForecastModel& model, const WindowDataset& dataset,
                                const Normalizer& normalizer);

// Full Table III cell: train on the first `train_fraction` of the series,
// evaluate one-step-ahead on the remainder, return denormalized metrics.
struct SeriesEvaluation {
  EvalMetrics metrics;
  std::vector<double> test_actuals;      // denormalized
  std::vector<double> test_predictions;  // denormalized (Fig. 11 overlay)
};

SeriesEvaluation train_and_evaluate(ForecastModel& model, const std::vector<double>& series,
                                    std::size_t window, double train_fraction,
                                    const TrainOptions& options);

// Autoregressive rollout: seeds with the series' last `window` points and
// feeds predictions back to extend the sequence by `steps` (how Hammer
// manufactures arbitrarily long control sequences from a short real trace).
std::vector<double> extend_series(const ForecastModel& model, const std::vector<double>& series,
                                  std::size_t window, const Normalizer& normalizer,
                                  std::size_t steps);

// Wraps an extended (or predicted) hourly series as a workload control
// sequence with the given slice duration.
workload::ControlSequence to_control_sequence(const std::vector<double>& hourly_counts,
                                              util::Duration slice);

}  // namespace hammer::forecast
