// Trainable layers composing the paper's model architecture (Fig. 5):
// dilated causal Conv1d stacks (TCN), GRU / BiGRU, multi-head attention,
// plus the Linear / vanilla-RNN pieces the Table III baselines need.
#pragma once

#include <vector>

#include "forecast/tensor.hpp"

namespace hammer::forecast {

// Base class: every layer exposes its trainable parameters to the
// optimizer.
class Layer {
 public:
  virtual ~Layer() = default;
  virtual std::vector<Tensor> parameters() const = 0;
};

class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, util::Pcg32& rng);

  // x: [T, in] -> [T, out]
  Tensor forward(const Tensor& x) const;
  std::vector<Tensor> parameters() const override { return {weight_, bias_}; }

 private:
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [1, out]
};

// Causal dilated 1-D convolution over a time-major sequence (paper Eq. 3):
// out[t] = b + sum_k W_k · x[t - (K-1-k)·d], with zero left-padding, so the
// model "can only use past information for prediction".
class CausalConv1d final : public Layer {
 public:
  CausalConv1d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel_size,
               std::size_t dilation, util::Pcg32& rng);

  // x: [T, in_channels] -> [T, out_channels]
  Tensor forward(const Tensor& x) const;
  std::vector<Tensor> parameters() const override;

  std::size_t receptive_field() const { return (kernel_size_ - 1) * dilation_ + 1; }

 private:
  std::size_t kernel_size_;
  std::size_t dilation_;
  std::vector<Tensor> kernels_;  // K weights, each [in, out]
  Tensor bias_;                  // [1, out]
};

// GRU (paper Eq. 4) processing a sequence step by step.
class GruLayer final : public Layer {
 public:
  GruLayer(std::size_t input_size, std::size_t hidden_size, util::Pcg32& rng);

  // x: [T, input] -> hidden states [T, hidden]
  Tensor forward(const Tensor& x) const;
  std::vector<Tensor> parameters() const override;

  std::size_t hidden_size() const { return hidden_size_; }

 private:
  Tensor step(const Tensor& x_t, const Tensor& h_prev) const;

  std::size_t hidden_size_;
  Tensor wz_, uz_, bz_;
  Tensor wr_, ur_, br_;
  Tensor wh_, uh_, bh_;
};

// BiGRU (paper Eq. 5): forward + backward GRU, outputs concatenated.
class BiGruLayer final : public Layer {
 public:
  BiGruLayer(std::size_t input_size, std::size_t hidden_size, util::Pcg32& rng);

  // x: [T, input] -> [T, 2*hidden]
  Tensor forward(const Tensor& x) const;
  std::vector<Tensor> parameters() const override;

 private:
  GruLayer forward_gru_;
  GruLayer backward_gru_;
};

// Multi-head self-attention (paper Eqs. 6-7).
class MultiHeadAttention final : public Layer {
 public:
  MultiHeadAttention(std::size_t model_dim, std::size_t num_heads, util::Pcg32& rng);

  // x: [T, model_dim] -> [T, model_dim]
  Tensor forward(const Tensor& x) const;
  std::vector<Tensor> parameters() const override;

 private:
  std::size_t num_heads_;
  std::size_t head_dim_;
  Tensor wq_, wk_, wv_, wo_;  // each [model_dim, model_dim]
};

// Elman RNN cell stack (Table III "RNN" baseline).
class VanillaRnnLayer final : public Layer {
 public:
  VanillaRnnLayer(std::size_t input_size, std::size_t hidden_size, util::Pcg32& rng);

  Tensor forward(const Tensor& x) const;  // [T, input] -> [T, hidden]
  std::vector<Tensor> parameters() const override { return {w_, u_, b_}; }

 private:
  std::size_t hidden_size_;
  Tensor w_, u_, b_;
};

// Row-wise LayerNorm with learned gain/bias (Transformer baseline).
class LayerNorm final : public Layer {
 public:
  explicit LayerNorm(std::size_t features);

  Tensor forward(const Tensor& x) const;
  std::vector<Tensor> parameters() const override { return {gain_, bias_}; }

 private:
  Tensor gain_;
  Tensor bias_;
};

// Sinusoidal positional encoding added to a [T, D] sequence (not trained).
Tensor add_positional_encoding(const Tensor& x);

}  // namespace hammer::forecast
