#include "forecast/dataset.hpp"

#include <cmath>

#include "util/errors.hpp"
#include "util/random.hpp"

namespace hammer::forecast {

const char* trace_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kDeFi: return "DeFi";
    case TraceKind::kSandbox: return "Sandbox";
    case TraceKind::kNfts: return "NFTs";
  }
  return "?";
}

namespace {

// Mackey-Glass chaotic series (tau inside the models' lookback window, so
// the dynamics are learnable by nonlinear models but only roughly by the
// linear baseline). Returned values are roughly in [0.2, 1.4].
std::vector<double> mackey_glass(std::size_t n, std::uint64_t seed, std::size_t tau = 17) {
  util::Pcg32 rng(seed);
  std::size_t warmup = 300;
  std::vector<double> x(n + warmup, 0.0);
  for (std::size_t i = 0; i <= tau; ++i) x[i] = 0.9 + 0.2 * rng.uniform01();
  for (std::size_t t = tau; t + 1 < x.size(); ++t) {
    double delayed = x[t - tau];
    double dx = 0.2 * delayed / (1.0 + std::pow(delayed, 10.0)) - 0.1 * x[t];
    x[t + 1] = x[t] + dx;
  }
  return {x.begin() + static_cast<long>(warmup), x.end()};
}

// Burst schedule with precursors: each event ramps up over two hours,
// peaks, then decays geometrically — so attention heads can read the
// precursor and anticipate the spike (paper: "particularly notable
// performance in learning sudden bursts").
std::vector<double> burst_track(std::size_t n, std::uint64_t seed, double probability,
                                double magnitude) {
  util::Pcg32 rng(seed);
  std::vector<double> track(n, 0.0);
  for (std::size_t t = 3; t < n; ++t) {
    if (rng.chance(probability)) {
      double peak = magnitude * (0.6 + 0.8 * rng.uniform01());
      track[t - 2] += 0.2 * peak;  // precursor ramp
      track[t - 1] += 0.5 * peak;
      double level = peak;
      for (std::size_t d = t; d < n && level > 0.02 * peak; ++d) {
        track[d] += level;
        level *= 0.62;
      }
    }
  }
  return track;
}

}  // namespace

std::vector<double> generate_trace(TraceKind kind, std::size_t hours, std::uint64_t seed) {
  std::uint64_t kind_seed = seed + static_cast<std::uint64_t>(kind) * 1000003;
  util::Pcg32 rng(kind_seed);
  std::vector<double> chaos = mackey_glass(hours, kind_seed + 1);
  std::vector<double> trace(hours);

  // Per-application composition (volumes from the paper's dataset sizes:
  // 1,791 / 22,674 / 233,014 transactions over ~300 hours).
  double base = 0.0;
  double chaos_amp = 0.0;
  double daily_amp = 0.0;
  double weekly_amp = 0.0;
  double noise_sigma = 0.0;
  std::vector<double> bursts;
  switch (kind) {
    case TraceKind::kDeFi:
      // Most stable: mild cycles, weak chaos, rare small bursts.
      base = 6.0;
      chaos_amp = 2.5;
      daily_amp = 1.2;
      weekly_amp = 0.4;
      noise_sigma = 0.25;
      bursts = burst_track(hours, kind_seed + 2, 0.008, 5.0);
      break;
    case TraceKind::kSandbox:
      // Gaming: dominated by chaotic player dynamics + frequent big bursts.
      base = 75.0;
      chaos_amp = 60.0;
      daily_amp = 18.0;
      weekly_amp = 6.0;
      noise_sigma = 3.0;
      bursts = burst_track(hours, kind_seed + 2, 0.03, 220.0);
      break;
    case TraceKind::kNfts:
      // High volume, strong periodicity, occasional mint-event bursts.
      base = 777.0;
      chaos_amp = 420.0;
      daily_amp = 230.0;
      weekly_amp = 90.0;
      noise_sigma = 25.0;
      bursts = burst_track(hours, kind_seed + 2, 0.015, 1600.0);
      break;
  }

  for (std::size_t t = 0; t < hours; ++t) {
    double daily = std::sin(2.0 * M_PI * (static_cast<double>(t % 24) / 24.0));
    double weekly = std::sin(2.0 * M_PI * (static_cast<double>(t % 168) / 168.0));
    double value = base + chaos_amp * (chaos[t] - 0.8) + daily_amp * daily +
                   weekly_amp * weekly + bursts[t] + rng.gaussian(0.0, noise_sigma);
    trace[t] = std::max(value, 0.0);
  }
  return trace;
}

Normalizer Normalizer::fit(const std::vector<double>& values, std::size_t count) {
  HAMMER_CHECK(count > 1 && count <= values.size());
  double mean = 0.0;
  for (std::size_t i = 0; i < count; ++i) mean += values[i];
  mean /= static_cast<double>(count);
  double var = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    double d = values[i] - mean;
    var += d * d;
  }
  var /= static_cast<double>(count);
  Normalizer n;
  n.mean = mean;
  n.std = std::sqrt(var);
  if (n.std < 1e-9) n.std = 1.0;
  return n;
}

WindowDataset WindowDataset::build(const std::vector<double>& series, std::size_t window,
                                   const Normalizer& normalizer, std::size_t begin,
                                   std::size_t end) {
  HAMMER_CHECK(window >= 1);
  HAMMER_CHECK(end <= series.size());
  HAMMER_CHECK(begin + window < end);
  WindowDataset ds;
  ds.window = window;
  for (std::size_t i = begin; i + window < end; ++i) {
    std::vector<double> input(window);
    for (std::size_t j = 0; j < window; ++j) input[j] = normalizer.normalize(series[i + j]);
    ds.inputs.push_back(std::move(input));
    ds.targets.push_back(normalizer.normalize(series[i + window]));
  }
  return ds;
}

EvalMetrics compute_metrics(const std::vector<double>& predictions,
                            const std::vector<double>& actuals) {
  HAMMER_CHECK(predictions.size() == actuals.size());
  HAMMER_CHECK(!predictions.empty());
  auto n = static_cast<double>(predictions.size());
  EvalMetrics m;
  double actual_mean = 0.0;
  for (double a : actuals) actual_mean += a;
  actual_mean /= n;
  double ss_total = 0.0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    double err = actuals[i] - predictions[i];
    m.mae += std::abs(err);
    m.mse += err * err;
    double dev = actuals[i] - actual_mean;
    ss_total += dev * dev;
  }
  m.mae /= n;
  m.mse /= n;
  m.rmse = std::sqrt(m.mse);
  // R^2 = 1 - SS_res / SS_tot (paper reports it per Table III).
  m.r2 = ss_total > 0 ? 1.0 - (m.mse * n) / ss_total : 0.0;
  return m;
}

}  // namespace hammer::forecast
