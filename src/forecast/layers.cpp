#include "forecast/layers.hpp"

#include <cmath>

#include "util/errors.hpp"

namespace hammer::forecast {

Linear::Linear(std::size_t in_features, std::size_t out_features, util::Pcg32& rng)
    : weight_(Tensor::param(in_features, out_features, rng)),
      bias_(Tensor::zeros(1, out_features, /*requires_grad=*/true)) {}

Tensor Linear::forward(const Tensor& x) const {
  return add_row_broadcast(matmul(x, weight_), bias_);
}

CausalConv1d::CausalConv1d(std::size_t in_channels, std::size_t out_channels,
                           std::size_t kernel_size, std::size_t dilation, util::Pcg32& rng)
    : kernel_size_(kernel_size),
      dilation_(dilation),
      bias_(Tensor::zeros(1, out_channels, /*requires_grad=*/true)) {
  HAMMER_CHECK(kernel_size >= 1);
  HAMMER_CHECK(dilation >= 1);
  for (std::size_t k = 0; k < kernel_size; ++k) {
    kernels_.push_back(Tensor::param(in_channels, out_channels, rng));
  }
}

std::vector<Tensor> CausalConv1d::parameters() const {
  std::vector<Tensor> params = kernels_;
  params.push_back(bias_);
  return params;
}

Tensor CausalConv1d::forward(const Tensor& x) const {
  std::size_t T = x.rows();
  Tensor out;  // accumulate sum over kernel taps
  for (std::size_t k = 0; k < kernel_size_; ++k) {
    // Tap k looks back (K-1-k)*d steps: shift the sequence down by that
    // amount with zero padding at the top (the causal boundary).
    std::size_t shift = (kernel_size_ - 1 - k) * dilation_;
    Tensor shifted;
    if (shift == 0) {
      shifted = x;
    } else if (shift >= T) {
      shifted = Tensor::zeros(T, x.cols());
    } else {
      Tensor pad = Tensor::zeros(shift, x.cols());
      shifted = concat_rows(pad, slice_rows(x, 0, T - shift));
    }
    Tensor term = matmul(shifted, kernels_[k]);
    out = out.defined() ? add(out, term) : term;
  }
  return add_row_broadcast(out, bias_);
}

GruLayer::GruLayer(std::size_t input_size, std::size_t hidden_size, util::Pcg32& rng)
    : hidden_size_(hidden_size),
      wz_(Tensor::param(input_size, hidden_size, rng)),
      uz_(Tensor::param(hidden_size, hidden_size, rng)),
      bz_(Tensor::zeros(1, hidden_size, true)),
      wr_(Tensor::param(input_size, hidden_size, rng)),
      ur_(Tensor::param(hidden_size, hidden_size, rng)),
      br_(Tensor::zeros(1, hidden_size, true)),
      wh_(Tensor::param(input_size, hidden_size, rng)),
      uh_(Tensor::param(hidden_size, hidden_size, rng)),
      bh_(Tensor::zeros(1, hidden_size, true)) {}

std::vector<Tensor> GruLayer::parameters() const {
  return {wz_, uz_, bz_, wr_, ur_, br_, wh_, uh_, bh_};
}

Tensor GruLayer::step(const Tensor& x_t, const Tensor& h_prev) const {
  // Paper Eq. 4.
  Tensor z = sigmoid(add_row_broadcast(add(matmul(x_t, wz_), matmul(h_prev, uz_)), bz_));
  Tensor r = sigmoid(add_row_broadcast(add(matmul(x_t, wr_), matmul(h_prev, ur_)), br_));
  Tensor h_cand =
      tanh_t(add_row_broadcast(add(matmul(x_t, wh_), matmul(mul(r, h_prev), uh_)), bh_));
  // h = (1-z)*h_prev + z*h_cand
  Tensor one = Tensor::from_values(1, hidden_size_, std::vector<double>(hidden_size_, 1.0));
  Tensor keep = mul(sub(one, z), h_prev);
  return add(keep, mul(z, h_cand));
}

Tensor GruLayer::forward(const Tensor& x) const {
  Tensor h = Tensor::zeros(1, hidden_size_);
  Tensor outputs;
  for (std::size_t t = 0; t < x.rows(); ++t) {
    h = step(slice_rows(x, t, 1), h);
    outputs = outputs.defined() ? concat_rows(outputs, h) : h;
  }
  return outputs;
}

BiGruLayer::BiGruLayer(std::size_t input_size, std::size_t hidden_size, util::Pcg32& rng)
    : forward_gru_(input_size, hidden_size, rng), backward_gru_(input_size, hidden_size, rng) {}

std::vector<Tensor> BiGruLayer::parameters() const {
  std::vector<Tensor> params = forward_gru_.parameters();
  for (const Tensor& p : backward_gru_.parameters()) params.push_back(p);
  return params;
}

Tensor BiGruLayer::forward(const Tensor& x) const {
  Tensor fwd = forward_gru_.forward(x);
  Tensor bwd = reverse_rows(backward_gru_.forward(reverse_rows(x)));
  return concat_cols(fwd, bwd);  // paper Eq. 5's (+) combination
}

MultiHeadAttention::MultiHeadAttention(std::size_t model_dim, std::size_t num_heads,
                                       util::Pcg32& rng)
    : num_heads_(num_heads), head_dim_(model_dim / num_heads) {
  HAMMER_CHECK_MSG(model_dim % num_heads == 0, "model_dim must divide by num_heads");
  wq_ = Tensor::param(model_dim, model_dim, rng);
  wk_ = Tensor::param(model_dim, model_dim, rng);
  wv_ = Tensor::param(model_dim, model_dim, rng);
  wo_ = Tensor::param(model_dim, model_dim, rng);
}

std::vector<Tensor> MultiHeadAttention::parameters() const { return {wq_, wk_, wv_, wo_}; }

Tensor MultiHeadAttention::forward(const Tensor& x) const {
  Tensor q = matmul(x, wq_);
  Tensor k = matmul(x, wk_);
  Tensor v = matmul(x, wv_);
  Tensor heads;
  double inv_sqrt_dk = 1.0 / std::sqrt(static_cast<double>(head_dim_));
  for (std::size_t h = 0; h < num_heads_; ++h) {
    Tensor qh = slice_cols(q, h * head_dim_, head_dim_);
    Tensor kh = slice_cols(k, h * head_dim_, head_dim_);
    Tensor vh = slice_cols(v, h * head_dim_, head_dim_);
    // Attention(Q,K,V) = softmax(QK^T / sqrt(dk)) V (paper Eq. 6).
    Tensor scores = scale(matmul(qh, transpose(kh)), inv_sqrt_dk);
    Tensor head = matmul(softmax_rows(scores), vh);
    heads = heads.defined() ? concat_cols(heads, head) : head;
  }
  return matmul(heads, wo_);  // Concat(head_1..head_h) W^O (paper Eq. 7)
}

VanillaRnnLayer::VanillaRnnLayer(std::size_t input_size, std::size_t hidden_size,
                                 util::Pcg32& rng)
    : hidden_size_(hidden_size),
      w_(Tensor::param(input_size, hidden_size, rng)),
      u_(Tensor::param(hidden_size, hidden_size, rng)),
      b_(Tensor::zeros(1, hidden_size, true)) {}

Tensor VanillaRnnLayer::forward(const Tensor& x) const {
  Tensor h = Tensor::zeros(1, hidden_size_);
  Tensor outputs;
  for (std::size_t t = 0; t < x.rows(); ++t) {
    Tensor x_t = slice_rows(x, t, 1);
    h = tanh_t(add_row_broadcast(add(matmul(x_t, w_), matmul(h, u_)), b_));
    outputs = outputs.defined() ? concat_rows(outputs, h) : h;
  }
  return outputs;
}

LayerNorm::LayerNorm(std::size_t features)
    : gain_(Tensor::from_values(1, features, std::vector<double>(features, 1.0),
                                /*requires_grad=*/true)),
      bias_(Tensor::zeros(1, features, /*requires_grad=*/true)) {}

Tensor LayerNorm::forward(const Tensor& x) const {
  return layer_norm_rows(x, gain_, bias_);
}

Tensor add_positional_encoding(const Tensor& x) {
  std::size_t T = x.rows();
  std::size_t D = x.cols();
  std::vector<double> pe(T * D);
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t d = 0; d < D; ++d) {
      double angle = static_cast<double>(t) /
                     std::pow(10000.0, 2.0 * static_cast<double>(d / 2) / static_cast<double>(D));
      pe[t * D + d] = (d % 2 == 0) ? std::sin(angle) : std::cos(angle);
    }
  }
  return add(x, Tensor::from_values(T, D, std::move(pe)));
}

}  // namespace hammer::forecast
