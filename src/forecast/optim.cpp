#include "forecast/optim.hpp"

#include <cmath>

#include "util/errors.hpp"

namespace hammer::forecast {

Adam::Adam(std::vector<Tensor> parameters, double lr, double beta1, double beta2, double eps)
    : parameters_(std::move(parameters)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  for (const Tensor& p : parameters_) {
    HAMMER_CHECK_MSG(p->requires_grad, "Adam given a non-trainable tensor");
    m_.emplace_back(p->size(), 0.0);
    v_.emplace_back(p->size(), 0.0);
  }
}

void Adam::step() {
  ++t_;
  double scale = 1.0;
  if (clip_norm_ > 0.0) {
    double norm_sq = 0.0;
    for (const Tensor& p : parameters_) {
      for (double g : p->grad) norm_sq += g * g;
    }
    double norm = std::sqrt(norm_sq);
    if (norm > clip_norm_) scale = clip_norm_ / norm;
  }
  double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < parameters_.size(); ++i) {
    TensorImpl& p = parameters_[i].ref();
    for (std::size_t j = 0; j < p.size(); ++j) {
      double g = p.grad[j] * scale;
      m_[i][j] = beta1_ * m_[i][j] + (1.0 - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0 - beta2_) * g * g;
      double m_hat = m_[i][j] / bias1;
      double v_hat = v_[i][j] / bias2;
      p.value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace hammer::forecast
