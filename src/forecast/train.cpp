#include "forecast/train.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "forecast/optim.hpp"
#include "util/errors.hpp"

namespace hammer::forecast {

namespace {
Tensor window_tensor(const std::vector<double>& values) {
  return Tensor::from_values(values.size(), 1, values);
}
}  // namespace

namespace {
std::vector<std::vector<double>> snapshot_parameters(const ForecastModel& model) {
  std::vector<std::vector<double>> snapshot;
  for (const Tensor& p : model.parameters()) snapshot.push_back(p->value);
  return snapshot;
}

void restore_parameters(ForecastModel& model, const std::vector<std::vector<double>>& snapshot) {
  std::vector<Tensor> params = model.parameters();
  HAMMER_CHECK(params.size() == snapshot.size());
  for (std::size_t i = 0; i < params.size(); ++i) params[i]->value = snapshot[i];
}

double validation_loss(const ForecastModel& model, const WindowDataset& data,
                       std::size_t begin) {
  double loss = 0.0;
  for (std::size_t i = begin; i < data.inputs.size(); ++i) {
    loss += std::abs(model.predict(window_tensor(data.inputs[i])).item() - data.targets[i]);
  }
  return loss / static_cast<double>(data.inputs.size() - begin);
}
}  // namespace

double train_model(ForecastModel& model, const WindowDataset& train,
                   const TrainOptions& options) {
  HAMMER_CHECK(!train.inputs.empty());
  Adam optimizer(model.parameters(), options.lr);
  optimizer.set_clip_norm(options.clip_norm);
  util::Pcg32 rng(options.shuffle_seed);

  bool early_stopping = options.patience > 0 && options.val_fraction > 0.0;
  std::size_t train_count = train.inputs.size();
  if (early_stopping) {
    auto held_out = static_cast<std::size_t>(static_cast<double>(train.inputs.size()) *
                                             options.val_fraction);
    if (held_out >= 1 && held_out < train.inputs.size()) train_count -= held_out;
  }

  std::vector<std::size_t> order(train_count);
  std::iota(order.begin(), order.end(), 0);

  double best_val = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> best_params;
  std::size_t epochs_without_improvement = 0;

  double last_epoch_loss = 0.0;
  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < order.size(); begin += options.batch_size) {
      std::size_t end = std::min(begin + options.batch_size, order.size());
      // Batch loss assembled in one graph so a single backward() covers the
      // whole minibatch.
      Tensor batch_loss;
      for (std::size_t i = begin; i < end; ++i) {
        std::size_t idx = order[i];
        Tensor prediction = model.predict(window_tensor(train.inputs[idx]));
        Tensor target = Tensor::scalar(train.targets[idx]);
        Tensor loss = mae_loss(prediction, target);  // paper Eq. 8
        batch_loss = batch_loss.defined() ? add(batch_loss, loss) : loss;
      }
      batch_loss = scale(batch_loss, 1.0 / static_cast<double>(end - begin));
      batch_loss.backward();
      optimizer.step();
      epoch_loss += batch_loss.item();
      ++batches;
    }
    last_epoch_loss = epoch_loss / static_cast<double>(batches);
    if (options.on_epoch) options.on_epoch(epoch, last_epoch_loss);

    if (early_stopping) {
      double val = validation_loss(model, train, train_count);
      if (val < best_val - 1e-6) {
        best_val = val;
        best_params = snapshot_parameters(model);
        epochs_without_improvement = 0;
      } else if (++epochs_without_improvement >= options.patience) {
        break;  // converged
      }
    }
  }
  if (early_stopping && !best_params.empty()) restore_parameters(model, best_params);
  return last_epoch_loss;
}

std::vector<double> predict_all(const ForecastModel& model, const WindowDataset& dataset,
                                const Normalizer& normalizer) {
  std::vector<double> predictions;
  predictions.reserve(dataset.inputs.size());
  for (const auto& input : dataset.inputs) {
    predictions.push_back(normalizer.denormalize(model.predict(window_tensor(input)).item()));
  }
  return predictions;
}

SeriesEvaluation train_and_evaluate(ForecastModel& model, const std::vector<double>& series,
                                    std::size_t window, double train_fraction,
                                    const TrainOptions& options) {
  HAMMER_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  auto split = static_cast<std::size_t>(static_cast<double>(series.size()) * train_fraction);
  HAMMER_CHECK(split > window + 1);
  HAMMER_CHECK(series.size() - split > window + 1);

  Normalizer normalizer = Normalizer::fit(series, split);
  WindowDataset train = WindowDataset::build(series, window, normalizer, 0, split);
  // Test windows may look back into the train region (standard rolling
  // evaluation); targets all land in the test region.
  WindowDataset test = WindowDataset::build(series, window, normalizer, split - window,
                                            series.size());

  train_model(model, train, options);

  SeriesEvaluation eval;
  eval.test_predictions = predict_all(model, test, normalizer);
  eval.test_actuals.reserve(test.targets.size());
  for (double t : test.targets) eval.test_actuals.push_back(normalizer.denormalize(t));
  eval.metrics = compute_metrics(eval.test_predictions, eval.test_actuals);
  return eval;
}

std::vector<double> extend_series(const ForecastModel& model, const std::vector<double>& series,
                                  std::size_t window, const Normalizer& normalizer,
                                  std::size_t steps) {
  HAMMER_CHECK(series.size() >= window);
  std::vector<double> context(series.end() - static_cast<long>(window), series.end());
  std::vector<double> extension;
  extension.reserve(steps);
  for (std::size_t s = 0; s < steps; ++s) {
    std::vector<double> normalized(window);
    for (std::size_t i = 0; i < window; ++i) normalized[i] = normalizer.normalize(context[i]);
    double next =
        std::max(normalizer.denormalize(model.predict(window_tensor(normalized)).item()), 0.0);
    extension.push_back(next);
    context.erase(context.begin());
    context.push_back(next);
  }
  return extension;
}

workload::ControlSequence to_control_sequence(const std::vector<double>& hourly_counts,
                                              util::Duration slice) {
  std::vector<double> counts = hourly_counts;
  for (double& c : counts) c = std::max(c, 0.0);
  return workload::ControlSequence(std::move(counts), slice);
}

}  // namespace hammer::forecast
