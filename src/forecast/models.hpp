// The five model families of Table III, behind one interface.
//
//   Linear       — flat linear regression over the window
//   RNN          — vanilla Elman RNN
//   TCN          — dilated causal convolution stack (paper's long-range
//                  dependency module, Eq. 3)
//   Transformer  — single-block encoder with positional encoding
//   Hammer(Ours) — TCN -> BiGRU -> multi-head attention (paper Fig. 5)
//
// All models consume a normalized window [L, 1] (the last L hourly counts)
// and emit a [1, 1] prediction of the next value (horizon h = 1).
#pragma once

#include <memory>
#include <string>

#include "forecast/layers.hpp"

namespace hammer::forecast {

class ForecastModel {
 public:
  virtual ~ForecastModel() = default;
  virtual std::string name() const = 0;
  virtual Tensor predict(const Tensor& window) const = 0;
  virtual std::vector<Tensor> parameters() const = 0;
};

struct ModelConfig {
  std::size_t window = 48;
  std::size_t channels = 16;     // TCN channels / RNN & GRU hidden / d_model
  std::size_t heads = 2;
  std::uint64_t seed = 1234;
};

std::unique_ptr<ForecastModel> make_linear_model(const ModelConfig& config);
std::unique_ptr<ForecastModel> make_rnn_model(const ModelConfig& config);
std::unique_ptr<ForecastModel> make_tcn_model(const ModelConfig& config);
std::unique_ptr<ForecastModel> make_transformer_model(const ModelConfig& config);
std::unique_ptr<ForecastModel> make_hammer_model(const ModelConfig& config);

// All five, in Table III row order.
std::vector<std::unique_ptr<ForecastModel>> make_all_models(const ModelConfig& config);

}  // namespace hammer::forecast
