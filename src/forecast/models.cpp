#include "forecast/models.hpp"

#include "util/errors.hpp"

namespace hammer::forecast {

namespace {

class LinearModel final : public ForecastModel {
 public:
  explicit LinearModel(const ModelConfig& config)
      : rng_(config.seed), head_(config.window, 1, rng_) {}

  std::string name() const override { return "Linear"; }

  Tensor predict(const Tensor& window) const override {
    return head_.forward(transpose(window));  // [1, L] -> [1, 1]
  }

  std::vector<Tensor> parameters() const override { return head_.parameters(); }

 private:
  util::Pcg32 rng_;
  Linear head_;
};

class RnnModel final : public ForecastModel {
 public:
  explicit RnnModel(const ModelConfig& config)
      : rng_(config.seed), rnn_(1, config.channels, rng_), head_(config.channels, 1, rng_) {}

  std::string name() const override { return "RNN"; }

  Tensor predict(const Tensor& window) const override {
    Tensor states = rnn_.forward(window);
    return head_.forward(slice_rows(states, states.rows() - 1, 1));
  }

  std::vector<Tensor> parameters() const override {
    std::vector<Tensor> params = rnn_.parameters();
    for (const Tensor& p : head_.parameters()) params.push_back(p);
    return params;
  }

 private:
  util::Pcg32 rng_;
  VanillaRnnLayer rnn_;
  Linear head_;
};

// Shared TCN stack: four dilated levels (d = 1, 2, 4, 8) of kernel-2
// causal convolutions, ReLU between levels. Receptive field = 16 steps —
// wide enough to cover the chaotic delay and most of a daily cycle, which
// is the whole point of dilation (paper: "larger dilations expand the
// convolutional network's receptive field").
class TcnStack {
 public:
  TcnStack(std::size_t in_channels, std::size_t channels, util::Pcg32& rng) {
    convs_.emplace_back(in_channels, channels, 2, 1, rng);
    convs_.emplace_back(channels, channels, 2, 2, rng);
    convs_.emplace_back(channels, channels, 2, 4, rng);
    convs_.emplace_back(channels, channels, 2, 8, rng);
  }

  Tensor forward(const Tensor& x) const {
    Tensor h = x;
    for (const CausalConv1d& conv : convs_) h = relu(conv.forward(h));
    return h;
  }

  std::vector<Tensor> parameters() const {
    std::vector<Tensor> params;
    for (const CausalConv1d& conv : convs_) {
      for (const Tensor& p : conv.parameters()) params.push_back(p);
    }
    return params;
  }

 private:
  std::vector<CausalConv1d> convs_;
};

class TcnModel final : public ForecastModel {
 public:
  explicit TcnModel(const ModelConfig& config)
      : rng_(config.seed), tcn_(1, config.channels, rng_), head_(config.channels, 1, rng_) {}

  std::string name() const override { return "TCN"; }

  Tensor predict(const Tensor& window) const override {
    Tensor features = tcn_.forward(window);
    return head_.forward(slice_rows(features, features.rows() - 1, 1));
  }

  std::vector<Tensor> parameters() const override {
    std::vector<Tensor> params = tcn_.parameters();
    for (const Tensor& p : head_.parameters()) params.push_back(p);
    return params;
  }

 private:
  util::Pcg32 rng_;
  TcnStack tcn_;
  Linear head_;
};

class TransformerModel final : public ForecastModel {
 public:
  explicit TransformerModel(const ModelConfig& config)
      : rng_(config.seed),
        input_proj_(1, config.channels, rng_),
        attention_(config.channels, config.heads, rng_),
        norm1_(config.channels),
        ffn1_(config.channels, config.channels * 2, rng_),
        ffn2_(config.channels * 2, config.channels, rng_),
        norm2_(config.channels),
        head_(config.channels, 1, rng_) {}

  std::string name() const override { return "Transformer"; }

  Tensor predict(const Tensor& window) const override {
    Tensor h = add_positional_encoding(input_proj_.forward(window));
    h = norm1_.forward(add(h, attention_.forward(h)));      // residual + LN
    Tensor ffn = ffn2_.forward(relu(ffn1_.forward(h)));
    h = norm2_.forward(add(h, ffn));
    return head_.forward(slice_rows(h, h.rows() - 1, 1));
  }

  std::vector<Tensor> parameters() const override {
    std::vector<Tensor> params;
    for (const Layer* layer : std::initializer_list<const Layer*>{
             &input_proj_, &attention_, &norm1_, &ffn1_, &ffn2_, &norm2_, &head_}) {
      for (const Tensor& p : layer->parameters()) params.push_back(p);
    }
    return params;
  }

 private:
  util::Pcg32 rng_;
  Linear input_proj_;
  MultiHeadAttention attention_;
  LayerNorm norm1_;
  Linear ffn1_;
  Linear ffn2_;
  LayerNorm norm2_;
  Linear head_;
};

// Paper Fig. 5: TCN captures long-range structure, BiGRU short-range
// structure in both directions, and multi-head attention picks out bursts.
class HammerModel final : public ForecastModel {
 public:
  explicit HammerModel(const ModelConfig& config)
      : rng_(config.seed),
        tcn_(1, config.channels, rng_),
        bigru_(config.channels, config.channels / 2, rng_),
        attention_(config.channels, config.heads, rng_),
        head_(config.channels * 2, 1, rng_) {
    HAMMER_CHECK(config.channels % 2 == 0);
  }

  std::string name() const override { return "Ours"; }

  Tensor predict(const Tensor& window) const override {
    Tensor tcn_out = tcn_.forward(window);            // [T, C]
    Tensor h = bigru_.forward(tcn_out);               // [T, C] (C/2 per dir)
    h = add(h, attention_.forward(h));                // burst-attention, residual
    // Skip connection from the TCN output: the recurrent/attention path
    // refines rather than replaces the convolutional features.
    Tensor last = concat_cols(slice_rows(h, h.rows() - 1, 1),
                              slice_rows(tcn_out, tcn_out.rows() - 1, 1));
    return head_.forward(last);
  }

  std::vector<Tensor> parameters() const override {
    std::vector<Tensor> params = tcn_.parameters();
    for (const Tensor& p : bigru_.parameters()) params.push_back(p);
    for (const Tensor& p : attention_.parameters()) params.push_back(p);
    for (const Tensor& p : head_.parameters()) params.push_back(p);
    return params;
  }

 private:
  util::Pcg32 rng_;
  TcnStack tcn_;
  BiGruLayer bigru_;
  MultiHeadAttention attention_;
  Linear head_;
};

}  // namespace

std::unique_ptr<ForecastModel> make_linear_model(const ModelConfig& config) {
  return std::make_unique<LinearModel>(config);
}
std::unique_ptr<ForecastModel> make_rnn_model(const ModelConfig& config) {
  return std::make_unique<RnnModel>(config);
}
std::unique_ptr<ForecastModel> make_tcn_model(const ModelConfig& config) {
  return std::make_unique<TcnModel>(config);
}
std::unique_ptr<ForecastModel> make_transformer_model(const ModelConfig& config) {
  return std::make_unique<TransformerModel>(config);
}
std::unique_ptr<ForecastModel> make_hammer_model(const ModelConfig& config) {
  return std::make_unique<HammerModel>(config);
}

std::vector<std::unique_ptr<ForecastModel>> make_all_models(const ModelConfig& config) {
  std::vector<std::unique_ptr<ForecastModel>> models;
  models.push_back(make_linear_model(config));
  models.push_back(make_rnn_model(config));
  models.push_back(make_tcn_model(config));
  models.push_back(make_transformer_model(config));
  models.push_back(make_hammer_model(config));
  return models;
}

}  // namespace hammer::forecast
