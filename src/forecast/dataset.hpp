// Workload trace datasets and forecasting metrics.
//
// SUBSTITUTION (DESIGN.md §1): the paper scrapes 300 hours of real DeFi /
// Sandbox-game / NFT transactions; offline we generate synthetic hourly
// traces calibrated to the paper's description of each application:
//   DeFi    — low volume (≈6 tx/h from 1,791 txs / 300 h), the most stable
//             of the three, mild daily periodicity.
//   Sandbox — moderate volume (≈75 tx/h) with rapid variations and heavy
//             bursts (the paper calls gaming the least stable).
//   NFTs    — high volume (≈777 tx/h), strong daily + weekly periodicity,
//             occasional mint-event bursts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hammer::forecast {

enum class TraceKind { kDeFi, kSandbox, kNfts };

const char* trace_name(TraceKind kind);

// Hourly transaction counts; deterministic per (kind, seed).
std::vector<double> generate_trace(TraceKind kind, std::size_t hours, std::uint64_t seed = 7);

// z-score normalization fitted on a training prefix.
struct Normalizer {
  double mean = 0.0;
  double std = 1.0;

  static Normalizer fit(const std::vector<double>& values, std::size_t count);
  double normalize(double v) const { return (v - mean) / std; }
  double denormalize(double v) const { return v * std + mean; }
};

// Sliding windows: input = values[i .. i+window), target = values[i+window]
// (prediction horizon 1, as in §IV-A with h = 1).
struct WindowDataset {
  std::size_t window = 0;
  std::vector<std::vector<double>> inputs;  // normalized
  std::vector<double> targets;              // normalized

  static WindowDataset build(const std::vector<double>& series, std::size_t window,
                             const Normalizer& normalizer, std::size_t begin, std::size_t end);
};

// Table III metrics.
struct EvalMetrics {
  double mae = 0.0;
  double mse = 0.0;
  double rmse = 0.0;
  double r2 = 0.0;
};

EvalMetrics compute_metrics(const std::vector<double>& predictions,
                            const std::vector<double>& actuals);

}  // namespace hammer::forecast
