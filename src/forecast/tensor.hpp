// Minimal reverse-mode autodiff over 2-D tensors.
//
// The learning-based control-sequence model (paper §IV) needs trainable
// TCN, BiGRU and multi-head-attention blocks plus the Linear/RNN/
// Transformer baselines of Table III. This tensor core supports exactly
// what those models require: dynamic computation graphs over row-major
// [rows, cols] matrices, with backward() running a topological sweep.
//
// Sequences are [T, D] matrices (time-major); scalars are [1, 1].
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "util/random.hpp"

namespace hammer::forecast {

class TensorImpl;
using TensorPtr = std::shared_ptr<TensorImpl>;

class TensorImpl {
 public:
  TensorImpl(std::size_t rows, std::size_t cols, bool requires_grad);

  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> value;
  std::vector<double> grad;   // same size as value when requires_grad
  bool requires_grad = false;

  // Graph wiring (empty for leaves). backward_fn receives *this* node as
  // its argument — capturing the owning shared_ptr inside the closure
  // would create a reference cycle and leak the whole graph.
  std::vector<TensorPtr> parents;
  std::function<void(const TensorImpl&)> backward_fn;

  double& at(std::size_t r, std::size_t c) { return value[r * cols + c]; }
  double at(std::size_t r, std::size_t c) const { return value[r * cols + c]; }
  double& grad_at(std::size_t r, std::size_t c) { return grad[r * cols + c]; }

  std::size_t size() const { return value.size(); }
};

// Value-semantics handle over a graph node.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(TensorPtr impl) : impl_(std::move(impl)) {}

  // Leaf constructors.
  static Tensor zeros(std::size_t rows, std::size_t cols, bool requires_grad = false);
  static Tensor from_values(std::size_t rows, std::size_t cols, std::vector<double> values,
                            bool requires_grad = false);
  static Tensor scalar(double v);
  // Xavier/Glorot-uniform initialized parameter.
  static Tensor param(std::size_t rows, std::size_t cols, util::Pcg32& rng);

  TensorImpl* operator->() const { return impl_.get(); }
  TensorImpl& ref() const { return *impl_; }
  const TensorPtr& ptr() const { return impl_; }
  bool defined() const { return impl_ != nullptr; }

  std::size_t rows() const { return impl_->rows; }
  std::size_t cols() const { return impl_->cols; }
  double item() const;  // requires 1x1

  // Runs backpropagation from this (scalar) tensor.
  void backward() const;

 private:
  TensorPtr impl_;
};

// ---- differentiable ops (all return new graph nodes) ----
Tensor add(const Tensor& a, const Tensor& b);           // same shape
Tensor add_row_broadcast(const Tensor& a, const Tensor& row);  // a:[R,C] + row:[1,C]
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);           // elementwise
Tensor scale(const Tensor& a, double k);
Tensor matmul(const Tensor& a, const Tensor& b);        // [R,K]x[K,C]
Tensor transpose(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor tanh_t(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor softmax_rows(const Tensor& a);
Tensor concat_cols(const Tensor& a, const Tensor& b);   // [R,C1]+[R,C2] -> [R,C1+C2]
Tensor concat_rows(const Tensor& a, const Tensor& b);   // [R1,C]+[R2,C] -> [R1+R2,C]
Tensor slice_rows(const Tensor& a, std::size_t begin, std::size_t count);
Tensor slice_cols(const Tensor& a, std::size_t begin, std::size_t count);
Tensor reverse_rows(const Tensor& a);
Tensor mean_all(const Tensor& a);                       // -> [1,1]
Tensor sum_all(const Tensor& a);                        // -> [1,1]
Tensor abs_t(const Tensor& a);
Tensor square(const Tensor& a);
Tensor layer_norm_rows(const Tensor& a, const Tensor& gain, const Tensor& bias, double eps = 1e-5);

// Losses (scalar outputs).
Tensor mae_loss(const Tensor& prediction, const Tensor& target);
Tensor mse_loss(const Tensor& prediction, const Tensor& target);

}  // namespace hammer::forecast
