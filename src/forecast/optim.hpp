// Adam optimizer (Kingma & Ba) over a flat parameter list.
#pragma once

#include <vector>

#include "forecast/tensor.hpp"

namespace hammer::forecast {

class Adam {
 public:
  explicit Adam(std::vector<Tensor> parameters, double lr = 1e-3, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8);

  // Applies one update from the gradients currently stored on the
  // parameters (backward() freshly computes them each call).
  void step();

  // Gradient-norm clipping applied inside step() when > 0.
  void set_clip_norm(double clip) { clip_norm_ = clip; }
  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  std::vector<Tensor> parameters_;
  std::vector<std::vector<double>> m_;
  std::vector<std::vector<double>> v_;
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double clip_norm_ = 0.0;
  std::uint64_t t_ = 0;
};

}  // namespace hammer::forecast
