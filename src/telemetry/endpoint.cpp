#include "telemetry/endpoint.hpp"

#include "telemetry/exposition.hpp"

namespace hammer::telemetry {

void bind_telemetry_rpc(rpc::Dispatcher& dispatcher, MetricRegistry* registry) {
  MetricRegistry* reg = registry ? registry : &MetricRegistry::global();
  dispatcher.register_method("telemetry.metrics", [reg](const json::Value&) {
    return json::object({{"content_type", "text/plain; version=0.0.4"},
                         {"text", render_prometheus(*reg)}});
  });
  dispatcher.register_method("telemetry.snapshot",
                             [reg](const json::Value&) { return reg->snapshot_json(); });
}

std::string scrape_metrics(rpc::Channel& channel) {
  return channel.call("telemetry.metrics", json::object({})).at("text").as_string();
}

json::Value scrape_snapshot(rpc::Channel& channel) {
  return channel.call("telemetry.snapshot", json::object({}));
}

TelemetryEndpoint::TelemetryEndpoint(std::uint16_t port, MetricRegistry* registry)
    : dispatcher_(std::make_shared<rpc::Dispatcher>()) {
  bind_telemetry_rpc(*dispatcher_, registry);
  // The telemetry surface is read-only and rarely hit; two workers suffice.
  server_ = std::make_unique<rpc::TcpServer>(dispatcher_, port, /*worker_threads=*/2);
}

}  // namespace hammer::telemetry
