#include "telemetry/endpoint.hpp"

#include "telemetry/exposition.hpp"
#include "telemetry/span.hpp"

namespace hammer::telemetry {

void bind_telemetry_rpc(rpc::Dispatcher& dispatcher, MetricRegistry* registry) {
  MetricRegistry* reg = registry ? registry : &MetricRegistry::global();
  dispatcher.register_method("telemetry.metrics", [reg](const json::Value&) {
    return json::object({{"content_type", "text/plain; version=0.0.4"},
                         {"text", render_prometheus(*reg)}});
  });
  dispatcher.register_method("telemetry.snapshot",
                             [reg](const json::Value&) { return reg->snapshot_json(); });
  // Server-side span drain for the driver's trace merger. Reads the
  // process-global recorder: in-process multi-endpoint deployments answer
  // identically from every endpoint, so the merger dedups by span_id.
  dispatcher.register_method("telemetry.spans", [](const json::Value&) {
    return SpanRecorder::global().export_json();
  });
}

std::string scrape_metrics(rpc::Channel& channel) {
  return channel.call("telemetry.metrics", json::object({})).at("text").as_string();
}

json::Value scrape_snapshot(rpc::Channel& channel) {
  return channel.call("telemetry.snapshot", json::object({}));
}

std::vector<Span> fetch_spans(rpc::Channel& channel) {
  std::vector<Span> out;
  json::Value result;
  try {
    result = channel.call("telemetry.spans", json::object({}));
  } catch (const rpc::RpcError&) {
    return out;  // old peer without the method: no server-side spans
  }
  if (!result.is_object() || !result.contains("spans")) return out;
  const json::Array& arr = result.at("spans").as_array();
  out.reserve(arr.size());
  for (const json::Value& v : arr) out.push_back(Span::from_json(v));
  return out;
}

TelemetryEndpoint::TelemetryEndpoint(std::uint16_t port, MetricRegistry* registry)
    : dispatcher_(std::make_shared<rpc::Dispatcher>()) {
  bind_telemetry_rpc(*dispatcher_, registry);
  // The telemetry surface is read-only and rarely hit; two workers suffice.
  server_ = std::make_unique<rpc::TcpServer>(dispatcher_, port, /*worker_threads=*/2);
}

}  // namespace hammer::telemetry
