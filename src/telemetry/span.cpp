#include "telemetry/span.hpp"

#include "util/clock.hpp"
#include "util/errors.hpp"

namespace hammer::telemetry {

namespace {

std::int64_t now_us() { return util::SteadyClock::shared()->now_us(); }

thread_local ActiveTrace t_active_trace;

struct ServerRx {
  std::int64_t recv_us = 0;
  std::int64_t dequeue_us = 0;
  bool pending = false;
};
thread_local ServerRx t_server_rx;

}  // namespace

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kClientSubmit: return "client_submit";
    case SpanKind::kFrameDecode: return "frame_decode";
    case SpanKind::kQueueWait: return "queue_wait";
    case SpanKind::kHandler: return "handler";
    case SpanKind::kChainSubmit: return "chain_submit";
    case SpanKind::kBlockSeal: return "block_seal";
  }
  return "?";
}

json::Value Span::to_json() const {
  return json::object({{"t", trace_id},
                       {"s", span_id},
                       {"p", parent_span_id},
                       {"k", static_cast<std::int64_t>(kind)},
                       {"t0", t0_us},
                       {"t1", t1_us},
                       {"th", static_cast<std::int64_t>(thread)},
                       {"d", detail}});
}

Span Span::from_json(const json::Value& v) {
  Span span;
  span.trace_id = static_cast<std::uint64_t>(v.get_int("t", 0));
  span.span_id = static_cast<std::uint64_t>(v.get_int("s", 0));
  span.parent_span_id = static_cast<std::uint64_t>(v.get_int("p", 0));
  span.kind = static_cast<SpanKind>(v.get_int("k", 3));
  span.t0_us = v.get_int("t0", 0);
  span.t1_us = v.get_int("t1", 0);
  span.thread = static_cast<std::uint32_t>(v.get_int("th", 0));
  span.detail = v.get_string("d", "");
  return span;
}

SpanRecorder::SpanRecorder(std::size_t capacity) : capacity_(capacity) {
  HAMMER_CHECK(capacity_ > 0);
  ring_.reserve(capacity_);
}

void SpanRecorder::record(Span span) {
  std::scoped_lock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[static_cast<std::size_t>(total_ % capacity_)] = std::move(span);
  }
  ++total_;
}

std::vector<Span> SpanRecorder::events() const {
  std::scoped_lock lock(mu_);
  if (total_ <= capacity_) return ring_;
  std::vector<Span> out;
  out.reserve(capacity_);
  std::size_t head = static_cast<std::size_t>(total_ % capacity_);
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head), ring_.end());
  out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

std::uint64_t SpanRecorder::dropped() const {
  std::scoped_lock lock(mu_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

void SpanRecorder::clear() {
  std::scoped_lock lock(mu_);
  ring_.clear();
  total_ = 0;
}

json::Value SpanRecorder::export_json() const {
  json::Array spans;
  for (const Span& span : events()) spans.push_back(span.to_json());
  return json::object(
      {{"spans", json::Value(std::move(spans))}, {"dropped", dropped()}});
}

SpanRecorder& SpanRecorder::global() {
  static SpanRecorder recorder;
  return recorder;
}

std::uint32_t this_thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

const ActiveTrace& active_trace() { return t_active_trace; }

ScopedTrace::ScopedTrace(const TraceContext& ctx) : saved_(t_active_trace) {
  t_active_trace.trace_id = ctx.trace_id;
  t_active_trace.parent_span_id = ctx.span_id;
}

ScopedTrace::~ScopedTrace() { t_active_trace = saved_; }

ScopedSpan::ScopedSpan(SpanKind kind, std::string detail) {
  if (t_active_trace.trace_id == 0) return;  // the one-branch unsampled path
  armed_ = true;
  SpanRecorder& recorder = SpanRecorder::global();
  span_.trace_id = t_active_trace.trace_id;
  span_.span_id = recorder.next_span_id();
  span_.parent_span_id = t_active_trace.parent_span_id;
  span_.kind = kind;
  span_.t0_us = now_us();
  span_.thread = this_thread_index();
  span_.detail = std::move(detail);
  // Children opened inside this scope parent onto this span.
  saved_parent_ = t_active_trace.parent_span_id;
  t_active_trace.parent_span_id = span_.span_id;
}

ScopedSpan::~ScopedSpan() {
  if (!armed_) return;
  t_active_trace.parent_span_id = saved_parent_;
  span_.t1_us = now_us();
  SpanRecorder::global().record(std::move(span_));
}

void set_server_rx(std::int64_t recv_us, std::int64_t dequeue_us) {
  t_server_rx.recv_us = recv_us;
  t_server_rx.dequeue_us = dequeue_us;
  t_server_rx.pending = true;
}

void clear_server_rx() { t_server_rx.pending = false; }

void emit_queue_wait_span() {
  if (!t_server_rx.pending || t_active_trace.trace_id == 0) return;
  t_server_rx.pending = false;  // one queue-wait span per frame
  SpanRecorder& recorder = SpanRecorder::global();
  Span span;
  span.trace_id = t_active_trace.trace_id;
  span.span_id = recorder.next_span_id();
  span.parent_span_id = t_active_trace.parent_span_id;
  span.kind = SpanKind::kQueueWait;
  span.t0_us = t_server_rx.recv_us;
  span.t1_us = t_server_rx.dequeue_us;
  span.thread = this_thread_index();
  recorder.record(std::move(span));
}

}  // namespace hammer::telemetry
