#include "telemetry/timeline.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace hammer::telemetry {

namespace {

constexpr std::int64_t kUnset = std::numeric_limits<std::int64_t>::min();

// trace_event process/track ids. The driver is pid 1; each SUT target gets
// its own pid so Perfetto renders it as a separate process group.
constexpr std::int64_t kDriverPid = 1;
constexpr std::int64_t kSutPidBase = 10;
constexpr std::int64_t kLaneTidBase = 1;
constexpr std::size_t kDriverLanes = 8;
constexpr std::int64_t kRpcTidBase = 100;

// Per-trace aggregate of the server-side spans, on the local clock.
struct TraceAgg {
  std::int64_t queue_t0 = kUnset;
  std::int64_t queue_t1 = kUnset;
  std::int64_t first_t0 = kUnset;  // earliest server activity
  std::int64_t done_t1 = kUnset;   // latest handler/submit completion
};

json::Value stage_json(const util::Histogram& hist) {
  return json::object({{"count", hist.count()},
                       {"mean_ms", hist.mean() / 1000.0},
                       {"p50_ms", static_cast<double>(hist.percentile(50)) / 1000.0},
                       {"p99_ms", static_cast<double>(hist.percentile(99)) / 1000.0},
                       {"max_ms", static_cast<double>(hist.max()) / 1000.0}});
}

json::Value meta_event(const char* what, std::int64_t pid, std::int64_t tid,
                       const std::string& name) {
  return json::object({{"ph", "M"},
                       {"name", what},
                       {"pid", pid},
                       {"tid", tid},
                       {"args", json::object({{"name", name}})}});
}

json::Value slice_event(const std::string& name, std::int64_t pid, std::int64_t tid,
                        std::int64_t ts_us, std::int64_t dur_us, json::Value args) {
  return json::object({{"ph", "X"},
                       {"name", name},
                       {"cat", "hammer"},
                       {"pid", pid},
                       {"tid", tid},
                       {"ts", ts_us},
                       {"dur", std::max<std::int64_t>(dur_us, 1)},
                       {"args", std::move(args)}});
}

}  // namespace

json::Value RemoteBreakdown::to_json() const {
  return json::object({{"stitched_txs", stitched_txs},
                       {"net_send", stage_json(net_send)},
                       {"server_queue", stage_json(server_queue)},
                       {"execute", stage_json(execute)},
                       {"net_recv", stage_json(net_recv)}});
}

void TraceMerger::note_submit(const SubmitTrace& submit) {
  std::scoped_lock lock(mu_);
  submits_.push_back(submit);
}

void TraceMerger::add_server_spans(std::size_t target, const std::vector<Span>& spans,
                                   ClockOffset offset) {
  std::scoped_lock lock(mu_);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(spans_.size());
  for (const TargetSpan& existing : spans_) seen.insert(existing.span.span_id);
  for (const Span& span : spans) {
    if (span.span_id != 0 && !seen.insert(span.span_id).second) continue;
    TargetSpan entry{span, target};
    entry.span.t0_us = offset.to_local(span.t0_us);
    entry.span.t1_us = offset.to_local(span.t1_us);
    spans_.push_back(std::move(entry));
  }
}

std::size_t TraceMerger::submit_count() const {
  std::scoped_lock lock(mu_);
  return submits_.size();
}

std::size_t TraceMerger::server_span_count() const {
  std::scoped_lock lock(mu_);
  return spans_.size();
}

RemoteBreakdown TraceMerger::remote_breakdown() const {
  std::scoped_lock lock(mu_);
  std::unordered_map<std::uint64_t, TraceAgg> by_trace;
  for (const TargetSpan& entry : spans_) {
    const Span& span = entry.span;
    if (span.trace_id == 0) continue;
    TraceAgg& agg = by_trace[span.trace_id];
    if (agg.first_t0 == kUnset || span.t0_us < agg.first_t0) agg.first_t0 = span.t0_us;
    if (span.kind == SpanKind::kQueueWait) {
      agg.queue_t0 = span.t0_us;
      agg.queue_t1 = span.t1_us;
    } else if (agg.done_t1 == kUnset || span.t1_us > agg.done_t1) {
      agg.done_t1 = span.t1_us;
    }
  }
  RemoteBreakdown breakdown;
  for (const SubmitTrace& submit : submits_) {
    auto it = by_trace.find(submit.trace_id);
    if (it == by_trace.end()) continue;  // spans rotated out of the SUT ring
    const TraceAgg& agg = it->second;
    ++breakdown.stitched_txs;
    // Histogram::record clamps negatives to 0, so sub-µs clock-offset error
    // cannot produce negative buckets.
    if (agg.first_t0 != kUnset) breakdown.net_send.record(agg.first_t0 - submit.begin_us);
    if (agg.queue_t0 != kUnset) breakdown.server_queue.record(agg.queue_t1 - agg.queue_t0);
    std::int64_t exec_from = agg.queue_t1 != kUnset ? agg.queue_t1 : agg.first_t0;
    if (agg.done_t1 != kUnset && exec_from != kUnset) {
      breakdown.execute.record(agg.done_t1 - exec_from);
      breakdown.net_recv.record(submit.end_us - agg.done_t1);
    }
  }
  return breakdown;
}

json::Value TraceMerger::to_trace_json(const std::vector<TraceEvent>& driver_events) const {
  std::scoped_lock lock(mu_);

  // Per-ordinal lifecycle points, same pairing as TxTracer::breakdown().
  std::map<std::uint64_t, std::array<std::int64_t, 6>> by_tx;  // ordered: lane stability
  for (const TraceEvent& event : driver_events) {
    auto [it, inserted] = by_tx.try_emplace(event.tx_ordinal);
    if (inserted) it->second.fill(kUnset);
    it->second[static_cast<std::size_t>(event.stage)] = event.t_us;
  }

  // Rebase every timestamp so the timeline starts near 0.
  std::int64_t base = std::numeric_limits<std::int64_t>::max();
  for (const auto& [ordinal, t] : by_tx) {
    for (std::int64_t v : t) {
      if (v != kUnset) base = std::min(base, v);
    }
  }
  for (const SubmitTrace& submit : submits_) base = std::min(base, submit.begin_us);
  for (const TargetSpan& entry : spans_) base = std::min(base, entry.span.t0_us);
  if (base == std::numeric_limits<std::int64_t>::max()) base = 0;

  json::Array events;
  events.push_back(meta_event("process_name", kDriverPid, 0, "hammer-driver"));
  for (std::size_t lane = 0; lane < kDriverLanes; ++lane) {
    events.push_back(meta_event("thread_name", kDriverPid,
                                kLaneTidBase + static_cast<std::int64_t>(lane),
                                "txs lane " + std::to_string(lane)));
  }

  // Driver lifecycle lanes: one slice per stage pair, sampled txs spread
  // round-robin over a handful of lanes so concurrent lifecycles stay
  // readable.
  static constexpr const char* kPairNames[5] = {"sign", "queue", "submit", "include",
                                                "detect"};
  std::size_t lane_counter = 0;
  for (const auto& [ordinal, t] : by_tx) {
    std::int64_t tid =
        kLaneTidBase + static_cast<std::int64_t>(lane_counter++ % kDriverLanes);
    for (std::size_t pair = 0; pair < 5; ++pair) {
      if (t[pair] == kUnset || t[pair + 1] == kUnset) continue;
      events.push_back(slice_event(std::string(kPairNames[pair]) + " tx " +
                                       std::to_string(ordinal),
                                   kDriverPid, tid, t[pair] - base, t[pair + 1] - t[pair],
                                   json::object({{"ordinal", ordinal}})));
    }
  }

  // Traces that have server spans — the set flow arrows are emitted for, so
  // every flow id has both its start and its finish (zero orphans).
  std::unordered_map<std::uint64_t, const TargetSpan*> flow_anchor;
  for (const TargetSpan& entry : spans_) {
    if (entry.span.trace_id == 0) continue;
    auto [it, inserted] = flow_anchor.try_emplace(entry.span.trace_id, &entry);
    // Anchor the arrow on the queue-wait span (the first server activity).
    if (!inserted && entry.span.kind == SpanKind::kQueueWait) it->second = &entry;
  }

  std::unordered_set<std::int64_t> rpc_tids;
  std::unordered_set<std::uint64_t> flow_started;
  for (const SubmitTrace& submit : submits_) {
    std::int64_t tid = kRpcTidBase + static_cast<std::int64_t>(submit.target);
    if (rpc_tids.insert(tid).second) {
      events.push_back(meta_event("thread_name", kDriverPid, tid,
                                  "rpc target " + std::to_string(submit.target)));
    }
    events.push_back(slice_event(
        "rpc submit tx " + std::to_string(submit.ordinal), kDriverPid, tid,
        submit.begin_us - base, submit.end_us - submit.begin_us,
        json::object({{"ordinal", submit.ordinal}, {"trace_id", submit.trace_id}})));
    if (flow_anchor.count(submit.trace_id) != 0 &&
        flow_started.insert(submit.trace_id).second) {
      events.push_back(json::object({{"ph", "s"},
                                     {"name", "tx flow"},
                                     {"cat", "tx"},
                                     {"id", submit.trace_id},
                                     {"pid", kDriverPid},
                                     {"tid", tid},
                                     {"ts", submit.begin_us - base}}));
    }
  }

  // SUT tracks: one process per target, one track per recorded thread.
  std::unordered_set<std::int64_t> sut_pids;
  std::unordered_set<std::int64_t> sut_tracks;  // pid * 4096 + tid
  for (const TargetSpan& entry : spans_) {
    const Span& span = entry.span;
    std::int64_t pid = kSutPidBase + static_cast<std::int64_t>(entry.target);
    std::int64_t tid = 1 + static_cast<std::int64_t>(span.thread);
    if (sut_pids.insert(pid).second) {
      events.push_back(
          meta_event("process_name", pid, 0, "sut target " + std::to_string(entry.target)));
    }
    if (sut_tracks.insert(pid * 4096 + tid).second) {
      events.push_back(meta_event("thread_name", pid, tid,
                                  "server thread " + std::to_string(span.thread)));
    }
    std::string name = span_kind_name(span.kind);
    if (!span.detail.empty()) name += " " + span.detail;
    events.push_back(slice_event(name, pid, tid, span.t0_us - base,
                                 span.t1_us - span.t0_us,
                                 json::object({{"trace_id", span.trace_id},
                                               {"span_id", span.span_id},
                                               {"parent", span.parent_span_id}})));
    auto anchor = flow_anchor.find(span.trace_id);
    if (span.trace_id != 0 && anchor != flow_anchor.end() && anchor->second == &entry &&
        flow_started.count(span.trace_id) != 0) {
      events.push_back(json::object({{"ph", "f"},
                                     {"bp", "e"},
                                     {"name", "tx flow"},
                                     {"cat", "tx"},
                                     {"id", span.trace_id},
                                     {"pid", pid},
                                     {"tid", tid},
                                     {"ts", span.t0_us - base}}));
    }
  }

  return json::object(
      {{"traceEvents", json::Value(std::move(events))}, {"displayTimeUnit", "ms"}});
}

}  // namespace hammer::telemetry
