#include "telemetry/trace.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "util/errors.hpp"

namespace hammer::telemetry {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kStart: return "start";
    case Stage::kSigned: return "signed";
    case Stage::kEnqueued: return "enqueued";
    case Stage::kSubmitted: return "submitted";
    case Stage::kIncluded: return "included";
    case Stage::kDetected: return "detected";
  }
  return "?";
}

TxTracer::TxTracer(std::size_t capacity, std::uint64_t trace_every_n)
    : every_n_(trace_every_n), capacity_(capacity) {
  HAMMER_CHECK(capacity_ > 0);
  ring_.reserve(capacity_);
}

void TxTracer::record(std::uint64_t ordinal, Stage stage, std::int64_t t_us) {
  if (!sampled(ordinal)) return;
  std::scoped_lock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back({ordinal, stage, t_us});
  } else {
    ring_[static_cast<std::size_t>(total_ % capacity_)] = {ordinal, stage, t_us};
  }
  ++total_;
}

std::vector<TraceEvent> TxTracer::events() const {
  std::scoped_lock lock(mu_);
  if (total_ <= capacity_) return ring_;
  // Ring wrapped: oldest surviving event sits at the write head.
  std::vector<TraceEvent> out;
  out.reserve(capacity_);
  std::size_t head = static_cast<std::size_t>(total_ % capacity_);
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head), ring_.end());
  out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

std::uint64_t TxTracer::dropped() const {
  std::scoped_lock lock(mu_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

StageBreakdown TxTracer::breakdown() const {
  constexpr std::size_t kStages = 6;
  constexpr std::int64_t kUnset = INT64_MIN;
  std::unordered_map<std::uint64_t, std::array<std::int64_t, kStages>> by_tx;
  for (const TraceEvent& event : events()) {
    auto [it, inserted] = by_tx.try_emplace(event.tx_ordinal);
    if (inserted) it->second.fill(kUnset);
    // Last event wins; stages are recorded in pipeline order anyway.
    it->second[static_cast<std::size_t>(event.stage)] = event.t_us;
  }
  StageBreakdown breakdown;
  breakdown.sampled_txs = by_tx.size();
  auto delta = [](util::Histogram& hist, std::int64_t from, std::int64_t to) {
    if (from == INT64_MIN || to == INT64_MIN) return;
    hist.record(to - from);
  };
  for (const auto& [ordinal, t] : by_tx) {
    delta(breakdown.sign, t[0], t[1]);     // start -> signed
    delta(breakdown.queue, t[1], t[2]);    // signed -> enqueued
    delta(breakdown.submit, t[2], t[3]);   // enqueued -> submitted
    delta(breakdown.include, t[3], t[4]);  // submitted -> included
    delta(breakdown.detect, t[4], t[5]);   // included -> detected
  }
  return breakdown;
}

json::Value StageBreakdown::to_json() const {
  auto stage = [](const util::Histogram& hist) {
    return json::object(
        {{"count", hist.count()},
         {"mean_ms", hist.mean() / 1000.0},
         {"p50_ms", static_cast<double>(hist.percentile(50)) / 1000.0},
         {"p99_ms", static_cast<double>(hist.percentile(99)) / 1000.0},
         {"max_ms", static_cast<double>(hist.max()) / 1000.0}});
  };
  return json::object({{"sampled_txs", sampled_txs},
                       {"sign", stage(sign)},
                       {"queue", stage(queue)},
                       {"submit", stage(submit)},
                       {"include", stage(include)},
                       {"detect", stage(detect)}});
}

}  // namespace hammer::telemetry
