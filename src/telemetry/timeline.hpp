// Driver-side trace merging and Perfetto timeline export.
//
// The TraceMerger is the run-end stitching point: the driver's workers
// note one SubmitTrace per sampled transaction (which trace id its batch
// frame carried, and when the send began/completed on the driver clock);
// at run end the driver fetches each SUT's SpanRecorder ring over the
// `telemetry.spans` RPC, normalizes the remote timestamps onto the driver
// clock with the per-channel ClockOffset from the hello handshake, and the
// merger produces:
//
//   remote_breakdown()  the per-tx critical-path split of the opaque
//                       submitted-window: net_send (driver send -> frame
//                       sliced on the SUT event thread), server_queue
//                       (dispatch-queue wait), execute (decode + handler +
//                       chain submit), net_recv (last handler done ->
//                       reply decoded on the driver) — RunResult's
//                       stages.remote section.
//
//   to_trace_json()     a Chrome trace_event document of the whole run,
//                       loadable in Perfetto / chrome://tracing: driver
//                       lifecycle lanes + one rpc track per target on the
//                       driver process, one track per worker thread on
//                       each SUT process, and a flow arrow per sampled tx
//                       tying its client submit span to the server spans
//                       that executed it.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "json/json.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace.hpp"
#include "util/histogram.hpp"

namespace hammer::telemetry {

// One sampled transaction's client-side submit window, noted by the driver
// worker that sent the batch frame carrying it.
struct SubmitTrace {
  std::uint64_t ordinal = 0;
  std::uint64_t trace_id = 0;
  std::int64_t begin_us = 0;  // driver clock: batch send started
  std::int64_t end_us = 0;    // driver clock: replies decoded
  std::size_t target = 0;
};

// stages.remote — same per-stage summary shape as StageBreakdown.
struct RemoteBreakdown {
  std::uint64_t stitched_txs = 0;  // sampled txs matched to server spans
  util::Histogram net_send;
  util::Histogram server_queue;
  util::Histogram execute;
  util::Histogram net_recv;
  json::Value to_json() const;
};

class TraceMerger {
 public:
  // Thread-safe; called by driver workers for each sampled tx after its
  // batch send completes.
  void note_submit(const SubmitTrace& submit);

  // Spans fetched from `target`'s recorder. Timestamps are mapped onto the
  // local clock via `offset`. Duplicate span ids are dropped — in-process
  // deployments share one global recorder across endpoints, so every
  // target's fetch returns the same ring.
  void add_server_spans(std::size_t target, const std::vector<Span>& spans,
                        ClockOffset offset);

  std::size_t submit_count() const;
  std::size_t server_span_count() const;

  RemoteBreakdown remote_breakdown() const;

  // `driver_events` is TxTracer::events() — the per-stage lifecycle points
  // rendered as driver-process lanes.
  json::Value to_trace_json(const std::vector<TraceEvent>& driver_events) const;

 private:
  mutable std::mutex mu_;
  std::vector<SubmitTrace> submits_;
  struct TargetSpan {
    Span span;  // timestamps already on the local clock
    std::size_t target = 0;
  };
  std::vector<TargetSpan> spans_;
};

}  // namespace hammer::telemetry
