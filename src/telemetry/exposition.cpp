#include "telemetry/exposition.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace hammer::telemetry {

namespace {

// Prometheus sample values: integers render exactly, doubles compactly.
std::string format_value(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void append_sample(std::string& out, const std::string& name, const std::string& labels,
                   double value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += format_value(value);
  out += '\n';
}

const char* kind_name(FamilySnapshot::Kind kind) {
  switch (kind) {
    case FamilySnapshot::Kind::kCounter: return "counter";
    case FamilySnapshot::Kind::kGauge: return "gauge";
    case FamilySnapshot::Kind::kHistogram: return "histogram";
  }
  return "untyped";
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_' && name[0] != ':') {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':') return false;
  }
  return true;
}

}  // namespace

std::string render_prometheus(const MetricRegistry& registry) {
  std::string out;
  out.reserve(4096);
  for (const FamilySnapshot& fam : registry.collect()) {
    if (!fam.help.empty()) out += "# HELP " + fam.name + " " + fam.help + "\n";
    out += "# TYPE " + fam.name + " " + kind_name(fam.kind) + "\n";
    for (const SeriesValue& v : fam.values) append_sample(out, fam.name, v.labels, v.value);
    for (const HistogramSeries& h : fam.series) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.snap.counts.size(); ++i) {
        cumulative += h.snap.counts[i];
        std::string le =
            i < h.snap.bounds.size() ? std::to_string(h.snap.bounds[i]) : std::string("+Inf");
        std::string labels = "le=\"" + le + "\"";
        if (!h.labels.empty()) labels = h.labels + "," + labels;
        append_sample(out, fam.name + "_bucket", labels, static_cast<double>(cumulative));
      }
      append_sample(out, fam.name + "_sum", h.labels, static_cast<double>(h.snap.sum));
      append_sample(out, fam.name + "_count", h.labels, static_cast<double>(h.snap.count));
    }
  }
  return out;
}

bool parse_prometheus(const std::string& text, std::map<std::string, double>* out,
                      std::string* error) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& why) {
    if (error) *error = "line " + std::to_string(line_no) + ": " + why + ": " + line;
    return false;
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Comment/metadata line; only HELP and TYPE are emitted by us but any
      // comment is legal in the format.
      continue;
    }
    // name[{labels}] value
    std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) return fail("missing value");
    std::string name = line.substr(0, name_end);
    if (!valid_metric_name(name)) return fail("bad metric name");
    std::string key = name;
    std::size_t value_start = name_end;
    if (line[name_end] == '{') {
      std::size_t close = line.find('}', name_end);
      if (close == std::string::npos) return fail("unterminated label set");
      // Label bodies must contain an even number of quotes and no stray
      // braces; a full grammar check is overkill for a smoke validator.
      std::string body = line.substr(name_end + 1, close - name_end - 1);
      if (std::count(body.begin(), body.end(), '"') % 2 != 0) {
        return fail("unbalanced quotes in labels");
      }
      key = name + "{" + body + "}";
      value_start = close + 1;
    }
    if (value_start >= line.size() || line[value_start] != ' ') {
      return fail("expected space before value");
    }
    std::string value_text = line.substr(value_start + 1);
    if (value_text.empty()) return fail("missing value");
    if (value_text == "+Inf" || value_text == "-Inf" || value_text == "NaN") {
      if (out) (*out)[key] = 0.0;
      continue;
    }
    try {
      std::size_t used = 0;
      double value = std::stod(value_text, &used);
      if (used != value_text.size()) return fail("trailing junk after value");
      if (out) (*out)[key] = value;
    } catch (const std::exception&) {
      return fail("unparsable value");
    }
  }
  return true;
}

}  // namespace hammer::telemetry
