// Prometheus text exposition format (version 0.0.4) for MetricRegistry —
// what a Prometheus server would scrape from the paper's deployment, here
// rendered on demand so a live run can be inspected mid-flight.
#pragma once

#include <map>
#include <string>

#include "telemetry/registry.hpp"

namespace hammer::telemetry {

// Renders every family as `# HELP` / `# TYPE` plus its series lines.
// Histograms expand to cumulative `_bucket{le=...}`, `_sum` and `_count`.
std::string render_prometheus(const MetricRegistry& registry);

// Minimal structural validator/parser for the exposition format, used by
// tests and the scrape smoke check. On success fills `out` (when non-null)
// with `name{labels}` -> value for every sample line and returns true; on
// the first malformed line returns false and sets `error`.
bool parse_prometheus(const std::string& text, std::map<std::string, double>* out,
                      std::string* error);

}  // namespace hammer::telemetry
