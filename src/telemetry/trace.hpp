// Transaction lifecycle tracing: a bounded ring buffer of
// {tx_ordinal, stage, t_us} events covering the client-side pipeline
//   start -> signed -> enqueued -> submitted -> included -> detected
// so a run can be decomposed into per-stage latencies (where does time go:
// signing, queueing, the submit RPC, block inclusion, or detection lag?).
//
// Sampling (`trace_every_n`) keeps the hot-path cost at one modulo per
// transaction for unsampled ordinals; sampled ones take a short mutex to
// push into the ring. The ring is bounded, so a long run overwrites old
// events instead of growing without bound (dropped() reports how many).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "util/histogram.hpp"

namespace hammer::telemetry {

enum class Stage : std::uint8_t {
  kStart = 0,     // feeder picked the transaction up
  kSigned,        // signature attached
  kEnqueued,      // pushed into the send queue
  kSubmitted,     // submit RPC returned (accepted by the SUT)
  kIncluded,      // block containing it was sealed (header timestamp)
  kDetected,      // driver's poller observed that block
};

const char* stage_name(Stage stage);

struct TraceEvent {
  std::uint64_t tx_ordinal = 0;
  Stage stage = Stage::kStart;
  std::int64_t t_us = 0;
};

// Per-stage latency breakdown computed by pairing adjacent stage events of
// each sampled transaction.
struct StageBreakdown {
  std::uint64_t sampled_txs = 0;  // ordinals with at least one event
  util::Histogram sign;     // start    -> signed
  util::Histogram queue;    // signed   -> enqueued (send-queue backpressure)
  util::Histogram submit;   // enqueued -> submitted (pacing + RPC)
  util::Histogram include;  // submitted-> included (consensus/inclusion)
  util::Histogram detect;   // included -> detected (poll + fetch lag)

  json::Value to_json() const;
};

class TxTracer {
 public:
  // trace_every_n == 1 traces everything; n traces ordinals divisible by n;
  // 0 disables (record() becomes a no-op; sampled() is false).
  explicit TxTracer(std::size_t capacity = 1 << 16, std::uint64_t trace_every_n = 1);

  bool sampled(std::uint64_t ordinal) const {
    return every_n_ != 0 && ordinal % every_n_ == 0;
  }

  // No-op unless sampled(ordinal).
  void record(std::uint64_t ordinal, Stage stage, std::int64_t t_us);

  std::uint64_t trace_every_n() const { return every_n_; }
  std::size_t capacity() const { return capacity_; }

  // Events currently retained, oldest first.
  std::vector<TraceEvent> events() const;
  // Events overwritten because the ring wrapped.
  std::uint64_t dropped() const;

  StageBreakdown breakdown() const;

 private:
  const std::uint64_t every_n_;
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;  // events ever recorded; head = total_ % capacity_
};

}  // namespace hammer::telemetry
