// The scrape surface: telemetry methods on a JSON-RPC dispatcher, and a
// standalone endpoint for processes that want a dedicated telemetry port.
//
// Methods (registered by bind_telemetry_rpc):
//   telemetry.metrics  {}  -> {"content_type": "text/plain; version=0.0.4",
//                              "text": "<prometheus exposition>"}
//   telemetry.snapshot {}  -> flat JSON object of every live series
//
// bind_telemetry_rpc is called by core::Deployment for every SUT
// dispatcher, so the existing epoll TcpServer that already serves
// chain.* doubles as the /metrics endpoint — one port per node, exactly
// like the paper's per-node Prometheus exporters. TelemetryEndpoint is the
// driver-side equivalent: a tiny dedicated TcpServer for the client
// process (see examples/quickstart.cpp --telemetry).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rpc/tcp.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"

namespace hammer::telemetry {

// Registers telemetry.metrics / telemetry.snapshot on the dispatcher.
// registry == nullptr binds the process-global registry.
void bind_telemetry_rpc(rpc::Dispatcher& dispatcher, MetricRegistry* registry = nullptr);

// One-call scrape helpers over any channel (used by smoke tests, benches
// and the quickstart's live printer).
std::string scrape_metrics(rpc::Channel& channel);
json::Value scrape_snapshot(rpc::Channel& channel);

// Fetches the peer's recorded spans (telemetry.spans). A peer predating the
// method (kMethodNotFound) yields an empty vector instead of throwing, so
// the trace merger degrades to driver-only spans against old SUTs.
std::vector<Span> fetch_spans(rpc::Channel& channel);

// Dedicated telemetry port: owns a dispatcher with only the telemetry
// methods plus the TcpServer exposing it.
class TelemetryEndpoint {
 public:
  // port = 0 picks a free port (see port()).
  explicit TelemetryEndpoint(std::uint16_t port = 0, MetricRegistry* registry = nullptr);

  std::uint16_t port() const { return server_->port(); }

 private:
  std::shared_ptr<rpc::Dispatcher> dispatcher_;
  std::unique_ptr<rpc::TcpServer> server_;
};

}  // namespace hammer::telemetry
