#include "telemetry/registry.hpp"

#include <algorithm>

#include "util/errors.hpp"

namespace hammer::telemetry {

std::size_t this_thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard.v.load(std::memory_order_relaxed);
  return total;
}

std::int64_t Gauge::value() const {
  std::int64_t total = 0;
  for (const auto& shard : shards_) total += shard.v.load(std::memory_order_relaxed);
  return total;
}

// ---------------------------------------------------------------------------
// StageHistogram
// ---------------------------------------------------------------------------

const std::vector<std::int64_t>& StageHistogram::default_bounds_us() {
  static const std::vector<std::int64_t> bounds = {
      50,     100,    250,    500,     1000,    2500,    5000,    10000,
      25000,  50000,  100000, 250000,  500000,  1000000, 2500000, 5000000};
  return bounds;
}

StageHistogram::StageHistogram(std::vector<std::int64_t> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_bounds_us();
  HAMMER_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (auto& shard : shards_) {
    shard.counts = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      shard.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

void StageHistogram::record(std::int64_t value) {
  // Branchless-enough: the bounds list is short and cached; upper_bound is
  // O(log n) over ~16 entries.
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  Shard& shard = shards_[this_thread_shard()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot StageHistogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : snap.counts) snap.count += c;
  return snap;
}

std::int64_t HistogramSnapshot::percentile(double p) const {
  HAMMER_CHECK(p >= 0.0 && p <= 100.0);
  if (count == 0) return 0;
  auto target =
      static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count) + 0.5);
  if (target == 0) target = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= target) {
      return i < bounds.size() ? bounds[i] : (bounds.empty() ? 0 : bounds.back());
    }
  }
  return bounds.empty() ? 0 : bounds.back();
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry* registry = new MetricRegistry();  // never destroyed:
  // instrumented code may log through static-destruction order otherwise.
  return *registry;
}

Counter& MetricRegistry::counter(const std::string& name, const std::string& help,
                                 const std::string& labels) {
  std::scoped_lock lock(mu_);
  Family<Counter>& family = counters_[name];
  if (family.help.empty()) family.help = help;
  auto& slot = family.series[labels];
  if (!slot) slot.reset(new Counter());
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name, const std::string& help,
                             const std::string& labels) {
  std::scoped_lock lock(mu_);
  Family<Gauge>& family = gauges_[name];
  if (family.help.empty()) family.help = help;
  auto& slot = family.series[labels];
  if (!slot) slot.reset(new Gauge());
  return *slot;
}

StageHistogram& MetricRegistry::histogram(const std::string& name, const std::string& help,
                                          const std::string& labels,
                                          std::vector<std::int64_t> bounds) {
  std::scoped_lock lock(mu_);
  Family<StageHistogram>& family = histograms_[name];
  if (family.help.empty()) family.help = help;
  auto& slot = family.series[labels];
  if (!slot) slot.reset(new StageHistogram(std::move(bounds)));
  return *slot;
}

std::uint64_t MetricRegistry::add_source(SourceFn source) {
  HAMMER_CHECK(source != nullptr);
  std::scoped_lock lock(mu_);
  std::uint64_t handle = next_source_++;
  sources_.emplace(handle, std::move(source));
  return handle;
}

void MetricRegistry::remove_source(std::uint64_t handle) {
  std::scoped_lock lock(mu_);
  sources_.erase(handle);
}

std::vector<FamilySnapshot> MetricRegistry::collect() const {
  // Copy the source callbacks out so sampling runs without the registry
  // lock held (a source may itself take locks).
  std::vector<FamilySnapshot> out;
  std::vector<SourceFn> sources;
  {
    std::scoped_lock lock(mu_);
    for (const auto& [name, family] : counters_) {
      FamilySnapshot fam;
      fam.name = name;
      fam.help = family.help;
      fam.kind = FamilySnapshot::Kind::kCounter;
      for (const auto& [labels, counter] : family.series) {
        fam.values.push_back({labels, static_cast<double>(counter->value())});
      }
      out.push_back(std::move(fam));
    }
    for (const auto& [name, family] : gauges_) {
      FamilySnapshot fam;
      fam.name = name;
      fam.help = family.help;
      fam.kind = FamilySnapshot::Kind::kGauge;
      for (const auto& [labels, gauge] : family.series) {
        fam.values.push_back({labels, static_cast<double>(gauge->value())});
      }
      out.push_back(std::move(fam));
    }
    for (const auto& [name, family] : histograms_) {
      FamilySnapshot fam;
      fam.name = name;
      fam.help = family.help;
      fam.kind = FamilySnapshot::Kind::kHistogram;
      for (const auto& [labels, hist] : family.series) {
        fam.series.push_back({labels, hist->snapshot()});
      }
      out.push_back(std::move(fam));
    }
    sources.reserve(sources_.size());
    for (const auto& [handle, fn] : sources_) sources.push_back(fn);
  }
  // Source samples render as gauges, grouped by name so families stay
  // contiguous in the exposition.
  std::map<std::string, FamilySnapshot> sourced;
  for (const SourceFn& fn : sources) {
    for (SourceSample& sample : fn()) {
      FamilySnapshot& fam = sourced[sample.name];
      if (fam.name.empty()) {
        fam.name = sample.name;
        fam.help = sample.help;
        fam.kind = FamilySnapshot::Kind::kGauge;
      }
      fam.values.push_back({sample.labels, sample.value});
    }
  }
  for (auto& [name, fam] : sourced) out.push_back(std::move(fam));
  return out;
}

json::Value MetricRegistry::snapshot_json() const {
  json::Object root;
  for (const FamilySnapshot& fam : collect()) {
    auto key = [&fam](const std::string& labels) {
      return labels.empty() ? fam.name : fam.name + "{" + labels + "}";
    };
    for (const SeriesValue& v : fam.values) root[key(v.labels)] = v.value;
    for (const HistogramSeries& h : fam.series) {
      json::Object hist;
      hist["count"] = h.snap.count;
      hist["sum"] = h.snap.sum;
      hist["p50"] = h.snap.percentile(50);
      hist["p99"] = h.snap.percentile(99);
      json::Array buckets;
      buckets.reserve(h.snap.counts.size());
      for (std::uint64_t c : h.snap.counts) buckets.push_back(json::Value(c));
      hist["buckets"] = json::Value(std::move(buckets));
      root[key(h.labels)] = json::Value(std::move(hist));
    }
  }
  return json::Value(std::move(root));
}

}  // namespace hammer::telemetry
