// Live metric registry — the in-process stand-in for the paper's
// Prometheus node exporters ("Prometheus pulls the internal metrics of each
// node during or after our evaluation").
//
// Design constraints, in order:
//   1. The hot path (driver worker loop, TcpChannel writer, task processor)
//      must pay one relaxed atomic add per event. Every instrument is
//      sharded: threads are assigned a cache-line-padded slot round-robin,
//      so concurrent writers almost never touch the same line. Aggregation
//      happens at scrape time, which is rare and off the hot path.
//   2. Instrument references are stable for the life of the registry, so
//      callers hoist the lookup out of their loops (typically into a
//      function-local static) and never pay the registry mutex per event.
//   3. Scrapes are wait-free for writers: readers sum the shards with
//      relaxed loads; a scrape concurrent with writes sees a value that was
//      true at some instant between scrape start and end, which is all
//      Prometheus semantics require.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace hammer::telemetry {

// Shard count for per-thread striping. More threads than shards simply
// share slots (still correct, slightly more contention).
inline constexpr std::size_t kMetricShards = 16;

// Stable per-thread shard slot, assigned round-robin on first use.
std::size_t this_thread_shard();

namespace detail {
struct alignas(64) PaddedCount {
  std::atomic<std::uint64_t> v{0};
};
struct alignas(64) PaddedSigned {
  std::atomic<std::int64_t> v{0};
};
}  // namespace detail

// Monotonically increasing event count.
class Counter {
 public:
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) {
    shards_[this_thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const;

 private:
  friend class MetricRegistry;
  Counter() = default;
  std::array<detail::PaddedCount, kMetricShards> shards_;
};

// Signed instantaneous value (in-flight calls, queue depth). add/sub are
// commutative, so sharding works the same way as for counters.
class Gauge {
 public:
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void add(std::int64_t d = 1) {
    shards_[this_thread_shard()].v.fetch_add(d, std::memory_order_relaxed);
  }
  void sub(std::int64_t d = 1) { add(-d); }
  std::int64_t value() const;

 private:
  friend class MetricRegistry;
  Gauge() = default;
  std::array<detail::PaddedSigned, kMetricShards> shards_;
};

// Aggregated view of a StageHistogram (shards merged at snapshot time).
struct HistogramSnapshot {
  std::vector<std::int64_t> bounds;   // inclusive upper bounds; +Inf implied
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  std::int64_t sum = 0;

  // Upper bound of the bucket holding percentile p (0 when empty; the last
  // finite bound when p lands in the +Inf bucket).
  std::int64_t percentile(double p) const;
};

// Fixed-bucket duration histogram for stage timings. Unlike util::Histogram
// (exact post-run analysis), this one is built for concurrent hot-path
// recording: fixed Prometheus-style cumulative buckets, per-thread shards,
// one relaxed add per record().
class StageHistogram {
 public:
  StageHistogram(const StageHistogram&) = delete;
  StageHistogram& operator=(const StageHistogram&) = delete;

  // Default bounds suit microsecond stage timings from 50us to 5s.
  static const std::vector<std::int64_t>& default_bounds_us();

  void record(std::int64_t value);
  HistogramSnapshot snapshot() const;

  const std::vector<std::int64_t>& bounds() const { return bounds_; }

 private:
  friend class MetricRegistry;
  explicit StageHistogram(std::vector<std::int64_t> bounds);

  struct alignas(64) Shard {
    // counts has bounds.size() + 1 slots; the last is the +Inf bucket.
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    std::atomic<std::int64_t> sum{0};
  };

  std::vector<std::int64_t> bounds_;  // sorted, strictly increasing
  std::array<Shard, kMetricShards> shards_;
};

// One exported time series (or source sample) in a structured scrape.
struct SeriesValue {
  std::string labels;  // rendered label body, e.g. `dir="sent"` (may be empty)
  double value = 0.0;
};

struct HistogramSeries {
  std::string labels;
  HistogramSnapshot snap;
};

// One metric family: every series sharing a name, help text and type.
struct FamilySnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  std::string help;
  Kind kind = Kind::kCounter;
  std::vector<SeriesValue> values;       // counters/gauges/source samples
  std::vector<HistogramSeries> series;   // histograms
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Process-wide registry that instrumented subsystems default to.
  static MetricRegistry& global();

  // Idempotent: the first call creates the series, later calls (same name +
  // labels) return the same instrument. References stay valid for the
  // registry's lifetime. `labels` is a pre-rendered Prometheus label body
  // without braces, e.g. `dir="sent"`.
  Counter& counter(const std::string& name, const std::string& help = "",
                   const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& help = "",
               const std::string& labels = "");
  StageHistogram& histogram(const std::string& name, const std::string& help = "",
                            const std::string& labels = "",
                            std::vector<std::int64_t> bounds = {});

  // Pull-time sources: sampled on every collect(). This is how components
  // that already own their sampling loop (ResourceMonitor) join the
  // registry without double bookkeeping. Returns a handle for remove_source.
  struct SourceSample {
    std::string name;
    std::string help;
    std::string labels;
    double value = 0.0;
  };
  using SourceFn = std::function<std::vector<SourceSample>()>;
  std::uint64_t add_source(SourceFn source);
  void remove_source(std::uint64_t handle);

  // Structured scrape: every family, shards aggregated, sources sampled.
  std::vector<FamilySnapshot> collect() const;

  // JSON snapshot (the `telemetry.snapshot` RPC payload): flat object keyed
  // by `name` or `name{labels}`; histograms expand to {count,sum,buckets}.
  json::Value snapshot_json() const;

 private:
  template <typename T>
  struct Family {
    std::string help;
    std::map<std::string, std::unique_ptr<T>> series;  // keyed by label body
  };

  mutable std::mutex mu_;
  std::map<std::string, Family<Counter>> counters_;
  std::map<std::string, Family<Gauge>> gauges_;
  std::map<std::string, Family<StageHistogram>> histograms_;
  std::map<std::uint64_t, SourceFn> sources_;
  std::uint64_t next_source_ = 1;
};

}  // namespace hammer::telemetry
