// Cross-process distributed tracing: trace contexts, spans, and the
// per-process SpanRecorder ring.
//
// The driver's TxTracer (PR 2) sees only the client side of a run: the
// whole enqueued->submitted window is one opaque blob that mixes client
// queueing, the wire, server dispatch, codec decode, and chain-sim
// execution. A TraceContext — {trace_id, span_id} with trace_id != 0
// meaning "sampled" — rides each RPC (a traced binary frame kind, or a
// `_trace` member in JSON-RPC params; negotiated like the codec, so old
// peers interop untouched), and the receiving process records its own
// spans (frame decode, dispatch-queue wait, handler execution, chain
// submit/seal) into a bounded SpanRecorder ring exported over the
// `telemetry.spans` RPC. The driver fetches those rings at run end and
// stitches them with its TxTracer stages (see timeline.hpp).
//
// Timestamps are *local* steady-clock microseconds in whichever process
// recorded the span; ClockOffset — estimated from a steady-clock exchange
// piggybacked on the hello/hello-ok negotiation round trip — maps one
// process's timestamps onto another's base. Sampling is decided by the
// driver (trace_every_n), so the unsampled hot path pays exactly one
// branch: every scope helper below starts with a thread-local sampled
// check and does nothing else when no trace is active.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace hammer::telemetry {

// The compact context propagated on a traced RPC. span_id is the caller's
// span — the parent under which the receiving side opens its own spans.
struct TraceContext {
  std::uint64_t trace_id = 0;  // 0 = unsampled; nothing is recorded
  std::uint64_t span_id = 0;
  bool sampled() const { return trace_id != 0; }
};

// remote_minus_local_us maps the remote process's steady clock onto ours:
// local = remote - remote_minus_local_us. Estimated NTP-style from one
// round trip: the remote stamp is assumed to sit at the RTT midpoint.
struct ClockOffset {
  std::int64_t remote_minus_local_us = 0;

  static ClockOffset estimate(std::int64_t local_send_us, std::int64_t remote_now_us,
                              std::int64_t local_recv_us) {
    std::int64_t midpoint = local_send_us + (local_recv_us - local_send_us) / 2;
    return ClockOffset{remote_now_us - midpoint};
  }
  std::int64_t to_local(std::int64_t remote_us) const {
    return remote_us - remote_minus_local_us;
  }
};

enum class SpanKind : std::uint8_t {
  kClientSubmit = 0,  // driver-side: one batch send -> reply decoded
  kFrameDecode = 1,   // server worker: binary request body decode
  kQueueWait = 2,     // server: frame sliced on event thread -> worker dequeue
  kHandler = 3,       // server worker: one handler invocation
  kChainSubmit = 4,   // chain sim: submit_via inside the chain.submit handler
  kBlockSeal = 5,     // chain sim: a block sealed (not tied to a trace)
};
const char* span_kind_name(SpanKind kind);

struct Span {
  std::uint64_t trace_id = 0;  // 0 = timeline-only (e.g. block seals)
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  SpanKind kind = SpanKind::kHandler;
  std::int64_t t0_us = 0;
  std::int64_t t1_us = 0;
  std::uint32_t thread = 0;  // compact per-process thread index
  std::string detail;        // method name, seal info, ...

  json::Value to_json() const;
  static Span from_json(const json::Value& v);
};

// Bounded ring of spans, same overwrite-oldest discipline as TxTracer.
// One process-global instance backs the `telemetry.spans` RPC; span ids
// drawn from it are process-unique and never 0.
class SpanRecorder {
 public:
  explicit SpanRecorder(std::size_t capacity = 1u << 16);

  void record(Span span);
  std::vector<Span> events() const;  // oldest retained first
  std::uint64_t dropped() const;
  void clear();  // drops recorded spans (tests; run-to-run isolation)

  std::uint64_t next_span_id() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  // {"spans": [...], "dropped": n} — the telemetry.spans response body.
  json::Value export_json() const;

  static SpanRecorder& global();

 private:
  mutable std::mutex mu_;
  std::vector<Span> ring_;
  std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::atomic<std::uint64_t> next_id_{1};
};

// Small dense index for the current thread (0, 1, 2, ... in first-use
// order) — the timeline export keys server tracks on it.
std::uint32_t this_thread_index();

// ---- thread-local trace scope ------------------------------------------
//
// The server side has no per-call context parameter to thread a trace
// through (handlers are plain json->json functions), so the active trace
// lives in a thread-local: the transport installs it for the duration of a
// request and instrumented layers below (dispatcher, chain sims) open
// spans against it. All helpers are no-ops when no sampled trace is
// active.

struct ActiveTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
};

// The calling thread's active trace (trace_id == 0 when none).
const ActiveTrace& active_trace();
inline bool trace_active() { return active_trace().trace_id != 0; }

// Installs `ctx` as the calling thread's active trace for the scope.
class ScopedTrace {
 public:
  explicit ScopedTrace(const TraceContext& ctx);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  ActiveTrace saved_;
};

// Opens a span under the active trace and records it into the global
// recorder on destruction. Nested ScopedSpans parent onto each other.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanKind kind, std::string detail = {});
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool armed_ = false;
  Span span_;
  std::uint64_t saved_parent_ = 0;
};

// ---- per-frame receive bookkeeping -------------------------------------
//
// The dispatch-queue-wait span covers "frame sliced on the event thread ->
// worker picked it up". The event thread stamps arrival into the Work
// item; the worker publishes both timestamps here before dispatching, and
// the first *traced* call of the frame emits the span (emit_queue_wait_span
// consumes the pending record, so a batch frame emits it exactly once).

void set_server_rx(std::int64_t recv_us, std::int64_t dequeue_us);
void clear_server_rx();
void emit_queue_wait_span();

}  // namespace hammer::telemetry
