// Temporal-workload evaluation — the full §IV story, end to end:
//
//   1. take a "real" application trace (NFT minting, hourly counts)
//   2. train the TCN+BiGRU+attention model on it
//   3. EXTEND the sequence autoregressively (the paper's motivation: real
//      control sequences are too short for large-scale testing)
//   4. replay the extended sequence as an open-loop workload against a SUT,
//      compressing one "hour" into one second of wall time
//   5. report how the SUT coped with the bursty, realistic arrival process
#include <cstdio>

#include "core/deployment.hpp"
#include "core/driver.hpp"
#include "forecast/train.hpp"
#include "report/ascii_chart.hpp"

using namespace hammer;
using namespace hammer::forecast;

int main() {
  // 1-2. Learn the NFT trace's temporal structure.
  std::printf("training the control-sequence model on the NFT trace...\n");
  std::vector<double> trace = generate_trace(TraceKind::kNfts, 500, 7);
  ModelConfig config;
  config.window = 48;
  config.channels = 16;
  auto model = make_hammer_model(config);
  TrainOptions train_options;
  train_options.epochs = 20;
  train_options.lr = 2e-3;
  Normalizer normalizer = Normalizer::fit(trace, trace.size());
  WindowDataset dataset = WindowDataset::build(trace, config.window, normalizer, 0, trace.size());
  train_model(*model, dataset, train_options);

  // 3. Manufacture 30 future "hours" the real trace never had.
  std::vector<double> extension = extend_series(*model, trace, config.window, normalizer, 30);
  std::printf("%s", report::line_chart("generated future load (tx per hour)",
                                       {{"generated", extension}},
                                       {.width = 60, .height = 8, .x_label = "future hours"})
                        .c_str());

  // 4. Replay: 1 generated hour -> 1 wall-clock second, scaled to a peak
  //    the demo SUT handles comfortably.
  workload::ControlSequence sequence =
      to_control_sequence(extension, std::chrono::seconds(1)).scaled_to_peak(1500.0);
  auto total_txs = static_cast<std::size_t>(sequence.total());
  std::printf("replaying %zu transactions over %zu seconds (peak %.0f tx/s)\n", total_txs,
              sequence.num_slices(), sequence.peak());

  json::Value plan = json::Value::parse(R"({
    "chains": [{"kind": "neuchain", "name": "sut", "block_interval_ms": 50,
                "max_block_txs": 3000, "smallbank_accounts_per_shard": 1000}]
  })");
  core::Deployment deployment = core::Deployment::deploy(plan, util::SteadyClock::shared());
  core::DeployedChain& sut = deployment.at("sut");
  workload::WorkloadProfile profile;
  workload::WorkloadFile wf =
      workload::generate_workload(profile, sut.smallbank_accounts, total_txs);

  core::DriverOptions options;
  options.worker_threads = 2;
  core::HammerDriver driver(sut.make_adapters(2), sut.make_adapters(1)[0],
                            util::SteadyClock::shared(), options);
  core::RunResult result = driver.run(wf, &sequence);

  // 5. The SUT's view of a realistic, bursty day.
  std::printf("\n%s\n", result.summary().c_str());
  std::printf("p99 latency under bursts: %.1fms (vs p50 %.1fms)\n",
              static_cast<double>(result.latency.percentile(99)) / 1000.0,
              static_cast<double>(result.latency.percentile(50)) / 1000.0);
  return 0;
}
