// hammer-coordinator: drive a SUT with a distributed fleet of worker
// processes (DESIGN.md §13 — the "Distributed quickstart" in README.md).
//
//   1. deploy a TCP-transport sharded Meepo SUT in this process
//   2. spawn N hammer_worker siblings (or dial --workers p1,p2,... you
//      started yourself)
//   3. push each worker its shard of one seeded SmallBank workload
//      (disjoint accounts, derived seeds) over the control-plane API
//   4. start barrier, poll control.stats while the fleet runs
//   5. merge the per-worker RunResults into one fleet report and print it
//
// Flags: --fleet N (default 2), --txs N total transactions (default
// 10000), --shards N SUT shards/endpoints (default 4), --workers p1,p2
// to reuse externally-started workers instead of spawning.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/coordinator.hpp"
#include "core/deployment.hpp"
#include "core/worker_process.hpp"
#include "report/merge.hpp"
#include "workload/profile.hpp"

using namespace hammer;

int main(int argc, char** argv) {
  std::size_t fleet_size = 2;
  std::size_t total_txs = 10000;
  std::size_t shards = 4;
  std::vector<std::uint16_t> worker_ports;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fleet") == 0 && i + 1 < argc) {
      fleet_size = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--txs") == 0 && i + 1 < argc) {
      total_txs = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        worker_ports.push_back(
            static_cast<std::uint16_t>(std::atoi(list.substr(pos, comma - pos).c_str())));
        pos = comma + 1;
      }
    }
  }
  if (fleet_size == 0) fleet_size = 1;

  // 1. The SUT: one sharded Meepo behind `shards` TCP endpoints, genesis
  // accounts ready for SmallBank.
  json::Value plan = json::Value::parse(R"({"chains": [{
    "kind": "meepo", "name": "fleet-sut", "transport": "tcp",
    "block_interval_ms": 30, "rpc_workers": 2,
    "smallbank_accounts_per_shard": 500
  }]})");
  json::Object& spec = plan.as_object()["chains"].as_array()[0].as_object();
  spec["num_shards"] = static_cast<std::int64_t>(shards);
  spec["endpoints"] = static_cast<std::int64_t>(shards);
  core::Deployment deployment = core::Deployment::deploy(plan, util::SteadyClock::shared());
  core::DeployedChain& sut = deployment.at("fleet-sut");
  std::printf("SUT up: %zu-shard meepo, %zu TCP endpoint(s), %zu accounts\n", shards,
              sut.endpoint_count(), sut.smallbank_accounts.size());

  // 2. The fleet: spawn hammer_worker siblings next to this binary, unless
  // the user pointed us at running ones.
  std::vector<core::WorkerProcess> spawned;
  if (worker_ports.empty()) {
    std::string self = argv[0];
    std::size_t slash = self.rfind('/');
    std::string worker_bin =
        (slash == std::string::npos ? std::string(".") : self.substr(0, slash)) +
        "/hammer_worker";
    for (std::size_t i = 0; i < fleet_size; ++i) {
      spawned.push_back(core::WorkerProcess::spawn(worker_bin, {}));
      worker_ports.push_back(spawned.back().port());
      std::printf("spawned worker %zu: pid %d, control port %u\n", i,
                  static_cast<int>(spawned.back().pid()), spawned.back().port());
    }
  }
  std::vector<core::FleetWorker> fleet;
  for (std::uint16_t port : worker_ports) fleet.push_back({"127.0.0.1", port});

  // 3.-5. One seeded workload for the whole fleet; each worker derives its
  // shard (accounts, seed, fault stream) from its index.
  core::FleetPlan fleet_plan;
  for (std::uint16_t port : sut.tcp_ports()) {
    fleet_plan.sut_endpoints.emplace_back("127.0.0.1", port);
  }
  fleet_plan.accounts = sut.smallbank_accounts;
  workload::WorkloadProfile profile;
  profile.seed = 42;
  fleet_plan.workload = profile.to_json();
  fleet_plan.total_txs = total_txs;
  fleet_plan.driver = json::object({{"worker_threads", static_cast<std::int64_t>(shards)},
                                    {"submit_batch_size", 32},
                                    {"routing", "shard"}});

  core::Coordinator coordinator(fleet);
  core::FleetResult result = coordinator.run(fleet_plan);
  coordinator.stop();
  for (auto& process : spawned) process.wait();

  report::FleetReport report = report::FleetReport::build(result.workers, "fleet run");
  std::printf("\n%s\n", report.rendered.c_str());
  std::printf("fleet wall time: %.2fs, aggregate tps: %.1f\n", result.wall_s,
              result.merged.tps);
  return 0;
}
