// Sharded-blockchain evaluation — the capability the paper claims first:
// "To the best of our knowledge, we are the first evaluation framework
// that is able to support both non-sharding and sharding architectures."
//
// Deploys a two-shard Meepo, drives SmallBank payments that cross shard
// boundaries, shows the per-shard ledgers the driver polls independently,
// and audits cross-shard money conservation through the adapter.
#include <cstdio>
#include <thread>

#include "chain/meepo_sim.hpp"
#include "core/deployment.hpp"
#include "core/driver.hpp"

using namespace hammer;

int main() {
  json::Value plan = json::Value::parse(R"({
    "chains": [{
      "kind": "meepo", "name": "meepo", "num_shards": 2,
      "block_interval_ms": 60, "smallbank_accounts_per_shard": 400,
      "initial_checking": 10000, "initial_savings": 10000
    }]
  })");
  core::Deployment deployment = core::Deployment::deploy(plan, util::SteadyClock::shared());
  core::DeployedChain& sut = deployment.at("meepo");

  // A transfer-only workload maximizes cross-shard traffic (~50% of pairs
  // straddle the two shards).
  workload::WorkloadProfile profile;
  profile.op_mix = {{"send_payment", 1.0}};
  profile.amount_min = 1;
  profile.amount_max = 20;
  workload::WorkloadFile wf = workload::generate_workload(profile, sut.smallbank_accounts, 4000);

  core::DriverOptions options;
  options.worker_threads = 2;
  core::HammerDriver driver(sut.make_adapters(2), sut.make_adapters(1)[0],
                            util::SteadyClock::shared(), options);
  core::RunResult result = driver.run(wf, nullptr);
  std::printf("run: %s\n\n", result.summary().c_str());

  // Cross-shard credits land at the destination shard's NEXT epoch; give
  // in-flight relays a few epochs to settle before auditing.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Per-shard view through the same adapter the driver used.
  auto adapter = sut.make_adapters(1)[0];
  for (std::uint32_t shard = 0; shard < adapter->info().shards; ++shard) {
    std::printf("shard %u: height=%llu state_digest=%.16s...\n", shard,
                static_cast<unsigned long long>(adapter->height(shard)),
                adapter->state_digest(shard).c_str());
  }
  auto* meepo = dynamic_cast<chain::MeepoSim*>(sut.chain.get());
  std::printf("cross-shard transfers relayed: %llu\n",
              static_cast<unsigned long long>(meepo->cross_shard_count()));

  // Audit: total balance across every account on both shards is conserved
  // (each genesis account starts with 10,000 checking).
  std::int64_t total = 0;
  for (const std::string& account : sut.smallbank_accounts) {
    std::uint32_t shard = sut.chain->shard_for_sender(account);
    total += adapter->query(shard, "smallbank", "query", json::object({{"customer", account}}))
                 .at("checking")
                 .as_int();
  }
  auto expected = static_cast<std::int64_t>(sut.smallbank_accounts.size()) * 10000;
  std::printf("conservation audit: total checking=%lld expected=%lld -> %s\n",
              static_cast<long long>(total), static_cast<long long>(expected),
              total == expected ? "PASS" : "FAIL");
  return total == expected ? 0 : 1;
}
