// Quickstart: evaluate one blockchain with Hammer in ~40 lines.
//
//   1. deploy a SUT (Neuchain simulator) from a JSON plan
//   2. generate a SmallBank workload
//   3. run the Hammer driver (async signing pipeline + task-processing
//      algorithm) at a fixed offered rate
//   4. print the run summary and the Table II SQL report
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/deployment.hpp"
#include "core/driver.hpp"
#include "report/run_report.hpp"

using namespace hammer;

int main() {
  // 1. Deployment plan (the Ansible-playbook stand-in).
  json::Value plan = json::Value::parse(R"({
    "chains": [{
      "kind": "neuchain", "name": "demo-chain",
      "block_interval_ms": 50,
      "smallbank_accounts_per_shard": 1000
    }]
  })");
  core::Deployment deployment = core::Deployment::deploy(plan, util::SteadyClock::shared());
  core::DeployedChain& sut = deployment.at("demo-chain");
  std::printf("deployed %s with %zu SmallBank accounts\n", sut.chain->kind().c_str(),
              sut.smallbank_accounts.size());

  // 2. Workload: 5,000 SmallBank transactions (paper §V mix).
  workload::WorkloadProfile profile;
  workload::WorkloadFile wf =
      workload::generate_workload(profile, sut.smallbank_accounts, 5000);

  // 3. Drive it at 1,000 TPS, tracking completion with Algorithm 1.
  auto cache = std::make_shared<kvstore::KvStore>(util::SteadyClock::shared());
  auto db = std::make_shared<minisql::Database>();
  core::DriverOptions options;
  options.worker_threads = 2;
  options.metrics = std::make_shared<core::MetricsPipeline>(cache, db);
  workload::ControlSequence rate = workload::ControlSequence::constant(
      1000.0, std::chrono::seconds(5), std::chrono::milliseconds(100));
  core::HammerDriver driver(sut.make_adapters(2), sut.make_adapters(1)[0],
                            util::SteadyClock::shared(), options);
  core::RunResult result = driver.run(wf, &rate);

  // 4. Results: direct summary + the visualization layer's SQL view.
  std::printf("\n%s\n\n", result.summary().c_str());
  std::printf("%s\n", report::RunReport::build(*options.metrics, "quickstart").rendered.c_str());
  return 0;
}
