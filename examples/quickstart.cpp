// Quickstart: evaluate one blockchain with Hammer in ~60 lines.
//
//   1. deploy a SUT (Neuchain simulator) from a JSON plan
//   2. generate a SmallBank workload
//   3. run the Hammer driver (async signing pipeline + task-processing
//      algorithm) at a fixed offered rate
//   4. print the run summary and the Table II SQL report
//
// With --telemetry <port>, the process additionally serves
// telemetry.metrics / telemetry.snapshot on that port (0 = pick a free
// one) and prints one live snapshot line per second while the run is in
// flight — scrape it mid-run with any JSON-RPC client.
//
// With --faults, the deployment carries a seeded fault plan (transient
// chain.submit rejections + block-production stalls) and the adapters run
// under a retry policy that rides the faults out; the summary then shows
// the retries spent and the injected-fault counts.
//
// With --endpoints N (N > 1), the demo SUT becomes an N-shard Meepo
// exposing N tagged RPC surfaces, and the driver runs the cluster driving
// path (sign -> route -> submit -> detect) across them. --routing picks the
// RoutingPolicy: round_robin | least_inflight | shard. Try
//   ./build/examples/quickstart --endpoints 4 --routing shard
// and watch the per-target split in the summary (shard-affine keeps every
// submission on the endpoint owning its sender's shard).
//
// With --trace-out <path>, the run's distributed trace (driver lifecycle
// lanes + server-side spans, stitched per sampled transaction) is written
// as Chrome trace_event JSON — open it at https://ui.perfetto.dev.
//
// With --rate R, the run is paced by the closed-loop LoadController
// instead of the open-loop replay schedule: submit workers acquire a
// token per transaction from a bucket refilled at R tx/s, and the summary
// reports target vs offered vs achieved rate (DESIGN.md §14).
//
// With --saturate, the demo skips the fixed run and instead ramps a
// rate-paced driver with core::SaturationSearch until the latency knee,
// printing max sustainable TPS and the probe trail — the capacity-planning
// answer for the demo SUT. Combine with --faults to watch the knee drop.
//
// With --tune, the demo instead searches a small deployment knob grid
// (block interval x driver batching) with hammer-tune and prints the
// trials table plus the winning plan — the self-tuning answer to "how
// should I configure this SUT?". See examples/hammer_tune for the full
// tool (custom specs, SLOs, fleet-parallel trials).
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "core/deployment.hpp"
#include "core/driver.hpp"
#include "core/saturation.hpp"
#include "report/resource_monitor.hpp"
#include "report/run_report.hpp"
#include "report/tune_report.hpp"
#include "telemetry/endpoint.hpp"

using namespace hammer;

int main(int argc, char** argv) {
  std::unique_ptr<telemetry::TelemetryEndpoint> endpoint;
  bool with_faults = false;
  std::size_t endpoints = 1;
  core::RoutingKind routing = core::RoutingKind::kRoundRobin;
  std::string trace_out;
  double paced_rate = 0.0;
  bool saturate = false;
  bool tune_demo = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry") == 0 && i + 1 < argc) {
      endpoint = std::make_unique<telemetry::TelemetryEndpoint>(
          static_cast<std::uint16_t>(std::atoi(argv[++i])));
      std::printf("telemetry endpoint on 127.0.0.1:%u (telemetry.metrics / "
                  "telemetry.snapshot)\n",
                  endpoint->port());
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      with_faults = true;
    } else if (std::strcmp(argv[i], "--endpoints") == 0 && i + 1 < argc) {
      endpoints = static_cast<std::size_t>(std::atoi(argv[++i]));
      if (endpoints == 0) endpoints = 1;
    } else if (std::strcmp(argv[i], "--routing") == 0 && i + 1 < argc) {
      routing = core::routing_kind_from_string(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      paced_rate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--saturate") == 0) {
      saturate = true;
    } else if (std::strcmp(argv[i], "--tune") == 0) {
      tune_demo = true;
    }
  }

  // --tune: search a small knob grid for the best demo-SUT plan. Runs
  // before the main deployment — each trial deploys its own candidate SUT.
  if (tune_demo) {
    json::Value doc = json::Value::parse(R"({
      "chain": {
        "kind": "neuchain", "name": "demo-chain",
        "block_interval_ms": 50,
        "smallbank_accounts_per_shard": 1000
      },
      "workload": {"contract": "smallbank", "seed": 1},
      "tune": {
        "strategy": "halving", "width": 4, "eta": 2, "max_rungs": 2,
        "seed": 42, "base_txs": 400, "slo_p99_ms": 400,
        "knobs": {
          "chain.block_interval_ms":  {"values": [20, 80]},
          "driver.worker_threads":    {"values": [1, 4]}
        }
      }
    })");
    double slo_p99_ms = 0.0;
    tune::SearchOptions search_options =
        tune::SearchOptions::from_json(doc.at("tune"), &slo_p99_ms);
    tune::ParamSpace space = tune::ParamSpace::from_json(doc.at("tune").at("knobs"));
    tune::TrialConfig config;
    config.base_chain = doc.at("chain");
    config.profile = workload::WorkloadProfile::from_json(doc.at("workload"));
    config.slo_p99_ms = slo_p99_ms;
    tune::LocalTrialRunner runner(config);
    tune::TuneResult tuned = tune::Search(search_options).run(runner, space);
    report::TuneReport tune_report(search_options, tuned, slo_p99_ms);
    std::printf("%s\nwinning plan:\n%s\n", tune_report.rendered().c_str(),
                tune::plan_json(config.base_chain, tuned.best.assignment).dump(2).c_str());
    return 0;
  }

  // 1. Deployment plan (the Ansible-playbook stand-in). --faults adds a
  // seeded SUT-side fault plan; the deployment installs the injector on the
  // chain (and its TcpServer, if the transport were tcp).
  json::Value plan = json::Value::parse(R"({
    "chains": [{
      "kind": "neuchain", "name": "demo-chain",
      "block_interval_ms": 50,
      "smallbank_accounts_per_shard": 1000
    }]
  })");
  if (endpoints > 1) {
    // Multi-endpoint demo: a sharded SUT (one shard per endpoint) so
    // routing policies have something to be affine TO.
    json::Object& spec = plan.as_object()["chains"].as_array()[0].as_object();
    spec["kind"] = "meepo";
    spec["num_shards"] = static_cast<std::int64_t>(endpoints);
    spec["endpoints"] = static_cast<std::int64_t>(endpoints);
    std::printf("cluster mode: %zu-shard meepo behind %zu RPC endpoints, routing=%s\n",
                endpoints, endpoints, core::to_string(routing));
  }
  if (with_faults) {
    plan.as_object()["chains"].as_array()[0].as_object()["faults"] = json::Value::parse(
        R"({"seed": 9, "submit_reject_p": 0.02, "block_stall_p": 0.1, "block_stall_ms": 30})");
    std::printf("fault injection armed: 2%% transient submit rejections, 10%% block stalls\n");
  }
  core::Deployment deployment = core::Deployment::deploy(plan, util::SteadyClock::shared());
  core::DeployedChain& sut = deployment.at("demo-chain");
  std::printf("deployed %s with %zu SmallBank accounts\n", sut.chain->kind().c_str(),
              sut.smallbank_accounts.size());

  // --saturate: skip the fixed run; ramp a rate-paced driver until the
  // latency knee and print the capacity-planning answer.
  if (saturate) {
    core::SaturationOptions sat;
    sat.start_rate = 250.0;
    sat.growth = 2.0;
    sat.max_rate = 8000.0;
    // Short probes leave the commit+detection tail visible in the achieved
    // rate; 0.75 tolerates it while still catching a genuine collapse. The
    // absolute deliver floor backstops the case where offered and achieved
    // sag together.
    sat.sustain_fraction = 0.75;
    sat.deliver_fraction = 0.7;
    sat.seed = 42;
    core::SaturationSearch search(sat);
    core::SaturationResult found = search.run([&](double rate, std::uint64_t seed) {
      workload::WorkloadProfile profile;
      profile.seed = seed;
      profile.op_mix = {{"send_payment", 1.0}};
      auto txs = static_cast<std::size_t>(2.0 * rate < 4000.0 ? 2.0 * rate : 4000.0);
      workload::WorkloadFile wf =
          workload::generate_workload(profile, sut.smallbank_accounts, txs);
      core::DriverOptions probe_options;
      probe_options.worker_threads = 2;
      probe_options.target_rate = rate;
      // Small burst: a big instant prefix would inflate the offered-rate
      // window on these short probes.
      probe_options.rate_burst = 8.0;
      probe_options.load_seed = seed;
      core::HammerDriver probe_driver(sut.make_adapters(2), sut.make_adapters(1)[0],
                                      util::SteadyClock::shared(), probe_options);
      return probe_driver.run(wf, nullptr);
    });
    for (const core::SaturationProbe& probe : found.probes) {
      std::printf("  probe %7.0f tx/s: offered %7.0f achieved %7.0f p99 %7.2f ms%s\n",
                  probe.target, probe.offered, probe.achieved, probe.p99_ms,
                  probe.saturated ? "  <- saturated" : "");
    }
    if (found.found_knee) {
      std::printf("max sustainable: %.0f tx/s (degrades to %.0f committed tx/s past the "
                  "knee; base p99 %.2f ms)\n",
                  found.max_sustainable_tps, found.achieved_at_knee, found.base_p99_ms);
    } else {
      std::printf("no knee up to %.0f tx/s — the demo SUT outruns this grid\n", sat.max_rate);
    }
    return 0;
  }

  // 2. Workload: 5,000 SmallBank transactions (paper §V mix).
  workload::WorkloadProfile profile;
  workload::WorkloadFile wf =
      workload::generate_workload(profile, sut.smallbank_accounts, 5000);

  // 3. Drive it at 1,000 TPS, tracking completion with Algorithm 1. Every
  // 8th transaction is lifecycle-traced so the summary carries a per-stage
  // (sign/queue/submit/include/detect) latency breakdown.
  auto cache = std::make_shared<kvstore::KvStore>(util::SteadyClock::shared());
  auto db = std::make_shared<minisql::Database>();
  core::DriverOptions options;
  options.worker_threads = 2;
  options.trace_every_n = 8;
  // 1-in-8 sampling keeps the demo's Perfetto export well under 10 MB.
  options.trace_export_path = trace_out;
  // Write-behind: completed records stream cache -> SQL on a background
  // committer during the run instead of a run-end bulk scan.
  core::MetricsOptions metrics_options;
  metrics_options.write_behind = true;
  metrics_options.pending_ttl = std::chrono::minutes(5);
  options.metrics = std::make_shared<core::MetricsPipeline>(cache, db, metrics_options);
  workload::ControlSequence rate = workload::ControlSequence::constant(
      1000.0, std::chrono::seconds(5), std::chrono::milliseconds(100));
  // --rate: closed-loop pacing through the LoadController instead of the
  // open-loop replay schedule (both paths share the same accounting).
  const workload::ControlSequence* rate_plan = &rate;
  if (paced_rate > 0.0) {
    options.target_rate = paced_rate;
    rate_plan = nullptr;
    std::printf("closed-loop pacing at %.0f tx/s (token bucket, burst %.0f)\n", paced_rate,
                options.rate_burst);
  }
  // Under --faults the adapters retry transient rejections with seeded
  // exponential backoff instead of counting them as failures.
  rpc::ClientConfig adapter_config;
  if (with_faults) {
    adapter_config.retry = rpc::RetryPolicy::standard(4);
    adapter_config.retry.on_rejected = true;
    options.fault_injector = sut.fault_injector;
  }
  options.routing = routing;
  if (endpoints > 1) options.worker_threads = endpoints;  // one submit worker per target
  std::shared_ptr<core::SutCluster> cluster =
      endpoints > 1
          ? sut.make_cluster(/*workers_per_target=*/1, /*channels_per_target=*/1,
                             adapter_config)
          : core::SutCluster::single(sut.make_adapters(2, adapter_config),
                                     sut.make_adapters(1)[0]);
  core::HammerDriver driver(cluster, util::SteadyClock::shared(), options);

  // Live view while the run is in flight: one snapshot line per second from
  // the same registry the telemetry endpoint scrapes.
  report::ResourceMonitor monitor;
  std::atomic<bool> running{true};
  std::thread live([&running] {
    telemetry::MetricRegistry& reg = telemetry::MetricRegistry::global();
    telemetry::Counter& submitted = reg.counter("hammer_driver_submitted_total");
    telemetry::Counter& completed = reg.counter("hammer_driver_completed_total");
    telemetry::Gauge& inflight = reg.gauge("hammer_driver_inflight");
    telemetry::Counter& blocks = reg.counter("hammer_chain_blocks_sealed_total");
    while (running.load()) {
      std::this_thread::sleep_for(std::chrono::seconds(1));
      if (!running.load()) break;
      std::printf("[live] submitted=%llu completed=%llu inflight=%lld blocks=%llu\n",
                  static_cast<unsigned long long>(submitted.value()),
                  static_cast<unsigned long long>(completed.value()),
                  static_cast<long long>(inflight.value()),
                  static_cast<unsigned long long>(blocks.value()));
    }
  });
  core::RunResult result = driver.run(wf, rate_plan);
  running.store(false);
  live.join();
  monitor.stop();

  // 4. Results: direct summary + the visualization layer's SQL view, with
  // the client's resource series folded into the report.
  std::printf("\n%s\n\n", result.summary().c_str());
  report::RunReport report = report::RunReport::build(*options.metrics, "quickstart", &monitor,
                                                      &result.stages);
  std::printf("%s\n", report.rendered.c_str());
  if (!result.stages.is_null()) {
    std::printf("stage breakdown: %s\n", result.stages.dump().c_str());
  }
  if (!trace_out.empty()) {
    std::printf("trace timeline written to %s (open at https://ui.perfetto.dev)\n",
                trace_out.c_str());
  }
  if (endpoints > 1 && !result.targets.is_null()) {
    std::printf("per-target split: %s\n", result.targets.dump().c_str());
  }
  if (!result.faults.is_null()) {
    std::printf("injected faults: %s (retries spent riding them out: %llu)\n",
                result.faults.dump().c_str(),
                static_cast<unsigned long long>(result.retries));
  }
  return 0;
}
