// hammer-tune: self-tuning deployment plans (DESIGN.md §15).
//
// Declares a knob grid over the chain spec and the driver options, then
// searches it for the plan with the highest TPS whose p99 stays under the
// latency SLO. The default spec tunes the demo meepo SUT's block interval,
// batching and worker count with successive halving; pass --spec for your
// own document:
//
//   {
//     "chain":    { "kind": "meepo", "num_shards": 2, ... },
//     "workload": { "contract": "smallbank", "seed": 1, ... },
//     "tune": {
//       "strategy": "halving",          // or "random"
//       "width": 8, "eta": 2, "max_rungs": 3,
//       "seed": 42, "base_txs": 400, "slo_p99_ms": 250,
//       "knobs": {
//         "chain.max_block_txs":       {"values": [128, 512]},
//         "driver.worker_threads":     {"values": [1, 2, 4]},
//         "driver.submit_batch_size":  {"range": [1, 64], "steps": 4, "scale": "log"}
//       }
//     }
//   }
//
// Knobs are validated against the deployment's own spec-key surface — a
// knob the deployment would reject fails the parse by name, before any
// trial runs. Trial k runs at seed derive_seed(master, k), so one master
// seed replays the whole search.
//
// Flags:
//   --spec <file>       tune document (default: built-in demo spec)
//   --emit-plan <file>  write the winning deployment plan JSON here
//   --trials-csv <file> full trials record (default bench_results/tune_trials.csv)
//   --canonical-csv <f> deterministic projection (decision record, no wall-clock)
//   --fleet N           evaluate trials on N spawned worker processes
//   --worker-bin <path> worker binary for --fleet (default: hammer_worker
//                       beside this binary)
//   --seed S            override the master seed
//
// Build & run:  cmake --build build && ./build/examples/hammer_tune
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "report/tune_report.hpp"
#include "tune/search.hpp"
#include "util/errors.hpp"

using namespace hammer;

namespace {

const char* kDefaultSpec = R"({
  "chain": {
    "kind": "meepo", "name": "tune-sut",
    "num_shards": 2,
    "block_interval_ms": 20,
    "smallbank_accounts_per_shard": 500
  },
  "workload": {"contract": "smallbank", "seed": 1},
  "tune": {
    "strategy": "halving",
    "width": 6, "eta": 2, "max_rungs": 3,
    "seed": 42, "base_txs": 300, "slo_p99_ms": 500,
    "knobs": {
      "chain.max_block_txs":      {"values": [128, 1024]},
      "driver.worker_threads":    {"values": [1, 2, 4]},
      "driver.submit_batch_size": {"values": [1, 8]}
    }
  }
})";

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw hammer::Error("cannot read tune spec '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string sibling_binary(const char* argv0, const std::string& name) {
  std::string self(argv0);
  std::size_t slash = self.rfind('/');
  if (slash == std::string::npos) return name;
  return self.substr(0, slash + 1) + name;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path, emit_plan, canonical_csv;
  std::string trials_csv = "bench_results/tune_trials.csv";
  std::string worker_bin = sibling_binary(argv[0], "hammer_worker");
  std::size_t fleet = 0;
  std::int64_t seed_override = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--spec") == 0 && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (std::strcmp(argv[i], "--emit-plan") == 0 && i + 1 < argc) {
      emit_plan = argv[++i];
    } else if (std::strcmp(argv[i], "--trials-csv") == 0 && i + 1 < argc) {
      trials_csv = argv[++i];
    } else if (std::strcmp(argv[i], "--canonical-csv") == 0 && i + 1 < argc) {
      canonical_csv = argv[++i];
    } else if (std::strcmp(argv[i], "--fleet") == 0 && i + 1 < argc) {
      fleet = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--worker-bin") == 0 && i + 1 < argc) {
      worker_bin = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed_override = std::atoll(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }

  json::Value doc =
      json::Value::parse(spec_path.empty() ? std::string(kDefaultSpec) : read_file(spec_path));
  const json::Value& tune_obj = doc.at("tune");

  double slo_p99_ms = 1e9;
  tune::SearchOptions options = tune::SearchOptions::from_json(tune_obj, &slo_p99_ms);
  if (seed_override >= 0) options.seed = static_cast<std::uint64_t>(seed_override);
  tune::ParamSpace space = tune::ParamSpace::from_json(tune_obj.at("knobs"));

  tune::TrialConfig config;
  config.base_chain = doc.at("chain");
  config.profile = workload::WorkloadProfile::from_json(doc.at("workload"));
  config.slo_p99_ms = slo_p99_ms;

  std::printf("tuning %zu-knob space (%zu plans) with %s search, master seed %llu%s\n",
              space.axes().size(), space.size(), tune::strategy_name(options.strategy).c_str(),
              static_cast<unsigned long long>(options.seed),
              fleet > 0 ? (", fleet of " + std::to_string(fleet) + " workers").c_str() : "");

  std::unique_ptr<tune::TrialRunner> runner;
  if (fleet > 0) {
    runner = std::make_unique<tune::FleetTrialRunner>(config, worker_bin, fleet);
  } else {
    runner = std::make_unique<tune::LocalTrialRunner>(config);
  }
  tune::Search search(options);
  tune::TuneResult result = search.run(*runner, space);

  report::TuneReport report(options, result, slo_p99_ms);
  std::printf("\n%s\n", report.rendered().c_str());

  if (trials_csv.find('/') != std::string::npos) {
    std::filesystem::create_directories(
        std::filesystem::path(trials_csv).parent_path());
  }
  report.to_csv().save(trials_csv);
  std::printf("trials written to %s\n", trials_csv.c_str());
  if (!canonical_csv.empty()) {
    report.canonical_csv().save(canonical_csv);
    std::printf("canonical projection written to %s\n", canonical_csv.c_str());
  }

  json::Value best_plan = tune::plan_json(config.base_chain, result.best.assignment);
  if (!emit_plan.empty()) {
    std::ofstream out(emit_plan);
    out << best_plan.dump(2) << "\n";
    std::printf("best plan written to %s\n", emit_plan.c_str());
  } else {
    std::printf("best plan:\n%s\n", best_plan.dump(2).c_str());
  }
  return result.best.feasible ? 0 : 1;
}
