// Multi-chain comparison: the Fig. 6 story as an application.
//
// Deploys all four supported architectures side by side — including the
// sharded Meepo that no baseline framework can evaluate — and reports each
// one's throughput and latency under the same SmallBank workload through
// the same generic RPC adapter interface.
#include <cstdio>

#include "core/deployment.hpp"
#include "core/driver.hpp"
#include "report/ascii_chart.hpp"

using namespace hammer;

int main() {
  json::Value plan = json::Value::parse(R"({
    "chains": [
      {"kind": "ethereum", "name": "ethereum", "block_interval_ms": 500,
       "hash_rate": 400000, "max_block_txs": 100, "smallbank_accounts_per_shard": 500},
      {"kind": "fabric", "name": "fabric", "block_interval_ms": 100,
       "commit_cost_us": 2000, "smallbank_accounts_per_shard": 500},
      {"kind": "neuchain", "name": "neuchain", "block_interval_ms": 50,
       "max_block_txs": 2000, "smallbank_accounts_per_shard": 500},
      {"kind": "meepo", "name": "meepo", "num_shards": 2, "block_interval_ms": 80,
       "commit_cost_us": 700, "smallbank_accounts_per_shard": 500}
    ]
  })");
  core::Deployment deployment = core::Deployment::deploy(plan, util::SteadyClock::shared());

  std::vector<std::pair<std::string, double>> tps_bars;
  for (const std::string& name : deployment.names()) {
    core::DeployedChain& sut = deployment.at(name);
    workload::WorkloadProfile profile;
    std::size_t txs = name == "ethereum" ? 150 : 3000;
    workload::WorkloadFile wf =
        workload::generate_workload(profile, sut.smallbank_accounts, txs);
    core::DriverOptions options;
    options.worker_threads = 2;
    options.drain_timeout = std::chrono::seconds(30);
    core::HammerDriver driver(sut.make_adapters(2), sut.make_adapters(1)[0],
                              util::SteadyClock::shared(), options);
    core::RunResult result = driver.run(wf, nullptr);
    std::printf("%-9s (%u shard%s): tps=%9.1f latency=%8.1fms committed=%llu/%zu\n",
                name.c_str(), sut.chain->num_shards(), sut.chain->num_shards() > 1 ? "s" : "",
                result.tps, result.latency.mean() / 1000.0,
                static_cast<unsigned long long>(result.committed), txs);
    tps_bars.emplace_back(name, result.tps);
  }
  std::printf("\n%s", report::bar_chart("SmallBank throughput by architecture", tps_bars).c_str());
  return 0;
}
