// hammer-worker: one member of a distributed driver fleet.
//
// Serves the control-plane API (control.* / telemetry.* / rpc.api) on
// --port (default: pick a free one) and prints the handshake line
//
//   HAMMER_WORKER_PORT=<port>
//
// to stdout so a spawning coordinator (core::WorkerProcess) can find it.
// Then it follows orders: a coordinator deploys this worker's workload
// shard, starts the run, polls progress, collects the report, and finally
// control.stop lets the process exit.
//
// Run two by hand and drive them with hammer_coordinator:
//   ./build/examples/hammer_worker --port 9101 &
//   ./build/examples/hammer_worker --port 9102 &
//   ./build/examples/hammer_coordinator --workers 9101,9102
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/worker_session.hpp"

using namespace hammer;

int main(int argc, char** argv) {
  core::WorkerSessionOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      options.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--rpc-workers") == 0 && i + 1 < argc) {
      options.rpc_workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    }
  }
  core::WorkerSession session(options);
  // The handshake goes to stdout (and ONLY this — logs go to stderr), so a
  // parent process reading the pipe finds the port without races.
  std::printf("HAMMER_WORKER_PORT=%u\n", session.port());
  std::fflush(stdout);
  session.serve();
  return 0;
}
