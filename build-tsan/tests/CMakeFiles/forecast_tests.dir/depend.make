# Empty dependencies file for forecast_tests.
# This may be replaced when dependencies are built.
