file(REMOVE_RECURSE
  "CMakeFiles/forecast_tests.dir/forecast/dataset_test.cpp.o"
  "CMakeFiles/forecast_tests.dir/forecast/dataset_test.cpp.o.d"
  "CMakeFiles/forecast_tests.dir/forecast/layers_test.cpp.o"
  "CMakeFiles/forecast_tests.dir/forecast/layers_test.cpp.o.d"
  "CMakeFiles/forecast_tests.dir/forecast/tensor_test.cpp.o"
  "CMakeFiles/forecast_tests.dir/forecast/tensor_test.cpp.o.d"
  "CMakeFiles/forecast_tests.dir/forecast/train_test.cpp.o"
  "CMakeFiles/forecast_tests.dir/forecast/train_test.cpp.o.d"
  "forecast_tests"
  "forecast_tests.pdb"
  "forecast_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
