# Empty compiler generated dependencies file for adapters_tests.
# This may be replaced when dependencies are built.
