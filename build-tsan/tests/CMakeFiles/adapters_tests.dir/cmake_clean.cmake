file(REMOVE_RECURSE
  "CMakeFiles/adapters_tests.dir/adapters/chain_adapter_test.cpp.o"
  "CMakeFiles/adapters_tests.dir/adapters/chain_adapter_test.cpp.o.d"
  "adapters_tests"
  "adapters_tests.pdb"
  "adapters_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapters_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
