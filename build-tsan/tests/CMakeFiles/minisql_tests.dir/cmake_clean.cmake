file(REMOVE_RECURSE
  "CMakeFiles/minisql_tests.dir/minisql/executor_test.cpp.o"
  "CMakeFiles/minisql_tests.dir/minisql/executor_test.cpp.o.d"
  "CMakeFiles/minisql_tests.dir/minisql/parser_test.cpp.o"
  "CMakeFiles/minisql_tests.dir/minisql/parser_test.cpp.o.d"
  "minisql_tests"
  "minisql_tests.pdb"
  "minisql_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minisql_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
