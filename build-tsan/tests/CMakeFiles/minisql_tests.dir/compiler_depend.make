# Empty compiler generated dependencies file for minisql_tests.
# This may be replaced when dependencies are built.
