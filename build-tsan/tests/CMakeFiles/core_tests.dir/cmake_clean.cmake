file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/baselines_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/baselines_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/bloom_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/bloom_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/deployment_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/deployment_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/driver_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/driver_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/hash_index_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/hash_index_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/metrics_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/metrics_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/signing_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/signing_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/task_processor_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/task_processor_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
