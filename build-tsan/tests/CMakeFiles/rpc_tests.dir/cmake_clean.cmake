file(REMOVE_RECURSE
  "CMakeFiles/rpc_tests.dir/rpc/jsonrpc_test.cpp.o"
  "CMakeFiles/rpc_tests.dir/rpc/jsonrpc_test.cpp.o.d"
  "CMakeFiles/rpc_tests.dir/rpc/tcp_test.cpp.o"
  "CMakeFiles/rpc_tests.dir/rpc/tcp_test.cpp.o.d"
  "rpc_tests"
  "rpc_tests.pdb"
  "rpc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
