file(REMOVE_RECURSE
  "CMakeFiles/tcp_peak_probe_smoke.dir/smoke/tcp_peak_probe_smoke.cpp.o"
  "CMakeFiles/tcp_peak_probe_smoke.dir/smoke/tcp_peak_probe_smoke.cpp.o.d"
  "tcp_peak_probe_smoke"
  "tcp_peak_probe_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_peak_probe_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
