# Empty compiler generated dependencies file for tcp_peak_probe_smoke.
# This may be replaced when dependencies are built.
