# Empty dependencies file for telemetry_scrape_smoke.
# This may be replaced when dependencies are built.
