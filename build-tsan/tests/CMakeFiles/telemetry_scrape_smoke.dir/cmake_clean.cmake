file(REMOVE_RECURSE
  "CMakeFiles/telemetry_scrape_smoke.dir/smoke/telemetry_scrape_smoke.cpp.o"
  "CMakeFiles/telemetry_scrape_smoke.dir/smoke/telemetry_scrape_smoke.cpp.o.d"
  "telemetry_scrape_smoke"
  "telemetry_scrape_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_scrape_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
