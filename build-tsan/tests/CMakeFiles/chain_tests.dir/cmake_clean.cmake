file(REMOVE_RECURSE
  "CMakeFiles/chain_tests.dir/chain/contracts_test.cpp.o"
  "CMakeFiles/chain_tests.dir/chain/contracts_test.cpp.o.d"
  "CMakeFiles/chain_tests.dir/chain/ethereum_test.cpp.o"
  "CMakeFiles/chain_tests.dir/chain/ethereum_test.cpp.o.d"
  "CMakeFiles/chain_tests.dir/chain/fabric_test.cpp.o"
  "CMakeFiles/chain_tests.dir/chain/fabric_test.cpp.o.d"
  "CMakeFiles/chain_tests.dir/chain/meepo_test.cpp.o"
  "CMakeFiles/chain_tests.dir/chain/meepo_test.cpp.o.d"
  "CMakeFiles/chain_tests.dir/chain/neuchain_test.cpp.o"
  "CMakeFiles/chain_tests.dir/chain/neuchain_test.cpp.o.d"
  "CMakeFiles/chain_tests.dir/chain/state_test.cpp.o"
  "CMakeFiles/chain_tests.dir/chain/state_test.cpp.o.d"
  "CMakeFiles/chain_tests.dir/chain/txpool_test.cpp.o"
  "CMakeFiles/chain_tests.dir/chain/txpool_test.cpp.o.d"
  "CMakeFiles/chain_tests.dir/chain/types_test.cpp.o"
  "CMakeFiles/chain_tests.dir/chain/types_test.cpp.o.d"
  "chain_tests"
  "chain_tests.pdb"
  "chain_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
