file(REMOVE_RECURSE
  "CMakeFiles/report_tests.dir/report/ascii_chart_test.cpp.o"
  "CMakeFiles/report_tests.dir/report/ascii_chart_test.cpp.o.d"
  "CMakeFiles/report_tests.dir/report/csv_test.cpp.o"
  "CMakeFiles/report_tests.dir/report/csv_test.cpp.o.d"
  "CMakeFiles/report_tests.dir/report/resource_monitor_test.cpp.o"
  "CMakeFiles/report_tests.dir/report/resource_monitor_test.cpp.o.d"
  "CMakeFiles/report_tests.dir/report/run_report_test.cpp.o"
  "CMakeFiles/report_tests.dir/report/run_report_test.cpp.o.d"
  "report_tests"
  "report_tests.pdb"
  "report_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
