# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/util_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/json_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/crypto_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/kvstore_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/minisql_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/telemetry_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/rpc_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/chain_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/adapters_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/workload_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/core_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/report_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/forecast_tests[1]_include.cmake")
add_test(smoke.tcp_peak_probe "/root/repo/build-tsan/tests/tcp_peak_probe_smoke")
set_tests_properties(smoke.tcp_peak_probe PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;100;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smoke.telemetry_scrape "/root/repo/build-tsan/tests/telemetry_scrape_smoke")
set_tests_properties(smoke.telemetry_scrape PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;109;add_test;/root/repo/tests/CMakeLists.txt;0;")
