file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_taskproc.dir/bench_fig9_taskproc.cpp.o"
  "CMakeFiles/bench_fig9_taskproc.dir/bench_fig9_taskproc.cpp.o.d"
  "bench_fig9_taskproc"
  "bench_fig9_taskproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_taskproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
