# Empty dependencies file for bench_fig9_taskproc.
# This may be replaced when dependencies are built.
