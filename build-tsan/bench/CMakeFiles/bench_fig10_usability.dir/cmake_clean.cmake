file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_usability.dir/bench_fig10_usability.cpp.o"
  "CMakeFiles/bench_fig10_usability.dir/bench_fig10_usability.cpp.o.d"
  "bench_fig10_usability"
  "bench_fig10_usability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_usability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
