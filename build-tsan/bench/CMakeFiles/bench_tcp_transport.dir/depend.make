# Empty dependencies file for bench_tcp_transport.
# This may be replaced when dependencies are built.
