file(REMOVE_RECURSE
  "CMakeFiles/bench_tcp_transport.dir/bench_tcp_transport.cpp.o"
  "CMakeFiles/bench_tcp_transport.dir/bench_tcp_transport.cpp.o.d"
  "bench_tcp_transport"
  "bench_tcp_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tcp_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
