# Empty dependencies file for bench_fig8_pipeline.
# This may be replaced when dependencies are built.
