file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_frameworks.dir/bench_fig7_frameworks.cpp.o"
  "CMakeFiles/bench_fig7_frameworks.dir/bench_fig7_frameworks.cpp.o.d"
  "bench_fig7_frameworks"
  "bench_fig7_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
