file(REMOVE_RECURSE
  "libhammer_core.a"
)
