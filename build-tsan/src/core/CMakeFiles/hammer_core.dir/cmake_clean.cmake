file(REMOVE_RECURSE
  "CMakeFiles/hammer_core.dir/baselines.cpp.o"
  "CMakeFiles/hammer_core.dir/baselines.cpp.o.d"
  "CMakeFiles/hammer_core.dir/bloom.cpp.o"
  "CMakeFiles/hammer_core.dir/bloom.cpp.o.d"
  "CMakeFiles/hammer_core.dir/deployment.cpp.o"
  "CMakeFiles/hammer_core.dir/deployment.cpp.o.d"
  "CMakeFiles/hammer_core.dir/driver.cpp.o"
  "CMakeFiles/hammer_core.dir/driver.cpp.o.d"
  "CMakeFiles/hammer_core.dir/hash_index.cpp.o"
  "CMakeFiles/hammer_core.dir/hash_index.cpp.o.d"
  "CMakeFiles/hammer_core.dir/metrics.cpp.o"
  "CMakeFiles/hammer_core.dir/metrics.cpp.o.d"
  "CMakeFiles/hammer_core.dir/signing.cpp.o"
  "CMakeFiles/hammer_core.dir/signing.cpp.o.d"
  "CMakeFiles/hammer_core.dir/task_processor.cpp.o"
  "CMakeFiles/hammer_core.dir/task_processor.cpp.o.d"
  "libhammer_core.a"
  "libhammer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hammer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
