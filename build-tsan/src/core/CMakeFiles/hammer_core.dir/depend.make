# Empty dependencies file for hammer_core.
# This may be replaced when dependencies are built.
