# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("json")
subdirs("crypto")
subdirs("kvstore")
subdirs("minisql")
subdirs("telemetry")
subdirs("rpc")
subdirs("chain")
subdirs("adapters")
subdirs("workload")
subdirs("forecast")
subdirs("core")
subdirs("report")
