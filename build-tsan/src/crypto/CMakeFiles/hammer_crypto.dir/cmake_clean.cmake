file(REMOVE_RECURSE
  "CMakeFiles/hammer_crypto.dir/merkle.cpp.o"
  "CMakeFiles/hammer_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/hammer_crypto.dir/schnorr.cpp.o"
  "CMakeFiles/hammer_crypto.dir/schnorr.cpp.o.d"
  "CMakeFiles/hammer_crypto.dir/sha256.cpp.o"
  "CMakeFiles/hammer_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/hammer_crypto.dir/u256.cpp.o"
  "CMakeFiles/hammer_crypto.dir/u256.cpp.o.d"
  "libhammer_crypto.a"
  "libhammer_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hammer_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
