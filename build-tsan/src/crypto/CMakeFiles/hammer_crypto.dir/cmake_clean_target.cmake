file(REMOVE_RECURSE
  "libhammer_crypto.a"
)
