# Empty dependencies file for hammer_crypto.
# This may be replaced when dependencies are built.
