# Empty dependencies file for hammer_json.
# This may be replaced when dependencies are built.
