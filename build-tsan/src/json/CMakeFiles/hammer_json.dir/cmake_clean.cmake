file(REMOVE_RECURSE
  "CMakeFiles/hammer_json.dir/json.cpp.o"
  "CMakeFiles/hammer_json.dir/json.cpp.o.d"
  "libhammer_json.a"
  "libhammer_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hammer_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
