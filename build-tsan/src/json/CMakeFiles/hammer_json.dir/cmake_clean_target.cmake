file(REMOVE_RECURSE
  "libhammer_json.a"
)
