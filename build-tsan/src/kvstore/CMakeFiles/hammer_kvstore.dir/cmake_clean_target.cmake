file(REMOVE_RECURSE
  "libhammer_kvstore.a"
)
