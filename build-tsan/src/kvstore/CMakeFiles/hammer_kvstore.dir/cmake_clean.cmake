file(REMOVE_RECURSE
  "CMakeFiles/hammer_kvstore.dir/kvstore.cpp.o"
  "CMakeFiles/hammer_kvstore.dir/kvstore.cpp.o.d"
  "libhammer_kvstore.a"
  "libhammer_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hammer_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
