# Empty dependencies file for hammer_kvstore.
# This may be replaced when dependencies are built.
