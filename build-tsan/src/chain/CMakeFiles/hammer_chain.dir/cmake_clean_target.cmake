file(REMOVE_RECURSE
  "libhammer_chain.a"
)
