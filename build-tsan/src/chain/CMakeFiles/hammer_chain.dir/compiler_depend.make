# Empty compiler generated dependencies file for hammer_chain.
# This may be replaced when dependencies are built.
