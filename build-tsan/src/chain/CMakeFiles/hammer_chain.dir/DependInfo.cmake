
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/blockchain.cpp" "src/chain/CMakeFiles/hammer_chain.dir/blockchain.cpp.o" "gcc" "src/chain/CMakeFiles/hammer_chain.dir/blockchain.cpp.o.d"
  "/root/repo/src/chain/contracts.cpp" "src/chain/CMakeFiles/hammer_chain.dir/contracts.cpp.o" "gcc" "src/chain/CMakeFiles/hammer_chain.dir/contracts.cpp.o.d"
  "/root/repo/src/chain/ethereum_sim.cpp" "src/chain/CMakeFiles/hammer_chain.dir/ethereum_sim.cpp.o" "gcc" "src/chain/CMakeFiles/hammer_chain.dir/ethereum_sim.cpp.o.d"
  "/root/repo/src/chain/fabric_sim.cpp" "src/chain/CMakeFiles/hammer_chain.dir/fabric_sim.cpp.o" "gcc" "src/chain/CMakeFiles/hammer_chain.dir/fabric_sim.cpp.o.d"
  "/root/repo/src/chain/factory.cpp" "src/chain/CMakeFiles/hammer_chain.dir/factory.cpp.o" "gcc" "src/chain/CMakeFiles/hammer_chain.dir/factory.cpp.o.d"
  "/root/repo/src/chain/meepo_sim.cpp" "src/chain/CMakeFiles/hammer_chain.dir/meepo_sim.cpp.o" "gcc" "src/chain/CMakeFiles/hammer_chain.dir/meepo_sim.cpp.o.d"
  "/root/repo/src/chain/neuchain_sim.cpp" "src/chain/CMakeFiles/hammer_chain.dir/neuchain_sim.cpp.o" "gcc" "src/chain/CMakeFiles/hammer_chain.dir/neuchain_sim.cpp.o.d"
  "/root/repo/src/chain/state.cpp" "src/chain/CMakeFiles/hammer_chain.dir/state.cpp.o" "gcc" "src/chain/CMakeFiles/hammer_chain.dir/state.cpp.o.d"
  "/root/repo/src/chain/txpool.cpp" "src/chain/CMakeFiles/hammer_chain.dir/txpool.cpp.o" "gcc" "src/chain/CMakeFiles/hammer_chain.dir/txpool.cpp.o.d"
  "/root/repo/src/chain/types.cpp" "src/chain/CMakeFiles/hammer_chain.dir/types.cpp.o" "gcc" "src/chain/CMakeFiles/hammer_chain.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/crypto/CMakeFiles/hammer_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/json/CMakeFiles/hammer_json.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rpc/CMakeFiles/hammer_rpc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/telemetry/CMakeFiles/hammer_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/hammer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
