file(REMOVE_RECURSE
  "CMakeFiles/hammer_chain.dir/blockchain.cpp.o"
  "CMakeFiles/hammer_chain.dir/blockchain.cpp.o.d"
  "CMakeFiles/hammer_chain.dir/contracts.cpp.o"
  "CMakeFiles/hammer_chain.dir/contracts.cpp.o.d"
  "CMakeFiles/hammer_chain.dir/ethereum_sim.cpp.o"
  "CMakeFiles/hammer_chain.dir/ethereum_sim.cpp.o.d"
  "CMakeFiles/hammer_chain.dir/fabric_sim.cpp.o"
  "CMakeFiles/hammer_chain.dir/fabric_sim.cpp.o.d"
  "CMakeFiles/hammer_chain.dir/factory.cpp.o"
  "CMakeFiles/hammer_chain.dir/factory.cpp.o.d"
  "CMakeFiles/hammer_chain.dir/meepo_sim.cpp.o"
  "CMakeFiles/hammer_chain.dir/meepo_sim.cpp.o.d"
  "CMakeFiles/hammer_chain.dir/neuchain_sim.cpp.o"
  "CMakeFiles/hammer_chain.dir/neuchain_sim.cpp.o.d"
  "CMakeFiles/hammer_chain.dir/state.cpp.o"
  "CMakeFiles/hammer_chain.dir/state.cpp.o.d"
  "CMakeFiles/hammer_chain.dir/txpool.cpp.o"
  "CMakeFiles/hammer_chain.dir/txpool.cpp.o.d"
  "CMakeFiles/hammer_chain.dir/types.cpp.o"
  "CMakeFiles/hammer_chain.dir/types.cpp.o.d"
  "libhammer_chain.a"
  "libhammer_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hammer_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
