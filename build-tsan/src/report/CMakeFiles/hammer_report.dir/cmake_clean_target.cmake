file(REMOVE_RECURSE
  "libhammer_report.a"
)
