file(REMOVE_RECURSE
  "CMakeFiles/hammer_report.dir/ascii_chart.cpp.o"
  "CMakeFiles/hammer_report.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/hammer_report.dir/csv.cpp.o"
  "CMakeFiles/hammer_report.dir/csv.cpp.o.d"
  "CMakeFiles/hammer_report.dir/resource_monitor.cpp.o"
  "CMakeFiles/hammer_report.dir/resource_monitor.cpp.o.d"
  "CMakeFiles/hammer_report.dir/run_report.cpp.o"
  "CMakeFiles/hammer_report.dir/run_report.cpp.o.d"
  "libhammer_report.a"
  "libhammer_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hammer_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
