# Empty dependencies file for hammer_report.
# This may be replaced when dependencies are built.
