# Empty compiler generated dependencies file for hammer_forecast.
# This may be replaced when dependencies are built.
