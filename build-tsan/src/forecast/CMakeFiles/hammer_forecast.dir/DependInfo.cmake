
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forecast/dataset.cpp" "src/forecast/CMakeFiles/hammer_forecast.dir/dataset.cpp.o" "gcc" "src/forecast/CMakeFiles/hammer_forecast.dir/dataset.cpp.o.d"
  "/root/repo/src/forecast/layers.cpp" "src/forecast/CMakeFiles/hammer_forecast.dir/layers.cpp.o" "gcc" "src/forecast/CMakeFiles/hammer_forecast.dir/layers.cpp.o.d"
  "/root/repo/src/forecast/models.cpp" "src/forecast/CMakeFiles/hammer_forecast.dir/models.cpp.o" "gcc" "src/forecast/CMakeFiles/hammer_forecast.dir/models.cpp.o.d"
  "/root/repo/src/forecast/optim.cpp" "src/forecast/CMakeFiles/hammer_forecast.dir/optim.cpp.o" "gcc" "src/forecast/CMakeFiles/hammer_forecast.dir/optim.cpp.o.d"
  "/root/repo/src/forecast/tensor.cpp" "src/forecast/CMakeFiles/hammer_forecast.dir/tensor.cpp.o" "gcc" "src/forecast/CMakeFiles/hammer_forecast.dir/tensor.cpp.o.d"
  "/root/repo/src/forecast/train.cpp" "src/forecast/CMakeFiles/hammer_forecast.dir/train.cpp.o" "gcc" "src/forecast/CMakeFiles/hammer_forecast.dir/train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/hammer_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/hammer_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/chain/CMakeFiles/hammer_chain.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/hammer_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rpc/CMakeFiles/hammer_rpc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/telemetry/CMakeFiles/hammer_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/json/CMakeFiles/hammer_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
