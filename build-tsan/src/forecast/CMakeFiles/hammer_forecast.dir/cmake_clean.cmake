file(REMOVE_RECURSE
  "CMakeFiles/hammer_forecast.dir/dataset.cpp.o"
  "CMakeFiles/hammer_forecast.dir/dataset.cpp.o.d"
  "CMakeFiles/hammer_forecast.dir/layers.cpp.o"
  "CMakeFiles/hammer_forecast.dir/layers.cpp.o.d"
  "CMakeFiles/hammer_forecast.dir/models.cpp.o"
  "CMakeFiles/hammer_forecast.dir/models.cpp.o.d"
  "CMakeFiles/hammer_forecast.dir/optim.cpp.o"
  "CMakeFiles/hammer_forecast.dir/optim.cpp.o.d"
  "CMakeFiles/hammer_forecast.dir/tensor.cpp.o"
  "CMakeFiles/hammer_forecast.dir/tensor.cpp.o.d"
  "CMakeFiles/hammer_forecast.dir/train.cpp.o"
  "CMakeFiles/hammer_forecast.dir/train.cpp.o.d"
  "libhammer_forecast.a"
  "libhammer_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hammer_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
