file(REMOVE_RECURSE
  "libhammer_forecast.a"
)
