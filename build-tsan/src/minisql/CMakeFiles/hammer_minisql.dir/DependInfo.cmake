
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minisql/database.cpp" "src/minisql/CMakeFiles/hammer_minisql.dir/database.cpp.o" "gcc" "src/minisql/CMakeFiles/hammer_minisql.dir/database.cpp.o.d"
  "/root/repo/src/minisql/executor.cpp" "src/minisql/CMakeFiles/hammer_minisql.dir/executor.cpp.o" "gcc" "src/minisql/CMakeFiles/hammer_minisql.dir/executor.cpp.o.d"
  "/root/repo/src/minisql/parser.cpp" "src/minisql/CMakeFiles/hammer_minisql.dir/parser.cpp.o" "gcc" "src/minisql/CMakeFiles/hammer_minisql.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/hammer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
