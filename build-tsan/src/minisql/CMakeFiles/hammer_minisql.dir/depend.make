# Empty dependencies file for hammer_minisql.
# This may be replaced when dependencies are built.
