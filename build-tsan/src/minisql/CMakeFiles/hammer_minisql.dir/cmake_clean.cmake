file(REMOVE_RECURSE
  "CMakeFiles/hammer_minisql.dir/database.cpp.o"
  "CMakeFiles/hammer_minisql.dir/database.cpp.o.d"
  "CMakeFiles/hammer_minisql.dir/executor.cpp.o"
  "CMakeFiles/hammer_minisql.dir/executor.cpp.o.d"
  "CMakeFiles/hammer_minisql.dir/parser.cpp.o"
  "CMakeFiles/hammer_minisql.dir/parser.cpp.o.d"
  "libhammer_minisql.a"
  "libhammer_minisql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hammer_minisql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
