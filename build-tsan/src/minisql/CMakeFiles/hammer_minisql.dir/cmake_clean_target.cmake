file(REMOVE_RECURSE
  "libhammer_minisql.a"
)
