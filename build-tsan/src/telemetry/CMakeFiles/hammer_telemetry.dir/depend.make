# Empty dependencies file for hammer_telemetry.
# This may be replaced when dependencies are built.
