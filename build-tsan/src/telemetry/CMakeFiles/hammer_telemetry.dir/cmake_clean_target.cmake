file(REMOVE_RECURSE
  "libhammer_telemetry.a"
)
