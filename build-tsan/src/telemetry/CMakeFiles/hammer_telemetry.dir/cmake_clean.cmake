file(REMOVE_RECURSE
  "CMakeFiles/hammer_telemetry.dir/exposition.cpp.o"
  "CMakeFiles/hammer_telemetry.dir/exposition.cpp.o.d"
  "CMakeFiles/hammer_telemetry.dir/registry.cpp.o"
  "CMakeFiles/hammer_telemetry.dir/registry.cpp.o.d"
  "CMakeFiles/hammer_telemetry.dir/trace.cpp.o"
  "CMakeFiles/hammer_telemetry.dir/trace.cpp.o.d"
  "libhammer_telemetry.a"
  "libhammer_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hammer_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
