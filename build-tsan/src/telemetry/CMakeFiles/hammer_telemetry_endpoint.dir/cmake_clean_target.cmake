file(REMOVE_RECURSE
  "libhammer_telemetry_endpoint.a"
)
