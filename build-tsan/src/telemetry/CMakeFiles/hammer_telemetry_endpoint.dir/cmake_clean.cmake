file(REMOVE_RECURSE
  "CMakeFiles/hammer_telemetry_endpoint.dir/endpoint.cpp.o"
  "CMakeFiles/hammer_telemetry_endpoint.dir/endpoint.cpp.o.d"
  "libhammer_telemetry_endpoint.a"
  "libhammer_telemetry_endpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hammer_telemetry_endpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
