# Empty dependencies file for hammer_telemetry_endpoint.
# This may be replaced when dependencies are built.
