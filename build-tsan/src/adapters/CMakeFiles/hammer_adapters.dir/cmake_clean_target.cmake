file(REMOVE_RECURSE
  "libhammer_adapters.a"
)
