# Empty compiler generated dependencies file for hammer_adapters.
# This may be replaced when dependencies are built.
