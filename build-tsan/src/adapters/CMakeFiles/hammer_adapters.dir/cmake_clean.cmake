file(REMOVE_RECURSE
  "CMakeFiles/hammer_adapters.dir/chain_adapter.cpp.o"
  "CMakeFiles/hammer_adapters.dir/chain_adapter.cpp.o.d"
  "libhammer_adapters.a"
  "libhammer_adapters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hammer_adapters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
