
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/jsonrpc.cpp" "src/rpc/CMakeFiles/hammer_rpc.dir/jsonrpc.cpp.o" "gcc" "src/rpc/CMakeFiles/hammer_rpc.dir/jsonrpc.cpp.o.d"
  "/root/repo/src/rpc/tcp.cpp" "src/rpc/CMakeFiles/hammer_rpc.dir/tcp.cpp.o" "gcc" "src/rpc/CMakeFiles/hammer_rpc.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/json/CMakeFiles/hammer_json.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/telemetry/CMakeFiles/hammer_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/hammer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
