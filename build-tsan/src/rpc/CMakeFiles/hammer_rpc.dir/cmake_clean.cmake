file(REMOVE_RECURSE
  "CMakeFiles/hammer_rpc.dir/jsonrpc.cpp.o"
  "CMakeFiles/hammer_rpc.dir/jsonrpc.cpp.o.d"
  "CMakeFiles/hammer_rpc.dir/tcp.cpp.o"
  "CMakeFiles/hammer_rpc.dir/tcp.cpp.o.d"
  "libhammer_rpc.a"
  "libhammer_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hammer_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
