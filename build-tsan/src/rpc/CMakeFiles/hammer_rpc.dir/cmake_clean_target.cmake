file(REMOVE_RECURSE
  "libhammer_rpc.a"
)
