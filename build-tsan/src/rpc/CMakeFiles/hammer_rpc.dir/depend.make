# Empty dependencies file for hammer_rpc.
# This may be replaced when dependencies are built.
