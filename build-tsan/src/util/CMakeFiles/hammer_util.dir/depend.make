# Empty dependencies file for hammer_util.
# This may be replaced when dependencies are built.
