file(REMOVE_RECURSE
  "CMakeFiles/hammer_util.dir/clock.cpp.o"
  "CMakeFiles/hammer_util.dir/clock.cpp.o.d"
  "CMakeFiles/hammer_util.dir/hex.cpp.o"
  "CMakeFiles/hammer_util.dir/hex.cpp.o.d"
  "CMakeFiles/hammer_util.dir/histogram.cpp.o"
  "CMakeFiles/hammer_util.dir/histogram.cpp.o.d"
  "CMakeFiles/hammer_util.dir/logging.cpp.o"
  "CMakeFiles/hammer_util.dir/logging.cpp.o.d"
  "CMakeFiles/hammer_util.dir/random.cpp.o"
  "CMakeFiles/hammer_util.dir/random.cpp.o.d"
  "CMakeFiles/hammer_util.dir/strings.cpp.o"
  "CMakeFiles/hammer_util.dir/strings.cpp.o.d"
  "CMakeFiles/hammer_util.dir/thread_pool.cpp.o"
  "CMakeFiles/hammer_util.dir/thread_pool.cpp.o.d"
  "libhammer_util.a"
  "libhammer_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hammer_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
