file(REMOVE_RECURSE
  "libhammer_util.a"
)
