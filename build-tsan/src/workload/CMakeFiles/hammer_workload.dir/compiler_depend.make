# Empty compiler generated dependencies file for hammer_workload.
# This may be replaced when dependencies are built.
