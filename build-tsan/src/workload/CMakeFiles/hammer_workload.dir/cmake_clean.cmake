file(REMOVE_RECURSE
  "CMakeFiles/hammer_workload.dir/control_sequence.cpp.o"
  "CMakeFiles/hammer_workload.dir/control_sequence.cpp.o.d"
  "CMakeFiles/hammer_workload.dir/generator.cpp.o"
  "CMakeFiles/hammer_workload.dir/generator.cpp.o.d"
  "CMakeFiles/hammer_workload.dir/profile.cpp.o"
  "CMakeFiles/hammer_workload.dir/profile.cpp.o.d"
  "CMakeFiles/hammer_workload.dir/workload_file.cpp.o"
  "CMakeFiles/hammer_workload.dir/workload_file.cpp.o.d"
  "libhammer_workload.a"
  "libhammer_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hammer_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
