file(REMOVE_RECURSE
  "libhammer_workload.a"
)
