
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/control_sequence.cpp" "src/workload/CMakeFiles/hammer_workload.dir/control_sequence.cpp.o" "gcc" "src/workload/CMakeFiles/hammer_workload.dir/control_sequence.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/hammer_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/hammer_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/profile.cpp" "src/workload/CMakeFiles/hammer_workload.dir/profile.cpp.o" "gcc" "src/workload/CMakeFiles/hammer_workload.dir/profile.cpp.o.d"
  "/root/repo/src/workload/workload_file.cpp" "src/workload/CMakeFiles/hammer_workload.dir/workload_file.cpp.o" "gcc" "src/workload/CMakeFiles/hammer_workload.dir/workload_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/chain/CMakeFiles/hammer_chain.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/json/CMakeFiles/hammer_json.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/hammer_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crypto/CMakeFiles/hammer_crypto.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/rpc/CMakeFiles/hammer_rpc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/telemetry/CMakeFiles/hammer_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
