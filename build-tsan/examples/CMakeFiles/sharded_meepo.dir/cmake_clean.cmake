file(REMOVE_RECURSE
  "CMakeFiles/sharded_meepo.dir/sharded_meepo.cpp.o"
  "CMakeFiles/sharded_meepo.dir/sharded_meepo.cpp.o.d"
  "sharded_meepo"
  "sharded_meepo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_meepo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
