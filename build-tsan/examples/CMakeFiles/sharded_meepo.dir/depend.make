# Empty dependencies file for sharded_meepo.
# This may be replaced when dependencies are built.
