# Empty dependencies file for smallbank_multichain.
# This may be replaced when dependencies are built.
