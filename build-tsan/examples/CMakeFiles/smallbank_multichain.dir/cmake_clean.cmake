file(REMOVE_RECURSE
  "CMakeFiles/smallbank_multichain.dir/smallbank_multichain.cpp.o"
  "CMakeFiles/smallbank_multichain.dir/smallbank_multichain.cpp.o.d"
  "smallbank_multichain"
  "smallbank_multichain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smallbank_multichain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
