file(REMOVE_RECURSE
  "CMakeFiles/forecast_workloads.dir/forecast_workloads.cpp.o"
  "CMakeFiles/forecast_workloads.dir/forecast_workloads.cpp.o.d"
  "forecast_workloads"
  "forecast_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
