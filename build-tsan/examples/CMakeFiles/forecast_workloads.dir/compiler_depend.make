# Empty compiler generated dependencies file for forecast_workloads.
# This may be replaced when dependencies are built.
